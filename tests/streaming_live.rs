//! End-to-end streaming over live sockets: constant-memory message
//! exchange through the whole stack — engine, HTTP chunked transport,
//! reactor server, and the streaming intermediary.
//!
//! The payloads here are deliberately many multiples of the streaming
//! window (one part): 16 parts of 16 Ki f64 values each (~128 KiB
//! encoded per part, ~2 MiB per message), so any accidental
//! whole-message buffering would be loud in the alloc-counter gate the
//! bench crate runs over the same path.

use std::sync::Arc;

use bxdm::{ArrayValue, AtomicValue, Element};
use soap::{
    BxsaEncoding, CallOptions, FaultCode, HttpBinding, HttpSoapServer, Intermediary,
    ServiceRegistry, SoapEngine, SoapEnvelope, SoapError, SoapResult, SoapService, StreamOp,
    XmlEncoding,
};

/// Values per uploaded/downloaded batch (~128 KiB of f64 on the wire).
const BATCH_LEN: usize = 16 * 1024;
/// Batches per message: payload is 16x the one-part window.
const PARTS: usize = 16;

/// Server op: fold every uploaded batch into a running sum; reply with
/// one small manifest (no reply parts). Nothing is retained per part.
#[derive(Default)]
struct SumOp {
    sum: f64,
    parts: i32,
}

impl StreamOp for SumOp {
    fn start(&mut self, _manifest: &SoapEnvelope) -> SoapResult<()> {
        Ok(())
    }

    fn on_part(&mut self, part: &Element) -> SoapResult<()> {
        let xs = part
            .as_f64_array()
            .ok_or_else(|| SoapError::Protocol("batch is not an f64 array".into()))?;
        self.sum += xs.iter().sum::<f64>();
        self.parts += 1;
        Ok(())
    }

    fn finish(&mut self) -> SoapResult<SoapEnvelope> {
        Ok(SoapEnvelope::with_body(
            Element::component("SumResponse")
                .with_child(Element::leaf("sum", AtomicValue::F64(self.sum)))
                .with_child(Element::leaf("parts", AtomicValue::I32(self.parts))),
        ))
    }

    fn next_part(&mut self, _slot: &mut Element) -> SoapResult<bool> {
        Ok(false)
    }
}

/// Server op: stream `parts` generated batches back, one per reply
/// chunk — the download direction. Batch `i` is `len` copies of `i`.
#[derive(Default)]
struct GenerateOp {
    parts: i32,
    len: usize,
    next: i32,
}

impl StreamOp for GenerateOp {
    fn start(&mut self, manifest: &SoapEnvelope) -> SoapResult<()> {
        let body = manifest
            .body_element()
            .ok_or_else(|| SoapError::Protocol("empty Generate manifest".into()))?;
        self.parts = body
            .child_value("parts")
            .and_then(AtomicValue::as_i32)
            .ok_or_else(|| SoapError::Protocol("Generate needs a parts count".into()))?;
        self.len = body
            .child_value("len")
            .and_then(AtomicValue::as_i32)
            .ok_or_else(|| SoapError::Protocol("Generate needs a batch len".into()))?
            as usize;
        Ok(())
    }

    fn on_part(&mut self, _part: &Element) -> SoapResult<()> {
        Ok(())
    }

    fn finish(&mut self) -> SoapResult<SoapEnvelope> {
        Ok(SoapEnvelope::with_body(Element::component(
            "GenerateResponse",
        )))
    }

    fn next_part(&mut self, slot: &mut Element) -> SoapResult<bool> {
        if self.next >= self.parts {
            return Ok(false);
        }
        *slot = Element::array(
            "batch",
            ArrayValue::F64(vec![f64::from(self.next); self.len]),
        );
        self.next += 1;
        Ok(true)
    }
}

fn streaming_service<E: soap::EncodingPolicy>(encoding: E) -> SoapService<E> {
    let mut service = SoapService::new(encoding, Arc::new(ServiceRegistry::new()));
    service.register_streaming("Sum", || Box::<SumOp>::default());
    service.register_streaming("Generate", || Box::<GenerateOp>::default());
    service
}

fn serve<E>(encoding: E) -> HttpSoapServer
where
    E: soap::StreamEncoding + Send + Sync + 'static,
{
    HttpSoapServer::bind_service_with(
        "127.0.0.1:0",
        "/soap",
        transport::HttpServerConfig::default(),
        streaming_service(encoding),
    )
    .unwrap()
}

fn engine_for(addr: &str) -> SoapEngine<BxsaEncoding, HttpBinding> {
    SoapEngine::new(BxsaEncoding::default(), HttpBinding::new(addr, "/soap"))
}

/// Upload PARTS batches, return the server's (sum, parts) answer.
fn upload_sum(engine: &mut SoapEngine<BxsaEncoding, HttpBinding>) -> (f64, i32) {
    let batch: Vec<f64> = (0..BATCH_LEN).map(|i| i as f64).collect();
    let mut reply = engine
        .call_streaming(
            SoapEnvelope::with_body(Element::component("Sum")),
            &CallOptions::new(),
            |tx| {
                let part = Element::array("batch", ArrayValue::F64(batch.clone()));
                for _ in 0..PARTS {
                    tx.send(&part)?;
                }
                Ok(())
            },
        )
        .unwrap();
    // Drain to the terminator (no payload parts expected) so the
    // connection stays reusable for the next call.
    assert!(reply.next_part().unwrap().is_none());
    let envelope = reply.into_envelope();
    let body = envelope.body_element().unwrap();
    (
        body.child_value("sum").and_then(AtomicValue::as_f64).unwrap(),
        body.child_value("parts")
            .and_then(AtomicValue::as_i32)
            .unwrap(),
    )
}

fn expected_sum() -> f64 {
    let per_batch: f64 = (0..BATCH_LEN).map(|i| i as f64).sum();
    per_batch * PARTS as f64
}

/// Download PARTS generated batches, return (value sum, parts pulled).
fn download_generate(engine: &mut SoapEngine<BxsaEncoding, HttpBinding>) -> (f64, u64) {
    let mut reply = engine
        .call_streaming(
            SoapEnvelope::with_body(
                Element::component("Generate")
                    .with_child(Element::leaf("parts", AtomicValue::I32(PARTS as i32)))
                    .with_child(Element::leaf("len", AtomicValue::I32(BATCH_LEN as i32))),
            ),
            &CallOptions::new(),
            |_tx| Ok(()),
        )
        .unwrap();
    let mut sum = 0.0;
    while let Some(part) = reply.next_part().unwrap() {
        sum += part.as_f64_array().unwrap().iter().sum::<f64>();
    }
    (sum, reply.parts_received())
}

fn expected_generate_sum() -> f64 {
    (0..PARTS).map(|i| i as f64 * BATCH_LEN as f64).sum()
}

#[test]
fn streams_large_upload_to_server() {
    let server = serve(BxsaEncoding::default());
    let mut engine = engine_for(&server.local_addr().to_string());
    let (sum, parts) = upload_sum(&mut engine);
    assert_eq!(parts, PARTS as i32);
    assert_eq!(sum, expected_sum());
    server.shutdown();
}

#[test]
fn streams_large_download_from_server() {
    let server = serve(BxsaEncoding::default());
    let mut engine = engine_for(&server.local_addr().to_string());
    let (sum, parts) = download_generate(&mut engine);
    assert_eq!(parts, PARTS as u64);
    assert_eq!(sum, expected_generate_sum());
    server.shutdown();
}

#[test]
fn streamed_connection_is_reused_and_interops_with_buffered() {
    let server = serve(BxsaEncoding::default());
    let mut engine = engine_for(&server.local_addr().to_string());

    // Drained streamed exchanges keep the socket alive...
    let first = upload_sum(&mut engine);
    let second = upload_sum(&mut engine);
    assert_eq!(first, second);
    assert!(
        engine.binding().connection_reuses() >= 1,
        "second streamed call must reuse the kept connection"
    );

    // ...and a buffered call can follow on the same connection. (The
    // service has no buffered ops, so the answer is a clean fault — the
    // point is that the exchange itself survives after streaming.)
    match engine.call_with(
        SoapEnvelope::with_body(Element::component("Sum")),
        &CallOptions::new(),
    ) {
        Err(SoapError::Fault(_)) => {}
        other => panic!("expected a buffered fault exchange, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unregistered_streaming_operation_faults_in_band() {
    let server = serve(BxsaEncoding::default());
    let mut engine = engine_for(&server.local_addr().to_string());
    let result = engine.call_streaming(
        SoapEnvelope::with_body(Element::component("Nope")),
        &CallOptions::new(),
        |tx| {
            tx.send(&Element::array("batch", ArrayValue::F64(vec![1.0])))?;
            Ok(())
        },
    );
    match result {
        Err(SoapError::Fault(f)) => assert_eq!(f.code, FaultCode::Client),
        other => panic!("expected in-band fault, got {:?}", other.map(|_| ())),
    }
    server.shutdown();
}

/// The §5.1 transcoding scenario, streamed: BXSA client, XML server,
/// every part transcoded at the relay — in O(window) memory.
#[test]
fn streams_through_transcoding_intermediary() {
    let server = serve(XmlEncoding::default());
    let relay = Intermediary::bind_http_streaming(
        "127.0.0.1:0",
        "/soap",
        BxsaEncoding::default(),
        XmlEncoding::default(),
        &server.local_addr().to_string(),
        "/soap",
    )
    .unwrap();
    let mut engine = engine_for(&relay.local_addr().to_string());

    let (sum, parts) = upload_sum(&mut engine);
    assert_eq!(parts, PARTS as i32);
    assert_eq!(sum, expected_sum());

    let (sum, parts) = download_generate(&mut engine);
    assert_eq!(parts, PARTS as u64);
    assert_eq!(sum, expected_generate_sum());

    relay.shutdown();
    server.shutdown();
}

/// Same-encoding hops: the relay forwards part bytes verbatim (BXSA
/// frames are byte-order self-describing), still one part at a time.
#[test]
fn streams_through_verbatim_intermediary() {
    let server = serve(BxsaEncoding::default());
    let relay = Intermediary::bind_http_streaming(
        "127.0.0.1:0",
        "/soap",
        BxsaEncoding::default(),
        BxsaEncoding::default(),
        &server.local_addr().to_string(),
        "/soap",
    )
    .unwrap();
    let mut engine = engine_for(&relay.local_addr().to_string());

    let (sum, parts) = upload_sum(&mut engine);
    assert_eq!(parts, PARTS as i32);
    assert_eq!(sum, expected_sum());

    let (sum, parts) = download_generate(&mut engine);
    assert_eq!(parts, PARTS as u64);
    assert_eq!(sum, expected_generate_sum());

    relay.shutdown();
    server.shutdown();
}

#[test]
fn relay_surfaces_streamed_upstream_fault_in_band() {
    let server = serve(XmlEncoding::default());
    let relay = Intermediary::bind_http_streaming(
        "127.0.0.1:0",
        "/soap",
        BxsaEncoding::default(),
        XmlEncoding::default(),
        &server.local_addr().to_string(),
        "/soap",
    )
    .unwrap();
    let mut engine = engine_for(&relay.local_addr().to_string());
    let result = engine.call_streaming(
        SoapEnvelope::with_body(Element::component("Nope")),
        &CallOptions::new(),
        |_tx| Ok(()),
    );
    match result {
        Err(SoapError::Fault(_)) => {}
        other => panic!("expected relayed fault, got {:?}", other.map(|_| ())),
    }
    relay.shutdown();
    server.shutdown();
}

#[test]
fn relay_with_dead_upstream_faults_streamed_calls() {
    let relay = Intermediary::bind_http_streaming(
        "127.0.0.1:0",
        "/soap",
        BxsaEncoding::default(),
        XmlEncoding::default(),
        "127.0.0.1:1", // nothing listening
        "/soap",
    )
    .unwrap();
    let mut engine = engine_for(&relay.local_addr().to_string());
    let result = engine.call_streaming(
        SoapEnvelope::with_body(Element::component("Sum")),
        &CallOptions::new(),
        |tx| {
            tx.send(&Element::array("batch", ArrayValue::F64(vec![1.0])))?;
            Ok(())
        },
    );
    match result {
        Err(SoapError::Fault(f)) => assert_eq!(f.code, FaultCode::Server),
        other => panic!("expected server fault, got {:?}", other.map(|_| ())),
    }
    relay.shutdown();
}
