//! End-to-end deadline propagation and circuit-breaker acceptance tests.
//!
//! The scenarios here are the ISSUE's acceptance criteria: a client
//! budget observed across a 3-hop chain under stalls, expired-on-arrival
//! rejection with zero handler executions on both transports, hop
//! decrement through a live intermediary, and a breaker opening /
//! fast-failing / recovering against real sockets.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bxdm::{AtomicValue, Element};
use soap::{
    BreakerConfig, BreakerHandle, BreakerState, BxsaEncoding, CallOptions, DeadlineHeader,
    EncodingPolicy, HttpBinding, HttpSoapServer, Intermediary, ServiceRegistry, SoapEngine,
    SoapEnvelope, SoapError, TcpBinding, TcpSoapServer, XmlEncoding, EXPIRED_RETRY_AFTER,
};
use transport::{TcpServerConfig, Timeouts};

/// A service whose single operation parks the worker for `nap`, counting
/// executions — ground truth for both "did the handler run at all" and
/// "did the client wait for it".
fn slow_registry(nap: Duration, hits: Arc<AtomicU32>) -> Arc<ServiceRegistry> {
    Arc::new(ServiceRegistry::new().with_operation("Slow", move |_req| {
        hits.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(nap);
        Ok(SoapEnvelope::with_body(Element::component("SlowResponse")))
    }))
}

/// A service that reports the `bx:Deadline` header it observed.
fn echo_deadline_registry() -> Arc<ServiceRegistry> {
    Arc::new(
        ServiceRegistry::new().with_operation("EchoDeadline", |req| {
            let header = DeadlineHeader::from_envelope(req)?;
            let mut reply = Element::component("EchoDeadlineResponse");
            if let Some(h) = header {
                reply.push_child(Element::leaf(
                    "budgetMillis",
                    AtomicValue::I64(h.budget_millis as i64),
                ));
                reply.push_child(Element::leaf("hops", AtomicValue::I64(i64::from(h.hops))));
            }
            Ok(SoapEnvelope::with_body(reply))
        }),
    )
}

fn slow_request() -> SoapEnvelope {
    SoapEnvelope::with_body(Element::component("Slow"))
}

#[test]
fn three_hop_chain_observes_the_client_budget_end_to_end() {
    // Terminal server: XML over TCP, handler parks for 2 s, static
    // timeouts a generous 10 s — without deadline propagation the client
    // would sit out the full nap.
    let hits = Arc::new(AtomicU32::new(0));
    let server = TcpSoapServer::bind_with(
        "127.0.0.1:0",
        TcpServerConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            ..TcpServerConfig::default()
        },
        XmlEncoding::default(),
        slow_registry(Duration::from_secs(2), Arc::clone(&hits)),
    )
    .unwrap();

    // Middle hop: listens in BXSA, forwards in XML, again with generous
    // static budgets on its up-link.
    let relay = Intermediary::bind_tcp(
        "127.0.0.1:0",
        BxsaEncoding::default(),
        XmlEncoding::default(),
        TcpBinding::new(&server.local_addr().to_string())
            .with_timeouts(Timeouts::all(Duration::from_secs(10))),
    )
    .unwrap();

    // Client: 350 ms end-to-end budget through the relay.
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&relay.local_addr().to_string())
            .with_timeouts(Timeouts::all(Duration::from_secs(10))),
    );
    let started = Instant::now();
    let err = engine
        .call_with(
            slow_request(),
            &CallOptions::new().within(Duration::from_millis(350)),
        )
        .unwrap_err();
    let waited = started.elapsed();
    // Two valid outcomes race: the client's own clamped socket budget
    // fires, or the relay's clamped up-link fires first and a Server
    // fault beats the client's timeout home. Both prove propagation;
    // anything else (success, a Client fault) would not.
    match &err {
        SoapError::Transport(_) => {}
        SoapError::Fault(f) => {
            assert_eq!(f.code, soap::FaultCode::Server, "{f:?}");
            assert!(f.string.contains("timed out"), "{f:?}");
        }
        other => panic!("expected a timeout either hop, got {other:?}"),
    }
    // The client must give up on *its* clock: far sooner than the 2 s
    // nap or any 10 s static allowance. The margin below the nap proves
    // the deadline, not a static timeout, cut the wait.
    assert!(
        waited < Duration::from_millis(1500),
        "client waited {waited:?} against a 350 ms budget"
    );
    assert_eq!(hits.load(Ordering::SeqCst), 1, "request did reach the service");

    relay.shutdown();
    server.shutdown();
}

#[test]
fn expired_on_arrival_is_rejected_without_dispatch_on_both_transports() {
    let hits = Arc::new(AtomicU32::new(0));
    let registry = slow_registry(Duration::ZERO, Arc::clone(&hits));
    let tcp =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), Arc::clone(&registry))
            .unwrap();
    let http = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        XmlEncoding::default(),
        Arc::clone(&registry),
    )
    .unwrap();

    // A request whose budget was already spent when it left the client:
    // stamped by hand so no re-stamping path can refresh it.
    let mut dead = slow_request();
    DeadlineHeader::new(0, 4).stamp(&mut dead);

    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&tcp.local_addr().to_string()),
    );
    match engine.call_with(dead.clone(), &soap::CallOptions::new()) {
        Err(SoapError::Fault(f)) => {
            assert_eq!(f.code, soap::FaultCode::Server);
            assert_eq!(f.retry_after(), Some(EXPIRED_RETRY_AFTER));
        }
        other => panic!("expected deadline-expired fault, got {other:?}"),
    }

    let mut engine = SoapEngine::new(
        XmlEncoding::default(),
        HttpBinding::new(&http.local_addr().to_string(), "/soap"),
    );
    match engine.call_with(dead.clone(), &soap::CallOptions::new()) {
        Err(SoapError::Fault(f)) => {
            assert_eq!(f.code, soap::FaultCode::Server);
            assert_eq!(f.retry_after(), Some(EXPIRED_RETRY_AFTER));
        }
        other => panic!("expected deadline-expired fault, got {other:?}"),
    }

    // On HTTP the hint is *also* a real Retry-After header on the 500.
    let body = XmlEncoding::default()
        .encode(&dead.to_document())
        .unwrap();
    let resp = transport::http_post(
        &http.local_addr().to_string(),
        "/soap",
        "text/xml; charset=utf-8",
        body,
    )
    .unwrap();
    assert_eq!(resp.status, 500);
    assert_eq!(resp.header("Retry-After"), Some("1"));

    assert_eq!(
        hits.load(Ordering::SeqCst),
        0,
        "expired requests must never reach the handler"
    );
    tcp.shutdown();
    http.shutdown();
}

#[test]
fn intermediary_decrements_hops_and_forwards_remaining_budget() {
    let server = TcpSoapServer::bind(
        "127.0.0.1:0",
        XmlEncoding::default(),
        echo_deadline_registry(),
    )
    .unwrap();
    let relay = Intermediary::bind_tcp(
        "127.0.0.1:0",
        BxsaEncoding::default(),
        XmlEncoding::default(),
        TcpBinding::new(&server.local_addr().to_string()),
    )
    .unwrap();
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&relay.local_addr().to_string()),
    );

    // Hand-stamped header with a known hop count crosses one relay hop.
    let mut request = SoapEnvelope::with_body(Element::component("EchoDeadline"));
    DeadlineHeader::new(5_000, 3).stamp(&mut request);
    let resp = engine.call_with(request, &soap::CallOptions::new()).unwrap();
    let body = resp.body_element().unwrap();
    let Some(AtomicValue::I64(hops)) = body.child_value("hops") else {
        panic!("server saw no deadline header");
    };
    assert_eq!(*hops, 2, "one hop must be consumed at the relay");
    let Some(AtomicValue::I64(budget)) = body.child_value("budgetMillis") else {
        panic!("budget missing");
    };
    assert!(
        (0..=5_000).contains(budget),
        "forwarded budget {budget} must not exceed the original"
    );

    // A header that arrives with no hops left cannot be forwarded: the
    // relay answers a Client fault itself (a routing loop is the
    // sender's problem, not the upstream's).
    let mut exhausted = SoapEnvelope::with_body(Element::component("EchoDeadline"));
    DeadlineHeader::new(5_000, 0).stamp(&mut exhausted);
    match engine.call_with(exhausted, &soap::CallOptions::new()) {
        Err(SoapError::Fault(f)) => {
            assert_eq!(f.code, soap::FaultCode::Client);
            assert!(f.string.contains("hop"), "{}", f.string);
        }
        other => panic!("expected hop-exhaustion fault, got {other:?}"),
    }

    // An expired header is refused at the relay with the standard
    // deadline fault (and its retry hint), never reaching the upstream.
    let mut expired = SoapEnvelope::with_body(Element::component("EchoDeadline"));
    DeadlineHeader::new(0, 3).stamp(&mut expired);
    match engine.call_with(expired, &soap::CallOptions::new()) {
        Err(SoapError::Fault(f)) => {
            assert_eq!(f.code, soap::FaultCode::Server);
            assert_eq!(f.retry_after(), Some(EXPIRED_RETRY_AFTER));
        }
        other => panic!("expected deadline-expired fault, got {other:?}"),
    }

    relay.shutdown();
    server.shutdown();
}

#[test]
fn breaker_opens_fast_fails_and_recovers_against_real_sockets() {
    // Claim a port, then free it: connects will be refused until the
    // server comes back on the same address.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = placeholder.local_addr().unwrap().to_string();
    drop(placeholder);

    let breaker = BreakerHandle::standalone(
        &addr,
        BreakerConfig {
            window: Duration::from_secs(10),
            failure_threshold: 0.5,
            min_samples: 3,
            cooldown: Duration::from_millis(50),
            cooldown_cap: Duration::from_millis(150),
            half_open_successes: 1,
            seed: 9,
        },
    );
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&addr).with_timeouts(Timeouts::all(Duration::from_secs(2))),
    )
    .with_breaker(breaker.clone());

    // Three refused connects trip the breaker...
    for _ in 0..3 {
        let err = engine.call_with(slow_request(), &soap::CallOptions::new()).unwrap_err();
        assert!(matches!(err, SoapError::Transport(_)), "{err:?}");
        assert_eq!(engine.last_call_attempts(), 1);
    }
    assert_eq!(breaker.state(), BreakerState::Open);

    // ...and while open the engine fails fast: typed error, zero
    // exchange attempts, no socket work at all.
    match engine.call_with(slow_request(), &soap::CallOptions::new()) {
        Err(SoapError::CircuitOpen {
            endpoint,
            retry_after,
        }) => {
            assert_eq!(endpoint, addr);
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert_eq!(engine.last_call_attempts(), 0);

    // The endpoint comes back on the same address; once the cooldown
    // passes, a half-open probe is admitted and recovery closes the
    // circuit.
    let hits = Arc::new(AtomicU32::new(0));
    let server = TcpSoapServer::bind(
        &addr,
        BxsaEncoding::default(),
        slow_registry(Duration::ZERO, hits),
    )
    .expect("freed port must be rebindable");
    std::thread::sleep(Duration::from_millis(200)); // > cooldown_cap
    let resp = engine.call_with(slow_request(), &soap::CallOptions::new()).expect("probe must go through");
    assert_eq!(resp.operation(), Some("SlowResponse"));
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert!(engine.call_with(slow_request(), &soap::CallOptions::new()).is_ok(), "closed circuit serves normally");
    assert_eq!(breaker.trips(), 1);

    server.shutdown();
}
