//! End-to-end observability tests: the `/metrics` scrape against a live
//! HTTP SOAP server, and the `obs::dump()` snapshot path for TCP-only
//! deployments.
//!
//! All tests in this binary share one process-global registry
//! ([`obs::global`]) and run concurrently, so assertions are
//! presence/monotonicity checks ("the scrape contains this family"),
//! never exact process-wide totals — those live in the `obs` crate's own
//! unit tests where the counters are private to the test.

use std::sync::Arc;
use std::time::Duration;

use bxsoap::{lead_dataset, register_verify, verify_request_envelope};
use soap::{
    BreakerConfig, BreakerRegistry, BxsaEncoding, CallOptions, HttpBinding, HttpSoapServer,
    RetryPolicy, SoapEngine, SoapError, TcpBinding, TcpSoapServer, XmlEncoding,
};

fn verify_registry() -> Arc<soap::ServiceRegistry> {
    let mut registry = soap::ServiceRegistry::new();
    register_verify(&mut registry);
    Arc::new(registry)
}

/// The tentpole acceptance check: a stock [`HttpSoapServer`] answers
/// `GET /metrics` with a Prometheus text scrape carrying the engine,
/// breaker, and server families, with real traffic behind the numbers.
#[test]
fn metrics_scrape_reports_engine_breaker_and_server_families() {
    let server = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        XmlEncoding::default(),
        verify_registry(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Real calls through a breaker-guarded engine: attempts, latency,
    // and per-endpoint breaker state all get non-trivial values.
    let breakers = BreakerRegistry::new(BreakerConfig::default());
    let mut engine = SoapEngine::new(XmlEncoding::default(), HttpBinding::new(&addr, "/soap"))
        .with_breaker(breakers.handle("metrics-e2e-http"));
    let (index, values) = lead_dataset(20, 42);
    let request = verify_request_envelope(&index, &values);
    for _ in 0..3 {
        engine.call_with(request.clone(), &soap::CallOptions::new()).expect("healthy server");
    }

    // A deadline already expired when the call starts: the engine must
    // count it instead of attempting an exchange.
    let err = engine
        .call_with(request.clone(), &CallOptions::new().within(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(err, SoapError::Transport(_)), "{err:?}");

    // Retries: a dead endpoint with a retry budget burns visible retries.
    let mut doomed = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new("127.0.0.1:1"),
    )
    .with_retry(RetryPolicy::no_delay(3));
    let _ = doomed.call_with(request.clone(), &soap::CallOptions::new()).unwrap_err();

    // A tripped breaker: trips counter and open-state gauge.
    let tripped = transport::BreakerHandle::standalone(
        "metrics-e2e-tripped",
        BreakerConfig {
            min_samples: 4,
            ..BreakerConfig::default()
        },
    );
    for _ in 0..4 {
        tripped.record(false);
    }
    assert_eq!(tripped.state(), transport::BreakerState::Open);

    // A hostile Content-Length populates the typed server error counter
    // (and proves the scrape endpoint survives sharing a listener with
    // abuse).
    {
        use std::io::{BufReader, Write};
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        raw.write_all(b"POST /soap HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n")
            .unwrap();
        let resp = transport::HttpResponse::read_from(&mut BufReader::new(raw)).unwrap();
        assert_eq!(resp.status, 413);
    }

    let scrape = String::from_utf8(transport::http_get(&addr, "/metrics").unwrap()).unwrap();

    // Engine-layer families.
    assert!(scrape.contains("# TYPE bx_engine_calls_total counter"), "{scrape}");
    assert!(scrape.contains("bx_engine_attempts_total"), "missing attempts");
    assert!(scrape.contains("bx_engine_retries_total"), "missing retries");
    assert!(scrape.contains("bx_engine_deadline_expired_total"), "missing deadline");
    assert!(scrape.contains("bx_engine_circuit_open_total"), "missing circuit-open");
    assert!(
        scrape.contains("bx_engine_call_latency_nanoseconds_count"),
        "missing call latency histogram"
    );

    // Breaker families, labelled per endpoint.
    assert!(
        scrape.contains("bx_breaker_state{endpoint=\"metrics-e2e-http\"} 0"),
        "healthy breaker must export closed state: {scrape}"
    );
    assert!(
        scrape.contains("bx_breaker_state{endpoint=\"metrics-e2e-tripped\"} 2"),
        "tripped breaker must export open state: {scrape}"
    );
    assert!(
        scrape.contains("bx_breaker_trips_total{endpoint=\"metrics-e2e-tripped\"} 1"),
        "trip must be counted: {scrape}"
    );

    // Server families, labelled per transport.
    assert!(scrape.contains("bx_server_connections_total{transport=\"http\"}"));
    assert!(scrape.contains("bx_server_bytes_in_total{transport=\"http\"}"));
    assert!(scrape.contains("bx_server_bytes_out_total{transport=\"http\"}"));
    assert!(scrape.contains(
        "bx_server_handler_latency_nanoseconds_count{transport=\"http\"}"
    ));
    assert!(
        scrape.contains(
            "bx_server_connection_errors_total{transport=\"http\",kind=\"frame_too_large\"}"
        ),
        "413 must be counted by kind: {scrape}"
    );

    // Reactor families (PR 6): live-connection gauge, accept-to-dispatch
    // latency, and per-worker loop counters. The scrape itself arrives
    // over a live connection, so the gauge must read ≥ 1 at scrape time.
    assert!(
        scrape.contains("bx_server_connections_active{transport=\"http\"}"),
        "missing live-connection gauge: {scrape}"
    );
    let active = scrape
        .lines()
        .find(|l| l.starts_with("bx_server_connections_active{transport=\"http\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .expect("gauge sample parses");
    assert!(active >= 1.0, "scraping connection must be counted live");
    assert!(
        scrape.contains("bx_server_accept_to_dispatch_nanoseconds_count{transport=\"http\"}"),
        "missing accept-to-dispatch histogram: {scrape}"
    );
    assert!(
        scrape.contains("bx_server_worker_loop_iterations_total{transport=\"http\",worker=\"0\"}"),
        "missing per-worker loop counter: {scrape}"
    );

    server.shutdown();
}

/// TCP-only deployments have no HTTP listener to scrape; the snapshot
/// API ([`obs::dump`]) is their export path, and the framed-TCP server
/// feeds the same families under `transport="tcp"`.
#[test]
fn tcp_only_deployment_exports_via_dump() {
    let server = TcpSoapServer::bind(
        "127.0.0.1:0",
        BxsaEncoding::default(),
        verify_registry(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut engine = SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&addr));
    let (index, values) = lead_dataset(50, 7);
    let request = verify_request_envelope(&index, &values);
    for _ in 0..2 {
        let resp = engine.call_with(request.clone(), &soap::CallOptions::new()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("ok"),
            Some(&bxdm::AtomicValue::Bool(true))
        );
    }

    let dump = obs::dump();
    assert!(dump.contains("bx_server_connections_total{transport=\"tcp\"}"), "{dump}");
    assert!(dump.contains("bx_server_bytes_in_total{transport=\"tcp\"}"));
    assert!(dump.contains("bx_server_bytes_out_total{transport=\"tcp\"}"));
    assert!(dump.contains("bx_server_handler_latency_nanoseconds_count{transport=\"tcp\"}"));

    // The typed snapshot carries the same data as structured values —
    // what a bench binary embeds in its report instead of parsing text.
    let samples = obs::global().snapshot();
    let connections = samples
        .iter()
        .find(|s| {
            s.name == "bx_server_connections_total" && s.labels.contains("transport=\"tcp\"")
        })
        .expect("tcp connections sample");
    match &connections.value {
        // The framed binding keeps one persistent connection across
        // calls, so ≥ 1, not one-per-call.
        obs::SampleValue::Counter(n) => assert!(*n >= 1, "no tcp connections counted"),
        other => panic!("connections must be a counter: {other:?}"),
    }

    server.shutdown();
}

/// The scrape endpoint is plumbing, not magic: it can be disabled (or
/// moved) through [`transport::HttpServerConfig::metrics_path`], and a
/// plain [`transport::HttpServer`] without the flag never answers it.
#[test]
fn metrics_path_is_opt_in_for_plain_http_servers() {
    let server = transport::HttpServer::bind("127.0.0.1:0", |_req| {
        transport::HttpResponse::ok("text/plain", b"app".to_vec())
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    // No metrics_path configured: the application handler owns every
    // path, including /metrics.
    assert_eq!(transport::http_get(&addr, "/metrics").unwrap(), b"app");
    server.shutdown();

    let server = transport::HttpServer::bind_with(
        "127.0.0.1:0",
        transport::HttpServerConfig {
            metrics_path: Some("/internal/metrics"),
            ..Default::default()
        },
        |_req| transport::HttpResponse::ok("text/plain", b"app".to_vec()),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let scrape = String::from_utf8(transport::http_get(&addr, "/internal/metrics").unwrap())
        .unwrap();
    assert!(scrape.contains("bx_server_connections_total"), "{scrape}");
    assert_eq!(transport::http_get(&addr, "/metrics").unwrap(), b"app");
    server.shutdown();
}
