//! Adversarial-input robustness: every decoder in the stack must reject
//! malformed input with an error — never a panic, hang, or runaway
//! allocation. These are the property-test analogue of fuzzing.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes into the BXSA decoder.
    #[test]
    fn bxsa_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = bxsa::decode(&bytes);
    }

    /// Arbitrary bytes into the BXSA pull reader, pulled to exhaustion.
    #[test]
    fn bxsa_pull_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(mut reader) = bxsa::PullReader::new(&bytes) {
            for _ in 0..2_000 {
                match reader.next_event() {
                    Ok(Some(_)) => {}
                    _ => break,
                }
            }
        }
    }

    /// Arbitrary bytes into the netCDF-3 parser.
    #[test]
    fn netcdf_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = netcdf3::NcFile::from_bytes(&bytes);
    }

    /// netCDF parsing with a valid magic but arbitrary tail.
    #[test]
    fn netcdf_magic_prefix_never_panics(tail in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = b"CDF\x01".to_vec();
        bytes.extend_from_slice(&tail);
        let _ = netcdf3::NcFile::from_bytes(&bytes);
    }

    /// Arbitrary text into the XML parser.
    #[test]
    fn xml_parse_never_panics(text in "\\PC{0,300}") {
        let _ = xmltext::parse(&text);
    }

    /// Markup-shaped text into the XML parser (higher hit rate on the
    /// interesting code paths than fully random text).
    #[test]
    fn xml_markupish_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("<a>".to_owned()),
            Just("</a>".to_owned()),
            Just("<a b=\"c\">".to_owned()),
            Just("<a/>".to_owned()),
            Just("&amp;".to_owned()),
            Just("&#x41;".to_owned()),
            Just("<!--x-->".to_owned()),
            Just("<![CDATA[y]]>".to_owned()),
            Just("<?pi d?>".to_owned()),
            Just("text".to_owned()),
            Just("<n xsi:type=\"xsd:int\">7</n>".to_owned()),
            Just("<v bx:arrayType=\"xsd:double\"><i>1</i></v>".to_owned()),
        ], 0..12)) {
        let _ = xmltext::parse(&parts.concat());
    }

    /// Arbitrary bytes as VLS input.
    #[test]
    fn vls_read_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let _ = xbs::vls::read_vls(&bytes, 0);
        let _ = xbs::vls::read_vls_padded(&bytes, 0);
    }

    /// Corrupting single bytes of a valid BXSA document must error or
    /// decode to *something*, never panic. (Bit-flip robustness.)
    #[test]
    fn bxsa_bitflip_never_panics(pos in 0usize..1000, flip in 1u8..=255) {
        let (index, values) = bxsoap::lead_dataset(20, 3);
        let doc = bxsoap::verify_request_envelope(&index, &values).to_document();
        let mut bytes = bxsa::encode(&doc).unwrap();
        let at = pos % bytes.len();
        bytes[at] ^= flip;
        let _ = bxsa::decode(&bytes);
    }

    /// Same for netCDF files.
    #[test]
    fn netcdf_bitflip_never_panics(pos in 0usize..1000, flip in 1u8..=255) {
        let (index, values) = bxsoap::lead_dataset(20, 3);
        let mut nc = netcdf3::NcFile::new();
        let d = nc.add_dim("n", index.len());
        nc.add_var("index", &[d], netcdf3::NcValue::Int(index)).unwrap();
        nc.add_var("values", &[d], netcdf3::NcValue::Double(values)).unwrap();
        let mut bytes = nc.to_bytes().unwrap();
        let at = pos % bytes.len();
        bytes[at] ^= flip;
        let _ = netcdf3::NcFile::from_bytes(&bytes);
    }

    /// SOAP services must turn arbitrary request bytes into fault
    /// envelopes (the server path never panics).
    #[test]
    fn soap_service_handles_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        use std::sync::Arc;
        let mut registry = soap::ServiceRegistry::new();
        bxsoap::register_verify(&mut registry);
        let service = soap::SoapService::new(soap::BxsaEncoding::default(), Arc::new(registry));
        let (reply, is_fault) = service.handle_bytes(&bytes);
        prop_assert!(is_fault);
        prop_assert!(!reply.is_empty());
    }
}

/// A declared-size attack: a tiny buffer claiming a huge frame must be
/// rejected quickly without allocation.
#[test]
fn bxsa_huge_declared_sizes_rejected() {
    // Document frame prefix + padded VLS claiming ~2^35 bytes.
    let mut bytes = vec![0x01u8];
    bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0x0f]);
    bytes.push(0x01); // child count
    assert!(bxsa::decode(&bytes).is_err());
}

/// Deep nesting must hit the decoder's depth limit, not the stack.
#[test]
fn bxsa_deep_nesting_bounded() {
    let mut e = bxdm::Element::component("x");
    for _ in 0..300 {
        e = bxdm::Element::component("w").with_child(e);
    }
    let bytes = bxsa::encode(&bxdm::Document::with_root(e)).unwrap();
    // Default max_depth is 256 < 301.
    assert!(matches!(
        bxsa::decode(&bytes),
        Err(bxsa::BxsaError::Structure { .. })
    ));
    // With a raised limit it works.
    let opts = bxsa::DecodeOptions { max_depth: 400 };
    assert!(bxsa::decode_with(&bytes, &opts).is_ok());
}
