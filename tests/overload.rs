//! Overload-protection integration tests: admission control, load
//! shedding, the slow-loris deadline, panic accounting, and shutdown
//! behavior under pressure — all over real loopback sockets.
//!
//! Metrics are process-global and tests in one binary run concurrently,
//! so every metric assertion is a *delta* on a (transport, reason/kind)
//! label combination that only the asserting test produces.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bxdm::{AtomicValue, Element};
use soap::{
    BxsaEncoding, FaultCode, ServiceRegistry, SoapEngine, SoapEnvelope, SoapError, TcpBinding,
    TcpSoapServer,
};
use transport::{
    send_request, FramedStream, HttpRequest, HttpResponse, HttpServer, HttpServerConfig,
    OverloadConfig, TcpServer, TcpServerConfig, TransportError,
};

/// Sum of every counter sample matching `name` and all `labels`
/// fragments (label fragments look like `transport="http"`).
fn counter(name: &str, labels: &[&str]) -> u64 {
    obs::global()
        .snapshot()
        .into_iter()
        .filter(|s| s.name == name && labels.iter().all(|l| s.labels.contains(l)))
        .map(|s| match s.value {
            obs::SampleValue::Counter(n) => n,
            _ => 0,
        })
        .sum()
}

/// One keep-alive GET exchange over a raw client socket.
fn http_exchange(stream: &mut TcpStream, path: &str) -> HttpResponse {
    HttpRequest::get(path)
        .write_to_with(stream, true)
        .expect("write request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    HttpResponse::read_from(&mut reader).expect("read response")
}

/// A registry with one `Nap` operation that holds the handler for
/// `nap` before answering — the knob that primes the latency EWMA.
fn nap_registry(nap: Duration) -> Arc<ServiceRegistry> {
    let mut registry = ServiceRegistry::new();
    registry.register("Nap", move |_req: &SoapEnvelope| {
        thread::sleep(nap);
        Ok(SoapEnvelope::with_body(
            Element::component("NapResponse")
                .with_child(Element::leaf("ok", AtomicValue::Bool(true))),
        ))
    });
    Arc::new(registry)
}

fn nap_request() -> SoapEnvelope {
    SoapEnvelope::with_body(Element::component("Nap"))
}

/// A full server in accept-then-reject mode answers the excess
/// connection with the complete contract: `503`, a parseable
/// `Retry-After`, an honest `Connection: close`, and then EOF — never a
/// silent reset, never service.
#[test]
fn full_server_rejects_with_the_complete_503_contract() {
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        HttpServerConfig {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            overload: OverloadConfig {
                max_connections: Some(2),
                reject_when_full: true,
                ..OverloadConfig::default()
            },
            ..HttpServerConfig::default()
        },
        |_req| HttpResponse::ok("text/plain", b"served".to_vec()),
    )
    .unwrap();
    let addr = server.local_addr();
    let rejected_before =
        counter("bx_server_rejected_connections_total", &["transport=\"http\"", "reason=\"conn_cap\""]);

    // Fill the cap; a completed exchange proves each connection was
    // admitted and registered before the next connect.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(http_exchange(&mut s, "/").status, 200);
        held.push(s);
    }

    // The third connection is turned away at accept — the rejection
    // arrives without the client sending a byte.
    let third = TcpStream::connect(addr).unwrap();
    third.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(third.try_clone().unwrap());
    let resp = HttpResponse::read_from(&mut reader).unwrap();
    assert_eq!(resp.status, 503, "rejected connection must see 503");
    let retry = resp.header("Retry-After").expect("Retry-After on rejection");
    assert!(
        retry.trim().parse::<u64>().expect("delta-seconds Retry-After") >= 1,
        "hint must be at least one second, got {retry:?}"
    );
    assert!(
        resp.header("Connection")
            .is_some_and(|c| c.eq_ignore_ascii_case("close")),
        "rejection must announce Connection: close"
    );
    // And nothing after it: the connection ends, it is never served.
    let mut tail = [0u8; 32];
    assert_eq!(reader.read(&mut tail).unwrap(), 0, "expected EOF after the 503");

    assert!(
        counter("bx_server_rejected_connections_total", &["transport=\"http\"", "reason=\"conn_cap\""])
            > rejected_before,
        "the rejection must be counted"
    );

    // The admitted connections were never disturbed.
    for s in held.iter_mut() {
        assert_eq!(http_exchange(s, "/").status, 200);
    }
    drop(held);
    server.shutdown();
}

/// In pause-accept mode (the default) a full server queues arrivals in
/// the kernel backlog instead of rejecting: the waiting connection gets
/// no answer while the cap is held, and is served as soon as a slot
/// frees.
#[test]
fn paused_acceptor_serves_the_queued_connection_when_a_slot_frees() {
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        HttpServerConfig {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            overload: OverloadConfig {
                max_connections: Some(1),
                reject_when_full: false,
                ..OverloadConfig::default()
            },
            ..HttpServerConfig::default()
        },
        |_req| HttpResponse::ok("text/plain", b"served".to_vec()),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut holder = TcpStream::connect(addr).unwrap();
    holder.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(http_exchange(&mut holder, "/").status, 200);

    // The second connection connects (kernel backlog) and sends its
    // request, but gets nothing while the slot is held.
    let mut waiter = TcpStream::connect(addr).unwrap();
    HttpRequest::get("/").write_to_with(&mut waiter, true).unwrap();
    waiter
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    let mut probe = [0u8; 1];
    match waiter.read(&mut probe) {
        Err(e) => assert!(
            matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "waiter should time out unanswered, got {e:?}"
        ),
        Ok(n) => panic!("waiter must not be served while the cap is held (read {n} bytes)"),
    }

    // Free the slot: the waiter is admitted and served.
    drop(holder);
    waiter.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(waiter);
    let resp = HttpResponse::read_from(&mut reader).unwrap();
    assert_eq!(resp.status, 200, "queued connection must be served after release");
    server.shutdown();
}

/// A shed HTTP request is answered with the full 503 contract *before*
/// the handler runs — the whole point of shedding is that saturated
/// servers stop paying for work they turn away.
#[test]
fn http_shed_skips_the_handler_and_carries_the_contract() {
    let handler_ran = Arc::new(AtomicBool::new(false));
    let witness = Arc::clone(&handler_ran);
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        HttpServerConfig {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            overload: OverloadConfig {
                // Zero admitted requests: everything sheds, deterministically.
                max_inflight: Some(0),
                retry_after_hint: Duration::from_secs(2),
                ..OverloadConfig::default()
            },
            ..HttpServerConfig::default()
        },
        move |_req| {
            witness.store(true, Ordering::SeqCst);
            HttpResponse::ok("text/plain", b"served".to_vec())
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let shed_before = counter("bx_server_shed_total", &["transport=\"http\"", "reason=\"inflight\""]);

    let resp = send_request(&addr, &HttpRequest::get("/")).unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("Retry-After").map(str::trim), Some("2"));
    assert!(
        resp.header("Connection")
            .is_some_and(|c| c.eq_ignore_ascii_case("close")),
        "shed response must announce Connection: close"
    );
    assert!(
        !handler_ran.load(Ordering::SeqCst),
        "shedding must happen before the handler"
    );
    assert!(
        counter("bx_server_shed_total", &["transport=\"http\"", "reason=\"inflight\""]) > shed_before,
        "the shed must be counted"
    );
    server.shutdown();
}

/// A shed framed-TCP request is answered in-band: a `Server` fault whose
/// detail carries a machine-readable `retry-after-ms` hint, on a
/// connection that stays open for the retry.
#[test]
fn framed_shed_answers_a_retryable_fault_and_keeps_the_connection() {
    let server = TcpSoapServer::bind_with(
        "127.0.0.1:0",
        TcpServerConfig {
            overload: OverloadConfig {
                max_inflight: Some(0),
                ..OverloadConfig::default()
            },
            ..TcpServerConfig::default()
        },
        BxsaEncoding::default(),
        nap_registry(Duration::ZERO),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let shed_before = counter("bx_server_shed_total", &["transport=\"tcp\"", "reason=\"inflight\""]);

    let mut engine = SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&addr));
    // Two calls: the second proves the connection survived the first shed.
    for round in 0..2 {
        match engine.call_with(nap_request(), &soap::CallOptions::new()) {
            Err(SoapError::Fault(f)) => {
                assert_eq!(f.code, FaultCode::Server, "round {round}");
                let hint = f.retry_after().expect("shed fault must carry retry-after-ms");
                assert!(hint >= Duration::from_millis(1), "round {round}: hint {hint:?}");
            }
            other => panic!("round {round}: expected a shed fault, got {other:?}"),
        }
    }
    assert!(
        counter("bx_server_shed_total", &["transport=\"tcp\"", "reason=\"inflight\""])
            >= shed_before + 2,
        "both sheds must be counted"
    );
    server.shutdown();
}

/// The whole-message deadline cuts off a slow-loris peer that trickles
/// bytes fast enough to dodge the progress-based read timeout, and a
/// well-behaved client is served immediately afterwards.
#[test]
fn slow_loris_trickle_is_cut_by_the_message_deadline() {
    let server = transport::ServerBuilder::bind("127.0.0.1:0")
        // Generous progress budget: each trickled byte re-arms it, so
        // on its own it would never fire. Only the message deadline
        // can end this connection early.
        .read_timeout(Duration::from_secs(5))
        .overload(OverloadConfig {
            message_deadline: Some(Duration::from_millis(200)),
            ..OverloadConfig::default()
        })
        .serve_framed(|| (), |(), req: &[u8], out: &mut Vec<u8>, _ctl| {
            out.extend_from_slice(req)
        })
        .unwrap();
    let addr = server.local_addr().to_string();
    let slow_before =
        counter("bx_server_connection_errors_total", &["transport=\"tcp\"", "kind=\"slow_peer\""]);

    let mut loris = TcpStream::connect(&addr).unwrap();
    loris.set_nodelay(true).unwrap();
    // Declare a 100-byte frame, then trickle one byte every 20 ms: the
    // full message would take 2 s, ten times the deadline.
    loris.write_all(&100u32.to_be_bytes()).unwrap();
    loris.set_nonblocking(true).unwrap();
    let started = Instant::now();
    let mut cut = false;
    while started.elapsed() < Duration::from_secs(3) {
        thread::sleep(Duration::from_millis(20));
        let mut probe = [0u8; 8];
        match loris.read(&mut probe) {
            Ok(0) => {
                cut = true;
                break;
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(_) => {
                cut = true;
                break;
            }
        }
        // Ignore write errors; the read side is the close detector.
        let _ = loris.write(b"x");
    }
    assert!(cut, "the trickling connection must be cut by the deadline");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "cut must come from the 200 ms deadline, not a later timeout ({:?})",
        started.elapsed()
    );
    assert!(
        counter("bx_server_connection_errors_total", &["transport=\"tcp\"", "kind=\"slow_peer\""])
            > slow_before,
        "the kill must be counted as slow_peer"
    );

    // The defense is surgical: a prompt client is served right away.
    let mut good = FramedStream::connect(&addr).unwrap();
    good.send(b"hello").unwrap();
    assert_eq!(good.recv().unwrap(), b"hello");
    server.shutdown();
}

/// Satellite: caught handler panics are counted per transport, the
/// worker survives, and the server keeps serving.
#[test]
fn handler_panics_are_counted_per_transport() {
    // HTTP: the panicking request is answered 500 and the counter moves.
    let http = HttpServer::bind("127.0.0.1:0", |req: &HttpRequest| {
        if req.path == "/boom" {
            panic!("handler exploded");
        }
        HttpResponse::ok("text/plain", b"fine".to_vec())
    })
    .unwrap();
    let http_addr = http.local_addr().to_string();
    let http_before = counter("bx_server_handler_panics_total", &["transport=\"http\""]);
    let resp = send_request(&http_addr, &HttpRequest::get("/boom")).unwrap();
    assert_eq!(resp.status, 500, "a panicked handler still owes an answer");
    assert!(
        counter("bx_server_handler_panics_total", &["transport=\"http\""]) > http_before,
        "http panic must be counted"
    );
    let resp = send_request(&http_addr, &HttpRequest::get("/")).unwrap();
    assert_eq!(resp.status, 200, "the server must survive the panic");
    http.shutdown();

    // Framed TCP: the connection dies, the counter moves, the next
    // connection is served.
    let tcp = TcpServer::bind("127.0.0.1:0", |req: Vec<u8>| {
        if req == b"boom" {
            panic!("handler exploded");
        }
        req
    })
    .unwrap();
    let tcp_addr = tcp.local_addr().to_string();
    let tcp_before = counter("bx_server_handler_panics_total", &["transport=\"tcp\""]);
    let mut victim = FramedStream::connect(&tcp_addr).unwrap();
    victim.send(b"boom").unwrap();
    assert!(victim.recv().is_err(), "panicked exchange must not produce a frame");
    assert!(
        counter("bx_server_handler_panics_total", &["transport=\"tcp\""]) > tcp_before,
        "tcp panic must be counted"
    );
    let mut fresh = FramedStream::connect(&tcp_addr).unwrap();
    fresh.send(b"ok").unwrap();
    assert_eq!(fresh.recv().unwrap(), b"ok");
    tcp.shutdown();
}

/// Satellite: with overload protection armed, a drain-on-shutdown still
/// answers the request that was admitted and in flight when shutdown
/// began — and drops nothing.
#[test]
fn shutdown_answers_admitted_inflight_work_under_overload_config() {
    let server = transport::ServerBuilder::bind("127.0.0.1:0")
        .overload(OverloadConfig {
            max_connections: Some(8),
            reject_when_full: true,
            message_deadline: Some(Duration::from_secs(5)),
            ..OverloadConfig::default()
        })
        .serve_framed(|| (), |(), req: &[u8], out: &mut Vec<u8>, _ctl| {
            thread::sleep(Duration::from_millis(300));
            out.extend_from_slice(req);
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let drops_before =
        counter("bx_server_connection_errors_total", &["transport=\"tcp\"", "kind=\"shutdown_drop\""]);

    let inflight = thread::spawn(move || {
        let mut c = FramedStream::connect(&addr).unwrap();
        c.send(b"answer me").unwrap();
        c.recv()
    });
    // Let the request reach the handler, then shut down around it.
    thread::sleep(Duration::from_millis(100));
    server.shutdown_within(Duration::from_secs(2));

    let reply = inflight.join().expect("client thread");
    assert_eq!(reply.unwrap(), b"answer me", "in-flight work must be answered");
    assert_eq!(
        counter("bx_server_connection_errors_total", &["transport=\"tcp\"", "kind=\"shutdown_drop\""]),
        drops_before,
        "a drain that finished must drop nothing"
    );
}

/// Satellite: a server that is actively shedding shuts down cleanly —
/// the shed connection was *answered* (fault with a retry hint), so it
/// is closed as idle, never double-counted as a shutdown drop.
#[test]
fn sheds_are_not_double_counted_as_shutdown_drops() {
    let server = TcpSoapServer::bind_with(
        "127.0.0.1:0",
        TcpServerConfig {
            overload: OverloadConfig {
                shed_queue_delay: Some(Duration::from_millis(50)),
                ..OverloadConfig::default()
            },
            ..TcpServerConfig::default()
        },
        BxsaEncoding::default(),
        nap_registry(Duration::from_millis(250)),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let shed_before = counter("bx_server_shed_total", &["transport=\"tcp\"", "reason=\"queue_delay\""]);
    let drops_before =
        counter("bx_server_connection_errors_total", &["transport=\"tcp\"", "kind=\"shutdown_drop\""]);

    let mut engine = SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&addr));
    // First call is admitted (no latency history yet) and takes 250 ms,
    // which primes the EWMA far past the 50 ms queue-delay budget…
    let first = engine.call_with(nap_request(), &soap::CallOptions::new()).expect("first call admitted");
    assert!(first.body_element().is_some());
    // …so the second call on the same connection is shed with a hint.
    match engine.call_with(nap_request(), &soap::CallOptions::new()) {
        Err(SoapError::Fault(f)) => assert!(f.retry_after().is_some()),
        other => panic!("expected a queue-delay shed, got {other:?}"),
    }
    assert!(
        counter("bx_server_shed_total", &["transport=\"tcp\"", "reason=\"queue_delay\""]) > shed_before,
        "the shed must be counted under queue_delay"
    );

    // Shutdown with the shed connection still open: it was answered, so
    // it drains as idle — no shutdown_drop.
    server.shutdown_within(Duration::from_secs(1));
    assert_eq!(
        counter("bx_server_connection_errors_total", &["transport=\"tcp\"", "kind=\"shutdown_drop\""]),
        drops_before,
        "an answered shed must not also be counted as a drop"
    );
}

/// Satellite: a live server sending `Retry-After` as an RFC 7231
/// HTTP-date reaches the client as a delay — far-future dates clamped
/// to a day, past dates as "retry now".
#[test]
fn http_date_retry_after_reaches_the_client_clamped() {
    let server = HttpServer::bind("127.0.0.1:0", |req: &HttpRequest| {
        let resp = HttpResponse {
            status: 503,
            reason: "Service Unavailable".into(),
            headers: Vec::new(),
            body: b"busy".to_vec(),
        };
        match req.path.as_str() {
            // Far future: must clamp to the one-day cap.
            "/future" => resp.with_header("Retry-After", "Fri, 01 Jan 2038 00:00:00 GMT"),
            // Past: retry immediately.
            _ => resp.with_header("Retry-After", "Sun, 06 Nov 1994 08:49:37 GMT"),
        }
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let hint = |path: &str| -> Option<u64> {
        let resp = send_request(&addr, &HttpRequest::get(path)).unwrap();
        assert_eq!(resp.status, 503);
        match resp.status_error() {
            TransportError::HttpStatus { retry_after_secs, .. } => retry_after_secs,
            other => panic!("expected HttpStatus, got {other:?}"),
        }
    };
    assert_eq!(hint("/future"), Some(86_400), "far-future date clamps to a day");
    assert_eq!(hint("/past"), Some(0), "past date means retry now");
    server.shutdown();
}
