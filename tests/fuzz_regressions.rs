//! Minimized regression tests for bugs surfaced by the fuzz targets
//! (`fuzz/fuzz_targets/`) and the hostile-length audit. Each test embeds
//! its reproducer inline; the same bytes are checked into the seed
//! corpora under `fuzz/corpus/` so every future fuzz run replays them.
//!
//! The inputs here must *error cleanly* — the bugs they pin were
//! panics, integer overflows, or silent wrong-value acceptance.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bxdm::{AtomicValue, Element};
use soap::{
    BxsaEncoding, EncodingPolicy, HttpSoapServer, ServiceRegistry, SoapEnvelope,
    SoapResult, SoapService, StreamOp,
};
use transport::http::chunked::{ChunkDecoder, ChunkEvent};

/// Drive every BXSA reader over one hostile input; none may panic, and
/// all must reject it.
fn all_bxsa_readers_reject(bytes: &[u8], label: &str) {
    assert!(bxsa::decode(bytes).is_err(), "tree decode accepted {label}");
    assert!(
        bxsa::FieldReader::new(bytes).is_err() || {
            let mut fr = bxsa::FieldReader::new(bytes).unwrap();
            loop {
                match fr.open() {
                    Ok(head) => {
                        if fr.skip(&head).is_err() {
                            break true;
                        }
                    }
                    Err(_) => break true,
                }
            }
        },
        "field reader accepted {label}"
    );
    let errored = match bxsa::PullReader::new(bytes) {
        Err(_) => true,
        Ok(mut r) => loop {
            match r.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => break false,
                Err(_) => break true,
            }
        },
    };
    assert!(errored, "pull reader accepted {label}");
}

#[test]
fn hostile_frame_sizes_cannot_overflow_the_pull_reader() {
    // Found by fuzz_bxsa (overflow-checks build): a document frame
    // declaring a u64::MAX size made `start + size` overflow usize in
    // `PullReader::new`, panicking in debug and wrapping — so passing
    // the `<= buf.len()` bound with a tiny bogus end — in release.
    let mut huge = vec![0x01]; // Little-endian Document prefix
    xbs::vls::write_vls(&mut huge, u64::MAX);
    all_bxsa_readers_reject(&huge, "u64::MAX document size");

    // The wrap-to-small shape: start + size ≡ 1 (mod 2^64), which
    // pre-fix produced doc_end *before* the read position.
    let mut wrap = vec![0x01];
    let start = 1 + xbs::vls::vls_len(u64::MAX - 10) as u64;
    xbs::vls::write_vls(&mut wrap, u64::MAX - start);
    all_bxsa_readers_reject(&wrap, "wrapping document size");

    // Same overflow one level down: a valid document header whose child
    // frame declares the hostile size.
    let doc = bxsa::encode(&bxdm::Document::with_root(Element::component("r"))).unwrap();
    let mut inner = doc[..doc.len() - 1].to_vec(); // keep header, drop root
    inner.push(0x02); // Component prefix
    xbs::vls::write_vls(&mut inner, u64::MAX);
    all_bxsa_readers_reject(&inner, "u64::MAX child frame size");
}

#[test]
fn standalone_element_decode_demands_end_of_input() {
    // Found by fuzz_bxsa via the checksum acceptance suite:
    // `decode_element` routed through the embedded-frame entry point and
    // never looked past the frame — trailing garbage was silently
    // ignored, and worse, a trailing checksum frame was never verified,
    // so a bit-flipped checksummed part decoded to wrong values.
    let part = Element::component("p:part")
        .with_namespace("p", "urn:p")
        .with_child(Element::leaf("p:n", AtomicValue::I64(3)));
    let opts = bxsa::EncodeOptions::default();
    let bytes = bxsa::encode_element(&part, &opts).unwrap();

    let mut trailing = bytes.clone();
    trailing.extend_from_slice(b"garbage");
    assert!(
        bxsa::decode_element(&trailing, &bxsa::DecodeOptions::default()).is_err(),
        "trailing bytes after a standalone element must be rejected"
    );

    let checked = bxsa::encode_element(
        &part,
        &bxsa::EncodeOptions {
            checksum: true,
            ..Default::default()
        },
    )
    .unwrap();
    // Flip one bit of the namespace prefix: structurally valid, only the
    // checksum can catch it. Pre-fix this decoded successfully to an
    // element with the wrong prefix.
    let mut corrupt = checked.clone();
    corrupt[5] ^= 0x01;
    assert!(
        bxsa::decode_element(&corrupt, &bxsa::DecodeOptions::default()).is_err(),
        "bit flip under a checksum must never decode to wrong values"
    );
}

#[test]
fn impossible_civil_dates_are_rejected() {
    // Found by the fuzz_http date oracle: Feb 29 on non-leap years and
    // day 31 of 30-day months were silently normalized into the next
    // month by the days-from-civil arithmetic instead of rejected.
    use transport::http::date::parse_http_date;
    assert!(parse_http_date("Mon, 29 Feb 1900 12:00:00 GMT").is_none());
    assert!(parse_http_date("Wed, 29 Feb 2023 12:00:00 GMT").is_none());
    assert!(parse_http_date("Thu, 31 Sep 2020 12:00:00 GMT").is_none());
    assert!(parse_http_date("Fri, 31 Apr 2020 12:00:00 GMT").is_none());
    assert!(parse_http_date("Sat, 30 Feb 2020 12:00:00 GMT").is_none());
    assert!(parse_http_date("Tue, 31 Nov 2020 12:00:00 GMT").is_none());
    // The real leap days still parse — including the every-400-years one.
    assert!(parse_http_date("Tue, 29 Feb 2000 12:00:00 GMT").is_some());
    assert!(parse_http_date("Thu, 29 Feb 2024 12:00:00 GMT").is_some());
    // RFC 850 and asctime route through the same validation.
    assert!(parse_http_date("Wednesday, 29-Feb-23 12:00:00 GMT").is_none());
    assert!(parse_http_date("Wed Feb 29 12:00:00 2023").is_none());
}

/// Run a full hostile chunked body through the incremental decoder;
/// returns Ok(payload) or the first error.
fn decode_chunked(body: &[u8]) -> Result<Vec<u8>, transport::TransportError> {
    let mut dec = ChunkDecoder::new();
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (n, event) = dec.advance(rest)?;
        rest = &rest[n..];
        match event {
            ChunkEvent::Data { payload, .. } => out.extend_from_slice(payload),
            ChunkEvent::End => break,
            ChunkEvent::NeedMore => {
                if n == 0 {
                    break;
                }
            }
        }
    }
    Ok(out)
}

#[test]
fn chunk_size_lines_reject_signs_and_overflow() {
    // Hostile-length audit: the chunk-size grammar is hex digits only.
    // A sign prefix must be rejected (a naive `isize` parse would accept
    // "-5" and underflow), and more than 15 hex digits must be rejected
    // outright rather than wrapping the accumulated usize.
    for bad in [
        &b"+5\r\nhello\r\n0\r\n\r\n"[..],
        b"-5\r\nhello\r\n0\r\n\r\n",
        b" 5\r\nhello\r\n0\r\n\r\n",
        b"0x10\r\n0123456789abcdef\r\n0\r\n\r\n",
        b"ffffffffffffffff\r\n\r\n0\r\n\r\n",   // 16 digits: would wrap
        b"10000000000000000\r\n\r\n0\r\n\r\n", // 17 digits
        b"\r\nhello\r\n0\r\n\r\n",             // empty size
        b";ext\r\nhello\r\n0\r\n\r\n",         // extension with no size
    ] {
        assert!(
            decode_chunked(bad).is_err(),
            "hostile size line accepted: {:?}",
            String::from_utf8_lossy(&bad[..bad.len().min(20)])
        );
    }
    // 15 digits is within grammar; the *value* is then bounded by the
    // caller's cap, not the parser.
    let mut r = &b"fffffffffffffff\r\n"[..];
    let mut out = Vec::new();
    let err = transport::http::chunked::read_chunked_body_into(&mut r, &mut out, 1 << 20);
    assert!(err.is_err(), "a 2^60-byte declaration must not be honored");
}

/// Minimal streaming op so the server accepts chunked POSTs.
#[derive(Default)]
struct NullOp;

impl StreamOp for NullOp {
    fn start(&mut self, _manifest: &SoapEnvelope) -> SoapResult<()> {
        Ok(())
    }
    fn on_part(&mut self, _part: &Element) -> SoapResult<()> {
        Ok(())
    }
    fn finish(&mut self) -> SoapResult<SoapEnvelope> {
        Ok(SoapEnvelope::with_body(Element::component("Done")))
    }
    fn next_part(&mut self, _slot: &mut Element) -> SoapResult<bool> {
        Ok(false)
    }
}

#[test]
fn hostile_chunk_size_lines_over_a_live_socket() {
    // The same audit shapes, end to end over raw sockets: the server
    // must answer with an error (or hang up) and the listener must stay
    // serviceable — never a hang, a panic, or a 200.
    let mut service = SoapService::new(BxsaEncoding::default(), Arc::new(ServiceRegistry::new()));
    service.register_streaming("Null", || Box::<NullOp>::default());
    let server = HttpSoapServer::bind_service_with(
        "127.0.0.1:0",
        "/soap",
        transport::HttpServerConfig::default(),
        service,
    )
    .unwrap();
    const HEAD: &str = "POST /soap HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-bxsa\r\nTransfer-Encoding: chunked\r\n\r\n";

    for hostile in [
        &b"+5\r\nhello\r\n0\r\n\r\n"[..],
        b"-5\r\nhello\r\n0\r\n\r\n",
        b"ffffffffffffffff\r\n",
        b"10000000000000000\r\n",
    ] {
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        sock.write_all(HEAD.as_bytes()).unwrap();
        let _ = sock.write_all(hostile); // server may already have hung up
        let mut response = Vec::new();
        let mut scratch = [0u8; 4096];
        loop {
            match std::io::Read::read(&mut sock, &mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => response.extend_from_slice(&scratch[..n]),
            }
        }
        let status = String::from_utf8_lossy(&response);
        let status = status.lines().next().unwrap_or_default();
        assert!(
            !status.contains("200"),
            "hostile chunk size line {:?} got {status:?}",
            String::from_utf8_lossy(&hostile[..hostile.len().min(8)])
        );
    }

    // Listener unharmed: a clean exchange still works.
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(2000))).unwrap();
    let envelope = SoapEnvelope::with_body(Element::component("Null"));
    let manifest = BxsaEncoding::default()
        .encode(&envelope.to_document())
        .unwrap();
    sock.write_all(HEAD.as_bytes()).unwrap();
    let mut chunk = format!("{:x}\r\n", manifest.len()).into_bytes();
    chunk.extend_from_slice(&manifest);
    chunk.extend_from_slice(b"\r\n0\r\n\r\n");
    sock.write_all(&chunk).unwrap();
    let mut response = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        match std::io::Read::read(&mut sock, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                response.extend_from_slice(&scratch[..n]);
                if response.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
    let status = String::from_utf8_lossy(&response);
    assert!(
        status.lines().next().unwrap_or_default().contains("200"),
        "listener damaged by hostile size lines: {:?}",
        status.lines().next()
    );
    server.shutdown();
}

#[test]
fn assembler_window_bound_survives_hostile_declared_lengths() {
    // Hostile-length audit for the streaming assembler: a declared
    // frame size above the window must be refused before any buffering,
    // and an over-window *checksum-adjacent* declaration must not widen
    // the window either.
    let mut asm = bxsa::FrameAssembler::new(256);
    let mut wire = vec![0x02]; // Component prefix
    xbs::vls::write_vls(&mut wire, 1 << 20);
    asm.feed(&wire);
    let err = asm.next_frame().unwrap_err();
    assert!(err.to_string().contains("window"), "{err}");

    // u64::MAX declared size: must be a clean typed error, not a wrap.
    let mut asm = bxsa::FrameAssembler::new(256);
    let mut wire = vec![0x02];
    xbs::vls::write_vls(&mut wire, u64::MAX);
    asm.feed(&wire);
    assert!(asm.next_frame().is_err());
}

#[test]
fn leap_second_and_boundary_times_parse() {
    // Companion to the rejection cases: the RFC 7231 time grammar allows
    // second == 60 (leap second) and the day boundaries.
    use transport::http::date::parse_http_date;
    assert!(parse_http_date("Sat, 30 Jun 2012 23:59:60 GMT").is_some());
    // Pre-epoch dates are rejected by design (nothing to retry-after),
    // so the epoch itself is the low boundary.
    assert!(parse_http_date("Thu, 01 Jan 1970 00:00:00 GMT").is_some());
    assert!(parse_http_date("Wed, 31 Dec 1969 23:59:59 GMT").is_none());
    assert!(parse_http_date("Fri, 31 Dec 9999 23:59:59 GMT").is_some());
}

#[test]
fn bxsa_rejects_content_with_no_xml_serialization() {
    use bxdm::{Document, Node};

    // fuzz_transcode reproducer (minimized): a decodable document whose
    // namespace prefix is "\n". It used to decode cleanly and then make
    // `bxsa_to_xml` emit malformed XML that failed to re-parse.
    let crasher: &[u8] = include_bytes!("../fuzz/corpus/fuzz_transcode/prefix_not_a_name.bin");
    assert!(
        bxsa::decode(crasher).is_err(),
        "a non-name namespace prefix must not decode"
    );

    // The same grammar holes driven through the encoder: a tree with no
    // XML 1.0 serialization must fail to encode rather than mint bytes
    // the transcode path chokes on.
    let mut comment_doc = Element::component("r");
    comment_doc.children_mut().push(Node::Comment("a--b".into()));
    let mut pi_xml = Element::component("r");
    pi_xml.children_mut().push(Node::Pi {
        target: "xml".into(),
        data: String::new(),
    });
    let mut pi_close = Element::component("r");
    pi_close.children_mut().push(Node::Pi {
        target: "t".into(),
        data: "x?>y".into(),
    });
    let mut pi_ws = Element::component("r");
    pi_ws.children_mut().push(Node::Pi {
        target: "t".into(),
        data: " x".into(),
    });
    let cases = [
        (Element::component("1bad"), "numeric-leading local name"),
        (
            Element::component("r").with_namespace("a\nb", "urn:x"),
            "namespace prefix with whitespace",
        ),
        (comment_doc, "'--' inside a comment"),
        (pi_xml, "reserved PI target 'xml'"),
        (pi_close, "'?>' inside PI data"),
        (pi_ws, "PI data with leading whitespace"),
    ];
    for (root, label) in cases {
        assert!(
            bxsa::encode(&Document::with_root(root)).is_err(),
            "encoder accepted {label}"
        );
    }

    // Decoder side of the comment rule, via a byte patch (the encoder
    // now refuses to produce such frames itself).
    let mut root = Element::component("r");
    root.children_mut().push(Node::Comment("xx".into()));
    let mut bytes = bxsa::encode(&Document::with_root(root)).unwrap();
    let pos = bytes
        .windows(2)
        .rposition(|w| w == b"xx")
        .expect("comment text must be on the wire");
    bytes[pos..pos + 2].copy_from_slice(b"--");
    assert!(
        bxsa::decode(&bytes).is_err(),
        "decoder accepted a '--' comment"
    );

    // And the well-formed cousins still round-trip to a transcode
    // fixpoint: comments with single dashes, PIs with data.
    let mut root = Element::component("r");
    root.children_mut().push(Node::Comment(" note - ok ".into()));
    root.children_mut().push(Node::Pi {
        target: "style".into(),
        data: "href='x' type='text/css'".into(),
    });
    let bytes = bxsa::encode(&Document::with_root(root)).unwrap();
    let xml = bxsa::bxsa_to_xml(&bytes).unwrap();
    let canonical = bxsa::xml_to_bxsa(&xml).unwrap();
    assert_eq!(bxsa::bxsa_to_xml(&canonical).unwrap(), xml);
    assert_eq!(bxsa::xml_to_bxsa(&bxsa::bxsa_to_xml(&canonical).unwrap()).unwrap(), canonical);
}
