//! Integration of the *separated* scheme's real substrates: netCDF files
//! on a real filesystem, staged through the real HTTP file server, driven
//! by a SOAP control message — the architecture of paper §6's "Separated
//! solution", end to end.

use std::sync::Arc;

use bxdm::{AtomicValue, Element};
use netcdf3::{NcFile, NcValue};
use soap::{
    ServiceRegistry, SoapEngine, SoapEnvelope, SoapError, TcpBinding, TcpSoapServer, XmlEncoding,
};
use transport::FileServer;

fn staging_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bxsoap_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Register the URL-based verification operation (server pulls the file).
fn url_registry() -> Arc<ServiceRegistry> {
    Arc::new(ServiceRegistry::new().with_operation("VerifyByUrl", |req| {
        let url = req
            .body_element()
            .expect("dispatch checked")
            .child_value("url")
            .and_then(AtomicValue::as_str)
            .ok_or_else(|| SoapError::Protocol("missing url".into()))?;
        let (addr, path) = url
            .strip_prefix("http://")
            .and_then(|r| r.split_once('/'))
            .ok_or_else(|| SoapError::Protocol("bad url".into()))?;
        let bytes = transport::http_get(addr, &format!("/{path}"))?;
        let nc = NcFile::from_bytes(&bytes)
            .map_err(|e| SoapError::Protocol(format!("bad file: {e}")))?;
        let index = nc.var("index").and_then(|v| v.data.as_int()).unwrap_or(&[]);
        let values = nc
            .var("values")
            .and_then(|v| v.data.as_double())
            .unwrap_or(&[]);
        Ok(SoapEnvelope::with_body(
            Element::component("VerifyResponse")
                .with_child(Element::leaf(
                    "ok",
                    AtomicValue::Bool(bxsoap::verify_dataset(index, values)),
                ))
                .with_child(Element::leaf(
                    "count",
                    AtomicValue::I64(values.len() as i64),
                )),
        ))
    }))
}

#[test]
fn full_separated_flow_over_real_sockets_and_disk() {
    let staging = staging_dir("flow");
    let files = FileServer::bind("127.0.0.1:0", &staging).unwrap();
    let service = TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), url_registry())
        .unwrap();

    // Client side: generate, save as netCDF, publish, send control msg.
    let (index, values) = bxsoap::lead_dataset(5_000, 21);
    let mut nc = NcFile::new();
    let d = nc.add_dim("model", index.len());
    nc.add_var("index", &[d], NcValue::Int(index.clone())).unwrap();
    nc.add_var("values", &[d], NcValue::Double(values.clone()))
        .unwrap();
    nc.write_file(&staging.join("run1.nc")).unwrap();

    let mut engine = SoapEngine::new(
        XmlEncoding::default(),
        TcpBinding::new(&service.local_addr().to_string()),
    );
    let control = SoapEnvelope::with_body(Element::component("VerifyByUrl").with_child(
        Element::leaf(
            "url",
            AtomicValue::Str(format!("http://{}/run1.nc", files.local_addr())),
        ),
    ));
    let resp = engine.call_with(control, &soap::CallOptions::new()).unwrap();
    let body = resp.body_element().unwrap();
    assert_eq!(
        body.child_value("ok").and_then(AtomicValue::as_bool),
        Some(true)
    );
    assert_eq!(
        body.child_value("count").and_then(AtomicValue::as_i64),
        Some(5_000)
    );

    service.shutdown();
    files.shutdown();
    std::fs::remove_dir_all(&staging).unwrap();
}

#[test]
fn missing_file_surfaces_as_fault() {
    let staging = staging_dir("missing");
    let files = FileServer::bind("127.0.0.1:0", &staging).unwrap();
    let service = TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), url_registry())
        .unwrap();
    let mut engine = SoapEngine::new(
        XmlEncoding::default(),
        TcpBinding::new(&service.local_addr().to_string()),
    );
    let control = SoapEnvelope::with_body(Element::component("VerifyByUrl").with_child(
        Element::leaf(
            "url",
            AtomicValue::Str(format!("http://{}/nope.nc", files.local_addr())),
        ),
    ));
    match engine.call_with(control, &soap::CallOptions::new()) {
        Err(SoapError::Fault(f)) => assert!(f.string.contains("404")),
        other => panic!("expected fault, got {other:?}"),
    }
    service.shutdown();
    files.shutdown();
    std::fs::remove_dir_all(&staging).unwrap();
}

#[test]
fn corrupt_file_surfaces_as_fault() {
    let staging = staging_dir("corrupt");
    std::fs::write(staging.join("bad.nc"), b"HDF5 pretender").unwrap();
    let files = FileServer::bind("127.0.0.1:0", &staging).unwrap();
    let service = TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), url_registry())
        .unwrap();
    let mut engine = SoapEngine::new(
        XmlEncoding::default(),
        TcpBinding::new(&service.local_addr().to_string()),
    );
    let control = SoapEnvelope::with_body(Element::component("VerifyByUrl").with_child(
        Element::leaf(
            "url",
            AtomicValue::Str(format!("http://{}/bad.nc", files.local_addr())),
        ),
    ));
    match engine.call_with(control, &soap::CallOptions::new()) {
        Err(SoapError::Fault(f)) => assert!(f.string.contains("bad file")),
        other => panic!("expected fault, got {other:?}"),
    }
    service.shutdown();
    files.shutdown();
    std::fs::remove_dir_all(&staging).unwrap();
}
