//! Chunked transfer-encoding edge cases against a live streaming
//! server, driven over raw sockets: hostile or degenerate framing must
//! produce clean faults or clean disconnects — never a hang, a crash,
//! or a poisoned listener.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bxdm::{ArrayValue, AtomicValue, Element};
use soap::{
    BxsaEncoding, CallOptions, EncodingPolicy, HttpBinding, HttpSoapServer, ServiceRegistry, SoapEngine,
    SoapEnvelope, SoapError, SoapResult, SoapService, StreamEncoding, StreamOp,
};

/// Minimal streaming op: sum every f64 batch, answer with the total.
#[derive(Default)]
struct SumOp {
    sum: f64,
}

impl StreamOp for SumOp {
    fn start(&mut self, _manifest: &SoapEnvelope) -> SoapResult<()> {
        Ok(())
    }

    fn on_part(&mut self, part: &Element) -> SoapResult<()> {
        let xs = part
            .as_f64_array()
            .ok_or_else(|| SoapError::Protocol("batch is not an f64 array".into()))?;
        self.sum += xs.iter().sum::<f64>();
        Ok(())
    }

    fn finish(&mut self) -> SoapResult<SoapEnvelope> {
        Ok(SoapEnvelope::with_body(
            Element::component("SumResponse")
                .with_child(Element::leaf("sum", AtomicValue::F64(self.sum))),
        ))
    }

    fn next_part(&mut self, _slot: &mut Element) -> SoapResult<bool> {
        Ok(false)
    }
}

fn serve() -> HttpSoapServer {
    let mut service = SoapService::new(BxsaEncoding::default(), Arc::new(ServiceRegistry::new()));
    service.register_streaming("Sum", || Box::<SumOp>::default());
    HttpSoapServer::bind_service_with(
        "127.0.0.1:0",
        "/soap",
        transport::HttpServerConfig::default(),
        service,
    )
    .unwrap()
}

fn connect(server: &HttpSoapServer) -> TcpStream {
    let sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    sock
}

const CHUNKED_HEAD: &str = "POST /soap HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-bxsa\r\nTransfer-Encoding: chunked\r\n\r\n";

fn manifest_chunk() -> Vec<u8> {
    let envelope = SoapEnvelope::with_body(Element::component("Sum"));
    let bytes = BxsaEncoding::default()
        .encode(&envelope.to_document())
        .unwrap();
    chunk(&bytes)
}

fn batch_chunk(values: &[f64]) -> Vec<u8> {
    let part = Element::array("batch", ArrayValue::F64(values.to_vec()));
    let mut bytes = Vec::new();
    BxsaEncoding::default()
        .encode_part_into(&part, &mut bytes)
        .unwrap();
    chunk(&bytes)
}

fn chunk(payload: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// Read whatever the server answers until the read timeout trips (the
/// connection may legitimately stay open for keep-alive).
fn read_available(sock: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        match sock.read(&mut scratch) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(_) => break, // timeout: server is done talking for now
        }
    }
    buf
}

fn status_line(response: &[u8]) -> String {
    let text = String::from_utf8_lossy(response);
    text.lines().next().unwrap_or_default().to_owned()
}

#[test]
fn terminator_only_request_faults_and_keeps_the_connection() {
    let server = serve();
    let mut sock = connect(&server);

    // A chunked body that is *only* the zero-length terminator: no
    // manifest ever arrives, so the answer is an in-band SOAP fault.
    sock.write_all(CHUNKED_HEAD.as_bytes()).unwrap();
    sock.write_all(b"0\r\n\r\n").unwrap();
    let first = read_available(&mut sock);
    assert_eq!(status_line(&first), "HTTP/1.1 500 Internal Server Error");

    // The connection survived the degenerate exchange: a well-formed
    // streamed call on the very same socket succeeds.
    sock.write_all(CHUNKED_HEAD.as_bytes()).unwrap();
    sock.write_all(&manifest_chunk()).unwrap();
    sock.write_all(&batch_chunk(&[1.0, 2.0, 3.0])).unwrap();
    sock.write_all(b"0\r\n\r\n").unwrap();
    let second = read_available(&mut sock);
    assert_eq!(status_line(&second), "HTTP/1.1 200 OK");

    server.shutdown();
}

#[test]
fn trailers_after_the_terminator_are_discarded() {
    let server = serve();
    let mut sock = connect(&server);

    sock.write_all(CHUNKED_HEAD.as_bytes()).unwrap();
    sock.write_all(&manifest_chunk()).unwrap();
    sock.write_all(&batch_chunk(&[2.0, 2.0])).unwrap();
    // Terminator followed by trailer fields (RFC 9112 §7.1.2) — legal,
    // and this stack ignores them.
    sock.write_all(b"0\r\nX-Checksum: abc123\r\nX-Parts: 1\r\n\r\n")
        .unwrap();
    let response = read_available(&mut sock);
    assert_eq!(status_line(&response), "HTTP/1.1 200 OK");

    server.shutdown();
}

#[test]
fn oversized_chunk_size_line_is_rejected_not_buffered() {
    let server = serve();
    let mut sock = connect(&server);

    sock.write_all(CHUNKED_HEAD.as_bytes()).unwrap();
    // A size line longer than any sane hex length: the decoder must
    // refuse it early instead of buffering in hope of a CRLF.
    let garbage = vec![b'f'; 4096];
    sock.write_all(&garbage).unwrap();
    let response = read_available(&mut sock);
    // Either an error status or a summary hangup is acceptable; what is
    // not acceptable is a 200 or a hang (the read timeout above would
    // have tripped and left `response` empty while the socket stayed
    // open — distinguishable because a follow-up write still succeeds).
    if !response.is_empty() {
        assert!(
            !status_line(&response).contains("200"),
            "oversized size line must not succeed: {}",
            status_line(&response)
        );
    }

    // The listener itself is unharmed.
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        HttpBinding::new(&server.local_addr().to_string(), "/soap"),
    );
    let mut reply = engine
        .call_streaming(
            SoapEnvelope::with_body(Element::component("Sum")),
            &CallOptions::new(),
            |tx| tx.send(&Element::array("batch", ArrayValue::F64(vec![1.0]))),
        )
        .unwrap();
    assert!(reply.next_part().unwrap().is_none());
    server.shutdown();
}

#[test]
fn premature_eof_mid_chunk_is_contained() {
    let server = serve();
    let mut sock = connect(&server);

    sock.write_all(CHUNKED_HEAD.as_bytes()).unwrap();
    sock.write_all(&manifest_chunk()).unwrap();
    // Announce a 256-byte chunk, deliver 10 bytes, vanish.
    sock.write_all(b"100\r\nonly-this-").unwrap();
    drop(sock);

    // The half-fed session must be reaped without harming the listener:
    // a fresh, well-formed exchange completes normally.
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        HttpBinding::new(&server.local_addr().to_string(), "/soap"),
    );
    let mut reply = engine
        .call_streaming(
            SoapEnvelope::with_body(Element::component("Sum")),
            &CallOptions::new(),
            |tx| tx.send(&Element::array("batch", ArrayValue::F64(vec![4.0, 5.0]))),
        )
        .unwrap();
    assert!(reply.next_part().unwrap().is_none());
    assert_eq!(
        reply
            .envelope()
            .body_element()
            .unwrap()
            .child_value("sum")
            .and_then(AtomicValue::as_f64),
        Some(9.0)
    );
    server.shutdown();
}

#[test]
fn keep_alive_spans_streamed_and_buffered_exchanges() {
    let server = serve();
    let addr = server.local_addr().to_string();
    let mut conn = transport::HttpConnection::new(&addr);

    // Streamed exchange #1.
    let manifest = BxsaEncoding::default()
        .encode(&SoapEnvelope::with_body(Element::component("Sum")).to_document())
        .unwrap();
    let head = transport::HttpRequest::post("/soap", "application/x-bxsa", Vec::new());
    for _ in 0..2 {
        conn.stream_begin(&head).unwrap();
        conn.stream_send_part(&manifest).unwrap();
        conn.stream_finish_send().unwrap();
        let mut response = transport::HttpResponse::ok("", Vec::new());
        let streamed = conn.stream_read_head(&mut response).unwrap();
        assert!(streamed, "success replies stream");
        let mut part = Vec::new();
        while conn.stream_next_part_into(&mut part, 1 << 20).unwrap() {}
    }
    assert!(
        conn.reuse_count() >= 1,
        "the second streamed exchange must ride the kept socket"
    );

    // A buffered (Content-Length) request on the very same connection.
    let buffered = transport::HttpRequest::post("/soap", "application/x-bxsa", manifest);
    let response = conn.exchange(&buffered).unwrap();
    assert_eq!(response.status, 500, "no buffered ops: in-band fault");
    assert!(conn.reuse_count() >= 2);

    server.shutdown();
}
