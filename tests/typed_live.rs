//! Live-server acceptance for the typed fast path and per-operation
//! service metadata: typed operations served end-to-end over real
//! sockets on both transports, and `ServiceRegistry` defaults observably
//! steering bare calls — preferred encoding at connect time, deadline at
//! dispatch time, retry policy at failure time.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bxdm::Element;
use bxsoap::{VerifyRequest, VerifyResponse};
use soap::{
    AnyEngine, BxsaEncoding, CallOptions, HttpSoapServer, OperationDefaults, ServiceRegistry,
    SoapEngine, SoapEnvelope, SoapService, TcpBinding, TcpSoapServer, WireConfig, WireEncoding,
    WireTransport, XmlEncoding,
};
use transport::{HttpServerConfig, RetryPolicy, TcpServerConfig};

fn verify_dataset() -> VerifyRequest {
    let (index, values) = bxsoap::lead_dataset(512, 7);
    VerifyRequest { index, values }
}

/// Typed operations answer on a live TCP listener, and
/// [`AnyEngine::connect_for_operation`] lets the service's published
/// metadata pick the wire: the caller asks for XML, the registered
/// preference says BXSA, BXSA wins.
#[test]
fn typed_verify_round_trips_over_live_tcp_with_preferred_encoding() {
    let mut registry = ServiceRegistry::new();
    bxsoap::register_verify(&mut registry);
    let registry = registry
        .with_operation_defaults("Verify", bxsoap::verify_operation_defaults());
    let metadata = registry.shared_metadata();

    let mut service = SoapService::new(BxsaEncoding::default(), Arc::new(registry));
    bxsoap::register_verify_typed(&mut service);
    let server =
        TcpSoapServer::bind_service_with("127.0.0.1:0", TcpServerConfig::default(), service)
            .unwrap();
    let addr = server.local_addr().to_string();

    // Ask for XML; the operation's registered preference (BXSA) wins.
    let asked = WireConfig {
        encoding: WireEncoding::Xml,
        transport: WireTransport::Tcp,
    };
    let mut engine = AnyEngine::connect_for_operation(metadata, "Verify", asked, &addr, "");
    assert_eq!(engine.config().encoding, WireEncoding::Bxsa);
    assert_eq!(engine.config().transport, WireTransport::Tcp);

    let request = verify_dataset();
    let response: VerifyResponse = engine.call_typed(&request, &CallOptions::new()).unwrap();
    assert!(response.ok);
    assert_eq!(response.count, request.values.len() as i64);

    // Poisoned data still takes the typed path — an application answer,
    // not a fault.
    let mut bad = verify_dataset();
    bad.values[100] = f64::NAN;
    let response: VerifyResponse = engine.call_typed(&bad, &CallOptions::new()).unwrap();
    assert!(!response.ok);

    server.shutdown();
}

/// The same typed service over HTTP with textual XML: the fast path is
/// encoding- and transport-agnostic.
#[test]
fn typed_verify_round_trips_over_live_http_xml() {
    let mut registry = ServiceRegistry::new();
    bxsoap::register_verify(&mut registry);
    let mut service = SoapService::new(XmlEncoding::default(), Arc::new(registry));
    bxsoap::register_verify_typed(&mut service);
    let server = HttpSoapServer::bind_service_with(
        "127.0.0.1:0",
        "/soap",
        HttpServerConfig::default(),
        service,
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let config = WireConfig {
        encoding: WireEncoding::Xml,
        transport: WireTransport::Http,
    };
    let mut engine = AnyEngine::connect(config, &addr, "/soap");
    let request = verify_dataset();
    let response: VerifyResponse = engine.call_typed(&request, &CallOptions::new()).unwrap();
    assert!(response.ok);
    assert_eq!(response.count, 512);

    // The generic tree pipeline shares the wire format, so a tree client
    // talking to the typed-registered server gets the same answer.
    let envelope = bxsoap::verify_request_envelope(&request.index, &request.values);
    let reply = engine.call_with(envelope, &soap::CallOptions::new()).unwrap();
    assert_eq!(reply.operation(), Some("VerifyResponse"));

    server.shutdown();
}

/// A registered deadline default binds bare calls: the zero-budget
/// default expires before the handler can run, while an explicit
/// per-call deadline overrides the default and succeeds.
#[test]
fn registered_deadline_default_gates_bare_calls() {
    let hits = Arc::new(AtomicU32::new(0));
    let handler_hits = Arc::clone(&hits);
    let registry = ServiceRegistry::new()
        .with_operation("Expired", move |_req| {
            handler_hits.fetch_add(1, Ordering::SeqCst);
            Ok(SoapEnvelope::with_body(Element::component(
                "ExpiredResponse",
            )))
        })
        .with_operation_defaults(
            "Expired",
            OperationDefaults::new().with_deadline(Duration::ZERO),
        );
    let metadata = registry.shared_metadata();

    let server =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), Arc::new(registry)).unwrap();
    let addr = server.local_addr().to_string();
    let config = WireConfig {
        encoding: WireEncoding::Bxsa,
        transport: WireTransport::Tcp,
    };
    let mut engine = AnyEngine::connect_for_operation(metadata, "Expired", config, &addr, "");

    // Bare call: the registered zero deadline applies and expires before
    // anything reaches the server.
    let request = SoapEnvelope::with_body(Element::component("Expired"));
    let err = engine.call_with(request.clone(), &soap::CallOptions::new()).unwrap_err();
    // The expired budget surfaces as a transport deadline error
    // ("timed out ... (budget 0.000s)").
    let msg = err.to_string().to_lowercase();
    assert!(
        msg.contains("deadline") || msg.contains("budget"),
        "expected a deadline error, got: {err}"
    );
    assert_eq!(hits.load(Ordering::SeqCst), 0, "handler must not have run");

    // Explicit options beat the default: the same call with a real
    // budget lands.
    let reply = engine
        .call_with(request, &CallOptions::new().within(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(reply.operation(), Some("ExpiredResponse"));
    assert_eq!(hits.load(Ordering::SeqCst), 1);

    server.shutdown();
}

/// A registered retry default binds bare calls: against a refusing
/// endpoint, a metadata-carrying engine retries the registered number of
/// times while a plain engine gives up after one attempt.
#[test]
fn registered_retry_default_drives_bare_call_attempts() {
    let registry = ServiceRegistry::new().with_operation_defaults(
        "Flaky",
        OperationDefaults::new().with_retry(RetryPolicy::no_delay(3)),
    );
    let metadata = registry.shared_metadata();

    // A port with nothing behind it: bind a listener, learn the address,
    // drop it. Every connect is then refused, which is retry-safe.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };

    let request = SoapEnvelope::with_body(Element::component("Flaky"));
    let mut with_defaults =
        SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&addr)).with_metadata(metadata);
    assert!(with_defaults.call_with(request.clone(), &soap::CallOptions::new()).is_err());
    assert_eq!(
        with_defaults.last_call_attempts(),
        3,
        "registered retry policy must drive the bare call's attempts"
    );

    let mut plain = SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&addr));
    assert!(plain.call_with(request, &soap::CallOptions::new()).is_err());
    assert_eq!(plain.last_call_attempts(), 1, "no policy, no retries");
}
