//! Transcodability across the whole stack (paper §4.2), property-tested.

use bxdm::{ArrayValue, AtomicValue, Document, Element, Node};
use proptest::prelude::*;
use soap::SoapEnvelope;

/// Documents restricted to what survives a *textual* round trip: typed
/// leaves and arrays, components, comments — the transcodable subset.
fn arb_transcodable_element(depth: u32) -> impl Strategy<Value = Element> {
    let leaf = prop_oneof![
        (arb_name(), arb_atomic()).prop_map(|(n, v)| Element::leaf(n.as_str(), v)),
        (arb_name(), arb_array()).prop_map(|(n, v)| Element::array(n.as_str(), v)),
        arb_name().prop_map(|n| Element::component(n.as_str())),
    ];
    leaf.prop_recursive(depth, 16, 4, |inner| {
        (
            arb_name(),
            proptest::collection::vec(
                prop_oneof![
                    3 => inner.prop_map(Node::Element),
                    1 => "[a-zA-Z][a-zA-Z ]{0,12}".prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(name, children)| {
                let mut e = Element::component(name.as_str());
                for c in children {
                    // Textual XML cannot represent *adjacent* text nodes
                    // (they re-parse as one), so merge them here to keep
                    // the generated trees inside the transcodable set.
                    if let (Node::Text(t), Some(Node::Text(prev))) =
                        (&c, e.children_mut().last_mut())
                    {
                        prev.push_str(t);
                        continue;
                    }
                    e.push_node(c);
                }
                e
            })
    })
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}"
}

fn arb_atomic() -> impl Strategy<Value = AtomicValue> {
    prop_oneof![
        any::<i32>().prop_map(AtomicValue::I32),
        any::<i64>().prop_map(AtomicValue::I64),
        // Finite floats only: NaN breaks Eq-based comparison, and the
        // XSD "NaN" spelling canonicalizes payload bits (documented).
        proptest::num::f64::NORMAL.prop_map(AtomicValue::F64),
        any::<bool>().prop_map(AtomicValue::Bool),
        "[a-zA-Z0-9 .,-]{0,20}".prop_map(AtomicValue::Str),
    ]
}

fn arb_array() -> impl Strategy<Value = ArrayValue> {
    prop_oneof![
        proptest::collection::vec(any::<i32>(), 0..32).prop_map(ArrayValue::I32),
        proptest::collection::vec(proptest::num::f64::NORMAL, 0..32).prop_map(ArrayValue::F64),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(ArrayValue::U8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BXSA → XML → BXSA reproduces the original bytes.
    #[test]
    fn binary_fixpoint(root in arb_transcodable_element(3)) {
        let doc = Document::with_root(root);
        prop_assert!(bxsa::transcode::verify_binary_fixpoint(&doc).unwrap());
    }

    /// XML → BXSA → XML reproduces the canonical text.
    #[test]
    fn textual_fixpoint(root in arb_transcodable_element(3)) {
        let doc = Document::with_root(root);
        let Ok(xml) = xmltext::to_string(&doc);
        let bin = bxsa::xml_to_bxsa(&xml).unwrap();
        let xml2 = bxsa::bxsa_to_xml(&bin).unwrap();
        prop_assert_eq!(xml2, xml);
    }

    /// SOAP envelopes survive both encodings identically.
    #[test]
    fn envelope_equivalence(root in arb_transcodable_element(2)) {
        let envelope = SoapEnvelope::with_body(root);
        let doc = envelope.to_document();
        let via_bin = SoapEnvelope::from_document(
            &bxsa::decode(&bxsa::encode(&doc).unwrap()).unwrap()
        ).unwrap();
        let Ok(xml) = xmltext::to_string(&doc);
        let via_text = SoapEnvelope::from_document(&xmltext::parse(&xml).unwrap()).unwrap();
        prop_assert_eq!(&via_bin, &envelope);
        prop_assert_eq!(&via_text, &envelope);
    }

    /// XPath answers are encoding-independent (Figure 3's claim).
    #[test]
    fn xpath_encoding_agnostic(root in arb_transcodable_element(3)) {
        let doc = Document::with_root(root);
        let bin = bxsa::encode(&doc).unwrap();
        let from_bin = bxsa::decode(&bin).unwrap();
        let Ok(xml) = xmltext::to_string(&doc);
        let from_text = xmltext::parse(&xml).unwrap();
        for path in ["*", "//*", "*[1]"] {
            let a = wsstack::xpath(doc.root().unwrap(), path).unwrap().strings();
            let b = wsstack::xpath(from_bin.root().unwrap(), path).unwrap().strings();
            let c = wsstack::xpath(from_text.root().unwrap(), path).unwrap().strings();
            prop_assert_eq!(&a, &b, "bxsa mismatch on {}", path);
            prop_assert_eq!(&a, &c, "xml mismatch on {}", path);
        }
    }
}

#[test]
fn lead_workload_transcodes() {
    let (index, values) = bxsoap::lead_dataset(1_000, 13);
    let doc = bxsoap::verify_request_envelope(&index, &values).to_document();
    assert!(bxsa::transcode::verify_binary_fixpoint(&doc).unwrap());
}
