//! HTTP/1.1 keep-alive conformance and connection-reuse acceptance tests.
//!
//! The evented server's contract, end to end over real sockets: pipelined
//! requests on one connection, `Connection: close` from either side,
//! conservative handling of malformed/duplicate `Connection` headers,
//! half-closed peers, per-connection handler state that survives (and
//! stays private to) a reused connection, and the client cache's
//! single-resend rule for stale kept sockets.

use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

use transport::{
    HttpConnection, HttpRequest, HttpResponse, HttpServer, Timeouts,
};

fn echo_path_server() -> HttpServer {
    HttpServer::bind("127.0.0.1:0", |req| {
        HttpResponse::ok("text/plain", req.path.as_bytes().to_vec())
    })
    .unwrap()
}

fn raw_get(path: &str, connection: Option<&str>) -> Vec<u8> {
    let mut req = format!("GET {path} HTTP/1.1\r\nHost: t\r\n");
    if let Some(c) = connection {
        req.push_str(&format!("Connection: {c}\r\n"));
    }
    req.push_str("\r\n");
    req.into_bytes()
}

#[test]
fn pipelined_requests_share_one_connection() {
    let server = echo_path_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Three requests written back-to-back before reading anything: the
    // server must answer all three, in order, on the same socket.
    let mut batch = Vec::new();
    for i in 0..3 {
        batch.extend_from_slice(&raw_get(&format!("/pipe/{i}"), None));
    }
    stream.write_all(&batch).unwrap();

    let mut reader = BufReader::new(stream);
    for i in 0..3 {
        let resp = HttpResponse::read_from(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, format!("/pipe/{i}").into_bytes());
        // No Connection header on an HTTP/1.1 request = keep-alive, and
        // the response must say so explicitly.
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }
    server.shutdown();
}

#[test]
fn connection_close_mid_stream_ends_the_connection() {
    let server = echo_path_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    stream.write_all(&raw_get("/a", Some("keep-alive"))).unwrap();
    stream.write_all(&raw_get("/b", Some("close"))).unwrap();

    let mut reader = BufReader::new(stream);
    let first = HttpResponse::read_from(&mut reader).unwrap();
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = HttpResponse::read_from(&mut reader).unwrap();
    assert_eq!(second.body, b"/b");
    assert_eq!(second.header("connection"), Some("close"));
    // And the server actually hangs up: the next read is EOF.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown();
}

#[test]
fn ambiguous_connection_headers_close_conservatively() {
    let server = echo_path_server();
    // Duplicate headers where any token says close → close wins; an
    // unknown connection option → close (never guess reuse).
    for connection in ["keep-alive, close", "frobnicate"] {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&raw_get("/x", Some(connection))).unwrap();
        let mut reader = BufReader::new(stream);
        let resp = HttpResponse::read_from(&mut reader).unwrap();
        assert_eq!(
            resp.header("connection"),
            Some("close"),
            "Connection: {connection} must not promise reuse"
        );
        let mut rest = Vec::new();
        assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);
    }
    // Duplicate Connection *headers*, close in the second one.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(b"GET /dup HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let resp = HttpResponse::read_from(&mut reader).unwrap();
    assert_eq!(resp.header("connection"), Some("close"));
    server.shutdown();
}

#[test]
fn half_closed_peer_still_gets_its_response() {
    let server = echo_path_server();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    (&stream).write_all(&raw_get("/half", None)).unwrap();
    // Client half-closes: no more requests will come, but the response
    // must still flow back before the server closes its side.
    stream.shutdown(Shutdown::Write).unwrap();
    let mut reader = BufReader::new(stream);
    let resp = HttpResponse::read_from(&mut reader).unwrap();
    assert_eq!(resp.body, b"/half");
    server.shutdown();
}

#[test]
fn per_connection_state_is_private_across_reused_connections() {
    // Scoped framed-TCP handlers get per-connection state from `init`;
    // with connections now multiplexed onto shared event-loop workers,
    // two live connections must still see disjoint state (the old
    // thread-per-connection guarantee).
    let server = transport::ServerBuilder::bind("127.0.0.1:0")
        .serve_framed(
            || 0u64, // per-connection message counter
            |count: &mut u64, _req: &[u8], out: &mut Vec<u8>, _ctl| {
                *count += 1;
                out.extend_from_slice(&count.to_be_bytes());
            },
        )
        .unwrap();
    let addr = server.local_addr().to_string();

    let mut a = transport::FramedStream::connect(&addr).unwrap();
    let mut b = transport::FramedStream::connect(&addr).unwrap();
    // Interleave messages: each connection's counter advances
    // independently no matter how the worker interleaves them.
    for round in 1..=3u64 {
        a.send(b"ping").unwrap();
        b.send(b"ping").unwrap();
        let ra = a.recv().unwrap();
        assert_eq!(ra, round.to_be_bytes(), "conn A round {round}");
    }
    let rb = b.recv().unwrap();
    assert_eq!(rb, 1u64.to_be_bytes(), "conn B sees its own count, not A's");
    drop(a);
    drop(b);
    server.shutdown();
}

#[test]
fn client_connection_reuses_and_counts() {
    let server = echo_path_server();
    let mut conn = HttpConnection::new(&server.local_addr().to_string())
        .with_timeouts(Timeouts {
            connect: Some(Duration::from_secs(5)),
            read: Some(Duration::from_secs(5)),
            write: Some(Duration::from_secs(5)),
        });
    assert!(!conn.is_connected());
    for i in 0..4 {
        let resp = conn.exchange(&HttpRequest::get(&format!("/c/{i}"))).unwrap();
        assert_eq!(resp.body, format!("/c/{i}").into_bytes());
        assert!(conn.is_connected(), "keep-alive response keeps the socket");
    }
    assert_eq!(conn.reuse_count(), 3);
    server.shutdown();
}

#[test]
fn stale_kept_socket_is_resent_once() {
    // A hand-rolled server that answers one request per accepted
    // connection while *promising* keep-alive, then hangs up — the
    // worst-case lying peer for a connection cache.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let served = std::thread::spawn(move || {
        let mut count = 0u32;
        for stream in listener.incoming().take(2) {
            let stream = stream.unwrap();
            let mut reader = BufReader::new(stream);
            let req = HttpRequest::read_from(&mut reader).unwrap();
            count += 1;
            let body = req.path.into_bytes();
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: t\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                body.len()
            );
            let mut stream = reader.get_ref();
            stream.write_all(head.as_bytes()).unwrap();
            stream.write_all(&body).unwrap();
            // Connection dropped here despite the keep-alive promise.
        }
        count
    });

    let mut conn = HttpConnection::new(&addr);
    assert_eq!(conn.exchange(&HttpRequest::get("/one")).unwrap().body, b"/one");
    assert!(conn.is_connected(), "client kept the socket as promised");
    // The kept socket is already dead; the exchange must transparently
    // reconnect and resend exactly once.
    assert_eq!(conn.exchange(&HttpRequest::get("/two")).unwrap().body, b"/two");
    assert_eq!(served.join().unwrap(), 2);
    assert_eq!(conn.reuse_count(), 0, "both exchanges rode fresh sockets");
}

#[test]
fn pooled_scratch_does_not_leak_request_bytes_between_keep_alive_requests() {
    // Regression: one connection's reused request-body buffer must never
    // show a later request stale bytes from an earlier (longer) one.
    let server = HttpServer::bind("127.0.0.1:0", |req| {
        HttpResponse::ok("application/octet-stream", req.body.clone())
    })
    .unwrap();
    let mut conn = HttpConnection::new(&server.local_addr().to_string());
    let long = vec![0xAA; 4096];
    assert_eq!(
        conn.exchange(&HttpRequest::post("/e", "b", long.clone())).unwrap().body,
        long
    );
    // A much shorter body on the same connection: any stale tail from the
    // 4 KiB request would change the echoed length/content.
    let short = b"tiny".to_vec();
    assert_eq!(
        conn.exchange(&HttpRequest::post("/e", "b", short.clone())).unwrap().body,
        short
    );
    assert_eq!(conn.reuse_count(), 1);
    server.shutdown();
}
