//! Cross-crate integration: the full stack over real loopback sockets.

use std::sync::Arc;

use bxdm::{AtomicValue, Element};
use soap::{
    BxsaEncoding, HttpBinding, HttpSoapServer, Intermediary, ServiceRegistry, SoapEngine,
    SoapEnvelope, SoapError, TcpBinding, TcpSoapServer, XmlEncoding,
};

fn verify_registry() -> Arc<ServiceRegistry> {
    let mut registry = ServiceRegistry::new();
    bxsoap::register_verify(&mut registry);
    Arc::new(registry)
}

fn assert_ok_response(resp: &SoapEnvelope, count: usize) {
    let body = resp.body_element().expect("body element");
    assert_eq!(
        body.child_value("ok").and_then(AtomicValue::as_bool),
        Some(true)
    );
    assert_eq!(
        body.child_value("count").and_then(AtomicValue::as_i64),
        Some(count as i64)
    );
}

#[test]
fn all_four_policy_combinations_serve_the_lead_workload() {
    let registry = verify_registry();
    let (index, values) = bxsoap::lead_dataset(2_000, 9);
    let request = bxsoap::verify_request_envelope(&index, &values);

    // BXSA over TCP.
    let s = TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry.clone()).unwrap();
    let mut e = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&s.local_addr().to_string()),
    );
    assert_ok_response(&e.call_with(request.clone(), &soap::CallOptions::new()).unwrap(), 2_000);
    s.shutdown();

    // XML over TCP.
    let s = TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), registry.clone()).unwrap();
    let mut e = SoapEngine::new(
        XmlEncoding::default(),
        TcpBinding::new(&s.local_addr().to_string()),
    );
    assert_ok_response(&e.call_with(request.clone(), &soap::CallOptions::new()).unwrap(), 2_000);
    s.shutdown();

    // BXSA over HTTP.
    let s = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        BxsaEncoding::default(),
        registry.clone(),
    )
    .unwrap();
    let mut e = SoapEngine::new(
        BxsaEncoding::default(),
        HttpBinding::new(&s.local_addr().to_string(), "/soap"),
    );
    assert_ok_response(&e.call_with(request.clone(), &soap::CallOptions::new()).unwrap(), 2_000);
    s.shutdown();

    // XML over HTTP.
    let s = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        XmlEncoding::default(),
        registry.clone(),
    )
    .unwrap();
    let mut e = SoapEngine::new(
        XmlEncoding::default(),
        HttpBinding::new(&s.local_addr().to_string(), "/soap"),
    );
    assert_ok_response(&e.call_with(request, &soap::CallOptions::new()).unwrap(), 2_000);
    s.shutdown();
}

#[test]
fn concurrent_clients_share_one_server() {
    let registry = verify_registry();
    let server =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();
    let addr = server.local_addr().to_string();

    crossbeam::thread::scope(|s| {
        for seed in 0..6u64 {
            let addr = addr.clone();
            s.spawn(move |_| {
                let (index, values) = bxsoap::lead_dataset(500 + seed as usize * 100, seed);
                let mut engine =
                    SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&addr));
                for _ in 0..5 {
                    let resp = engine
                        .call_with(bxsoap::verify_request_envelope(&index, &values), &soap::CallOptions::new())
                        .unwrap();
                    assert_ok_response(&resp, index.len());
                }
            });
        }
    })
    .unwrap();
    server.shutdown();
}

#[test]
fn two_hop_relay_chain_with_mixed_encodings() {
    // client (BXSA/TCP) -> relay1 (XML/TCP) -> relay2 (BXSA/TCP) -> server
    let registry = verify_registry();
    let server =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();
    let relay2 = Intermediary::bind_tcp(
        "127.0.0.1:0",
        XmlEncoding::default(),
        BxsaEncoding::default(),
        TcpBinding::new(&server.local_addr().to_string()),
    )
    .unwrap();
    let relay1 = Intermediary::bind_tcp(
        "127.0.0.1:0",
        BxsaEncoding::default(),
        XmlEncoding::default(),
        TcpBinding::new(&relay2.local_addr().to_string()),
    )
    .unwrap();

    let (index, values) = bxsoap::lead_dataset(800, 4);
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&relay1.local_addr().to_string()),
    );
    let resp = engine
        .call_with(bxsoap::verify_request_envelope(&index, &values), &soap::CallOptions::new())
        .unwrap();
    assert_ok_response(&resp, 800);

    relay1.shutdown();
    relay2.shutdown();
    server.shutdown();
}

#[test]
fn corrupted_payload_produces_fault_not_hang() {
    let registry = verify_registry();
    let server =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();
    // Speak raw framed TCP and push garbage.
    let mut framed =
        transport::FramedStream::connect(&server.local_addr().to_string()).unwrap();
    framed.send(b"these are not BXSA frames").unwrap();
    let reply = framed.recv().unwrap();
    // The reply is a BXSA-encoded fault envelope.
    let doc = bxsa::decode(&reply).unwrap();
    let envelope = SoapEnvelope::from_document(&doc).unwrap();
    assert!(envelope.is_fault());
    server.shutdown();
}

#[test]
fn mismatched_data_is_reported_not_faulted() {
    // A dataset that fails verification is a *successful* exchange with
    // ok=false — faults are for protocol failures only.
    let registry = verify_registry();
    let server =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&server.local_addr().to_string()),
    );
    let (index, mut values) = bxsoap::lead_dataset(100, 2);
    values[50] = f64::INFINITY;
    let resp = engine
        .call_with(bxsoap::verify_request_envelope(&index, &values), &soap::CallOptions::new())
        .unwrap();
    let body = resp.body_element().unwrap();
    assert_eq!(
        body.child_value("ok").and_then(AtomicValue::as_bool),
        Some(false)
    );
    server.shutdown();
}

#[test]
fn missing_arrays_fault_with_protocol_message() {
    let registry = verify_registry();
    let server =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        TcpBinding::new(&server.local_addr().to_string()),
    );
    let bad = SoapEnvelope::with_body(Element::component("Verify"));
    match engine.call_with(bad, &soap::CallOptions::new()) {
        Err(SoapError::Fault(f)) => assert!(f.string.contains("index")),
        other => panic!("expected fault, got {other:?}"),
    }
    server.shutdown();
}
