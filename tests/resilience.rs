//! Resilience torture tests: seeded corpus mutation against the decoders
//! and both live server paths, plus retry-policy acceptance.
//!
//! The corpus is derived from golden LEAD `Verify` envelopes (several
//! model sizes, both encodings); each message is then truncated and/or
//! corrupted byte-wise under a seeded RNG and driven through the same
//! code paths a hostile network would hit. The invariant everywhere is
//! *zero panics*: every outcome is either a successful decode (some
//! mutations are benign) or a structured error / SOAP fault.
//!
//! Knobs (see EXPERIMENTS.md):
//! * `RESILIENCE_SEED` — override the corpus/fault seed (default below).
//! * `RESILIENCE_MUTATIONS` — mutations per golden message (default 80).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bxsoap::{lead_dataset, register_verify, verify_request_envelope};
use rand::{rngs::StdRng, Rng, SeedableRng};
use soap::{
    BxsaEncoding, EncodingPolicy, FaultingBinding, HttpBinding, HttpSoapServer, SoapEngine,
    SoapEnvelope, SoapError, TcpBinding, TcpSoapServer, XmlEncoding,
};
use transport::faulty::{FaultInjector, FaultProfile};
use transport::{FramedStream, RetryPolicy, TcpServerConfig};

const DEFAULT_SEED: u64 = 0x5eed_0b5a_11ce_0001;

fn seed() -> u64 {
    std::env::var("RESILIENCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn mutations_per_golden() -> usize {
    std::env::var("RESILIENCE_MUTATIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(80)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Wire {
    Bxsa,
    Xml,
}

/// Golden messages: the LEAD Verify request at several model sizes, in
/// both encodings.
fn golden_corpus() -> Vec<(Wire, Vec<u8>)> {
    let mut corpus = Vec::new();
    for size in [1usize, 10, 100, 1000] {
        let (index, values) = lead_dataset(size, seed());
        let doc = verify_request_envelope(&index, &values).to_document();
        corpus.push((Wire::Bxsa, BxsaEncoding::default().encode(&doc).unwrap()));
        corpus.push((Wire::Xml, XmlEncoding::default().encode(&doc).unwrap()));
    }
    corpus
}

/// Mutate one golden message: truncate, corrupt 1–4 bytes, or both.
fn mutate(rng: &mut StdRng, golden: &[u8]) -> Vec<u8> {
    let mut msg = golden.to_vec();
    let kind = rng.random_range(0..3u32);
    if kind != 1 && !msg.is_empty() {
        msg.truncate(rng.random_range(0..msg.len()));
    }
    if kind != 0 && !msg.is_empty() {
        for _ in 0..rng.random_range(1..5u32) {
            let at = rng.random_range(0..msg.len());
            msg[at] ^= rng.random_range(1u16..256) as u8;
        }
    }
    msg
}

/// Drive one (possibly mutated) message through the matching decoder and,
/// when decoding succeeds, on through envelope extraction — the full
/// server-side parse path. Returns whether the message was accepted.
fn decode_one(wire: Wire, msg: &[u8]) -> bool {
    let doc = match wire {
        Wire::Bxsa => match bxsa::decode(msg) {
            Ok(doc) => doc,
            Err(_) => return false, // structured rejection: the point
        },
        Wire::Xml => {
            let Ok(text) = std::str::from_utf8(msg) else {
                return false;
            };
            match xmltext::parse(text) {
                Ok(doc) => doc,
                Err(_) => return false,
            }
        }
    };
    SoapEnvelope::from_document(&doc).is_ok()
}

#[test]
fn decoders_survive_mutated_corpus() {
    let corpus = golden_corpus();
    let mut rng = StdRng::seed_from_u64(seed() ^ 0xDEC0DE);
    let mut driven = 0usize;
    let mut rejected = 0usize;
    for (wire, golden) in &corpus {
        // The unmutated golden must decode — the corpus is real.
        assert!(decode_one(*wire, golden), "golden message must decode");
        // Every prefix truncation of the small messages, plus seeded
        // random mutations of everything.
        if golden.len() <= 256 {
            for cut in 0..golden.len() {
                if !decode_one(*wire, &golden[..cut]) {
                    rejected += 1;
                }
                driven += 1;
            }
        }
        for _ in 0..mutations_per_golden() {
            let msg = mutate(&mut rng, golden);
            if !decode_one(*wire, &msg) {
                rejected += 1;
            }
            driven += 1;
        }
        // Cross-feeding: bytes of one encoding into the other decoder.
        let other = if *wire == Wire::Bxsa { Wire::Xml } else { Wire::Bxsa };
        if !decode_one(other, golden) {
            rejected += 1;
        }
        driven += 1;
    }
    assert!(driven >= 500, "corpus too small: {driven} messages");
    // Mutation overwhelmingly produces invalid messages; if most were
    // accepted the decoders are not actually validating.
    assert!(
        rejected * 2 > driven,
        "only {rejected}/{driven} mutants rejected"
    );
}

#[test]
fn live_servers_survive_mutated_corpus() {
    let mut registry = soap::ServiceRegistry::new();
    register_verify(&mut registry);
    let registry = Arc::new(registry);

    let tcp = TcpSoapServer::bind_with(
        "127.0.0.1:0",
        TcpServerConfig {
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(2)),
            ..TcpServerConfig::default()
        },
        BxsaEncoding::default(),
        Arc::clone(&registry),
    )
    .unwrap();
    let http = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        XmlEncoding::default(),
        Arc::clone(&registry),
    )
    .unwrap();
    let tcp_addr = tcp.local_addr().to_string();
    let http_addr = http.local_addr().to_string();

    let corpus = golden_corpus();
    let mut rng = StdRng::seed_from_u64(seed() ^ 0x5E4E4);
    for (wire, golden) in &corpus {
        for _ in 0..8 {
            let msg = mutate(&mut rng, golden);
            match wire {
                Wire::Bxsa => {
                    // Well-framed garbage: the service must answer every
                    // message with *something* (a fault envelope counts).
                    let mut client = FramedStream::connect(&tcp_addr).unwrap();
                    client.send(&msg).unwrap();
                    let reply = client.recv().expect("server must answer garbage");
                    assert!(!reply.is_empty());
                }
                Wire::Xml => {
                    let resp = transport::http_post(&http_addr, "/soap", "text/xml", msg)
                        .expect("server must answer garbage");
                    assert!(resp.status == 200 || resp.status == 500, "{}", resp.status);
                }
            }
        }
    }

    // Raw frame-level abuse on the TCP path: half-written frames and
    // oversize declarations, straight onto the socket.
    use std::io::Write;
    for declared in [64u32, 4096, u32::MAX] {
        let mut raw = std::net::TcpStream::connect(&tcp_addr).unwrap();
        let _ = raw.write_all(&declared.to_be_bytes());
        let _ = raw.write_all(&[0xAA; 16]);
        drop(raw);
    }

    // After all of that, both listeners still serve a clean request.
    let (index, values) = lead_dataset(50, seed());
    let request = verify_request_envelope(&index, &values);
    let mut tcp_engine = SoapEngine::new(BxsaEncoding::default(), TcpBinding::new(&tcp_addr));
    let resp = tcp_engine.call_with(request.clone(), &soap::CallOptions::new()).expect("TCP listener alive");
    assert_eq!(
        resp.body_element().unwrap().child_value("ok"),
        Some(&bxdm::AtomicValue::Bool(true))
    );
    let mut http_engine = SoapEngine::new(
        XmlEncoding::default(),
        HttpBinding::new(&http_addr, "/soap"),
    );
    let resp = http_engine.call_with(request, &soap::CallOptions::new()).expect("HTTP listener alive");
    assert_eq!(
        resp.body_element().unwrap().child_value("ok"),
        Some(&bxdm::AtomicValue::Bool(true))
    );

    tcp.shutdown();
    http.shutdown();
}

#[test]
fn engine_retries_through_flaky_connects_against_live_server() {
    let mut registry = soap::ServiceRegistry::new();
    register_verify(&mut registry);
    let server = TcpSoapServer::bind(
        "127.0.0.1:0",
        BxsaEncoding::default(),
        Arc::new(registry),
    )
    .unwrap();

    // 30% of connects refused by the injector; established exchanges are
    // clean, so a retrying client must always get through eventually.
    let injector = FaultInjector::new(FaultProfile::flaky_connect(seed(), 0.3)).shared();
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        FaultingBinding::new(
            TcpBinding::new(&server.local_addr().to_string()),
            Arc::clone(&injector),
        ),
    )
    .with_retry(RetryPolicy::no_delay(10));

    let (index, values) = lead_dataset(20, seed());
    let request = verify_request_envelope(&index, &values);
    let mut retried = 0u32;
    for _ in 0..40 {
        let resp = engine.call_with(request.clone(), &soap::CallOptions::new()).expect("retry must recover");
        assert_eq!(
            resp.body_element().unwrap().child_value("ok"),
            Some(&bxdm::AtomicValue::Bool(true))
        );
        if engine.last_call_attempts() > 1 {
            retried += 1;
        }
    }
    assert!(retried > 0, "30% refusals must force some retries");
    assert!(injector.lock().connects_refused() > 0);
    server.shutdown();
}

#[test]
fn non_idempotent_calls_are_never_replayed() {
    // The server counts how many times the operation actually runs —
    // ground truth for "was this request replayed".
    let hits = Arc::new(AtomicU32::new(0));
    let hits_in = Arc::clone(&hits);
    let registry = Arc::new(soap::ServiceRegistry::new().with_operation(
        "Increment",
        move |_req| {
            hits_in.fetch_add(1, Ordering::SeqCst);
            Ok(SoapEnvelope::with_body(bxdm::Element::component(
                "IncrementResponse",
            )))
        },
    ));
    let server =
        TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry).unwrap();

    // Every connect refused: any attempt that *would* reach the server
    // is injector-blocked, so attempt counting is exact.
    let injector = FaultInjector::new(FaultProfile::flaky_connect(seed(), 1.0)).shared();
    let mut engine = SoapEngine::new(
        BxsaEncoding::default(),
        FaultingBinding::new(
            TcpBinding::new(&server.local_addr().to_string()),
            injector,
        ),
    )
    .with_retry(RetryPolicy::no_delay(10));

    let request = SoapEnvelope::with_body(bxdm::Element::component("Increment"));
    let err = engine.call_with(request.clone(), &soap::CallOptions::new().non_idempotent()).unwrap_err();
    assert!(matches!(err, SoapError::Transport(_)));
    assert_eq!(engine.last_call_attempts(), 1, "must not be replayed");

    // The same failure through the idempotent path burns every attempt —
    // the contrast proves the non-idempotent guard is what held it to 1.
    let err = engine.call_with(request, &soap::CallOptions::new()).unwrap_err();
    assert!(matches!(err, SoapError::Transport(_)));
    assert_eq!(engine.last_call_attempts(), 10);
    assert_eq!(hits.load(Ordering::SeqCst), 0);
    server.shutdown();
}

#[test]
fn retry_honors_503_with_retry_after_from_live_http_server() {
    // A server that is "overloaded" for the first two requests, then
    // healthy: the classic rolling-restart shape Retry-After exists for.
    let mut registry = soap::ServiceRegistry::new();
    register_verify(&mut registry);
    let service = soap::SoapService::new(XmlEncoding::default(), Arc::new(registry));
    let busy_until = AtomicU32::new(2);
    let server = transport::HttpServer::bind("127.0.0.1:0", move |req| {
        if busy_until.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return transport::HttpResponse {
                status: 503,
                reason: "Service Unavailable".into(),
                headers: vec![("Retry-After".into(), "0".into())],
                body: b"draining".to_vec(),
            };
        }
        let (body, is_fault) = service.handle_bytes(&req.body);
        if is_fault {
            transport::HttpResponse::server_error(body)
        } else {
            transport::HttpResponse::ok("text/xml", body)
        }
    })
    .unwrap();

    let mut engine = SoapEngine::new(
        XmlEncoding::default(),
        HttpBinding::new(&server.local_addr().to_string(), "/soap"),
    )
    .with_retry(RetryPolicy::no_delay(5));
    let (index, values) = lead_dataset(5, seed());
    let resp = engine
        .call_with(verify_request_envelope(&index, &values), &soap::CallOptions::new())
        .expect("503s must be retried through");
    assert_eq!(
        resp.body_element().unwrap().child_value("ok"),
        Some(&bxdm::AtomicValue::Bool(true))
    );
    assert_eq!(engine.last_call_attempts(), 3, "two 503s then success");
    server.shutdown();
}

#[test]
fn hostile_content_length_is_rejected_with_413_before_allocation() {
    // An attacker-controlled Content-Length must not drive allocation:
    // anything past the frame cap is refused up front with 413, and a
    // within-cap declaration only earns memory as bytes actually arrive.
    let mut registry = soap::ServiceRegistry::new();
    register_verify(&mut registry);
    let server = HttpSoapServer::bind(
        "127.0.0.1:0",
        "/soap",
        XmlEncoding::default(),
        Arc::new(registry),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    use std::io::{BufReader, Write};
    for declared in [
        (transport::MAX_FRAME_LEN as u64) + 1,
        4 << 30, // 4 GiB: a length that must never be eagerly reserved
    ] {
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        raw.write_all(
            format!("POST /soap HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n").as_bytes(),
        )
        .unwrap();
        // No body follows: if the server tried to allocate `declared`
        // bytes up front this read would be preceded by an OOM, and if
        // it tried to read them it would hang instead of answering.
        let resp = transport::HttpResponse::read_from(&mut BufReader::new(raw)).unwrap();
        assert_eq!(resp.status, 413, "declared {declared}");
    }

    // The listener shrugged it off and still serves real traffic.
    let (index, values) = lead_dataset(10, seed());
    let mut engine = SoapEngine::new(
        XmlEncoding::default(),
        HttpBinding::new(&addr, "/soap"),
    );
    let resp = engine
        .call_with(verify_request_envelope(&index, &values), &soap::CallOptions::new())
        .expect("listener alive after hostile headers");
    assert_eq!(
        resp.body_element().unwrap().child_value("ok"),
        Some(&bxdm::AtomicValue::Bool(true))
    );
    server.shutdown();
}

#[test]
fn retry_after_hint_stretches_the_backoff_sleep() {
    // Regression for the backpressure blind spot: the engine used to
    // sleep only its jittered backoff (milliseconds here) and hammer a
    // server that had explicitly said "Retry-After: 1". The second
    // attempt must now wait out the full hinted second.
    let mut registry = soap::ServiceRegistry::new();
    register_verify(&mut registry);
    let service = soap::SoapService::new(XmlEncoding::default(), Arc::new(registry));
    let busy = AtomicU32::new(1);
    let server = transport::HttpServer::bind("127.0.0.1:0", move |req| {
        if busy.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return transport::HttpResponse {
                status: 503,
                reason: "Service Unavailable".into(),
                headers: vec![("Retry-After".into(), "1".into())],
                body: b"throttled".to_vec(),
            };
        }
        let (body, is_fault) = service.handle_bytes(&req.body);
        if is_fault {
            transport::HttpResponse::server_error(body)
        } else {
            transport::HttpResponse::ok("text/xml", body)
        }
    })
    .unwrap();

    // Tiny backoff, roomy cap: any wait ≥ 1 s can only come from the
    // server's hint, not from the jitter schedule.
    let policy = RetryPolicy {
        max_attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_secs(2),
        total_budget: Duration::from_secs(10),
        seed: seed(),
    };
    let mut engine = SoapEngine::new(
        XmlEncoding::default(),
        HttpBinding::new(&server.local_addr().to_string(), "/soap"),
    )
    .with_retry(policy);
    let (index, values) = lead_dataset(5, seed());
    let started = std::time::Instant::now();
    let resp = engine
        .call_with(verify_request_envelope(&index, &values), &soap::CallOptions::new())
        .expect("one 503 then success");
    let elapsed = started.elapsed();
    assert_eq!(
        resp.body_element().unwrap().child_value("ok"),
        Some(&bxdm::AtomicValue::Bool(true))
    );
    assert_eq!(engine.last_call_attempts(), 2, "one 503 then success");
    assert!(
        elapsed >= Duration::from_secs(1),
        "second attempt must wait out the Retry-After hint, waited {elapsed:?}"
    );
    server.shutdown();
}

#[test]
fn live_server_survives_fault_injection_on_its_own_sockets() {
    // The server-side mirror of FaultingBinding: every accepted stream
    // is wrapped in a FaultingTransport, so the server's *own* read and
    // write paths — partial writes included — take injected resets,
    // stalls, truncations, and corruption under a live accept loop.
    let mut registry = soap::ServiceRegistry::new();
    register_verify(&mut registry);
    let injector = FaultInjector::new(FaultProfile {
        drop: 0.08,
        stall: 0.05,
        truncate: 0.12,
        corrupt: 0.12,
        ..FaultProfile::clean(seed())
    })
    .shared();
    let server = TcpSoapServer::bind_faulty(
        "127.0.0.1:0",
        TcpServerConfig {
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
            ..TcpServerConfig::default()
        },
        Arc::clone(&injector),
        BxsaEncoding::default(),
        Arc::new(registry),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let (index, values) = lead_dataset(50, seed());
    let request = verify_request_envelope(&index, &values);
    let mut successes = 0u32;
    let mut failures = 0u32;
    for _ in 0..60 {
        // Fresh connection per call: a fault killed the previous one.
        // The client must carry its own read budget — a server-side
        // truncated write otherwise leaves it parked mid-frame forever.
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&addr)
                .with_timeouts(transport::Timeouts::all(Duration::from_millis(500))),
        );
        match engine.call_with(request.clone(), &soap::CallOptions::new()) {
            // BXSA carries no integrity check, so injected corruption can
            // occasionally survive decoding with flipped *values* (an
            // `ok=false` reply, a garbled flag); that's a broken exchange,
            // not a test failure. Only structural outcomes are asserted:
            // every call ends in a decoded reply or a typed error.
            Ok(resp)
                if resp.body_element().and_then(|b| b.child_value("ok"))
                    == Some(&bxdm::AtomicValue::Bool(true)) =>
            {
                successes += 1;
            }
            Ok(_) => failures += 1,
            // Any structured error is acceptable; panics are not, and a
            // hung test (listener death) would time the suite out.
            Err(_) => failures += 1,
        }
    }
    assert!(successes > 0, "some exchanges must survive the injector");
    assert!(failures > 0, "this profile must break some exchanges");
    assert!(injector.lock().faults_injected() > 0);
    assert!(
        server.connection_errors() > 0,
        "server-side faults must be counted, not fatal"
    );
    server.shutdown();
}

#[test]
fn mid_exchange_drops_are_not_retried() {
    // Connects succeed; the first I/O event on every exchange is a drop.
    // A reset after the request may have left the client is ambiguous —
    // the engine must fail fast rather than risk re-execution.
    let injector = FaultInjector::new(FaultProfile {
        drop: 1.0,
        ..FaultProfile::clean(seed())
    })
    .shared();
    let mut engine = SoapEngine::new(
        XmlEncoding::default(),
        FaultingBinding::new(
            soap::binding::LoopbackBinding::new(|_: &[u8]| vec![]),
            injector,
        ),
    )
    .with_retry(RetryPolicy::no_delay(10));
    let request = SoapEnvelope::with_body(bxdm::Element::component("Anything"));
    let err = engine.call_with(request, &soap::CallOptions::new()).unwrap_err();
    assert!(
        matches!(
            err,
            SoapError::Transport(transport::TransportError::ConnectionClosed)
        ),
        "{err:?}"
    );
    assert_eq!(engine.last_call_attempts(), 1, "resets are not retry-safe");
}
