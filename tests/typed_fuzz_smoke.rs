//! Seed-corpus fuzz smoke for the typed decoders.
//!
//! The typed fast path parses attacker-reachable bytes (every server
//! request, every client reply) without the tree layer's structural
//! recovery, so it gets the same robustness bar: deterministic
//! mutations of valid typed envelopes — bit flips, truncations, chunk
//! duplications — must decode to `Ok` or `Err`, never panic. The CI job
//! additionally greps this test's output for "panicked at", catching
//! panics that a would-be catch_unwind might swallow.

use bxsoap::VerifyRequest;
use soap::{BxsaEncoding, TypedEncoding, TypedScratch, XmlEncoding};

/// SplitMix64: deterministic, seedable, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One deterministic mutation of `seed`: byte flips, truncations, chunk
/// duplications, and chunk deletions, chosen by the round number.
fn mutate(seed: &[u8], rng: &mut Rng, round: usize) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    match round % 4 {
        // Flip 1..4 bytes.
        0 => {
            for _ in 0..=rng.below(3) {
                let at = rng.below(bytes.len());
                bytes[at] ^= (rng.next() as u8) | 1;
            }
        }
        // Truncate to a prefix.
        1 => bytes.truncate(rng.below(bytes.len())),
        // Duplicate a chunk in place.
        2 => {
            let start = rng.below(bytes.len());
            let len = rng.below((bytes.len() - start).min(64)).max(1);
            let chunk = bytes[start..start + len].to_vec();
            bytes.splice(start..start, chunk);
        }
        // Delete a chunk.
        _ => {
            let start = rng.below(bytes.len());
            let len = rng.below((bytes.len() - start).min(64)).max(1);
            bytes.drain(start..start + len);
        }
    }
    bytes
}

fn seeds() -> Vec<(&'static str, Vec<u8>)> {
    let (index, values) = bxsoap::lead_dataset(64, 3);
    let request = VerifyRequest { index, values };
    let empty = VerifyRequest::default();
    let mut scratch = TypedScratch::default();
    let mut seeds = Vec::new();
    for (tag, msg) in [("full", &request), ("empty", &empty)] {
        let mut bxsa = Vec::new();
        BxsaEncoding::default()
            .encode_typed(msg, None, &mut scratch, &mut bxsa)
            .unwrap();
        seeds.push(("bxsa", bxsa.clone()));
        let mut xml = Vec::new();
        XmlEncoding::default()
            .encode_typed(msg, None, &mut scratch, &mut xml)
            .unwrap();
        seeds.push(("xml", xml));
        let _ = tag;
    }
    seeds
}

#[test]
fn mutated_typed_envelopes_never_panic_the_typed_decoders() {
    let bxsa = BxsaEncoding::default();
    let xml = XmlEncoding::default();
    let mut out = VerifyRequest::default();
    let mut rng = Rng(0x5eed_cafe);

    let mut decoded = 0u32;
    let mut rejected = 0u32;
    for (which, seed) in seeds() {
        for round in 0..2_000 {
            let bytes = mutate(&seed, &mut rng, round);
            // Both decoders see every mutation regardless of which
            // encoding produced the seed — cross-encoding bytes are
            // exactly the garbage a confused client sends.
            for enc in 0..2 {
                let result = if enc == 0 {
                    bxsa.decode_typed_request(&bytes, &mut out).map(|_| ())
                } else {
                    xml.decode_typed_request(&bytes, &mut out).map(|_| ())
                };
                match result {
                    Ok(()) => decoded += 1,
                    Err(_) => rejected += 1,
                }
                let reply = if enc == 0 {
                    bxsa.decode_typed_reply(&bytes, &mut out).map(|_| ())
                } else {
                    xml.decode_typed_reply(&bytes, &mut out).map(|_| ())
                };
                let _ = reply;
            }
        }
        let _ = which;
    }
    // Not an assertion about exact counts — just that the corpus
    // exercised both outcomes and nothing above panicked.
    assert!(decoded > 0, "no mutation survived decoding — corpus too hostile");
    assert!(rejected > 0, "every mutation decoded — mutations too gentle");
}
