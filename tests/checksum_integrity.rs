//! Frame-integrity acceptance tests: a bit-flipped checksummed BXSA
//! message must be rejected with a typed error — never decoded to wrong
//! values — on the tree decoder, the pull decoder, the streaming
//! assembler, and a streamed part, while checksum-off output stays
//! byte-identical to what un-checksummed peers expect.

use bxdm::{ArrayValue, AtomicValue, Document, Element};
use bxsa::{
    decode, decode_element, encode, encode_element, encode_with, BxsaError, DecodeOptions,
    EncodeOptions, FrameAssembler, FrameSink, PullReader, DEFAULT_WINDOW,
};
use soap::encoding::BxsaEncoding;
use soap::streaming::{PartScratch, StreamEncoding};
use xbs::ByteOrder;

fn sample_doc() -> Document {
    Document::with_root(
        Element::component("d:run")
            .with_namespace("d", "http://example.org/data")
            .with_child(Element::leaf("d:step", AtomicValue::I64(42)))
            .with_child(Element::leaf("d:name", AtomicValue::Str("field".into())))
            .with_child(Element::array(
                "d:values",
                ArrayValue::F64((0..48).map(f64::from).collect()),
            )),
    )
}

fn sample_part(i: usize) -> Element {
    Element::component("p:part")
        .with_namespace("p", "http://example.org/parts")
        .with_child(Element::leaf("p:seq", AtomicValue::I64(i as i64)))
        .with_child(Element::array(
            "p:data",
            ArrayValue::I32((0..32).map(|j| (i * 100 + j) as i32).collect()),
        ))
}

fn checksum_opts(order: ByteOrder) -> EncodeOptions {
    EncodeOptions {
        byte_order: order,
        checksum: true,
    }
}

#[test]
fn checksum_off_is_byte_identical_interop() {
    let doc = sample_doc();
    let plain = encode(&doc).unwrap();
    let defaulted = encode_with(&doc, &EncodeOptions::default()).unwrap();
    assert_eq!(plain, defaulted, "checksum must be strictly opt-in");
    // A checksummed message is the plain message plus exactly one
    // 7-byte trailing frame — nothing inside the document changes.
    let checked = encode_with(&doc, &checksum_opts(ByteOrder::Little)).unwrap();
    assert_eq!(&checked[..plain.len()], &plain[..]);
    assert_eq!(checked.len(), plain.len() + 7);
}

#[test]
fn checksummed_documents_roundtrip_both_orders() {
    let doc = sample_doc();
    for order in [ByteOrder::Little, ByteOrder::Big] {
        let bytes = encode_with(&doc, &checksum_opts(order)).unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc, "tree decode, {order:?}");

        let mut reader = PullReader::new(&bytes).unwrap();
        let mut events = 0;
        while reader.next_event().unwrap().is_some() {
            events += 1;
        }
        assert!(events > 0, "pull decode must see events, {order:?}");
    }
}

#[test]
fn every_bit_flip_in_a_checksummed_document_is_rejected() {
    let doc = sample_doc();
    let bytes = encode_with(&doc, &checksum_opts(ByteOrder::Little)).unwrap();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            // Tree decoder: must error — a successful decode would be
            // exactly the wrong-value hole the checksum closes.
            assert!(
                decode(&corrupt).is_err(),
                "tree decode accepted a flip at byte {byte} bit {bit}"
            );
            // Pull decoder: driving to completion must surface an error
            // before the stream reports a clean end.
            let mut errored = PullReader::new(&corrupt).is_err();
            if let Ok(mut r) = PullReader::new(&corrupt) {
                loop {
                    match r.next_event() {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => {
                            errored = true;
                            break;
                        }
                    }
                }
            }
            assert!(errored, "pull decode accepted a flip at byte {byte} bit {bit}");
        }
    }
}

#[test]
fn payload_corruption_reports_checksum_mismatch() {
    let doc = sample_doc();
    let bytes = encode_with(&doc, &checksum_opts(ByteOrder::Little)).unwrap();
    // Flip a bit deep in the packed f64 payload: structurally the frame
    // stays valid, so only the CRC can catch it.
    let mut corrupt = bytes.clone();
    let target = bytes.len() - 20;
    corrupt[target] ^= 0x10;
    match decode(&corrupt) {
        Err(BxsaError::ChecksumMismatch { stored, computed, .. }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn checksummed_element_frames_roundtrip_and_reject_flips() {
    let part = sample_part(3);
    let bytes = encode_element(&part, &checksum_opts(ByteOrder::Little)).unwrap();
    assert_eq!(decode_element(&bytes, &DecodeOptions::default()).unwrap(), part);
    for byte in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[byte] ^= 0x01;
        assert!(
            decode_element(&corrupt, &DecodeOptions::default()).is_err(),
            "element decode accepted a flip at byte {byte}"
        );
    }
}

#[test]
fn frame_writer_checksum_matches_tree_encoder() {
    // The typed fast path must emit the identical trailer so either
    // encoder's output verifies against either decoder.
    let doc = Document::with_root(
        Element::component("r").with_child(Element::leaf("n", AtomicValue::I32(7))),
    );
    let tree = encode_with(&doc, &checksum_opts(ByteOrder::Little)).unwrap();

    let leaf_body = bxsa::estimate::plain_leaf_body_bound("n", &[], xbs::TypeCode::I32, 0);
    let root_body =
        bxsa::estimate::plain_component_body_bound("r", &[], 1, bxsa::estimate::framed(leaf_body));
    let mut w = bxsa::FrameWriter::new(ByteOrder::Little);
    w.set_checksum(true);
    let mut buf = Vec::new();
    w.begin_document(&mut buf, 1, bxsa::FrameWriter::document_bound(root_body));
    w.begin_component(bxsa::TypedName::new(None, "r"), &[], 1, root_body)
        .unwrap();
    w.leaf(bxsa::TypedName::new(None, "n"), &[], 7i32).unwrap();
    w.end_component().unwrap();
    w.finish_document(&mut buf).unwrap();
    assert_eq!(buf, tree);
    assert_eq!(decode(&buf).unwrap(), doc);
}

#[test]
fn assembler_absorbs_checksums_and_rejects_corruption() {
    let parts: Vec<Element> = (0..5).map(sample_part).collect();
    let mut wire = Vec::new();
    let mut sink = FrameSink::new(checksum_opts(ByteOrder::Little), DEFAULT_WINDOW, |f| {
        wire.extend_from_slice(f);
        Ok(())
    });
    for p in &parts {
        sink.push(p).unwrap();
    }

    // Clean stream: the assembler verifies and absorbs every checksum
    // frame, surfacing exactly the element frames, across awkward splits.
    for step in [1usize, 7, 64, 4096] {
        let mut asm = FrameAssembler::new(DEFAULT_WINDOW);
        let mut got = Vec::new();
        let mut fed = 0;
        while fed < wire.len() {
            let end = (fed + step).min(wire.len());
            asm.feed(&wire[fed..end]);
            fed = end;
            while let Some(frame) = asm.next_frame().unwrap() {
                got.push(decode_element(frame, &DecodeOptions::default()).unwrap());
            }
        }
        asm.finish();
        assert!(asm.next_frame().unwrap().is_none());
        assert_eq!(got, parts, "step {step}");
    }

    // Corrupt one payload byte inside the first frame: the assembler
    // must report a checksum error no later than the call after that
    // frame surfaced — the error can never be silently skipped.
    let mut corrupt = wire.clone();
    corrupt[20] ^= 0x40;
    let mut asm = FrameAssembler::new(DEFAULT_WINDOW);
    asm.feed(&corrupt);
    asm.finish();
    let mut saw_error = false;
    for _ in 0..20 {
        match asm.next_frame() {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => {
                assert!(
                    matches!(e, BxsaError::ChecksumMismatch { .. }),
                    "expected ChecksumMismatch, got {e:?}"
                );
                saw_error = true;
                break;
            }
        }
    }
    assert!(saw_error, "assembler passed a corrupted checksummed frame");
}

#[test]
fn streamed_part_with_checksum_roundtrips_and_rejects_flips() {
    // The soap streaming path: parts encoded by a checksum-enabled
    // policy verify on decode_part, and a bit flip in transit becomes a
    // typed error instead of wrong values in the part payload.
    let enc = BxsaEncoding::default().with_checksum();
    let part = sample_part(9);
    let mut bytes = Vec::new();
    enc.encode_part_into(&part, &mut bytes).unwrap();

    let mut scratch = PartScratch::default();
    assert_eq!(*enc.decode_part(&bytes, &mut scratch).unwrap(), part);

    // A plain (un-checksummed) peer's parts still decode: transparent
    // negotiation means verification is strictly if-present.
    let plain_enc = BxsaEncoding::default();
    let mut plain = Vec::new();
    plain_enc.encode_part_into(&part, &mut plain).unwrap();
    assert_eq!(*enc.decode_part(&plain, &mut scratch).unwrap(), part);
    assert_eq!(bytes.len(), plain.len() + 7);

    for byte in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[byte] ^= 0x02;
        assert!(
            enc.decode_part(&corrupt, &mut scratch).is_err(),
            "decode_part accepted a flip at byte {byte}"
        );
    }
}

#[test]
fn checksum_frame_misuse_is_rejected() {
    let doc = sample_doc();
    let plain = encode(&doc).unwrap();
    let checked = encode_with(&doc, &checksum_opts(ByteOrder::Little)).unwrap();
    let trailer = &checked[plain.len()..];

    // A bare checksum frame with nothing to cover.
    assert!(decode(trailer).is_err());
    let mut asm = FrameAssembler::new(DEFAULT_WINDOW);
    asm.feed(trailer);
    asm.finish();
    assert!(asm.next_frame().is_err());

    // Two checksum frames: the second has only a checksum frame before
    // it, which is not a coverable frame sequence start.
    let mut doubled = checked.clone();
    doubled.extend_from_slice(trailer);
    assert!(decode(&doubled).is_err());

    // Truncated checksum frame at end of input.
    let mut cut = checked.clone();
    cut.truncate(plain.len() + 3);
    assert!(decode(&cut).is_err());
}
