//! Deterministic differential oracles: the in-house numeric kernels
//! (`xmltext::num`) against the standard library, and the HTTP date
//! parser against hand-computed civil-calendar facts.
//!
//! The fuzz targets (`fuzz/fuzz_targets/fuzz_num.rs`) sweep these same
//! oracles over random inputs; this file pins the adversarial corners by
//! name — subnormals, `-0.0`, shortest-round-trip spellings, the
//! extremes of the exponent range, `i64::MIN` — so a regression fails in
//! CI with a readable test name instead of a fuzzer artifact.

use std::time::{Duration, SystemTime, UNIX_EPOCH};

use proptest::prelude::*;
use transport::http::date::parse_http_date;
use xmltext::num;

/// `write_f64` must agree with the shortest-round-trip contract: the
/// printed form re-parses (via both std and the kernel) to the exact
/// same bits.
fn assert_f64_round_trip(v: f64) {
    let mut s = String::new();
    num::write_f64(v, &mut s);
    if v.is_nan() {
        assert_eq!(s, "NaN");
        return;
    }
    if v.is_infinite() {
        assert_eq!(s, if v > 0.0 { "INF" } else { "-INF" });
        return;
    }
    let std_back: f64 = s.parse().unwrap_or_else(|_| panic!("std rejected {s:?}"));
    assert_eq!(std_back.to_bits(), v.to_bits(), "std re-parse of {s:?}");
    let kernel_back = num::parse_f64(&s).unwrap_or_else(|| panic!("kernel rejected {s:?}"));
    assert_eq!(kernel_back.to_bits(), v.to_bits(), "kernel re-parse of {s:?}");
}

#[test]
fn f64_writer_round_trips_the_named_corners() {
    for v in [
        0.0,
        -0.0,
        1.0,
        -1.0,
        f64::MIN_POSITIVE,              // smallest normal
        f64::MIN_POSITIVE / 2.0,        // subnormal
        f64::from_bits(1),              // smallest subnormal
        f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
        f64::MAX,
        f64::MIN,
        1e308,
        -1e308,
        1e-308,
        -1e-308,
        f64::EPSILON,
        0.1,
        1.0 / 3.0,
        2f64.powi(-1074),
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        std::f64::consts::PI,
    ] {
        assert_f64_round_trip(v);
    }
    // -0.0 must keep its sign through the writer.
    let mut s = String::new();
    num::write_f64(-0.0, &mut s);
    assert!(s.starts_with('-'), "-0.0 printed as {s:?}");
}

#[test]
fn f64_parser_agrees_with_std_on_boundary_spellings() {
    for s in [
        "1e308", "-1e308", "1e-308", "-1e-308", "2.2250738585072014e-308",
        "4.9e-324", "5e-324", "1.7976931348623157e308", "1.8e308", // overflow → inf
        "1e-324",                                                 // underflow → 0
        "0.1", "3.141592653589793", "2.2250738585072011e-308",    // the 2009 PHP hang value
        "-0.0", "0.0", "123456789012345678901234567890", "1e0", "1E5", "1.5e+3",
    ] {
        let kernel = num::parse_f64(s);
        let std_val: Result<f64, _> = s.parse();
        match (kernel, std_val) {
            (Some(k), Ok(v)) => assert_eq!(k.to_bits(), v.to_bits(), "divergence on {s:?}"),
            (None, Err(_)) => {}
            (k, v) => panic!("acceptance divergence on {s:?}: kernel {k:?}, std {v:?}"),
        }
    }
}

#[test]
fn integer_writers_and_parsers_agree_with_std_at_the_extremes() {
    for v in [0i64, 1, -1, i64::MAX, i64::MIN, i64::MIN + 1, 9_999_999_999_999_999] {
        let mut s = String::new();
        num::write_i64(v, &mut s);
        assert_eq!(s, format!("{v}"));
        assert_eq!(num::parse_i64(&s), Some(v));
    }
    for v in [0u64, u64::MAX, u64::MAX - 1, 10_000_000_000_000_000_000] {
        let mut s = String::new();
        num::write_u64(v, &mut s);
        assert_eq!(s, format!("{v}"));
        assert_eq!(num::parse_u64(&s), Some(v));
    }
    // One past the extremes must be rejected exactly like std.
    assert_eq!(num::parse_i64("9223372036854775808"), None);
    assert_eq!(num::parse_i64("-9223372036854775809"), None);
    assert_eq!(num::parse_u64("18446744073709551616"), None);
}

proptest! {
    /// Any bit pattern: the kernel's printed form and std's printed form
    /// re-parse to the same bits through BOTH parsers.
    #[test]
    fn f64_bits_round_trip(bits in any::<u64>()) {
        assert_f64_round_trip(f64::from_bits(bits));
    }

    /// Kernel parse == std parse over a grammar of plausible spellings.
    #[test]
    fn f64_parse_matches_std(s in "-?[0-9]{1,20}(\\.[0-9]{1,20})?([eE][+-]?[0-9]{1,3})?") {
        let kernel = num::parse_f64(&s);
        let std_val: Result<f64, _> = s.parse();
        match (kernel, std_val) {
            (Some(k), Ok(v)) => prop_assert_eq!(k.to_bits(), v.to_bits()),
            (None, Err(_)) => {}
            (k, v) => prop_assert!(false, "acceptance divergence on {:?}: {:?} vs {:?}", s, k, v),
        }
    }

    #[test]
    fn i64_round_trip(v in any::<i64>()) {
        let mut s = String::new();
        num::write_i64(v, &mut s);
        prop_assert_eq!(&s, &format!("{}", v));
        prop_assert_eq!(num::parse_i64(&s), Some(v));
    }
}

/// Days since the epoch for a civil date, by brute counting — an
/// independent oracle for the date parser's arithmetic.
fn civil_days(year: i64, month: u32, day: u32) -> i64 {
    let leap = |y: i64| y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
    let mlen = |y: i64, m: u32| match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => if leap(y) { 29 } else { 28 },
    };
    let mut days: i64 = 0;
    for y in 1970..year {
        days += if leap(y) { 366 } else { 365 };
    }
    for m in 1..month {
        days += mlen(year, m);
    }
    days + i64::from(day) - 1
}

#[test]
fn http_date_grammars_agree_with_the_civil_calendar() {
    // The same instant in all three RFC 7231 grammars.
    let expect = |y, mo, d, h: u64, mi: u64, s: u64| {
        UNIX_EPOCH + Duration::from_secs((civil_days(y, mo, d) as u64) * 86_400 + h * 3600 + mi * 60 + s)
    };
    let cases: [(&str, &str, &str, SystemTime); 3] = [
        (
            "Sun, 06 Nov 1994 08:49:37 GMT",
            "Sunday, 06-Nov-94 08:49:37 GMT",
            "Sun Nov  6 08:49:37 1994",
            expect(1994, 11, 6, 8, 49, 37),
        ),
        (
            // Leap day on a *century* leap year (divisible by 400).
            "Tue, 29 Feb 2000 23:59:59 GMT",
            "Tuesday, 29-Feb-00 23:59:59 GMT",
            "Tue Feb 29 23:59:59 2000",
            expect(2000, 2, 29, 23, 59, 59),
        ),
        (
            // Ordinary leap year, midnight boundary.
            "Thu, 29 Feb 2024 00:00:00 GMT",
            "Thursday, 29-Feb-24 00:00:00 GMT",
            "Thu Feb 29 00:00:00 2024",
            expect(2024, 2, 29, 0, 0, 0),
        ),
    ];
    for (imf, rfc850, asctime, want) in cases {
        assert_eq!(parse_http_date(imf), Some(want), "IMF-fixdate {imf:?}");
        assert_eq!(parse_http_date(rfc850), Some(want), "rfc850 {rfc850:?}");
        assert_eq!(parse_http_date(asctime), Some(want), "asctime {asctime:?}");
    }
    // Feb 29 on a non-leap century year must fail in every grammar.
    assert_eq!(parse_http_date("Thu, 29 Feb 2100 12:00:00 GMT"), None);
    assert!(parse_http_date("Thursday, 29-Feb-00 12:00:00 GMT").is_some());
    assert_eq!(parse_http_date("Mon Feb 29 12:00:00 2100"), None);
}

proptest! {
    /// Every valid civil date formats to IMF-fixdate and parses back to
    /// the brute-counted epoch offset.
    #[test]
    fn imf_dates_match_brute_counting(
        year in 1970i64..=2400,
        month in 1u32..=12,
        day_seed in 0u32..31,
        secs in 0u64..86_400,
    ) {
        let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
        let mlen = match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            _ => if leap { 29 } else { 28 },
        };
        let day = 1 + day_seed % mlen;
        // Weekday names are not cross-checked against the date by the
        // parser (RFC 7231 says they are redundant), so any name works.
        let months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
                      "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
        let s = format!(
            "Sun, {:02} {} {} {:02}:{:02}:{:02} GMT",
            day, months[(month - 1) as usize], year,
            secs / 3600, (secs / 60) % 60, secs % 60,
        );
        let want = UNIX_EPOCH
            + Duration::from_secs((civil_days(year, month, day) as u64) * 86_400 + secs);
        prop_assert_eq!(parse_http_date(&s), Some(want), "{}", s);
    }
}
