//! Parsing netCDF-3 classic files.

use crate::error::{NcError, NcResult};
use crate::model::{NcAttr, NcDim, NcFile, NcType, NcValue, NcVar};
use crate::write::{NC_ATTRIBUTE, NC_DIMENSION, NC_VARIABLE};

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> NcResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(NcError::Malformed {
                offset: self.pos,
                what: format!("truncated: needed {n} bytes"),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> NcResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    fn name(&mut self) -> NcResult<String> {
        let at = self.pos;
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        let name = std::str::from_utf8(bytes)
            .map_err(|_| NcError::Malformed {
                offset: at,
                what: "name is not UTF-8".into(),
            })?
            .to_owned();
        self.padding(len)?;
        Ok(name)
    }

    fn padding(&mut self, len: usize) -> NcResult<()> {
        let pad = ((len + 3) & !3) - len;
        let bytes = self.take(pad)?;
        if bytes.iter().any(|&b| b != 0) {
            return Err(NcError::Malformed {
                offset: self.pos - pad,
                what: "non-zero padding".into(),
            });
        }
        Ok(())
    }

    fn values(&mut self, nc_type: NcType, count: usize) -> NcResult<NcValue> {
        self.values_inner(nc_type, count, true)
    }

    fn values_inner(
        &mut self,
        nc_type: NcType,
        count: usize,
        pad: bool,
    ) -> NcResult<NcValue> {
        let at = self.pos;
        let byte_len = count
            .checked_mul(nc_type.width())
            .ok_or(NcError::Malformed {
                offset: at,
                what: "value count overflow".into(),
            })?;
        let bytes = self.take(byte_len)?;
        let value = match nc_type {
            NcType::Byte => NcValue::Byte(bytes.iter().map(|&b| b as i8).collect()),
            NcType::Char => NcValue::Char(
                std::str::from_utf8(bytes)
                    .map_err(|_| NcError::Malformed {
                        offset: at,
                        what: "char data is not UTF-8".into(),
                    })?
                    .to_owned(),
            ),
            NcType::Short => NcValue::Short(
                bytes
                    .chunks_exact(2)
                    .map(|c| i16::from_be_bytes(c.try_into().expect("2 bytes")))
                    .collect(),
            ),
            NcType::Int => NcValue::Int(
                bytes
                    .chunks_exact(4)
                    .map(|c| i32::from_be_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            ),
            NcType::Float => NcValue::Float(
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_be_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            ),
            NcType::Double => NcValue::Double(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_be_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ),
        };
        if pad {
            self.padding(byte_len)?;
        }
        Ok(value)
    }

    fn list_header(&mut self, expected_tag: u32) -> NcResult<usize> {
        let at = self.pos;
        let tag = self.u32()?;
        let count = self.u32()? as usize;
        if tag == 0 && count == 0 {
            return Ok(0);
        }
        if tag != expected_tag {
            return Err(NcError::Malformed {
                offset: at,
                what: format!("expected list tag {expected_tag:#x}, found {tag:#x}"),
            });
        }
        Ok(count)
    }

    fn attr_list(&mut self) -> NcResult<Vec<NcAttr>> {
        let count = self.list_header(NC_ATTRIBUTE)?;
        let mut attrs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let name = self.name()?;
            let at = self.pos;
            let nc_type = NcType::from_tag(self.u32()?, at)?;
            let nelems = self.u32()? as usize;
            let value = self.values(nc_type, nelems)?;
            attrs.push(NcAttr { name, value });
        }
        Ok(attrs)
    }
}

impl NcFile {
    /// Parse a netCDF-3 classic file from memory.
    pub fn from_bytes(buf: &[u8]) -> NcResult<NcFile> {
        let mut c = Cursor { buf, pos: 0 };
        let magic = c.take(4)?;
        if magic != b"CDF\x01" {
            return Err(NcError::BadMagic);
        }
        let numrecs = c.u32()? as usize;

        // Dimensions.
        let ndims = c.list_header(NC_DIMENSION)?;
        let mut dims = Vec::with_capacity(ndims.min(1024));
        for _ in 0..ndims {
            let name = c.name()?;
            let len = c.u32()? as usize;
            dims.push(NcDim { name, len });
        }

        // Global attributes.
        let attrs = c.attr_list()?;

        // At most one record (length-0) dimension.
        let record_dim = {
            let record_dims: Vec<usize> = dims
                .iter()
                .enumerate()
                .filter(|(_, d)| d.len == 0)
                .map(|(i, _)| i)
                .collect();
            if record_dims.len() > 1 {
                return Err(NcError::Malformed {
                    offset: 8,
                    what: "multiple record dimensions".into(),
                });
            }
            record_dims.first().copied()
        };

        // Variable headers.
        let nvars = c.list_header(NC_VARIABLE)?;
        struct VarHeader {
            name: String,
            dims: Vec<usize>,
            attrs: Vec<NcAttr>,
            nc_type: NcType,
            vsize: usize,
            begin: usize,
            record: bool,
        }
        let mut headers = Vec::with_capacity(nvars.min(1024));
        for _ in 0..nvars {
            let name = c.name()?;
            let ndims_var = c.u32()? as usize;
            let mut var_dims = Vec::with_capacity(ndims_var.min(64));
            for pos in 0..ndims_var {
                let at = c.pos;
                let d = c.u32()? as usize;
                if d >= dims.len() {
                    return Err(NcError::Malformed {
                        offset: at,
                        what: format!("dimension id {d} out of range"),
                    });
                }
                if Some(d) == record_dim && pos != 0 {
                    return Err(NcError::Malformed {
                        offset: at,
                        what: format!("record dimension not leading in variable {name:?}"),
                    });
                }
                var_dims.push(d);
            }
            let var_attrs = c.attr_list()?;
            let at = c.pos;
            let nc_type = NcType::from_tag(c.u32()?, at)?;
            let vsize = c.u32()? as usize;
            let begin = c.u32()? as usize;
            let record = matches!((var_dims.first(), record_dim), (Some(&f), Some(r)) if f == r);
            headers.push(VarHeader {
                name,
                dims: var_dims,
                attrs: var_attrs,
                nc_type,
                vsize,
                begin,
                record,
            });
        }

        // The record stride: sum of all record variables' slab sizes.
        let recsize: usize = headers.iter().filter(|h| h.record).map(|h| h.vsize).sum();

        // Data payloads.
        let mut vars = Vec::with_capacity(headers.len());
        for h in headers {
            if h.begin > buf.len() {
                return Err(NcError::Malformed {
                    offset: h.begin,
                    what: format!("variable {:?} data begins past end of file", h.name),
                });
            }
            let per_record: usize = h
                .dims
                .iter()
                .filter(|&&d| Some(d) != record_dim)
                .map(|&d| dims[d].len)
                .product();
            let data = if h.record {
                // numrecs slabs at stride recsize.
                let mut data = NcValue::empty_of(h.nc_type);
                for record in 0..numrecs {
                    let at = h.begin + record * recsize;
                    if at > buf.len() {
                        return Err(NcError::Malformed {
                            offset: at,
                            what: format!("record {record} of {:?} past end of file", h.name),
                        });
                    }
                    let mut dc = Cursor { buf, pos: at };
                    // Slab padding (when present) is skipped by the
                    // stride; the lone-narrow-record special case has
                    // none, so do not validate trailing bytes here.
                    data.append(dc.values_inner(h.nc_type, per_record, false)?);
                }
                data
            } else {
                let mut dc = Cursor { buf, pos: h.begin };
                dc.values(h.nc_type, per_record)?
            };
            vars.push(NcVar {
                name: h.name,
                dims: h.dims,
                attrs: h.attrs,
                data,
            });
        }

        Ok(NcFile {
            dims,
            attrs,
            vars,
            numrecs,
        })
    }

    /// Parse a netCDF-3 classic file from disk.
    pub fn read_file(path: &std::path::Path) -> NcResult<NcFile> {
        let bytes = std::fs::read(path)?;
        NcFile::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lead_sample() -> NcFile {
        // Mirrors the paper's LEAD-derived data set: an int index array
        // and a double value array over the same model dimension, with
        // the four descriptive parameters as attributes.
        let mut nc = NcFile::new();
        let d = nc.add_dim("model", 5);
        nc.add_attr("parameters", NcValue::Char("time,y,x,height".into()));
        nc.add_var("index", &[d], NcValue::Int(vec![1, 2, 3, 4, 5]))
            .unwrap();
        let v = nc
            .add_var(
                "values",
                &[d],
                NcValue::Double(vec![0.5, 1.5, -2.0, 3.25, 1e-8]),
            )
            .unwrap();
        nc.vars[v].attrs.push(NcAttr {
            name: "units".into(),
            value: NcValue::Char("K".into()),
        });
        nc
    }

    #[test]
    fn full_roundtrip() {
        let nc = lead_sample();
        let bytes = nc.to_bytes().unwrap();
        let back = NcFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, nc);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            NcFile::from_bytes(b"HDF\x01\0\0\0\0"),
            Err(NcError::BadMagic)
        ));
        assert!(matches!(
            NcFile::from_bytes(b"CDF\x02\0\0\0\0"),
            Err(NcError::BadMagic)
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = lead_sample().to_bytes().unwrap();
        for cut in [3, 7, 11, 20, bytes.len() / 2, bytes.len() - 3] {
            assert!(
                NcFile::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn stray_numrecs_is_parsed_not_fatal() {
        // numrecs > 0 without a record dimension is odd but harmless:
        // there are no record variables to read.
        let mut bytes = lead_sample().to_bytes().unwrap();
        bytes[7] = 2; // numrecs = 2
        let nc = NcFile::from_bytes(&bytes).unwrap();
        assert_eq!(nc.numrecs, 2);
        assert_eq!(nc.vars.len(), 2);
    }

    #[test]
    fn record_file_roundtrip() {
        // The shape of a real LEAD file: time is UNLIMITED, two record
        // variables interleave per time step.
        let mut nc = NcFile::new();
        let t = nc.add_record_dim("time", 4).unwrap();
        let h = nc.add_dim("height", 3);
        nc.add_var(
            "temp",
            &[t, h],
            NcValue::Double((0..12).map(f64::from).collect()),
        )
        .unwrap();
        nc.add_var("flag", &[t], NcValue::Int(vec![1, 0, 1, 1]))
            .unwrap();
        nc.add_var("station", &[], NcValue::Char("K".into())).unwrap();
        let bytes = nc.to_bytes().unwrap();
        let back = NcFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, nc);
    }

    #[test]
    fn lone_narrow_record_var_roundtrip() {
        let mut nc = NcFile::new();
        let t = nc.add_record_dim("time", 5).unwrap();
        nc.add_var("s", &[t], NcValue::Short(vec![1, -2, 3, -4, 5]))
            .unwrap();
        let bytes = nc.to_bytes().unwrap();
        let back = NcFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, nc);
    }

    #[test]
    fn truncated_record_section_errors() {
        let mut nc = NcFile::new();
        let t = nc.add_record_dim("time", 4).unwrap();
        nc.add_var("x", &[t], NcValue::Double(vec![1.0; 4])).unwrap();
        let bytes = nc.to_bytes().unwrap();
        assert!(NcFile::from_bytes(&bytes[..bytes.len() - 8]).is_err());
    }

    #[test]
    fn rejects_out_of_range_dim_ids() {
        let mut nc = NcFile::new();
        let d = nc.add_dim("n", 1);
        nc.add_var("v", &[d], NcValue::Int(vec![7])).unwrap();
        let mut bytes = nc.to_bytes().unwrap();
        // The variable's single dim id (0) lives right after its name
        // block and ndims field; flip it to 9. Locate it: search for the
        // ndims field value 1 followed by dim id 0 after the var tag.
        let var_tag_pos = bytes
            .windows(4)
            .position(|w| w == NC_VARIABLE.to_be_bytes())
            .unwrap();
        // name: len(4)+"v"+pad(3) = 8 bytes after count
        let ndims_pos = var_tag_pos + 8 + 8;
        assert_eq!(&bytes[ndims_pos..ndims_pos + 4], &1u32.to_be_bytes());
        bytes[ndims_pos + 7] = 9;
        assert!(NcFile::from_bytes(&bytes).is_err());
    }

    #[test]
    fn attributes_roundtrip_all_types() {
        let mut nc = NcFile::new();
        nc.add_attr("b", NcValue::Byte(vec![-1, 2]));
        nc.add_attr("c", NcValue::Char("text".into()));
        nc.add_attr("s", NcValue::Short(vec![-3]));
        nc.add_attr("i", NcValue::Int(vec![4, 5]));
        nc.add_attr("f", NcValue::Float(vec![0.5]));
        nc.add_attr("d", NcValue::Double(vec![2.5, -1e300]));
        let bytes = nc.to_bytes().unwrap();
        assert_eq!(NcFile::from_bytes(&bytes).unwrap(), nc);
    }
}
