//! # netcdf3 — a from-scratch netCDF-3 "classic" codec
//!
//! The paper's *separated* scheme stores scientific payloads in netCDF
//! files fetched over HTTP or GridFTP, with only a URL traveling in the
//! SOAP control message. To reproduce that baseline without the Unidata C
//! library, this crate implements the netCDF-3 classic file format
//! (magic `CDF\x01`) directly: dimensions, global and per-variable
//! attributes, and fixed-size variables of the six classic external types.
//!
//! Deliberate fidelity notes:
//!
//! * The classic format is **big-endian** throughout and pads names,
//!   attribute values and variable data to 4-byte boundaries — both are
//!   implemented exactly, so files round-trip byte-for-byte.
//! * Like the 2006-era C library, the read path here is exercised through
//!   *files* in the benchmark harness (the paper: "the netCDF library does
//!   not support reading the data directly from memory" — our API can read
//!   from memory, but the separated-scheme benches go through disk to
//!   model the measured system).
//! * The record (UNLIMITED) dimension is supported for writing
//!   `numrecs = 0` only; the paper's workload uses fixed dimensions.
//!
//! ```
//! use netcdf3::{NcFile, NcValue};
//!
//! let mut nc = NcFile::new();
//! let d = nc.add_dim("model", 3);
//! nc.add_var("index", &[d], NcValue::Int(vec![1, 2, 3])).unwrap();
//! let bytes = nc.to_bytes().unwrap();
//! let back = NcFile::from_bytes(&bytes).unwrap();
//! assert_eq!(back.var("index").unwrap().data.as_int().unwrap(), &[1, 2, 3]);
//! ```

pub mod error;
pub mod model;
pub mod read;
pub mod write;

pub use error::{NcError, NcResult};
pub use model::{NcAttr, NcDim, NcFile, NcType, NcValue, NcVar};

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn int_double_pairs_roundtrip(
            ints in proptest::collection::vec(any::<i32>(), 0..200),
            doubles_len in 0usize..200,
        ) {
            let doubles: Vec<f64> = (0..doubles_len).map(|i| i as f64 * 0.25 - 3.0).collect();
            let mut nc = NcFile::new();
            let di = nc.add_dim("ni", ints.len());
            let dd = nc.add_dim("nd", doubles.len());
            nc.add_var("index", &[di], NcValue::Int(ints.clone())).unwrap();
            nc.add_var("values", &[dd], NcValue::Double(doubles.clone())).unwrap();
            let bytes = nc.to_bytes().unwrap();
            let back = NcFile::from_bytes(&bytes).unwrap();
            prop_assert_eq!(back.var("index").unwrap().data.as_int().unwrap(), &ints[..]);
            prop_assert_eq!(back.var("values").unwrap().data.as_double().unwrap(), &doubles[..]);
            // Round trip is byte-exact.
            prop_assert_eq!(back.to_bytes().unwrap(), bytes);
        }
    }
}
