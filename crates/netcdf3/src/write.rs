//! Serializing netCDF-3 classic files.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! magic 'C' 'D' 'F' 0x01
//! numrecs          (u32; 0 without a record dimension)
//! dim_list         tag NC_DIMENSION(0x0A)/ZERO, count, entries (len 0 = UNLIMITED)
//! gatt_list        tag NC_ATTRIBUTE(0x0C)/ZERO, count, entries
//! var_list         tag NC_VARIABLE(0x0B)/ZERO, count, entries
//! data             fixed variables at their begins, then numrecs
//!                  interleaved record slabs
//! ```
//!
//! Names and value blocks are padded with zeros to 4-byte boundaries,
//! exactly as the classic format prescribes — including the special case
//! that a *single* record variable of a narrow type is packed without
//! per-record padding.

use std::io::Write;

use crate::error::NcResult;
use crate::model::{NcAttr, NcFile, NcType, NcValue, NcVar};

pub(crate) const NC_DIMENSION: u32 = 0x0a;
pub(crate) const NC_VARIABLE: u32 = 0x0b;
pub(crate) const NC_ATTRIBUTE: u32 = 0x0c;

pub(crate) fn pad4(n: usize) -> usize {
    (n + 3) & !3
}

fn name_block_len(name: &str) -> usize {
    4 + pad4(name.len())
}

fn value_block_len(v: &NcValue) -> usize {
    pad4(v.len() * v.nc_type().width())
}

fn attr_len(a: &NcAttr) -> usize {
    // name + nc_type + nelems + padded values
    name_block_len(&a.name) + 4 + 4 + value_block_len(&a.value)
}

fn attr_list_len(attrs: &[NcAttr]) -> usize {
    8 + attrs.iter().map(attr_len).sum::<usize>()
}

/// Per-variable layout facts shared by the writer and (via `vsize`) the
/// reader.
pub(crate) struct VarLayout {
    /// `true` when the variable varies along the record dimension.
    pub record: bool,
    /// Values per record (= total values for fixed variables).
    pub per_record: usize,
    /// The `vsize` header field: the (padded) byte size of one record
    /// slab for record variables, of the whole data for fixed ones.
    pub vsize: usize,
}

/// Compute layouts for all variables, applying the classic special case:
/// when there is exactly one record variable of a 1- or 2-byte type, its
/// record slabs are packed without padding.
pub(crate) fn layouts(file: &NcFile) -> Vec<VarLayout> {
    let record_vars: Vec<&NcVar> = file
        .vars
        .iter()
        .filter(|v| file.is_record_var(v))
        .collect();
    let lone_narrow_record = record_vars.len() == 1
        && matches!(
            record_vars[0].data.nc_type(),
            NcType::Byte | NcType::Char | NcType::Short
        );
    file.vars
        .iter()
        .map(|v| {
            let record = file.is_record_var(v);
            let per_record = file.per_record_len(v);
            let raw = per_record * v.data.nc_type().width();
            let vsize = if record && lone_narrow_record {
                raw
            } else {
                pad4(raw)
            };
            VarLayout {
                record,
                per_record,
                vsize,
            }
        })
        .collect()
}

impl NcFile {
    /// Serialize to an in-memory byte buffer.
    pub fn to_bytes(&self) -> NcResult<Vec<u8>> {
        let mut out = Vec::with_capacity(self.header_len() + 1024);
        self.write_to(&mut out)?;
        Ok(out)
    }

    /// Serialize to a file on disk (the separated-scheme benches use this
    /// path so the disk round trip the paper measures is real).
    pub fn write_file(&self, path: &std::path::Path) -> NcResult<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    fn header_len(&self) -> usize {
        let mut n = 4 + 4; // magic + numrecs
        // dim list
        n += 8;
        for d in &self.dims {
            n += name_block_len(&d.name) + 4;
        }
        n += attr_list_len(&self.attrs);
        // var list
        n += 8;
        for v in &self.vars {
            n += name_block_len(&v.name) + 4 + 4 * v.dims.len();
            n += attr_list_len(&v.attrs);
            n += 4 + 4 + 4; // nc_type + vsize + begin (32-bit offsets)
        }
        n
    }

    /// Serialize into any writer.
    pub fn write_to(&self, out: &mut impl Write) -> NcResult<()> {
        let header_len = self.header_len();
        let layouts = layouts(self);

        out.write_all(b"CDF\x01")?;
        out.write_all(&(self.numrecs as u32).to_be_bytes())?;

        // dim_list
        write_list_header(out, NC_DIMENSION, self.dims.len())?;
        for d in &self.dims {
            write_name(out, &d.name)?;
            out.write_all(&(d.len as u32).to_be_bytes())?;
        }

        // gatt_list
        write_attr_list(out, &self.attrs)?;

        // var_list — fixed variables pack first, then record slabs.
        let fixed_total: usize = layouts
            .iter()
            .filter(|l| !l.record)
            .map(|l| l.vsize)
            .sum();
        let record_start = header_len + fixed_total;

        write_list_header(out, NC_VARIABLE, self.vars.len())?;
        let mut fixed_begin = header_len;
        let mut record_offset = 0usize;
        for (v, layout) in self.vars.iter().zip(&layouts) {
            write_name(out, &v.name)?;
            out.write_all(&(v.dims.len() as u32).to_be_bytes())?;
            for &d in &v.dims {
                out.write_all(&(d as u32).to_be_bytes())?;
            }
            write_attr_list(out, &v.attrs)?;
            out.write_all(&(v.data.nc_type() as u32).to_be_bytes())?;
            out.write_all(&(layout.vsize as u32).to_be_bytes())?;
            let begin = if layout.record {
                let b = record_start + record_offset;
                record_offset += layout.vsize;
                b
            } else {
                let b = fixed_begin;
                fixed_begin += layout.vsize;
                b
            };
            out.write_all(&(begin as u32).to_be_bytes())?;
        }

        // data: fixed variables in definition order...
        for (v, layout) in self.vars.iter().zip(&layouts) {
            if !layout.record {
                write_value_slice(out, &v.data, 0, layout.per_record, layout.vsize)?;
            }
        }
        // ...then numrecs interleaved record slabs.
        for record in 0..self.numrecs {
            for (v, layout) in self.vars.iter().zip(&layouts) {
                if layout.record {
                    write_value_slice(
                        out,
                        &v.data,
                        record * layout.per_record,
                        layout.per_record,
                        layout.vsize,
                    )?;
                }
            }
        }
        Ok(())
    }
}

fn write_list_header(out: &mut impl Write, tag: u32, count: usize) -> NcResult<()> {
    if count == 0 {
        // ABSENT = ZERO ZERO
        out.write_all(&[0u8; 8])?;
    } else {
        out.write_all(&tag.to_be_bytes())?;
        out.write_all(&(count as u32).to_be_bytes())?;
    }
    Ok(())
}

fn write_name(out: &mut impl Write, name: &str) -> NcResult<()> {
    out.write_all(&(name.len() as u32).to_be_bytes())?;
    out.write_all(name.as_bytes())?;
    write_padding(out, pad4(name.len()) - name.len())?;
    Ok(())
}

fn write_padding(out: &mut impl Write, pad: usize) -> NcResult<()> {
    const ZEROS: [u8; 3] = [0; 3];
    out.write_all(&ZEROS[..pad])?;
    Ok(())
}

fn write_attr_list(out: &mut impl Write, attrs: &[NcAttr]) -> NcResult<()> {
    write_list_header(out, NC_ATTRIBUTE, attrs.len())?;
    for a in attrs {
        write_name(out, &a.name)?;
        out.write_all(&(a.value.nc_type() as u32).to_be_bytes())?;
        out.write_all(&(a.value.len() as u32).to_be_bytes())?;
        let byte_len = a.value.len() * a.value.nc_type().width();
        write_value_slice(out, &a.value, 0, a.value.len(), pad4(byte_len))?;
    }
    Ok(())
}

/// Write `count` values of `v` starting at `start`, zero-padded to
/// `slab_len` bytes.
fn write_value_slice(
    out: &mut impl Write,
    v: &NcValue,
    start: usize,
    count: usize,
    slab_len: usize,
) -> NcResult<()> {
    let byte_len = count * v.nc_type().width();
    match v {
        NcValue::Byte(items) => {
            for &b in &items[start..start + count] {
                out.write_all(&b.to_be_bytes())?;
            }
        }
        NcValue::Char(s) => out.write_all(&s.as_bytes()[start..start + count])?,
        NcValue::Short(items) => {
            for &x in &items[start..start + count] {
                out.write_all(&x.to_be_bytes())?;
            }
        }
        NcValue::Int(items) => {
            for &x in &items[start..start + count] {
                out.write_all(&x.to_be_bytes())?;
            }
        }
        NcValue::Float(items) => {
            for &x in &items[start..start + count] {
                out.write_all(&x.to_be_bytes())?;
            }
        }
        NcValue::Double(items) => {
            for &x in &items[start..start + count] {
                out.write_all(&x.to_be_bytes())?;
            }
        }
    }
    // Pad to the slab size (alignment padding, and — for record slabs —
    // the full per-record stride).
    for _ in byte_len..slab_len {
        out.write_all(&[0u8])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NcValue;

    #[test]
    fn magic_and_numrecs_lead() {
        let nc = NcFile::new();
        let bytes = nc.to_bytes().unwrap();
        assert_eq!(&bytes[..4], b"CDF\x01");
        assert_eq!(&bytes[4..8], &[0, 0, 0, 0]);
        // Empty lists: three ABSENT markers (8 zero bytes each).
        assert_eq!(bytes.len(), 8 + 24);
        assert!(bytes[8..].iter().all(|&b| b == 0));
    }

    #[test]
    fn names_are_padded_to_four() {
        let mut nc = NcFile::new();
        nc.add_dim("abcde", 1); // 5 chars → 3 pad bytes
        let bytes = nc.to_bytes().unwrap();
        // dim list starts at 8: tag(4) count(4) namelen(4) name(5) pad(3) len(4)
        assert_eq!(&bytes[8..12], &NC_DIMENSION.to_be_bytes());
        assert_eq!(&bytes[16..20], &5u32.to_be_bytes());
        assert_eq!(&bytes[20..25], b"abcde");
        assert_eq!(&bytes[25..28], &[0, 0, 0]);
        assert_eq!(&bytes[28..32], &1u32.to_be_bytes());
    }

    #[test]
    fn encoding_overhead_matches_table1_expectation() {
        // 1000 (f64, i32) pairs: native 12000 bytes; the netCDF overhead
        // the paper reports is ~2%.
        let mut nc = NcFile::new();
        let d = nc.add_dim("model", 1000);
        nc.add_var("index", &[d], NcValue::Int((0..1000).collect()))
            .unwrap();
        nc.add_var(
            "values",
            &[d],
            NcValue::Double((0..1000).map(|i| i as f64).collect()),
        )
        .unwrap();
        let bytes = nc.to_bytes().unwrap();
        let native = 12_000;
        let overhead = bytes.len() - native;
        assert!(
            overhead * 100 / native <= 3,
            "netCDF overhead {overhead} bytes too large"
        );
    }

    #[test]
    fn data_section_is_big_endian() {
        let mut nc = NcFile::new();
        let d = nc.add_dim("n", 1);
        nc.add_var("x", &[d], NcValue::Int(vec![0x01020304]))
            .unwrap();
        let bytes = nc.to_bytes().unwrap();
        // Data is the last (padded) block; an i32 occupies the final 4 bytes.
        assert_eq!(&bytes[bytes.len() - 4..], &[1, 2, 3, 4]);
    }

    #[test]
    fn write_file_creates_readable_file() {
        let dir = std::env::temp_dir().join("netcdf3_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.nc");
        let mut nc = NcFile::new();
        let d = nc.add_dim("n", 2);
        nc.add_var("x", &[d], NcValue::Double(vec![1.0, 2.0]))
            .unwrap();
        nc.write_file(&path).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, nc.to_bytes().unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn numrecs_written_to_header() {
        let mut nc = NcFile::new();
        let t = nc.add_record_dim("time", 3).unwrap();
        let y = nc.add_dim("y", 2);
        nc.add_var("temp", &[t, y], NcValue::Double((0..6).map(f64::from).collect()))
            .unwrap();
        let bytes = nc.to_bytes().unwrap();
        assert_eq!(&bytes[4..8], &3u32.to_be_bytes());
    }

    #[test]
    fn record_slabs_interleave() {
        // Two record variables over 2 records: slabs must alternate
        // a[rec0] b[rec0] a[rec1] b[rec1].
        let mut nc = NcFile::new();
        let t = nc.add_record_dim("time", 2).unwrap();
        nc.add_var("a", &[t], NcValue::Int(vec![1, 2])).unwrap();
        nc.add_var("b", &[t], NcValue::Int(vec![10, 20])).unwrap();
        let bytes = nc.to_bytes().unwrap();
        let tail = &bytes[bytes.len() - 16..];
        assert_eq!(&tail[0..4], &1i32.to_be_bytes());
        assert_eq!(&tail[4..8], &10i32.to_be_bytes());
        assert_eq!(&tail[8..12], &2i32.to_be_bytes());
        assert_eq!(&tail[12..16], &20i32.to_be_bytes());
    }

    #[test]
    fn lone_narrow_record_var_is_packed() {
        // One Short record variable: slabs are NOT padded to 4 (the
        // classic special case).
        let mut nc = NcFile::new();
        let t = nc.add_record_dim("time", 3).unwrap();
        nc.add_var("s", &[t], NcValue::Short(vec![1, 2, 3])).unwrap();
        let bytes = nc.to_bytes().unwrap();
        // Data section is 3 × 2 bytes, not 3 × 4.
        let tail = &bytes[bytes.len() - 6..];
        assert_eq!(tail, &[0, 1, 0, 2, 0, 3]);
    }

    #[test]
    fn second_record_dim_rejected() {
        let mut nc = NcFile::new();
        nc.add_record_dim("time", 1).unwrap();
        assert!(nc.add_record_dim("t2", 1).is_err());
    }

    #[test]
    fn record_dim_must_lead() {
        let mut nc = NcFile::new();
        let t = nc.add_record_dim("time", 2).unwrap();
        let y = nc.add_dim("y", 3);
        assert!(nc
            .add_var("bad", &[y, t], NcValue::Int(vec![0; 6]))
            .is_err());
    }
}
