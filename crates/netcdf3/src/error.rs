//! netCDF-3 codec errors.

use std::fmt;

/// Errors raised while building, writing, or reading netCDF-3 files.
#[derive(Debug)]
pub enum NcError {
    /// The input is not a netCDF-3 classic file (bad magic or version).
    BadMagic,
    /// Structurally invalid header (bad tag, count, truncation...).
    Malformed { offset: usize, what: String },
    /// A variable's data length does not match the product of its
    /// dimension lengths.
    ShapeMismatch {
        var: String,
        expected: usize,
        actual: usize,
    },
    /// A variable references a dimension id that does not exist.
    BadDimId { var: String, dim: usize },
    /// Duplicate dimension or variable name.
    DuplicateName(String),
    /// Underlying I/O failure (file read/write paths).
    Io(std::io::Error),
}

impl fmt::Display for NcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NcError::BadMagic => write!(f, "not a netCDF-3 classic file"),
            NcError::Malformed { offset, what } => {
                write!(f, "malformed netCDF header at byte {offset}: {what}")
            }
            NcError::ShapeMismatch {
                var,
                expected,
                actual,
            } => write!(
                f,
                "variable {var:?}: data has {actual} items but dimensions imply {expected}"
            ),
            NcError::BadDimId { var, dim } => {
                write!(f, "variable {var:?} references unknown dimension id {dim}")
            }
            NcError::DuplicateName(n) => write!(f, "duplicate name {n:?}"),
            NcError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for NcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NcError {
    fn from(e: std::io::Error) -> NcError {
        NcError::Io(e)
    }
}

/// Result alias for this crate.
pub type NcResult<T> = Result<T, NcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(NcError::BadMagic.to_string().contains("netCDF"));
        let e = NcError::ShapeMismatch {
            var: "v".into(),
            expected: 10,
            actual: 3,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('3'));
    }
}
