//! In-memory model of a netCDF-3 classic dataset.

use crate::error::{NcError, NcResult};

/// The six external data types of the classic format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum NcType {
    /// 8-bit signed integer (`NC_BYTE`).
    Byte = 1,
    /// Text (`NC_CHAR`).
    Char = 2,
    /// 16-bit signed integer (`NC_SHORT`).
    Short = 3,
    /// 32-bit signed integer (`NC_INT`).
    Int = 4,
    /// 32-bit IEEE float (`NC_FLOAT`).
    Float = 5,
    /// 64-bit IEEE float (`NC_DOUBLE`).
    Double = 6,
}

impl NcType {
    /// External size in bytes of one value.
    pub fn width(self) -> usize {
        match self {
            NcType::Byte | NcType::Char => 1,
            NcType::Short => 2,
            NcType::Int | NcType::Float => 4,
            NcType::Double => 8,
        }
    }

    /// Decode the on-disk type tag.
    pub fn from_tag(tag: u32, offset: usize) -> NcResult<NcType> {
        Ok(match tag {
            1 => NcType::Byte,
            2 => NcType::Char,
            3 => NcType::Short,
            4 => NcType::Int,
            5 => NcType::Float,
            6 => NcType::Double,
            _ => {
                return Err(NcError::Malformed {
                    offset,
                    what: format!("unknown nc_type {tag}"),
                })
            }
        })
    }
}

/// Typed value payload (attribute values and variable data).
#[derive(Debug, Clone, PartialEq)]
pub enum NcValue {
    Byte(Vec<i8>),
    Char(String),
    Short(Vec<i16>),
    Int(Vec<i32>),
    Float(Vec<f32>),
    Double(Vec<f64>),
}

impl NcValue {
    /// External type of this payload.
    pub fn nc_type(&self) -> NcType {
        match self {
            NcValue::Byte(_) => NcType::Byte,
            NcValue::Char(_) => NcType::Char,
            NcValue::Short(_) => NcType::Short,
            NcValue::Int(_) => NcType::Int,
            NcValue::Float(_) => NcType::Float,
            NcValue::Double(_) => NcType::Double,
        }
    }

    /// Number of values (bytes for `Char`).
    pub fn len(&self) -> usize {
        match self {
            NcValue::Byte(v) => v.len(),
            NcValue::Char(s) => s.len(),
            NcValue::Short(v) => v.len(),
            NcValue::Int(v) => v.len(),
            NcValue::Float(v) => v.len(),
            NcValue::Double(v) => v.len(),
        }
    }

    /// `true` when there are no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow as `&[i32]`.
    pub fn as_int(&self) -> Option<&[i32]> {
        match self {
            NcValue::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[f64]`.
    pub fn as_double(&self) -> Option<&[f64]> {
        match self {
            NcValue::Double(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&str` for `Char` payloads.
    pub fn as_char(&self) -> Option<&str> {
        match self {
            NcValue::Char(s) => Some(s),
            _ => None,
        }
    }

    /// Append another payload of the same type (used when assembling
    /// record variables slab by slab).
    ///
    /// # Panics
    /// Panics on a type mismatch — the reader constructs both sides from
    /// the same header type, so a mismatch is a codec bug.
    pub fn append(&mut self, other: NcValue) {
        match (self, other) {
            (NcValue::Byte(a), NcValue::Byte(b)) => a.extend(b),
            (NcValue::Char(a), NcValue::Char(b)) => a.push_str(&b),
            (NcValue::Short(a), NcValue::Short(b)) => a.extend(b),
            (NcValue::Int(a), NcValue::Int(b)) => a.extend(b),
            (NcValue::Float(a), NcValue::Float(b)) => a.extend(b),
            (NcValue::Double(a), NcValue::Double(b)) => a.extend(b),
            _ => panic!("NcValue::append type mismatch"),
        }
    }

    /// An empty payload of the given type.
    pub fn empty_of(nc_type: NcType) -> NcValue {
        match nc_type {
            NcType::Byte => NcValue::Byte(Vec::new()),
            NcType::Char => NcValue::Char(String::new()),
            NcType::Short => NcValue::Short(Vec::new()),
            NcType::Int => NcValue::Int(Vec::new()),
            NcType::Float => NcValue::Float(Vec::new()),
            NcType::Double => NcValue::Double(Vec::new()),
        }
    }
}

/// A named dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NcDim {
    /// Dimension name.
    pub name: String,
    /// Length. `0` marks the record (UNLIMITED) dimension; its effective
    /// length is [`NcFile::numrecs`].
    pub len: usize,
}

impl NcDim {
    /// `true` for the record (UNLIMITED) dimension.
    pub fn is_record(&self) -> bool {
        self.len == 0
    }
}

/// A named attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct NcAttr {
    /// Attribute name.
    pub name: String,
    /// Attribute values.
    pub value: NcValue,
}

/// A variable: a name, a dimension list, attributes, and its data.
#[derive(Debug, Clone, PartialEq)]
pub struct NcVar {
    /// Variable name.
    pub name: String,
    /// Indexes into [`NcFile::dims`], outermost first.
    pub dims: Vec<usize>,
    /// Per-variable attributes.
    pub attrs: Vec<NcAttr>,
    /// The data payload (row-major, complete).
    pub data: NcValue,
}

/// An in-memory netCDF-3 classic dataset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NcFile {
    /// Dimensions, in definition order.
    pub dims: Vec<NcDim>,
    /// Global attributes.
    pub attrs: Vec<NcAttr>,
    /// Variables, in definition order.
    pub vars: Vec<NcVar>,
    /// Number of records along the UNLIMITED dimension (0 when the
    /// dataset has no record dimension).
    pub numrecs: usize,
}

impl NcFile {
    /// An empty dataset.
    pub fn new() -> NcFile {
        NcFile::default()
    }

    /// Define a dimension; returns its id.
    pub fn add_dim(&mut self, name: &str, len: usize) -> usize {
        self.dims.push(NcDim {
            name: name.to_owned(),
            len,
        });
        self.dims.len() - 1
    }

    /// Define the record (UNLIMITED) dimension with `numrecs` records;
    /// returns its id. A classic file may have at most one.
    pub fn add_record_dim(&mut self, name: &str, numrecs: usize) -> NcResult<usize> {
        if self.record_dim().is_some() {
            return Err(NcError::DuplicateName(format!(
                "{name} (a record dimension already exists)"
            )));
        }
        self.numrecs = numrecs;
        Ok(self.add_dim(name, 0))
    }

    /// The record dimension's id, if one was defined.
    pub fn record_dim(&self) -> Option<usize> {
        self.dims.iter().position(NcDim::is_record)
    }

    /// `true` when `var` varies along the record dimension.
    pub fn is_record_var(&self, var: &NcVar) -> bool {
        matches!(
            (var.dims.first(), self.record_dim()),
            (Some(&first), Some(rec)) if first == rec
        )
    }

    /// Number of values one record of `var` holds (its shape with the
    /// record dimension stripped); equals the full length for fixed vars.
    pub fn per_record_len(&self, var: &NcVar) -> usize {
        let dims = if self.is_record_var(var) {
            &var.dims[1..]
        } else {
            &var.dims[..]
        };
        dims.iter().map(|&d| self.dims[d].len).product::<usize>()
    }

    /// Add a global attribute.
    pub fn add_attr(&mut self, name: &str, value: NcValue) {
        self.attrs.push(NcAttr {
            name: name.to_owned(),
            value,
        });
    }

    /// Define a variable over the given dimension ids with its data.
    ///
    /// Validates that every dimension id exists and that the data length
    /// equals the product of the dimension lengths.
    pub fn add_var(&mut self, name: &str, dims: &[usize], data: NcValue) -> NcResult<usize> {
        if self.vars.iter().any(|v| v.name == name) {
            return Err(NcError::DuplicateName(name.to_owned()));
        }
        let mut expected = 1usize;
        for (pos, &d) in dims.iter().enumerate() {
            let dim = self.dims.get(d).ok_or(NcError::BadDimId {
                var: name.to_owned(),
                dim: d,
            })?;
            if dim.is_record() {
                // The record dimension may only lead (classic rule).
                if pos != 0 {
                    return Err(NcError::BadDimId {
                        var: name.to_owned(),
                        dim: d,
                    });
                }
                expected = expected.saturating_mul(self.numrecs);
            } else {
                expected = expected.saturating_mul(dim.len);
            }
        }
        if dims.is_empty() {
            expected = 1; // scalar variable
        }
        if data.len() != expected {
            return Err(NcError::ShapeMismatch {
                var: name.to_owned(),
                expected,
                actual: data.len(),
            });
        }
        self.vars.push(NcVar {
            name: name.to_owned(),
            dims: dims.to_vec(),
            attrs: Vec::new(),
            data,
        });
        Ok(self.vars.len() - 1)
    }

    /// Look up a variable by name.
    pub fn var(&self, name: &str) -> Option<&NcVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Look up a dimension by name.
    pub fn dim(&self, name: &str) -> Option<&NcDim> {
        self.dims.iter().find(|d| d.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_validates_shape() {
        let mut nc = NcFile::new();
        let d = nc.add_dim("n", 4);
        assert!(matches!(
            nc.add_var("v", &[d], NcValue::Int(vec![1, 2])),
            Err(NcError::ShapeMismatch { expected: 4, actual: 2, .. })
        ));
        assert!(nc.add_var("v", &[d], NcValue::Int(vec![1, 2, 3, 4])).is_ok());
    }

    #[test]
    fn add_var_validates_dim_ids() {
        let mut nc = NcFile::new();
        assert!(matches!(
            nc.add_var("v", &[3], NcValue::Int(vec![])),
            Err(NcError::BadDimId { dim: 3, .. })
        ));
    }

    #[test]
    fn duplicate_var_rejected() {
        let mut nc = NcFile::new();
        let d = nc.add_dim("n", 1);
        nc.add_var("v", &[d], NcValue::Int(vec![0])).unwrap();
        assert!(matches!(
            nc.add_var("v", &[d], NcValue::Int(vec![0])),
            Err(NcError::DuplicateName(_))
        ));
    }

    #[test]
    fn scalar_variable() {
        let mut nc = NcFile::new();
        nc.add_var("s", &[], NcValue::Double(vec![3.5])).unwrap();
        assert_eq!(nc.var("s").unwrap().data.as_double(), Some(&[3.5][..]));
    }

    #[test]
    fn multidim_shape() {
        let mut nc = NcFile::new();
        let a = nc.add_dim("a", 2);
        let b = nc.add_dim("b", 3);
        assert!(nc.add_var("m", &[a, b], NcValue::Float(vec![0.0; 6])).is_ok());
    }

    #[test]
    fn type_widths() {
        assert_eq!(NcType::Byte.width(), 1);
        assert_eq!(NcType::Char.width(), 1);
        assert_eq!(NcType::Short.width(), 2);
        assert_eq!(NcType::Int.width(), 4);
        assert_eq!(NcType::Float.width(), 4);
        assert_eq!(NcType::Double.width(), 8);
        assert!(NcType::from_tag(7, 0).is_err());
        assert_eq!(NcType::from_tag(6, 0).unwrap(), NcType::Double);
    }
}
