//! Deserializing XBS streams.

use crate::byteorder::ByteOrder;
use crate::error::{XbsError, XbsResult};
use crate::prim::Primitive;
use crate::vls;

/// A cursor over an XBS byte stream.
///
/// The reader tracks an absolute offset into the buffer so it can
/// reconstruct the alignment decisions the writer made. For the reads to
/// line up, the buffer passed in must start where the writer's stream
/// started (BXSA documents are self-contained, so this is the natural
/// usage).
#[derive(Debug, Clone)]
pub struct XbsReader<'a> {
    buf: &'a [u8],
    pos: usize,
    order: ByteOrder,
}

impl<'a> XbsReader<'a> {
    /// Wrap `buf`, starting at offset zero, decoding in `order`.
    pub fn new(buf: &'a [u8], order: ByteOrder) -> XbsReader<'a> {
        XbsReader { buf, pos: 0, order }
    }

    /// Byte order used for numeric decoding.
    #[inline]
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Switch byte order mid-stream (BXSA records the order per frame).
    #[inline]
    pub fn set_order(&mut self, order: ByteOrder) {
        self.order = order;
    }

    /// Current absolute offset.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Move the cursor to an absolute offset (used by skip-scans).
    ///
    /// The offset may be up to and including the end of the buffer.
    pub fn seek(&mut self, pos: usize) -> XbsResult<()> {
        if pos > self.buf.len() {
            return Err(XbsError::UnexpectedEof {
                offset: self.buf.len(),
                needed: pos - self.buf.len(),
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Bytes left before the end of the buffer.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the cursor has consumed the whole buffer.
    #[inline]
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// The entire underlying buffer (not just the unread part).
    #[inline]
    pub fn buffer(&self) -> &'a [u8] {
        self.buf
    }

    fn need(&self, n: usize) -> XbsResult<()> {
        if self.remaining() < n {
            Err(XbsError::UnexpectedEof {
                offset: self.pos,
                needed: n - self.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Advance past zero padding so the cursor is `align`-aligned.
    ///
    /// Fails if any skipped byte is non-zero (a desynchronized stream) or
    /// if the padding runs past the end of the buffer.
    pub fn align(&mut self, align: usize) -> XbsResult<()> {
        let target = crate::align_up(self.pos, align);
        self.need(target - self.pos)?;
        for i in self.pos..target {
            if self.buf[i] != 0 {
                return Err(XbsError::BadPadding { offset: i });
            }
        }
        self.pos = target;
        Ok(())
    }

    /// Read `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> XbsResult<&'a [u8]> {
        self.need(n)?;
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one raw byte.
    #[inline]
    pub fn read_raw_u8(&mut self) -> XbsResult<u8> {
        self.need(1)?;
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Read a variable-length size integer.
    pub fn read_vls(&mut self) -> XbsResult<u64> {
        let (value, used) = vls::read_vls(&self.buf[self.pos..], self.pos)?;
        self.pos += used;
        Ok(value)
    }

    /// Read a possibly padded (non-canonical) VLS — the BXSA frame-size
    /// field only.
    pub fn read_vls_padded(&mut self) -> XbsResult<u64> {
        let (value, used) = vls::read_vls_padded(&self.buf[self.pos..], self.pos)?;
        self.pos += used;
        Ok(value)
    }

    /// Read a VLS and validate it as a usize-sized count against the bytes
    /// remaining (`bytes_per_item` ≥ 1 prevents count-overflow attacks on
    /// preallocation).
    pub fn read_count(&mut self, bytes_per_item: usize) -> XbsResult<usize> {
        let offset = self.pos;
        let declared = self.read_vls()?;
        let max_items = (self.remaining() / bytes_per_item.max(1)) as u64;
        if declared > max_items {
            return Err(XbsError::LengthOverrun {
                offset,
                declared,
                available: self.remaining(),
            });
        }
        Ok(declared as usize)
    }

    /// Read a VLS-length-prefixed UTF-8 string.
    ///
    /// Invalid UTF-8 is replaced rather than erroring at this layer; the
    /// layers above (XML names) apply their own validation.
    pub fn read_str(&mut self) -> XbsResult<&'a str> {
        let len = self.read_count(1)?;
        let bytes = self.read_bytes(len)?;
        std::str::from_utf8(bytes).map_err(|_| XbsError::BadPadding { offset: self.pos - len })
    }

    /// Read one aligned fixed-width value.
    pub fn read<T: Primitive>(&mut self) -> XbsResult<T> {
        self.align(T::WIDTH)?;
        self.need(T::WIDTH)?;
        let v = T::read_bytes(self.order, &self.buf[self.pos..]);
        self.pos += T::WIDTH;
        Ok(v)
    }

    /// Read `count` aligned packed values into a fresh `Vec`.
    pub fn read_packed<T: Primitive>(&mut self, count: usize) -> XbsResult<Vec<T>> {
        let mut out = Vec::new();
        self.read_packed_into(count, &mut out)?;
        Ok(out)
    }

    /// Read `count` aligned packed values into `out`, reusing its
    /// capacity (clear-and-refill). The decode-direction counterpart of
    /// the writer's buffer reuse: steady-state array decode performs no
    /// heap allocation once `out` has grown to the working-set size.
    ///
    /// When the stream's byte order matches the machine's, the payload is
    /// moved with one bounds-checked bulk copy instead of a per-element
    /// conversion loop.
    pub fn read_packed_into<T: Primitive>(
        &mut self,
        count: usize,
        out: &mut Vec<T>,
    ) -> XbsResult<()> {
        self.align(T::WIDTH)?;
        let total = count
            .checked_mul(T::WIDTH)
            .ok_or(XbsError::LengthOverrun {
                offset: self.pos,
                declared: count as u64,
                available: self.remaining(),
            })?;
        self.need(total)?;
        let src = &self.buf[self.pos..self.pos + total];
        out.clear();
        out.reserve(count);
        if self.order.is_native() {
            // SAFETY ARGUMENT: `T` is a sealed plain-numeric `Primitive`
            // (no padding bytes, every bit pattern valid), `reserve`
            // guarantees capacity for `count` elements, and `need`
            // bounds-checked that `src` holds exactly `count * T::WIDTH`
            // payload bytes in native byte order. The byte-wise copy
            // therefore fully initializes the first `count` elements, and
            // `set_len` publishes only those.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr(), out.as_mut_ptr().cast::<u8>(), total);
                out.set_len(count);
            }
        } else {
            out.extend(
                src.chunks_exact(T::WIDTH)
                    .map(|chunk| T::read_bytes(self.order, chunk)),
            );
        }
        self.pos += total;
        Ok(())
    }

    /// Borrow `count` packed values in place, without copying.
    ///
    /// Returns `None` (instead of falling back silently) when a zero-copy
    /// view is impossible: the stream's byte order is not the machine's,
    /// or the buffer happens to be mapped at an address where the payload
    /// is not sufficiently aligned for `T`. Callers fall back to
    /// [`XbsReader::read_packed`]. On success the cursor advances past the
    /// payload.
    ///
    /// This is the paper's "large arrays can be read ... by simply using
    /// memory-mapped file I/O ... avoiding an extra copy" (§4.1), realized
    /// with a safe `align_to` view.
    pub fn read_packed_zero_copy<T: Primitive>(
        &mut self,
        count: usize,
    ) -> XbsResult<Option<&'a [T]>> {
        self.align(T::WIDTH)?;
        let total = count
            .checked_mul(T::WIDTH)
            .ok_or(XbsError::LengthOverrun {
                offset: self.pos,
                declared: count as u64,
                available: self.remaining(),
            })?;
        self.need(total)?;
        if !self.order.is_native() {
            return Ok(None);
        }
        let src = &self.buf[self.pos..self.pos + total];
        // SAFETY ARGUMENT (all-safe code): `align_to` splits the byte
        // slice into (unaligned head, aligned middle, tail). T is a plain
        // numeric type, so reinterpreting fully-aligned bytes is valid for
        // it; if the head is non-empty the mapping address was unaligned
        // and we decline the zero-copy path.
        let (head, mid, _tail) = unsafe { src.align_to::<T>() };
        if !head.is_empty() || mid.len() != count {
            return Ok(None);
        }
        self.pos += total;
        Ok(Some(mid))
    }

    /// Read a counted packed array (VLS count + aligned elements).
    pub fn read_array<T: Primitive>(&mut self) -> XbsResult<Vec<T>> {
        let count = self.read_count(T::WIDTH)?;
        self.read_packed(count)
    }

    /// Read a counted packed array into `out`, reusing its capacity.
    pub fn read_array_into<T: Primitive>(&mut self, out: &mut Vec<T>) -> XbsResult<()> {
        let count = self.read_count(T::WIDTH)?;
        self.read_packed_into(count, out)
    }
}

macro_rules! concrete_reads {
    ($(($scalar:ident, $array:ident, $t:ty)),+ $(,)?) => {
        impl<'a> XbsReader<'a> {
            $(
                #[doc = concat!("Read one aligned `", stringify!($t), "`.")]
                #[inline]
                pub fn $scalar(&mut self) -> XbsResult<$t> {
                    self.read::<$t>()
                }

                #[doc = concat!("Read a counted packed array of `", stringify!($t), "`.")]
                #[inline]
                pub fn $array(&mut self) -> XbsResult<Vec<$t>> {
                    self.read_array::<$t>()
                }
            )+
        }
    };
}

concrete_reads! {
    (read_i8, read_array_i8, i8),
    (read_u8, read_array_u8, u8),
    (read_i16, read_array_i16, i16),
    (read_u16, read_array_u16, u16),
    (read_i32, read_array_i32, i32),
    (read_u32, read_array_u32, u32),
    (read_i64, read_array_i64, i64),
    (read_u64, read_array_u64, u64),
    (read_f32, read_array_f32, f32),
    (read_f64, read_array_f64, f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::XbsWriter;
    use proptest::prelude::*;

    #[test]
    fn eof_on_empty() {
        let mut r = XbsReader::new(&[], ByteOrder::Little);
        assert!(matches!(
            r.read_u32(),
            Err(XbsError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_padding_detected() {
        // One byte 0xFF then an f64: reader must align over 7 pad bytes
        // and reject the non-zero one.
        let mut buf = vec![0x01u8, 0xff];
        buf.extend_from_slice(&[0u8; 14]);
        let mut r = XbsReader::new(&buf, ByteOrder::Little);
        r.read_raw_u8().unwrap();
        let e = r.read_f64().unwrap_err();
        assert_eq!(e, XbsError::BadPadding { offset: 1 });
    }

    #[test]
    fn count_overrun_rejected() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_vls(1_000_000); // claims a million elements
        w.put_f64(1.0);
        let buf = w.into_bytes();
        let mut r = XbsReader::new(&buf, ByteOrder::Little);
        assert!(matches!(
            r.read_array_f64(),
            Err(XbsError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn zero_copy_native_order() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let mut w = XbsWriter::new(ByteOrder::native());
        w.put_raw_u8(0x42); // force some initial misalignment
        w.put_packed(&data);
        let buf = w.into_bytes();
        let mut r = XbsReader::new(&buf, ByteOrder::native());
        r.read_raw_u8().unwrap();
        // The buffer itself is Vec<u8>-allocated; alignment of the Vec's
        // base address is not guaranteed to be 8, so accept either
        // outcome but verify correctness when zero-copy succeeds.
        match r.read_packed_zero_copy::<f64>(data.len()).unwrap() {
            Some(view) => assert_eq!(view, &data[..]),
            None => {
                let copied = r.read_packed::<f64>(data.len()).unwrap();
                assert_eq!(copied, data);
            }
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn zero_copy_declines_foreign_order() {
        let foreign = match ByteOrder::native() {
            ByteOrder::Little => ByteOrder::Big,
            ByteOrder::Big => ByteOrder::Little,
        };
        let mut w = XbsWriter::new(foreign);
        w.put_packed(&[1.0f64, 2.0]);
        let buf = w.into_bytes();
        let mut r = XbsReader::new(&buf, foreign);
        assert_eq!(r.read_packed_zero_copy::<f64>(2).unwrap(), None);
        // Fallback still decodes correctly.
        assert_eq!(r.read_packed::<f64>(2).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn packed_into_reuses_capacity_both_orders() {
        let data: Vec<f64> = (0..64).map(|i| i as f64 * 1.25).collect();
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let mut w = XbsWriter::new(order);
            w.put_packed(&data);
            w.put_packed(&data);
            let buf = w.into_bytes();
            let mut r = XbsReader::new(&buf, order);
            let mut out: Vec<f64> = Vec::new();
            r.read_packed_into(data.len(), &mut out).unwrap();
            assert_eq!(out, data);
            let ptr = out.as_ptr();
            // Second fill of the same size must not reallocate.
            r.read_packed_into(data.len(), &mut out).unwrap();
            assert_eq!(out, data);
            assert_eq!(out.as_ptr(), ptr, "refill of equal size must reuse the buffer");
        }
    }

    #[test]
    fn packed_into_error_leaves_out_untouched() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_packed(&[1.0f64, 2.0]);
        let buf = w.into_bytes();
        let mut r = XbsReader::new(&buf[..buf.len() - 1], ByteOrder::Little);
        let mut out = vec![9.0f64; 4];
        assert!(r.read_packed_into(2, &mut out).is_err());
        // The error path must not leave stale values visible.
        assert_eq!(r.position(), 0);
        assert_eq!(out, vec![9.0f64; 4]);
    }

    #[test]
    fn seek_bounds() {
        let buf = [0u8; 4];
        let mut r = XbsReader::new(&buf, ByteOrder::Little);
        r.seek(4).unwrap();
        assert!(r.is_at_end());
        assert!(r.seek(5).is_err());
    }

    #[test]
    fn str_roundtrip() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_str("soap:Envelope");
        let buf = w.into_bytes();
        let mut r = XbsReader::new(&buf, ByteOrder::Little);
        assert_eq!(r.read_str().unwrap(), "soap:Envelope");
    }

    proptest! {
        #[test]
        fn array_roundtrip_f64(data in proptest::collection::vec(any::<f64>(), 0..200)) {
            for order in [ByteOrder::Little, ByteOrder::Big] {
                let mut w = XbsWriter::new(order);
                w.put_array_f64(&data);
                let buf = w.into_bytes();
                let mut r = XbsReader::new(&buf, order);
                let back = r.read_array_f64().unwrap();
                prop_assert_eq!(back.len(), data.len());
                for (a, b) in back.iter().zip(&data) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        #[test]
        fn array_roundtrip_i32(data in proptest::collection::vec(any::<i32>(), 0..200)) {
            for order in [ByteOrder::Little, ByteOrder::Big] {
                let mut w = XbsWriter::new(order);
                w.put_array_i32(&data);
                let buf = w.into_bytes();
                let mut r = XbsReader::new(&buf, order);
                prop_assert_eq!(r.read_array_i32().unwrap(), data.clone());
            }
        }

        #[test]
        fn interleaved_scalars_roundtrip(
            a in any::<u8>(), b in any::<f32>(), c in any::<i64>(), d in any::<u16>()
        ) {
            let mut w = XbsWriter::new(ByteOrder::Big);
            w.put_u8(a);
            w.put_f32(b);
            w.put_i64(c);
            w.put_u16(d);
            let buf = w.into_bytes();
            let mut r = XbsReader::new(&buf, ByteOrder::Big);
            prop_assert_eq!(r.read_u8().unwrap(), a);
            prop_assert_eq!(r.read_f32().unwrap().to_bits(), b.to_bits());
            prop_assert_eq!(r.read_i64().unwrap(), c);
            prop_assert_eq!(r.read_u16().unwrap(), d);
        }
    }
}
