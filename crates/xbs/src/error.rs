//! Error type shared by all XBS readers and parsers.

use std::fmt;

/// Errors produced while decoding an XBS byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XbsError {
    /// The reader ran past the end of the buffer.
    ///
    /// Carries the offset at which the read was attempted and the number of
    /// bytes that were needed.
    UnexpectedEof { offset: usize, needed: usize },
    /// A variable-length size integer used more bytes than the 64-bit
    /// maximum allows (protection against malformed or malicious input).
    VlsTooLong { offset: usize },
    /// A variable-length size integer was not minimally encoded.
    ///
    /// Canonical VLS encoding is required so that re-encoding a decoded
    /// document is byte-identical (needed for transcodability tests).
    VlsNotCanonical { offset: usize },
    /// A declared length (array count, string length, frame size) exceeds
    /// the remaining input.
    LengthOverrun {
        offset: usize,
        declared: u64,
        available: usize,
    },
    /// An unknown type code was encountered.
    BadTypeCode { offset: usize, code: u8 },
    /// Alignment padding bytes were non-zero.
    ///
    /// XBS mandates zero padding; anything else indicates a desynchronized
    /// or corrupt stream.
    BadPadding { offset: usize },
}

impl fmt::Display for XbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbsError::UnexpectedEof { offset, needed } => {
                write!(f, "unexpected end of input at offset {offset}: {needed} more byte(s) required")
            }
            XbsError::VlsTooLong { offset } => {
                write!(f, "variable-length size integer at offset {offset} exceeds 64 bits")
            }
            XbsError::VlsNotCanonical { offset } => {
                write!(f, "variable-length size integer at offset {offset} is not minimally encoded")
            }
            XbsError::LengthOverrun {
                offset,
                declared,
                available,
            } => write!(
                f,
                "declared length {declared} at offset {offset} exceeds the {available} byte(s) remaining"
            ),
            XbsError::BadTypeCode { offset, code } => {
                write!(f, "unknown type code {code:#04x} at offset {offset}")
            }
            XbsError::BadPadding { offset } => {
                write!(f, "non-zero alignment padding at offset {offset}")
            }
        }
    }
}

impl std::error::Error for XbsError {}

/// Convenient result alias used throughout the crate.
pub type XbsResult<T> = Result<T, XbsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XbsError::UnexpectedEof {
            offset: 12,
            needed: 4,
        };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains('4'), "{s}");

        let e = XbsError::LengthOverrun {
            offset: 3,
            declared: 100,
            available: 7,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains('7'), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XbsError>();
    }
}
