//! Serializing XBS streams.

use crate::byteorder::ByteOrder;
use crate::prim::Primitive;
use crate::vls;

/// An append-only XBS output stream.
///
/// Offsets are relative to the start of the stream's buffer; the writer
/// pads with zero bytes so that every fixed-width number lands on a
/// multiple of its own size, enabling the zero-copy reads on the other
/// side (see [`crate::reader::XbsReader`]).
#[derive(Debug, Clone)]
pub struct XbsWriter {
    buf: Vec<u8>,
    order: ByteOrder,
}

impl XbsWriter {
    /// A new empty stream in the given byte order.
    pub fn new(order: ByteOrder) -> XbsWriter {
        XbsWriter {
            buf: Vec::new(),
            order,
        }
    }

    /// A new empty stream with preallocated capacity.
    pub fn with_capacity(capacity: usize, order: ByteOrder) -> XbsWriter {
        XbsWriter {
            buf: Vec::with_capacity(capacity),
            order,
        }
    }

    /// A new stream writing into a caller-provided buffer.
    ///
    /// The buffer is cleared but keeps its capacity, so a buffer recovered
    /// with [`into_bytes`](XbsWriter::into_bytes) or
    /// [`take_buf`](XbsWriter::take_buf) can be cycled through encode
    /// calls without reallocating once it has grown to the working-set
    /// size. This is the reusable-buffer mode `bxsa::encode_into` and the
    /// SOAP engine's per-connection pools are built on.
    pub fn from_buf(mut buf: Vec<u8>, order: ByteOrder) -> XbsWriter {
        buf.clear();
        XbsWriter { buf, order }
    }

    /// Take the encoded bytes out of the writer, leaving it empty but
    /// usable (unlike [`into_bytes`](XbsWriter::into_bytes), the writer
    /// itself survives and can keep encoding into a fresh buffer).
    #[inline]
    pub fn take_buf(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Discard everything written so far, keeping the buffer's capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Byte order this writer encodes numbers in.
    #[inline]
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Current length of the stream (also the offset of the next write).
    #[inline]
    pub fn offset(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the encoded bytes.
    #[inline]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Insert zero bytes until the next write offset is a multiple of
    /// `align`. Returns the number of padding bytes inserted.
    #[inline]
    pub fn align(&mut self, align: usize) -> usize {
        let target = crate::align_up(self.buf.len(), align);
        let pad = target - self.buf.len();
        // `resize` with 0 is cheap and keeps padding deterministic; the
        // reader verifies the padding is zero to detect desynchronization.
        self.buf.resize(target, 0);
        pad
    }

    /// Append raw bytes with no alignment (names, UTF-8 text, prefixes).
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a single raw byte (frame type codes and similar).
    #[inline]
    pub fn put_raw_u8(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Append a variable-length size integer; returns bytes written.
    #[inline]
    pub fn put_vls(&mut self, value: u64) -> usize {
        vls::write_vls(&mut self.buf, value)
    }

    /// Append a length-prefixed UTF-8 string (VLS byte length + bytes).
    #[inline]
    pub fn put_str(&mut self, s: &str) {
        self.put_vls(s.len() as u64);
        self.put_bytes(s.as_bytes());
    }

    /// Append one aligned fixed-width value.
    #[inline]
    pub fn put<T: Primitive>(&mut self, value: T) {
        self.align(T::WIDTH);
        let start = self.buf.len();
        self.buf.resize(start + T::WIDTH, 0);
        value.write_bytes(self.order, &mut self.buf[start..]);
    }

    /// Append an aligned packed run of values *without* a count prefix.
    ///
    /// The element count is carried elsewhere (e.g. in a BXSA array frame
    /// header written before calling this).
    pub fn put_packed<T: Primitive>(&mut self, values: &[T]) {
        self.align(T::WIDTH);
        let start = self.buf.len();
        self.buf.resize(start + values.len() * T::WIDTH, 0);
        if self.order.is_native() {
            // Hot path for scientific payloads: one bulk copy, no
            // per-element swabbing. Safe because T is a sealed plain-old
            // numeric type with no padding.
            let dst = &mut self.buf[start..];
            // Build the byte view via to_ne_bytes per chunk to stay in
            // safe code; LLVM turns this loop into a memcpy.
            for (chunk, v) in dst.chunks_exact_mut(T::WIDTH).zip(values) {
                v.write_bytes(self.order, chunk);
            }
        } else {
            for (chunk, v) in self.buf[start..].chunks_exact_mut(T::WIDTH).zip(values) {
                v.write_bytes(self.order, chunk);
            }
        }
    }

    /// Append a counted, aligned packed array: VLS element count followed
    /// by the aligned elements.
    pub fn put_array<T: Primitive>(&mut self, values: &[T]) {
        self.put_vls(values.len() as u64);
        self.put_packed(values);
    }

    /// Reserve `n` zero bytes for later backpatching; returns their offset.
    ///
    /// BXSA writes each frame in a single pass: the frame-size field is
    /// reserved here and patched once the body length is known, so nothing
    /// already written (in particular aligned array payloads) moves.
    #[inline]
    pub fn reserve(&mut self, n: usize) -> usize {
        let at = self.buf.len();
        self.buf.resize(at + n, 0);
        at
    }

    /// Patch a previously [`reserve`](XbsWriter::reserve)d region with a
    /// padded VLS encoding of `value` occupying exactly `len` bytes.
    ///
    /// # Panics
    /// Panics if the region is out of bounds or `value` does not fit.
    #[inline]
    pub fn patch_vls_padded(&mut self, at: usize, value: u64, len: usize) {
        vls::write_vls_padded(&mut self.buf[at..at + len], value, len);
    }
}

macro_rules! concrete_puts {
    ($(($scalar:ident, $array:ident, $t:ty)),+ $(,)?) => {
        impl XbsWriter {
            $(
                #[doc = concat!("Append one aligned `", stringify!($t), "`.")]
                #[inline]
                pub fn $scalar(&mut self, value: $t) {
                    self.put(value);
                }

                #[doc = concat!("Append a counted packed array of `", stringify!($t), "`.")]
                #[inline]
                pub fn $array(&mut self, values: &[$t]) {
                    self.put_array(values);
                }
            )+
        }
    };
}

concrete_puts! {
    (put_i8, put_array_i8, i8),
    (put_u8, put_array_u8, u8),
    (put_i16, put_array_i16, i16),
    (put_u16, put_array_u16, u16),
    (put_i32, put_array_i32, i32),
    (put_u32, put_array_u32, u32),
    (put_i64, put_array_i64, i64),
    (put_u64, put_array_u64, u64),
    (put_f32, put_array_f32, f32),
    (put_f64, put_array_f64, f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_alignment_pads() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_u8(1); // offset 0
        w.put_f64(2.0); // pads to offset 8
        assert_eq!(w.offset(), 16);
        assert_eq!(&w.as_bytes()[1..8], &[0u8; 7]);
    }

    #[test]
    fn no_padding_when_aligned() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_u32(9);
        w.put_u32(10);
        assert_eq!(w.offset(), 8);
    }

    #[test]
    fn packed_array_is_contiguous() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_packed(&[1.0f64, 2.0, 3.0]);
        assert_eq!(w.offset(), 24);
        assert_eq!(&w.as_bytes()[0..8], &1.0f64.to_le_bytes());
    }

    #[test]
    fn counted_array_layout() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_array(&[7i32, 8]);
        // count (1 byte VLS = 0x02), pad to 4, two 4-byte ints
        let b = w.as_bytes();
        assert_eq!(b[0], 2);
        assert_eq!(&b[1..4], &[0, 0, 0]);
        assert_eq!(&b[4..8], &7i32.to_le_bytes());
        assert_eq!(&b[8..12], &8i32.to_le_bytes());
    }

    #[test]
    fn str_is_length_prefixed() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_str("héllo");
        let b = w.as_bytes();
        assert_eq!(b[0] as usize, "héllo".len());
        assert_eq!(&b[1..], "héllo".as_bytes());
    }

    #[test]
    fn big_endian_scalar_bytes() {
        let mut w = XbsWriter::new(ByteOrder::Big);
        w.put_u16(0x0102);
        assert_eq!(w.as_bytes(), &[1, 2]);
    }

    #[test]
    fn align_returns_pad_count() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_raw_u8(0xaa);
        assert_eq!(w.align(8), 7);
        assert_eq!(w.align(8), 0);
    }

    #[test]
    fn from_buf_reuses_capacity_and_clears() {
        let mut stale = Vec::with_capacity(1024);
        stale.extend_from_slice(b"leftover");
        let cap = stale.capacity();
        let ptr = stale.as_ptr();
        let mut w = XbsWriter::from_buf(stale, ByteOrder::Little);
        assert!(w.is_empty());
        w.put_u32(0xdeadbeef);
        let out = w.take_buf();
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.as_ptr(), ptr);
        assert_eq!(out, 0xdeadbeefu32.to_le_bytes());
    }

    #[test]
    fn take_buf_leaves_writer_usable() {
        let mut w = XbsWriter::new(ByteOrder::Little);
        w.put_u8(1);
        let first = w.take_buf();
        assert_eq!(first, [1]);
        assert!(w.is_empty());
        w.put_u8(2);
        assert_eq!(w.as_bytes(), [2]);
    }

    #[test]
    fn clear_keeps_writing_from_offset_zero() {
        let mut w = XbsWriter::with_capacity(64, ByteOrder::Little);
        w.put_u64(7);
        w.clear();
        assert_eq!(w.offset(), 0);
        w.put_u8(3);
        assert_eq!(w.as_bytes(), [3]);
    }
}
