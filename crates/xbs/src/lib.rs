//! # XBS — a streaming binary serializer for high-performance computing
//!
//! XBS is the bottom layer of the BXSA binary-XML stack (Chiu, HPC
//! Symposium 2004; used by Lu, Chiu & Gannon, HPDC 2006). It packs
//! *fundamental types* into a byte sequence with three properties that the
//! layers above rely on:
//!
//! 1. **Minimal type repertoire** — 1-, 2-, 4- and 8-byte integers, 4- and
//!    8-byte IEEE-754 floating-point numbers, and one-dimensional packed
//!    arrays of those.
//! 2. **Natural alignment** — every number is written at an offset that is
//!    a multiple of its own size (relative to the start of the stream),
//!    padding with zero bytes as needed. Aligned packed arrays can then be
//!    *viewed* in place without copying (see
//!    [`XbsReader::read_f64_slice_zero_copy`](reader::XbsReader)).
//! 3. **Explicit byte order** — both little- and big-endian encodings are
//!    supported; the consumer (a BXSA frame) records which one is in use.
//!
//! On top of the fixed-width primitives, XBS provides the variable-length
//! size integer (**VLS**) used by BXSA for frame sizes, counts and string
//! lengths (see [`vls`]).
//!
//! ```
//! use xbs::{XbsWriter, XbsReader, ByteOrder};
//!
//! let mut w = XbsWriter::new(ByteOrder::Little);
//! w.put_u8(7);
//! w.put_f64(3.25);            // padded to an 8-byte boundary first
//! w.put_array_i32(&[1, 2, 3]);
//!
//! let buf = w.into_bytes();
//! let mut r = XbsReader::new(&buf, ByteOrder::Little);
//! assert_eq!(r.read_u8().unwrap(), 7);
//! assert_eq!(r.read_f64().unwrap(), 3.25);
//! assert_eq!(r.read_array_i32().unwrap(), vec![1, 2, 3]);
//! ```

pub mod byteorder;
pub mod error;
pub mod prim;
pub mod reader;
pub mod typecode;
pub mod vls;
pub mod writer;

pub use byteorder::ByteOrder;
pub use error::{XbsError, XbsResult};
pub use prim::Primitive;
pub use reader::XbsReader;
pub use typecode::TypeCode;
pub use writer::XbsWriter;

/// Round `offset` up to the next multiple of `align`.
///
/// `align` must be a power of two (all XBS primitive widths are).
#[inline]
pub fn align_up(offset: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (offset + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 1), 0);
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(align_up(13, 4), 16);
        assert_eq!(align_up(13, 2), 14);
    }

    #[test]
    fn roundtrip_mixed_stream() {
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let mut w = XbsWriter::new(order);
            w.put_i8(-3);
            w.put_i16(-300);
            w.put_i32(70_000);
            w.put_i64(-(1 << 40));
            w.put_f32(1.5);
            w.put_f64(-2.25);
            w.put_u8(255);
            let buf = w.into_bytes();

            let mut r = XbsReader::new(&buf, order);
            assert_eq!(r.read_i8().unwrap(), -3);
            assert_eq!(r.read_i16().unwrap(), -300);
            assert_eq!(r.read_i32().unwrap(), 70_000);
            assert_eq!(r.read_i64().unwrap(), -(1 << 40));
            assert_eq!(r.read_f32().unwrap(), 1.5);
            assert_eq!(r.read_f64().unwrap(), -2.25);
            assert_eq!(r.read_u8().unwrap(), 255);
            assert!(r.is_at_end());
        }
    }
}
