//! Byte-order selection.
//!
//! BXSA stores the byte order *per frame* (two bits in the common frame
//! prefix) rather than per document, so that a frame can be embedded in a
//! container of a different endianness without rewriting (paper §4.1).
//! XBS therefore has to be able to read and write both orders.

/// Endianness of the numbers in an XBS stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ByteOrder {
    /// Least-significant byte first (x86, most modern machines).
    #[default]
    Little,
    /// Most-significant byte first ("network order").
    Big,
}

impl ByteOrder {
    /// The byte order of the machine this code is running on.
    #[inline]
    pub const fn native() -> ByteOrder {
        if cfg!(target_endian = "little") {
            ByteOrder::Little
        } else {
            ByteOrder::Big
        }
    }

    /// `true` when this is the running machine's native order, in which
    /// case packed arrays can be read without byte swapping.
    #[inline]
    pub const fn is_native(self) -> bool {
        matches!(
            (self, ByteOrder::native()),
            (ByteOrder::Little, ByteOrder::Little) | (ByteOrder::Big, ByteOrder::Big)
        )
    }

    /// Two-bit code stored in the BXSA common frame prefix.
    #[inline]
    pub const fn code(self) -> u8 {
        match self {
            ByteOrder::Little => 0,
            ByteOrder::Big => 1,
        }
    }

    /// Inverse of [`ByteOrder::code`]. Codes 2 and 3 are reserved.
    #[inline]
    pub const fn from_code(code: u8) -> Option<ByteOrder> {
        match code {
            0 => Some(ByteOrder::Little),
            1 => Some(ByteOrder::Big),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for o in [ByteOrder::Little, ByteOrder::Big] {
            assert_eq!(ByteOrder::from_code(o.code()), Some(o));
        }
        assert_eq!(ByteOrder::from_code(2), None);
        assert_eq!(ByteOrder::from_code(3), None);
    }

    #[test]
    fn native_matches_cfg() {
        #[cfg(target_endian = "little")]
        assert_eq!(ByteOrder::native(), ByteOrder::Little);
        #[cfg(target_endian = "big")]
        assert_eq!(ByteOrder::native(), ByteOrder::Big);
        assert!(ByteOrder::native().is_native());
    }
}
