//! Variable-length size integers (VLS).
//!
//! BXSA uses a compact variable-length encoding for frame sizes, counts
//! and string lengths (the fields marked "(VLS)" in Figure 2 of the
//! paper). We use the standard LEB128 scheme: seven payload bits per byte,
//! the high bit set on every byte except the last. Small values — the
//! overwhelmingly common case for name lengths and attribute counts —
//! occupy a single byte.
//!
//! Decoding enforces **canonical form** (no redundant trailing zero
//! groups): a given value has exactly one encoding, which makes
//! `decode(encode(x)) == x` *and* `encode(decode(b)) == b`, a property the
//! transcodability tests rely on.

use crate::error::{XbsError, XbsResult};

/// Maximum number of bytes a canonical 64-bit VLS can occupy.
pub const MAX_VLS_LEN: usize = 10;

/// Append the VLS encoding of `value` to `out`; returns the number of
/// bytes written.
#[inline]
pub fn write_vls(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_vls`] would emit for `value`, without writing.
#[inline]
pub fn vls_len(value: u64) -> usize {
    // 64-bit values need ceil(bits/7) bytes; `value == 0` still takes one.
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

/// Decode a VLS starting at `buf[offset]`.
///
/// Returns the decoded value and the number of bytes consumed. `offset` is
/// only used for error reporting.
#[inline]
pub fn read_vls(buf: &[u8], offset: usize) -> XbsResult<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VLS_LEN {
            return Err(XbsError::VlsTooLong { offset });
        }
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute a single bit (bit 63).
        if shift == 63 && payload > 1 {
            return Err(XbsError::VlsTooLong { offset });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            // Canonical form: the final byte of a multi-byte encoding must
            // be non-zero, otherwise a shorter encoding exists.
            if i > 0 && byte == 0 {
                return Err(XbsError::VlsNotCanonical { offset });
            }
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(XbsError::UnexpectedEof {
        offset: offset + buf.len(),
        needed: 1,
    })
}

/// Encode `value` in *exactly* `len` bytes, padding with continuation
/// bytes (non-canonical LEB128).
///
/// Used for backpatched fields — a BXSA encoder reserves the frame-size
/// field before the frame body is written, then patches the actual size in
/// place; padding the encoding (rather than shifting the buffer) preserves
/// the alignment of everything already written. Panics if `value` does not
/// fit in `len` bytes (`len * 7` payload bits) — callers size the field
/// from an upper bound, so this is a programming error, not bad input.
pub fn write_vls_padded(out: &mut [u8], mut value: u64, len: usize) {
    assert!((1..=MAX_VLS_LEN).contains(&len), "bad padded VLS length {len}");
    assert!(
        7 * len >= 64 || value >> (7 * len) == 0,
        "value {value} does not fit in a {len}-byte VLS"
    );
    for slot in out.iter_mut().take(len - 1) {
        *slot = (value & 0x7f) as u8 | 0x80;
        value >>= 7;
    }
    assert!(value <= 0x7f, "value overflowed padded VLS");
    out[len - 1] = value as u8;
}

/// Decode a possibly *padded* (non-canonical) VLS.
///
/// Identical to [`read_vls`] except that redundant trailing zero groups
/// are accepted. Only the BXSA frame-size field uses this relaxation.
#[inline]
pub fn read_vls_padded(buf: &[u8], offset: usize) -> XbsResult<(u64, usize)> {
    match read_vls(buf, offset) {
        Err(XbsError::VlsNotCanonical { .. }) => {
            // Re-run without the canonicality rejection.
            let mut value: u64 = 0;
            let mut shift = 0u32;
            for (i, &byte) in buf.iter().enumerate() {
                if i >= MAX_VLS_LEN {
                    return Err(XbsError::VlsTooLong { offset });
                }
                let payload = (byte & 0x7f) as u64;
                if shift == 63 && payload > 1 {
                    return Err(XbsError::VlsTooLong { offset });
                }
                if shift < 64 {
                    value |= payload << shift;
                }
                if byte & 0x80 == 0 {
                    return Ok((value, i + 1));
                }
                shift += 7;
            }
            Err(XbsError::UnexpectedEof {
                offset: offset + buf.len(),
                needed: 1,
            })
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn enc(v: u64) -> Vec<u8> {
        let mut out = Vec::new();
        write_vls(&mut out, v);
        out
    }

    #[test]
    fn known_encodings() {
        assert_eq!(enc(0), vec![0x00]);
        assert_eq!(enc(1), vec![0x01]);
        assert_eq!(enc(127), vec![0x7f]);
        assert_eq!(enc(128), vec![0x80, 0x01]);
        assert_eq!(enc(300), vec![0xac, 0x02]);
        assert_eq!(enc(u64::MAX).len(), 10);
    }

    #[test]
    fn vls_len_matches_write() {
        for v in [0, 1, 127, 128, 16_383, 16_384, 1 << 35, u64::MAX] {
            assert_eq!(vls_len(v), enc(v).len(), "value {v}");
        }
    }

    #[test]
    fn rejects_truncated() {
        let e = read_vls(&[0x80], 5).unwrap_err();
        assert!(matches!(e, XbsError::UnexpectedEof { .. }));
        let e = read_vls(&[], 0).unwrap_err();
        assert!(matches!(e, XbsError::UnexpectedEof { .. }));
    }

    #[test]
    fn rejects_non_canonical() {
        // 0x80 0x00 decodes to 0 but is not the canonical single byte 0x00.
        let e = read_vls(&[0x80, 0x00], 0).unwrap_err();
        assert_eq!(e, XbsError::VlsNotCanonical { offset: 0 });
    }

    #[test]
    fn rejects_overlong() {
        // Eleven continuation bytes can never be valid.
        let buf = [0x80u8; 11];
        let e = read_vls(&buf, 0).unwrap_err();
        assert_eq!(e, XbsError::VlsTooLong { offset: 0 });
        // A 10-byte encoding whose final byte overflows bit 63.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x02);
        let e = read_vls(&buf, 0).unwrap_err();
        assert_eq!(e, XbsError::VlsTooLong { offset: 0 });
    }

    #[test]
    fn max_value_roundtrips() {
        let b = enc(u64::MAX);
        let (v, n) = read_vls(&b, 0).unwrap();
        assert_eq!(v, u64::MAX);
        assert_eq!(n, 10);
    }

    #[test]
    fn padded_exact_length() {
        for (v, len) in [(0u64, 1usize), (0, 4), (127, 1), (127, 3), (300, 2), (300, 5)] {
            let mut buf = vec![0u8; len];
            write_vls_padded(&mut buf, v, len);
            let (decoded, used) = read_vls_padded(&buf, 0).unwrap();
            assert_eq!(decoded, v, "value {v} len {len}");
            assert_eq!(used, len);
        }
    }

    #[test]
    fn padded_matches_canonical_when_minimal() {
        let mut buf = vec![0u8; 2];
        write_vls_padded(&mut buf, 300, 2);
        assert_eq!(buf, enc(300));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_overflow_panics() {
        let mut buf = vec![0u8; 1];
        write_vls_padded(&mut buf, 128, 1);
    }

    #[test]
    fn padded_reader_rejects_canonical_errors_it_should() {
        assert!(read_vls_padded(&[0x80], 0).is_err()); // truncated
        assert!(read_vls_padded(&[0x80u8; 11], 0).is_err()); // too long
        // But accepts non-canonical padding.
        assert_eq!(read_vls_padded(&[0x80, 0x00], 0).unwrap(), (0, 2));
    }

    proptest! {
        #[test]
        fn padded_roundtrip(v in any::<u64>(), extra in 0usize..3) {
            let len = (vls_len(v) + extra).min(MAX_VLS_LEN);
            let mut buf = vec![0u8; len];
            write_vls_padded(&mut buf, v, len);
            let (decoded, used) = read_vls_padded(&buf, 0).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(used, len);
        }
    }

    proptest! {
        #[test]
        fn roundtrip(v in any::<u64>()) {
            let b = enc(v);
            let (decoded, used) = read_vls(&b, 0).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(used, b.len());
            prop_assert_eq!(vls_len(v), b.len());
        }

        #[test]
        fn decode_ignores_trailing_bytes(v in any::<u64>(), tail in proptest::collection::vec(any::<u8>(), 0..8)) {
            let mut b = enc(v);
            let len = b.len();
            b.extend_from_slice(&tail);
            let (decoded, used) = read_vls(&b, 0).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(used, len);
        }
    }
}
