//! The [`Primitive`] trait: the closed set of fundamental types XBS packs.
//!
//! Implemented for the ten numeric types the paper's XBS layer supports
//! (1/2/4/8-byte signed and unsigned integers, 4/8-byte floats). The trait
//! is sealed — BXSA's wire format depends on this set being closed.

use crate::byteorder::ByteOrder;
use crate::typecode::TypeCode;

mod sealed {
    pub trait Sealed {}
}

/// A fixed-width numeric type that XBS can pack and align.
///
/// All methods are branch-free per element; the generic array paths in
/// [`crate::writer`] and [`crate::reader`] monomorphize per type so the
/// per-element byte swap compiles to a `bswap`/`mov`.
pub trait Primitive: sealed::Sealed + Copy + PartialEq + std::fmt::Debug + 'static {
    /// Size (and required alignment) in bytes.
    const WIDTH: usize;
    /// Wire type code for a scalar of this type.
    const TYPE_CODE: TypeCode;

    /// Write `self` into `out[..Self::WIDTH]` in the given order.
    fn write_bytes(self, order: ByteOrder, out: &mut [u8]);
    /// Read a value from `inp[..Self::WIDTH]` in the given order.
    fn read_bytes(order: ByteOrder, inp: &[u8]) -> Self;
}

macro_rules! impl_primitive {
    ($($t:ty => $code:expr),+ $(,)?) => {$(
        impl sealed::Sealed for $t {}
        impl Primitive for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const TYPE_CODE: TypeCode = $code;

            #[inline(always)]
            fn write_bytes(self, order: ByteOrder, out: &mut [u8]) {
                let bytes = match order {
                    ByteOrder::Little => self.to_le_bytes(),
                    ByteOrder::Big => self.to_be_bytes(),
                };
                out[..Self::WIDTH].copy_from_slice(&bytes);
            }

            #[inline(always)]
            fn read_bytes(order: ByteOrder, inp: &[u8]) -> Self {
                let bytes: [u8; std::mem::size_of::<$t>()] =
                    inp[..Self::WIDTH].try_into().expect("caller checked length");
                match order {
                    ByteOrder::Little => <$t>::from_le_bytes(bytes),
                    ByteOrder::Big => <$t>::from_be_bytes(bytes),
                }
            }
        }
    )+};
}

impl_primitive! {
    i8  => TypeCode::I8,
    u8  => TypeCode::U8,
    i16 => TypeCode::I16,
    u16 => TypeCode::U16,
    i32 => TypeCode::I32,
    u32 => TypeCode::U32,
    i64 => TypeCode::I64,
    u64 => TypeCode::U64,
    f32 => TypeCode::F32,
    f64 => TypeCode::F64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_one<T: Primitive>(v: T) {
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let mut buf = [0u8; 8];
            v.write_bytes(order, &mut buf);
            assert_eq!(T::read_bytes(order, &buf), v);
        }
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip_one(-5i8);
        roundtrip_one(250u8);
        roundtrip_one(-30_000i16);
        roundtrip_one(60_000u16);
        roundtrip_one(i32::MIN);
        roundtrip_one(u32::MAX);
        roundtrip_one(i64::MIN + 1);
        roundtrip_one(u64::MAX);
        roundtrip_one(f32::MIN_POSITIVE);
        roundtrip_one(std::f64::consts::PI);
    }

    #[test]
    fn endianness_actually_differs() {
        let mut le = [0u8; 4];
        let mut be = [0u8; 4];
        0x01020304u32.write_bytes(ByteOrder::Little, &mut le);
        0x01020304u32.write_bytes(ByteOrder::Big, &mut be);
        assert_eq!(le, [4, 3, 2, 1]);
        assert_eq!(be, [1, 2, 3, 4]);
    }

    #[test]
    fn widths_match_sizes() {
        assert_eq!(<i8 as Primitive>::WIDTH, 1);
        assert_eq!(<u16 as Primitive>::WIDTH, 2);
        assert_eq!(<f32 as Primitive>::WIDTH, 4);
        assert_eq!(<f64 as Primitive>::WIDTH, 8);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut buf = [0u8; 8];
        nan.write_bytes(ByteOrder::Big, &mut buf);
        let back = f64::read_bytes(ByteOrder::Big, &buf);
        assert_eq!(back.to_bits(), nan.to_bits());
    }
}
