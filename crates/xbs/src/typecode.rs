//! Wire-level type codes.
//!
//! BXSA leaf-element, attribute and array frames carry a one-byte type
//! code ahead of the value (the "value type code" fields in Figure 2).
//! The repertoire mirrors what XBS can pack: 1/2/4/8-byte signed and
//! unsigned integers and 4/8-byte floats, plus the non-numeric codes
//! needed for attribute values and untyped content (string, boolean).

use crate::error::{XbsError, XbsResult};

/// One-byte code identifying the type of a typed value on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TypeCode {
    I8 = 0x01,
    U8 = 0x02,
    I16 = 0x03,
    U16 = 0x04,
    I32 = 0x05,
    U32 = 0x06,
    I64 = 0x07,
    U64 = 0x08,
    F32 = 0x09,
    F64 = 0x0a,
    /// UTF-8 string: VLS byte length followed by the bytes.
    Str = 0x0b,
    /// Boolean stored as one byte (0 or 1).
    Bool = 0x0c,
}

impl TypeCode {
    /// Width in bytes of the fixed-size types; `None` for `Str`.
    #[inline]
    pub const fn width(self) -> Option<usize> {
        match self {
            TypeCode::I8 | TypeCode::U8 | TypeCode::Bool => Some(1),
            TypeCode::I16 | TypeCode::U16 => Some(2),
            TypeCode::I32 | TypeCode::U32 | TypeCode::F32 => Some(4),
            TypeCode::I64 | TypeCode::U64 | TypeCode::F64 => Some(8),
            TypeCode::Str => None,
        }
    }

    /// Decode a raw byte, reporting `offset` on failure.
    #[inline]
    pub fn from_byte(code: u8, offset: usize) -> XbsResult<TypeCode> {
        Ok(match code {
            0x01 => TypeCode::I8,
            0x02 => TypeCode::U8,
            0x03 => TypeCode::I16,
            0x04 => TypeCode::U16,
            0x05 => TypeCode::I32,
            0x06 => TypeCode::U32,
            0x07 => TypeCode::I64,
            0x08 => TypeCode::U64,
            0x09 => TypeCode::F32,
            0x0a => TypeCode::F64,
            0x0b => TypeCode::Str,
            0x0c => TypeCode::Bool,
            _ => return Err(XbsError::BadTypeCode { offset, code }),
        })
    }

    /// The XML Schema datatype name used when serializing the typed value
    /// into textual XML (`xsi:type` attribute, paper §4.2).
    pub const fn xsd_name(self) -> &'static str {
        match self {
            TypeCode::I8 => "xsd:byte",
            TypeCode::U8 => "xsd:unsignedByte",
            TypeCode::I16 => "xsd:short",
            TypeCode::U16 => "xsd:unsignedShort",
            TypeCode::I32 => "xsd:int",
            TypeCode::U32 => "xsd:unsignedInt",
            TypeCode::I64 => "xsd:long",
            TypeCode::U64 => "xsd:unsignedLong",
            TypeCode::F32 => "xsd:float",
            TypeCode::F64 => "xsd:double",
            TypeCode::Str => "xsd:string",
            TypeCode::Bool => "xsd:boolean",
        }
    }

    /// Inverse of [`TypeCode::xsd_name`], accepting both prefixed and
    /// unprefixed schema type names.
    pub fn from_xsd_name(name: &str) -> Option<TypeCode> {
        let local = name.rsplit(':').next().unwrap_or(name);
        Some(match local {
            "byte" => TypeCode::I8,
            "unsignedByte" => TypeCode::U8,
            "short" => TypeCode::I16,
            "unsignedShort" => TypeCode::U16,
            "int" => TypeCode::I32,
            "unsignedInt" => TypeCode::U32,
            "long" => TypeCode::I64,
            "unsignedLong" => TypeCode::U64,
            "float" => TypeCode::F32,
            "double" => TypeCode::F64,
            "string" => TypeCode::Str,
            "boolean" => TypeCode::Bool,
            _ => return None,
        })
    }

    /// All defined codes, in wire order. Useful for exhaustive tests.
    pub const ALL: [TypeCode; 12] = [
        TypeCode::I8,
        TypeCode::U8,
        TypeCode::I16,
        TypeCode::U16,
        TypeCode::I32,
        TypeCode::U32,
        TypeCode::I64,
        TypeCode::U64,
        TypeCode::F32,
        TypeCode::F64,
        TypeCode::Str,
        TypeCode::Bool,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        for &tc in TypeCode::ALL.iter() {
            assert_eq!(TypeCode::from_byte(tc as u8, 0).unwrap(), tc);
        }
    }

    #[test]
    fn unknown_byte_is_error() {
        for bad in [0x00u8, 0x0d, 0x7f, 0xff] {
            let e = TypeCode::from_byte(bad, 9).unwrap_err();
            assert_eq!(e, XbsError::BadTypeCode { offset: 9, code: bad });
        }
    }

    #[test]
    fn xsd_name_roundtrip() {
        for &tc in TypeCode::ALL.iter() {
            assert_eq!(TypeCode::from_xsd_name(tc.xsd_name()), Some(tc));
            // Unprefixed form accepted too.
            let local = tc.xsd_name().strip_prefix("xsd:").unwrap();
            assert_eq!(TypeCode::from_xsd_name(local), Some(tc));
        }
        assert_eq!(TypeCode::from_xsd_name("xsd:decimal"), None);
    }

    #[test]
    fn widths() {
        assert_eq!(TypeCode::I8.width(), Some(1));
        assert_eq!(TypeCode::U16.width(), Some(2));
        assert_eq!(TypeCode::F32.width(), Some(4));
        assert_eq!(TypeCode::F64.width(), Some(8));
        assert_eq!(TypeCode::Str.width(), None);
        assert_eq!(TypeCode::Bool.width(), Some(1));
    }
}
