//! Field-at-a-time BXSA access: the schema-known fast path.
//!
//! The tree codec ([`crate::encoder`]/[`crate::pull`]) serializes any
//! bXDM document, but a caller whose message type is statically known
//! pays for generality it doesn't need: building the tree, walking it,
//! tearing it down. This module exposes the same wire format — **byte
//! for byte** — as a pair of cursors:
//!
//! * [`FrameWriter`] writes element frames directly from typed fields
//!   (scalars, `&str`, packed numeric slices), reserving frame size
//!   fields from the same [`crate::estimate`] arithmetic the tree
//!   encoder uses, so a typed encode of a message and a tree encode of
//!   its bXDM equivalent produce identical bytes.
//! * [`FieldReader`] pulls element headers and typed values straight off
//!   the frame stream with no per-element allocation at all: namespace
//!   tables are skipped (typed readers match local names, like the
//!   lenient tree consumers), strings are borrowed, and arrays refill
//!   caller-owned buffers via [`xbs::XbsReader::read_packed_into`].
//!
//! Typed elements carry no attributes — the model's typing attributes
//! (`xsi:type`, `bx:arrayType`) exist only in the *textual* encoding;
//! BXSA frames are self-describing through their type-code bytes.
//!
//! ```
//! use bxsa::typed::{FrameWriter, FieldReader, TypedName};
//! use xbs::ByteOrder;
//!
//! let mut w = FrameWriter::new(ByteOrder::Little);
//! let name = TypedName::new(Some("d"), "set");
//! let decls = &[(Some("d"), "http://example.org/data")];
//! let values = [1.0f64, 2.0, 3.0];
//!
//! let body = bxsa::estimate::plain_component_body_bound(
//!     "set", decls, 1,
//!     bxsa::estimate::framed(bxsa::estimate::plain_array_body_bound(
//!         "values", &[], xbs::TypeCode::F64, values.len())),
//! );
//! let mut buf = Vec::new();
//! w.begin_document(&mut buf, 1, FrameWriter::document_bound(body));
//! w.begin_component(name, decls, 1, body).unwrap();
//! w.array(TypedName::new(Some("d"), "values"), &[], &values).unwrap();
//! w.end_component().unwrap();
//! w.finish_document(&mut buf).unwrap();
//!
//! let mut r = FieldReader::new(&buf).unwrap();
//! let set = r.open().unwrap();
//! assert_eq!(set.local, "set");
//! let arr = r.open().unwrap();
//! let mut out = Vec::new();
//! r.read_array_into::<f64>(&arr, &mut out).unwrap();
//! assert_eq!(out, values);
//! r.close(&set).unwrap();
//! ```

use xbs::{ByteOrder, Primitive, TypeCode, XbsReader, XbsWriter};

use crate::error::{BxsaError, BxsaResult};
use crate::estimate::{self, size_field_len};
use crate::frame::{parse_prefix, prefix_byte, FrameType};

/// A namespace declaration as typed schemas carry them: `(prefix, uri)`,
/// `None` prefix for the default namespace. `'static` because typed
/// message schemas are compile-time constants (tests that need dynamic
/// names leak them).
pub type TypedDecl = (Option<&'static str>, &'static str);

/// A (possibly prefixed) element name with `'static` parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypedName {
    /// Namespace prefix, `None` for an unprefixed name.
    pub prefix: Option<&'static str>,
    /// Local part.
    pub local: &'static str,
}

impl TypedName {
    /// Assemble a name.
    pub const fn new(prefix: Option<&'static str>, local: &'static str) -> TypedName {
        TypedName { prefix, local }
    }
}

/// A reusable typed frame writer.
///
/// Per message: [`FrameWriter::begin_document`] takes over a caller
/// buffer (cleared, capacity kept) and pre-reserves the full document
/// bound, element fields are appended, and
/// [`FrameWriter::finish_document`] hands the buffer back. The writer's
/// own scratch (open-frame stack, namespace scopes) is retained across
/// messages, so steady-state typed encoding performs **zero** heap
/// allocations — and debug builds assert the buffer never reallocated
/// mid-message, turning "the estimate is an upper bound" into a checked
/// invariant.
pub struct FrameWriter {
    w: XbsWriter,
    order: ByteOrder,
    /// Open frames: (start offset, reserved size-field length).
    frames: Vec<(usize, usize)>,
    /// In-scope namespace declarations, flat; one scope per open element.
    decls: Vec<TypedDecl>,
    scope_starts: Vec<usize>,
    /// Buffer identity at message start, for the debug no-realloc check.
    guard: (usize, usize),
    /// Append a CRC32C checksum frame after each document frame.
    checksum: bool,
}

impl FrameWriter {
    /// A writer encoding in the given byte order.
    pub fn new(order: ByteOrder) -> FrameWriter {
        FrameWriter {
            w: XbsWriter::new(order),
            order,
            frames: Vec::new(),
            decls: Vec::new(),
            scope_starts: Vec::new(),
            guard: (0, 0),
            checksum: false,
        }
    }

    /// Enable or disable the trailing CRC32C checksum frame on
    /// subsequent messages (mirrors
    /// [`EncodeOptions::checksum`](crate::EncodeOptions)).
    pub fn set_checksum(&mut self, enabled: bool) {
        self.checksum = enabled;
    }

    /// The byte order frames are written in.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Change the byte order for subsequent messages.
    pub fn set_order(&mut self, order: ByteOrder) {
        self.order = order;
    }

    /// Start a document frame into `buf` (taken over; cleared, capacity
    /// kept). `body_bound` must bound the document frame's body — use
    /// [`estimate::framed`] over the root's body bound plus the child
    /// count VLS, or simply the root's [`estimate::framed`] bound plus
    /// one, which [`document_bound`](FrameWriter::document_bound)
    /// computes.
    pub fn begin_document(&mut self, buf: &mut Vec<u8>, child_count: usize, body_bound: usize) {
        let mut taken = std::mem::take(buf);
        taken.clear();
        // One reservation for the whole message: the exact-size
        // preallocation the estimate exists for. The checksum frame (if
        // enabled) lands after the document frame, inside the same
        // reservation, so the no-realloc guard still holds.
        let trailer = if self.checksum {
            crate::frame::CHECKSUM_FRAME_LEN
        } else {
            0
        };
        taken.reserve(1 + size_field_len(body_bound) + body_bound + trailer);
        self.guard = (taken.capacity(), taken.as_ptr() as usize);
        self.w = XbsWriter::from_buf(taken, self.order);
        self.frames.clear();
        self.decls.clear();
        self.scope_starts.clear();
        self.open_frame(FrameType::Document, body_bound);
        self.w.put_vls(child_count as u64);
    }

    /// The document-frame body bound for a single root element with the
    /// given body bound.
    pub fn document_bound(root_body_bound: usize) -> usize {
        xbs::vls::vls_len(1) + estimate::framed(root_body_bound)
    }

    /// Close the document frame and hand the buffer back.
    ///
    /// Errors if element frames are still open. In debug builds, asserts
    /// the buffer never reallocated since
    /// [`begin_document`](FrameWriter::begin_document) — i.e. that every
    /// bound supplied really was an upper bound.
    pub fn finish_document(&mut self, buf: &mut Vec<u8>) -> BxsaResult<()> {
        if self.frames.len() != 1 {
            return Err(BxsaError::Structure {
                what: format!("{} element frame(s) still open at finish", self.frames.len() - 1),
            });
        }
        self.close_frame();
        if self.checksum {
            crate::encoder::append_checksum_frame(&mut self.w, self.order);
        }
        *buf = self.w.take_buf();
        debug_assert_eq!(
            (buf.capacity(), buf.as_ptr() as usize),
            self.guard,
            "typed encode reallocated mid-message: an estimate bound was not an upper bound"
        );
        Ok(())
    }

    /// Abandon the in-progress message: recover the buffer (cleared,
    /// capacity kept) without the structural checks of
    /// [`finish_document`](FrameWriter::finish_document). The error
    /// path's counterpart, so a failed encode never poisons a reused
    /// writer or buffer.
    pub fn abandon(&mut self, buf: &mut Vec<u8>) {
        self.frames.clear();
        self.decls.clear();
        self.scope_starts.clear();
        *buf = self.w.take_buf();
        buf.clear();
    }

    /// Open a component element frame expecting exactly `child_count`
    /// child elements. `body_bound` must be the element's body bound
    /// ([`estimate::plain_component_body_bound`]); supplying the same
    /// number the tree estimate would compute keeps the reserved size
    /// field — and therefore the wire bytes — identical to the tree
    /// encoder's.
    pub fn begin_component(
        &mut self,
        name: TypedName,
        decls: &[TypedDecl],
        child_count: usize,
        body_bound: usize,
    ) -> BxsaResult<()> {
        self.open_frame(FrameType::Component, body_bound);
        self.write_header(name, decls)?;
        self.w.put_vls(child_count as u64);
        Ok(())
    }

    /// Close the innermost open component.
    pub fn end_component(&mut self) -> BxsaResult<()> {
        if self.frames.len() < 2 {
            return Err(BxsaError::Structure {
                what: "end_component with no open component".into(),
            });
        }
        self.close_frame();
        self.pop_scope();
        Ok(())
    }

    /// Write a complete fixed-width leaf element frame.
    pub fn leaf<T: Primitive>(
        &mut self,
        name: TypedName,
        decls: &[TypedDecl],
        value: T,
    ) -> BxsaResult<()> {
        let bound = estimate::plain_leaf_body_bound(name.local, decls, T::TYPE_CODE, 0)
            + self.decl_bound(decls);
        self.open_frame(FrameType::Leaf, bound);
        self.write_header(name, decls)?;
        self.w.put_raw_u8(T::TYPE_CODE as u8);
        self.w.put(value);
        self.close_frame();
        self.pop_scope();
        Ok(())
    }

    /// Write a complete string leaf element frame.
    pub fn leaf_str(
        &mut self,
        name: TypedName,
        decls: &[TypedDecl],
        value: &str,
    ) -> BxsaResult<()> {
        let bound = estimate::plain_leaf_body_bound(name.local, decls, TypeCode::Str, value.len())
            + self.decl_bound(decls);
        self.open_frame(FrameType::Leaf, bound);
        self.write_header(name, decls)?;
        self.w.put_raw_u8(TypeCode::Str as u8);
        self.w.put_str(value);
        self.close_frame();
        self.pop_scope();
        Ok(())
    }

    /// Write a complete boolean leaf element frame.
    pub fn leaf_bool(
        &mut self,
        name: TypedName,
        decls: &[TypedDecl],
        value: bool,
    ) -> BxsaResult<()> {
        let bound = estimate::plain_leaf_body_bound(name.local, decls, TypeCode::Bool, 0)
            + self.decl_bound(decls);
        self.open_frame(FrameType::Leaf, bound);
        self.write_header(name, decls)?;
        self.w.put_raw_u8(TypeCode::Bool as u8);
        self.w.put_raw_u8(value as u8);
        self.close_frame();
        self.pop_scope();
        Ok(())
    }

    /// Write a complete packed-array element frame.
    pub fn array<T: Primitive>(
        &mut self,
        name: TypedName,
        decls: &[TypedDecl],
        values: &[T],
    ) -> BxsaResult<()> {
        let bound =
            estimate::plain_array_body_bound(name.local, decls, T::TYPE_CODE, values.len())
                + self.decl_bound(decls);
        self.open_frame(FrameType::Array, bound);
        self.write_header(name, decls)?;
        self.w.put_raw_u8(T::TYPE_CODE as u8);
        self.w.put_vls(values.len() as u64);
        self.w.put_packed(values);
        self.close_frame();
        self.pop_scope();
        Ok(())
    }

    // `plain_*_body_bound` charges str_field per decl with borrowed
    // lifetimes; this recomputes nothing — the decls slice passed to
    // every write method *is* the bound's decls — so the extra term is 0.
    // Kept as a function so the call sites read as "body bound for this
    // element"; inlined away.
    #[inline(always)]
    fn decl_bound(&self, _decls: &[TypedDecl]) -> usize {
        0
    }

    fn open_frame(&mut self, frame_type: FrameType, bound: usize) {
        let start = self.w.offset();
        self.w.put_raw_u8(prefix_byte(self.order, frame_type));
        let field_len = size_field_len(bound);
        self.w.reserve(field_len);
        self.frames.push((start, field_len));
    }

    fn close_frame(&mut self) {
        let (start, field_len) = self.frames.pop().expect("caller checked an open frame");
        let total = (self.w.offset() - start) as u64;
        self.w.patch_vls_padded(start + 1, total, field_len);
    }

    /// Namespace table, name reference, local name, empty attribute
    /// table — the header every typed element frame shares. Pushes the
    /// element's scope (popped by `end_component`/the leaf writers).
    fn write_header(&mut self, name: TypedName, decls: &[TypedDecl]) -> BxsaResult<()> {
        self.w.put_vls(decls.len() as u64);
        for (prefix, uri) in decls {
            self.w.put_str(prefix.unwrap_or(""));
            self.w.put_str(uri);
        }
        self.scope_starts.push(self.decls.len());
        self.decls.extend_from_slice(decls);
        self.write_ns_ref(name.prefix)?;
        self.w.put_str(name.local);
        self.w.put_vls(0); // typed elements carry no attributes
        Ok(())
    }

    fn pop_scope(&mut self) {
        let start = self.scope_starts.pop().expect("scope pushed by write_header");
        self.decls.truncate(start);
    }

    /// The tokenized namespace reference of `bxdm::ScopeChain::find_ref`:
    /// innermost scope first, later declarations within a scope win.
    fn write_ns_ref(&mut self, prefix: Option<&str>) -> BxsaResult<()> {
        for (depth_back, scope_idx) in (0..self.scope_starts.len()).rev().enumerate() {
            let start = self.scope_starts[scope_idx];
            let end = self
                .scope_starts
                .get(scope_idx + 1)
                .copied()
                .unwrap_or(self.decls.len());
            for idx in (0..end - start).rev() {
                if self.decls[start + idx].0 == prefix {
                    self.w.put_vls(depth_back as u64 + 1);
                    self.w.put_vls(idx as u64);
                    return Ok(());
                }
            }
        }
        if let Some(p) = prefix {
            return Err(BxsaError::UndeclaredPrefix { prefix: p.to_owned() });
        }
        self.w.put_vls(0);
        Ok(())
    }
}

/// One parsed element frame header: what [`FieldReader::open`] saw.
///
/// Carries the frame's end offset so [`FieldReader::close`] can verify
/// the declared size and [`FieldReader::skip`] can jump past unknown
/// content in O(1) — the paper's accelerated sequential access, applied
/// field-wise.
#[derive(Debug, Clone, Copy)]
pub struct ElementHead<'a> {
    /// Local name (namespace prefixes are skipped — typed readers match
    /// local names, like the envelope layer's lenient tree consumers).
    /// Empty for non-element frames (text, comment, PI).
    pub local: &'a str,
    /// The frame type: `Component`, `Leaf`, `Array`, or a text-like.
    pub kind: FrameType,
    /// Number of attributes the element carried (typed writers emit
    /// none; a nonzero count tells schema-aware consumers to fall back
    /// to the generic tree path).
    pub attr_count: usize,
    /// Declared child-element count (component frames only).
    pub child_count: usize,
    /// Offset one past the frame's last byte.
    end: usize,
}

/// An allocation-free pull cursor over a BXSA document's frames.
///
/// Unlike [`crate::pull::PullReader`] — which materializes namespace
/// contexts, attribute vectors, and an event stack per message — this
/// reader holds only the underlying [`XbsReader`]: open/close state
/// lives in the caller's control flow as [`ElementHead`] values, so a
/// schema-known decode performs no heap allocation at all beyond the
/// arrays it refills in place.
pub struct FieldReader<'a> {
    r: XbsReader<'a>,
    top_count: usize,
}

impl<'a> FieldReader<'a> {
    /// Open a document: validates the document frame prefix and size
    /// field, and positions the cursor at the first child frame.
    pub fn new(bytes: &'a [u8]) -> BxsaResult<FieldReader<'a>> {
        let mut r = XbsReader::new(bytes, ByteOrder::Little);
        let (order, ft) = parse_prefix(r.read_raw_u8()?, 0)?;
        if ft != FrameType::Document {
            return Err(BxsaError::Structure {
                what: format!("expected a document frame, found {ft:?}"),
            });
        }
        r.set_order(order);
        let size = r.read_vls_padded()?;
        if size > bytes.len() as u64 {
            return Err(BxsaError::FrameSizeMismatch {
                offset: 0,
                declared: size,
                consumed: bytes.len() as u64,
            });
        }
        let top_count = r.read_count(1)?;
        Ok(FieldReader { r, top_count })
    }

    /// Declared number of top-level frames (a SOAP message has one).
    pub fn top_count(&self) -> usize {
        self.top_count
    }

    /// Current byte offset (diagnostics).
    pub fn position(&self) -> usize {
        self.r.position()
    }

    /// Parse the next frame's header.
    ///
    /// For element frames the cursor stops at the content: the child
    /// frames of a component (whose declared count is in the head), or
    /// the value of a leaf/array — read it with
    /// [`read_value`](FieldReader::read_value) /
    /// [`read_str`](FieldReader::read_str) /
    /// [`read_bool`](FieldReader::read_bool) /
    /// [`read_array_into`](FieldReader::read_array_into). For text-like
    /// frames the head carries an empty name; [`skip`](FieldReader::skip)
    /// past them. Every opened head must be consumed by exactly one of
    /// the value readers, [`close`](FieldReader::close) (components,
    /// after their children), or [`skip`](FieldReader::skip).
    pub fn open(&mut self) -> BxsaResult<ElementHead<'a>> {
        let start = self.r.position();
        let (order, kind) = parse_prefix(self.r.read_raw_u8()?, start)?;
        self.r.set_order(order);
        let size = self.r.read_vls_padded()?;
        let end = start.checked_add(size as usize).filter(|&e| {
            e <= self.r.buffer().len() && e >= self.r.position()
        });
        let Some(end) = end else {
            return Err(BxsaError::FrameSizeMismatch {
                offset: start,
                declared: size,
                consumed: (self.r.position() - start) as u64,
            });
        };
        match kind {
            FrameType::Component | FrameType::Leaf | FrameType::Array => {
                // Namespace table: skipped, not resolved — typed readers
                // match local names only.
                let n1 = self.r.read_count(2)?;
                for _ in 0..n1 {
                    self.r.read_str()?;
                    self.r.read_str()?;
                }
                // Name reference: VLS 0 = no namespace, else depth+index.
                if self.r.read_vls()? != 0 {
                    self.r.read_vls()?;
                }
                let local = self.r.read_str()?;
                let attr_count = self.r.read_count(2)?;
                for _ in 0..attr_count {
                    if self.r.read_vls()? != 0 {
                        self.r.read_vls()?;
                    }
                    self.r.read_str()?;
                    self.skip_atomic(start)?;
                }
                let child_count = if kind == FrameType::Component {
                    self.r.read_count(1)?
                } else {
                    0
                };
                Ok(ElementHead {
                    local,
                    kind,
                    attr_count,
                    child_count,
                    end,
                })
            }
            // Text-like frames: leave the body unread; callers skip.
            _ => Ok(ElementHead {
                local: "",
                kind,
                attr_count: 0,
                child_count: 0,
                end,
            }),
        }
    }

    /// Verify a fully consumed frame ended exactly at its declared size.
    pub fn close(&mut self, head: &ElementHead<'a>) -> BxsaResult<()> {
        if self.r.position() != head.end {
            return Err(BxsaError::FrameSizeMismatch {
                offset: head.end,
                declared: head.end as u64,
                consumed: self.r.position() as u64,
            });
        }
        Ok(())
    }

    /// Jump past an opened frame without parsing its content.
    pub fn skip(&mut self, head: &ElementHead<'a>) -> BxsaResult<()> {
        Ok(self.r.seek(head.end)?)
    }

    /// Read an opened leaf's fixed-width value (and close the frame).
    pub fn read_value<T: Primitive>(&mut self, head: &ElementHead<'a>) -> BxsaResult<T> {
        self.expect_leaf_code(head, T::TYPE_CODE)?;
        self.r.align(T::WIDTH)?;
        let v = self.r.read::<T>()?;
        self.close(head)?;
        Ok(v)
    }

    /// Read an opened leaf's string value, borrowed from the input (and
    /// close the frame).
    pub fn read_str(&mut self, head: &ElementHead<'a>) -> BxsaResult<&'a str> {
        self.expect_leaf_code(head, TypeCode::Str)?;
        let s = self.r.read_str()?;
        self.close(head)?;
        Ok(s)
    }

    /// Read an opened leaf's boolean value (and close the frame).
    pub fn read_bool(&mut self, head: &ElementHead<'a>) -> BxsaResult<bool> {
        self.expect_leaf_code(head, TypeCode::Bool)?;
        let b = self.r.read_raw_u8()? != 0;
        self.close(head)?;
        Ok(b)
    }

    /// Refill `out` (cleared, capacity kept) from an opened array frame
    /// (and close the frame). Steady-state decode of same-shape messages
    /// allocates nothing once `out` has grown to the working set.
    pub fn read_array_into<T: Primitive>(
        &mut self,
        head: &ElementHead<'a>,
        out: &mut Vec<T>,
    ) -> BxsaResult<()> {
        if head.kind != FrameType::Array {
            return Err(BxsaError::Structure {
                what: format!("expected an array frame for {:?}, found {:?}", head.local, head.kind),
            });
        }
        let at = self.r.position();
        let code = self.code_byte(at)?;
        if code != T::TYPE_CODE {
            return Err(BxsaError::BadValueType {
                offset: at,
                what: format!("expected {:?} array, found {code:?}", T::TYPE_CODE),
            });
        }
        let len = self.r.read_count(T::WIDTH)?;
        self.r.read_packed_into(len, out)?;
        self.close(head)
    }

    fn expect_leaf_code(&mut self, head: &ElementHead<'a>, want: TypeCode) -> BxsaResult<()> {
        if head.kind != FrameType::Leaf {
            return Err(BxsaError::Structure {
                what: format!("expected a leaf frame for {:?}, found {:?}", head.local, head.kind),
            });
        }
        let at = self.r.position();
        let code = self.code_byte(at)?;
        if code != want {
            return Err(BxsaError::BadValueType {
                offset: at,
                what: format!("expected {want:?}, found {code:?}"),
            });
        }
        Ok(())
    }

    fn code_byte(&mut self, at: usize) -> BxsaResult<TypeCode> {
        let byte = self.r.read_raw_u8()?;
        Ok(TypeCode::from_byte(byte, at)?)
    }

    /// Skip one atomic value (attribute position): type-code byte plus
    /// the value it announces.
    fn skip_atomic(&mut self, frame_start: usize) -> BxsaResult<()> {
        let code = self.code_byte(frame_start)?;
        match code.width() {
            Some(w) => {
                self.r.align(w)?;
                self.r.read_bytes(w)?;
            }
            None if code == TypeCode::Str => {
                self.r.read_str()?;
            }
            None => {
                self.r.read_raw_u8()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{framed, plain_array_body_bound, plain_component_body_bound,
        plain_leaf_body_bound};
    use bxdm::{ArrayValue, AtomicValue, Document, Element};

    /// The tree equivalent of the typed message the tests write.
    fn tree_doc(values: &[f64], count: i64) -> Document {
        Document::with_root(
            Element::component("d:set")
                .with_namespace("d", "http://example.org/data")
                .with_child(Element::array("d:values", ArrayValue::F64(values.to_vec())))
                .with_child(Element::leaf("d:count", AtomicValue::I64(count))),
        )
    }

    fn typed_encode(values: &[f64], count: i64, order: ByteOrder, buf: &mut Vec<u8>) {
        let decls: &[TypedDecl] = &[(Some("d"), "http://example.org/data")];
        let arr_body = plain_array_body_bound("values", &[], TypeCode::F64, values.len());
        let leaf_body = plain_leaf_body_bound("count", &[], TypeCode::I64, 0);
        let root_body = plain_component_body_bound(
            "set",
            decls,
            2,
            framed(arr_body) + framed(leaf_body),
        );
        let mut w = FrameWriter::new(order);
        w.begin_document(buf, 1, FrameWriter::document_bound(root_body));
        w.begin_component(TypedName::new(Some("d"), "set"), decls, 2, root_body)
            .unwrap();
        w.array(TypedName::new(Some("d"), "values"), &[], values)
            .unwrap();
        w.leaf(TypedName::new(Some("d"), "count"), &[], count).unwrap();
        w.end_component().unwrap();
        w.finish_document(buf).unwrap();
    }

    #[test]
    fn typed_encode_is_byte_identical_to_tree_encode() {
        for order in [ByteOrder::Little, ByteOrder::Big] {
            for len in [0usize, 1, 3, 257] {
                let values: Vec<f64> = (0..len).map(|i| i as f64 * 0.5).collect();
                let doc = tree_doc(&values, len as i64);
                let tree = crate::encode_with(&doc, &crate::EncodeOptions { byte_order: order, ..Default::default() })
                    .unwrap();
                let mut typed = Vec::new();
                typed_encode(&values, len as i64, order, &mut typed);
                assert_eq!(typed, tree, "order {order:?} len {len}");
            }
        }
    }

    #[test]
    fn typed_encode_reuses_the_buffer() {
        let values: Vec<f64> = (0..256).map(f64::from).collect();
        let mut buf = Vec::new();
        typed_encode(&values, 256, ByteOrder::Little, &mut buf);
        let (cap, ptr) = (buf.capacity(), buf.as_ptr());
        typed_encode(&values, 256, ByteOrder::Little, &mut buf);
        assert_eq!(buf.capacity(), cap, "steady-state typed encode must not grow");
        assert_eq!(buf.as_ptr(), ptr, "steady-state typed encode must not reallocate");
    }

    #[test]
    fn field_reader_reads_back_typed_fields() {
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        // Read tree-encoded bytes: the reader must interoperate with the
        // generic encoder, not just its own writer.
        let bytes = crate::encode(&tree_doc(&values, 100)).unwrap();
        let mut r = FieldReader::new(&bytes).unwrap();
        assert_eq!(r.top_count(), 1);
        let set = r.open().unwrap();
        assert_eq!(set.local, "set");
        assert_eq!(set.kind, FrameType::Component);
        assert_eq!(set.child_count, 2);
        assert_eq!(set.attr_count, 0);
        let arr = r.open().unwrap();
        assert_eq!(arr.local, "values");
        let mut out = vec![9.9; 3];
        r.read_array_into::<f64>(&arr, &mut out).unwrap();
        assert_eq!(out, values);
        let leaf = r.open().unwrap();
        assert_eq!(r.read_value::<i64>(&leaf).unwrap(), 100);
        r.close(&set).unwrap();
    }

    #[test]
    fn field_reader_skips_unknown_frames() {
        let doc = Document::with_root(
            Element::component("r")
                .with_child(Element::leaf("ignored", AtomicValue::Str("x".into())))
                .with_child(Element::leaf("wanted", AtomicValue::I32(7))),
        );
        let bytes = crate::encode(&doc).unwrap();
        let mut r = FieldReader::new(&bytes).unwrap();
        let root = r.open().unwrap();
        let mut got = None;
        for _ in 0..root.child_count {
            let h = r.open().unwrap();
            if h.local == "wanted" {
                got = Some(r.read_value::<i32>(&h).unwrap());
            } else {
                r.skip(&h).unwrap();
            }
        }
        r.close(&root).unwrap();
        assert_eq!(got, Some(7));
    }

    #[test]
    fn field_reader_rejects_wrong_types_and_truncation() {
        let bytes = crate::encode(&tree_doc(&[1.0], 1)).unwrap();
        let mut r = FieldReader::new(&bytes).unwrap();
        let _set = r.open().unwrap();
        let arr = r.open().unwrap();
        let mut ints = Vec::new();
        assert!(matches!(
            r.read_array_into::<i32>(&arr, &mut ints),
            Err(BxsaError::BadValueType { .. })
        ));
        // Truncated input: every prefix must error, never panic.
        for cut in 0..bytes.len() {
            let mut r = match FieldReader::new(&bytes[..cut]) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let mut out = Vec::new();
            let _ = r.open().and_then(|set| {
                let h = r.open()?;
                r.read_array_into::<f64>(&h, &mut out)?;
                let h = r.open()?;
                let _ = r.read_value::<i64>(&h)?;
                r.close(&set)
            });
        }
    }

    #[test]
    fn writer_reports_structural_misuse() {
        let mut w = FrameWriter::new(ByteOrder::Little);
        let mut buf = Vec::new();
        w.begin_document(&mut buf, 1, 64);
        w.begin_component(TypedName::new(None, "r"), &[], 0, 32).unwrap();
        assert!(matches!(
            w.finish_document(&mut buf),
            Err(BxsaError::Structure { .. })
        ));
        // Undeclared prefix is the same error the tree encoder raises.
        let mut w = FrameWriter::new(ByteOrder::Little);
        w.begin_document(&mut buf, 1, 64);
        assert!(matches!(
            w.begin_component(TypedName::new(Some("nope"), "r"), &[], 0, 32),
            Err(BxsaError::UndeclaredPrefix { .. })
        ));
    }
}
