//! XML well-formedness checks shared by the encoder and decoder.
//!
//! The BXSA wire format can physically carry arbitrary strings in
//! positions where XML 1.0 only allows a restricted grammar: names
//! (element locals, attribute locals, namespace prefixes, PI targets),
//! comment bodies (no `--`), and PI bodies (no `?>`, and no leading
//! whitespace in the data, which attribute-style trimming would eat).
//! Both codec directions enforce the grammar, for symmetric reasons:
//!
//! * the **decoder** rejects such frames so that everything `decode`
//!   accepts is guaranteed to survive `bxsa_to_xml` → re-parse — a
//!   hostile binary message cannot smuggle markup through the textual
//!   gateway path or make the transcoder emit malformed XML;
//! * the **encoder** rejects such trees so `xml_to_bxsa` (whose lexer
//!   accepts a superset of these grammars for names) fails with a typed
//!   error instead of minting bytes its own decoder then refuses.

use crate::error::{BxsaError, BxsaResult};
use bxdm::name::is_valid_ncname;

/// Reject `s` unless it is a valid XML name (NCName subset).
pub(crate) fn check_name(what: &str, s: &str) -> BxsaResult<()> {
    if is_valid_ncname(s) {
        return Ok(());
    }
    Err(BxsaError::Structure {
        what: format!("{what} {s:?} is not a valid XML name"),
    })
}

/// Reject comment text that has no XML 1.0 serialization.
pub(crate) fn check_comment(text: &str) -> BxsaResult<()> {
    if text.contains("--") {
        return Err(BxsaError::Structure {
            what: "comment contains '--', which XML forbids".to_owned(),
        });
    }
    Ok(())
}

/// Reject processing instructions that cannot round-trip through text.
pub(crate) fn check_pi(target: &str, data: &str) -> BxsaResult<()> {
    check_name("processing-instruction target", target)?;
    if target.eq_ignore_ascii_case("xml") {
        // `<?xml ...?>` is the document declaration, not a PI; a reader
        // would silently drop it.
        return Err(BxsaError::Structure {
            what: "processing-instruction target 'xml' is reserved".to_owned(),
        });
    }
    if data.contains("?>") {
        return Err(BxsaError::Structure {
            what: "processing-instruction data contains '?>'".to_owned(),
        });
    }
    if data.starts_with(char::is_whitespace) {
        // The textual form separates target from data with whitespace;
        // leading whitespace (the lexer trims *Unicode* whitespace from
        // the data) would not survive re-parsing.
        return Err(BxsaError::Structure {
            what: "processing-instruction data starts with whitespace".to_owned(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert!(check_name("local name", "Envelope").is_ok());
        assert!(check_name("local name", "\n").is_err());
        assert!(check_name("namespace prefix", "a b").is_err());
    }

    #[test]
    fn comments() {
        assert!(check_comment("ok - fine").is_ok());
        assert!(check_comment("not -- fine").is_err());
        assert!(check_comment("-->").is_err());
    }

    #[test]
    fn pis() {
        assert!(check_pi("t", "d e f").is_ok());
        assert!(check_pi("t", "").is_ok());
        assert!(check_pi("xml", "version='1.0'").is_err());
        assert!(check_pi("XML", "").is_err());
        assert!(check_pi("t", "a ?> b").is_err());
        assert!(check_pi("t", " leading").is_err());
        assert!(check_pi("1bad", "").is_err());
    }
}
