//! BXSA ↔ textual XML transcoding (paper §4.2).
//!
//! "A binary format that is transcodable to XML can be converted to
//! textual XML, and then back to binary XML without change" — and the
//! reverse. Both directions go through the shared bXDM model; type
//! information survives the textual leg via `xsi:type`/`bx:arrayType`
//! attributes, and floating-point values are canonicalized to their
//! shortest round-trip lexical form (the paper's stated exception: floats
//! are "converted to full precision regardless of the original input").

use bxdm::Document;
use xmltext::{XmlReadOptions, XmlWriteOptions};

use crate::decoder::{decode_with, DecodeOptions};
use crate::encoder::{encode_with, EncodeOptions};
use crate::error::{BxsaError, BxsaResult};

/// Convert a BXSA document to textual XML (typed, schema-less).
pub fn bxsa_to_xml(bytes: &[u8]) -> BxsaResult<String> {
    let doc = decode_with(bytes, &DecodeOptions::default())?;
    let Ok(xml) = xmltext::to_string_with(&doc, &XmlWriteOptions::default());
    Ok(xml)
}

/// Convert textual XML to a BXSA document.
pub fn xml_to_bxsa(xml: &str) -> BxsaResult<Vec<u8>> {
    let doc = xmltext::parse_with(xml, &XmlReadOptions::default()).map_err(|e| {
        BxsaError::Structure {
            what: format!("XML parse error during transcode: {e}"),
        }
    })?;
    encode_with(&doc, &EncodeOptions::default())
}

/// Check the binary-side transcodability property for a document:
/// BXSA → XML → BXSA reproduces the original bytes.
pub fn verify_binary_fixpoint(doc: &Document) -> BxsaResult<bool> {
    let bytes = encode_with(doc, &EncodeOptions::default())?;
    let xml = bxsa_to_xml(&bytes)?;
    let back = xml_to_bxsa(&xml)?;
    Ok(back == bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::{ArrayValue, AtomicValue, Element};

    fn typed_doc() -> Document {
        Document::with_root(
            Element::component("d:set")
                .with_namespace("d", "http://example.org/data")
                .with_attr("run", "9")
                .with_child(Element::leaf("d:count", AtomicValue::I32(3)))
                .with_child(Element::leaf("d:mean", AtomicValue::F64(0.1 + 0.2)))
                .with_child(Element::array(
                    "d:values",
                    ArrayValue::F64(vec![1.5, -2.25, 3.0e-9]),
                ))
                .with_child(Element::array("d:index", ArrayValue::I32(vec![0, 1, 2]))),
        )
    }

    #[test]
    fn binary_xml_binary_is_identity() {
        assert!(verify_binary_fixpoint(&typed_doc()).unwrap());
    }

    #[test]
    fn xml_binary_xml_is_identity() {
        // Start from the textual side: XML → BXSA → XML must reproduce
        // the text (floats already canonical here).
        let xml = xmltext::to_string(&typed_doc()).unwrap();
        let bytes = xml_to_bxsa(&xml).unwrap();
        let xml2 = bxsa_to_xml(&bytes).unwrap();
        assert_eq!(xml2, xml);
    }

    #[test]
    fn float_precision_is_canonicalized_not_lost() {
        // "1.50" is not canonical; one trip through BXSA canonicalizes
        // the lexical form but preserves the value exactly.
        let xml = r#"<n xsi:type="xsd:double">1.50</n>"#;
        let bytes = xml_to_bxsa(xml).unwrap();
        let xml2 = bxsa_to_xml(&bytes).unwrap();
        assert_eq!(xml2, r#"<n xsi:type="xsd:double">1.5</n>"#);
        // And the canonical form is a fixed point.
        let bytes2 = xml_to_bxsa(&xml2).unwrap();
        assert_eq!(bytes2, bytes);
    }

    #[test]
    fn untyped_xml_roundtrips_as_text() {
        let xml = "<a><b>plain text</b><c k=\"v\"/></a>";
        let bytes = xml_to_bxsa(xml).unwrap();
        assert_eq!(bxsa_to_xml(&bytes).unwrap(), xml);
    }

    #[test]
    fn malformed_xml_reports_structure_error() {
        assert!(matches!(
            xml_to_bxsa("<a><b></a></b>"),
            Err(BxsaError::Structure { .. })
        ));
    }
}
