//! BXSA encode/decode errors.

use std::fmt;

use xbs::XbsError;

/// Errors while encoding or decoding BXSA documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BxsaError {
    /// Low-level stream error from the XBS layer.
    Xbs(XbsError),
    /// Unknown frame-type code.
    BadFrameType { offset: usize, code: u8 },
    /// Reserved byte-order code in a frame prefix.
    BadByteOrder { offset: usize, code: u8 },
    /// A frame's parsed body did not end exactly at its declared size.
    FrameSizeMismatch {
        offset: usize,
        declared: u64,
        consumed: u64,
    },
    /// A QName used a prefix with no in-scope declaration.
    ///
    /// BXSA tokenizes namespace references, so it can only encode
    /// namespace-well-formed documents (paper §4.1).
    UndeclaredPrefix { prefix: String },
    /// A namespace reference pointed outside the in-scope tables.
    BadNamespaceRef { offset: usize },
    /// A type code not permitted in this position (e.g. a string-typed
    /// array element).
    BadValueType { offset: usize, what: String },
    /// A checksum frame's stored CRC did not match the bytes it covers.
    ChecksumMismatch {
        offset: usize,
        stored: u32,
        computed: u32,
    },
    /// Document-level structure violation.
    Structure { what: String },
}

impl fmt::Display for BxsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BxsaError::Xbs(e) => write!(f, "XBS stream error: {e}"),
            BxsaError::BadFrameType { offset, code } => {
                write!(f, "unknown frame type {code:#04x} at offset {offset}")
            }
            BxsaError::BadByteOrder { offset, code } => {
                write!(f, "reserved byte-order code {code} at offset {offset}")
            }
            BxsaError::FrameSizeMismatch {
                offset,
                declared,
                consumed,
            } => write!(
                f,
                "frame at offset {offset} declared {declared} bytes but its body consumed {consumed}"
            ),
            BxsaError::UndeclaredPrefix { prefix } => {
                write!(f, "prefix {prefix:?} has no in-scope namespace declaration")
            }
            BxsaError::BadNamespaceRef { offset } => {
                write!(f, "dangling namespace reference at offset {offset}")
            }
            BxsaError::BadValueType { offset, what } => {
                write!(f, "invalid value type at offset {offset}: {what}")
            }
            BxsaError::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum frame at offset {offset} stored {stored:#010x} but covered bytes hash to {computed:#010x}"
            ),
            BxsaError::Structure { what } => write!(f, "document structure error: {what}"),
        }
    }
}

impl std::error::Error for BxsaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BxsaError::Xbs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XbsError> for BxsaError {
    fn from(e: XbsError) -> BxsaError {
        BxsaError::Xbs(e)
    }
}

/// Result alias for this crate.
pub type BxsaResult<T> = Result<T, BxsaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xbs_errors_convert_and_chain() {
        let e: BxsaError = XbsError::UnexpectedEof {
            offset: 3,
            needed: 1,
        }
        .into();
        assert!(e.to_string().contains("XBS"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_variants() {
        assert!(BxsaError::UndeclaredPrefix {
            prefix: "soap".into()
        }
        .to_string()
        .contains("soap"));
        assert!(BxsaError::FrameSizeMismatch {
            offset: 1,
            declared: 10,
            consumed: 9
        }
        .to_string()
        .contains("10"));
    }
}
