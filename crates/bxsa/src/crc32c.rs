//! CRC32C (Castagnoli, polynomial 0x1EDC6F41) — software slicing-by-8.
//!
//! Used by the optional integrity-checksum frame. The Castagnoli
//! polynomial is chosen over CRC-32/ISO-HDLC for its better Hamming
//! distance at the frame sizes BXSA produces, and because it is the
//! variant with widespread hardware support should a platform intrinsic
//! path ever be added. Tables are built in a `const fn` at compile time,
//! so there is no runtime init and no heap allocation.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC32C of `data` (init all-ones, final xor all-ones, reflected).
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // iSCSI test vectors (RFC 3720 appendix B.4).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn slicing_matches_bytewise_on_odd_lengths() {
        fn bytewise(data: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in data {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
            }
            !crc
        }
        for len in 0..64 {
            let data: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect();
            assert_eq!(crc32c(&data), bytewise(&data), "len {len}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let data = b"The paper's framework sits directly on untrusted wire bytes";
        let base = crc32c(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32c(&copy), base);
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
