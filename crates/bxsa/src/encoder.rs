//! bXDM → BXSA frames.

use bxdm::{Content, Document, Element, Node, ScopeChain};
use xbs::{ByteOrder, XbsWriter};

use crate::error::{BxsaError, BxsaResult};
use crate::estimate::{body_bound, document_body_bound, element_body_bound, size_field_len};
use crate::frame::{prefix_byte, FrameType};

/// Encoding options.
#[derive(Debug, Clone, Default)]
pub struct EncodeOptions {
    /// Byte order to encode numeric data in. Defaults to little-endian;
    /// encoding in the machine's native order keeps the zero-copy read
    /// path available on the receiver when architectures match.
    pub byte_order: ByteOrder,
    /// Append a CRC32C integrity-checksum frame after the top-level
    /// frame. Off by default. Decoders verify the checksum when present
    /// and accept its absence, so checksummed and plain peers interop
    /// without negotiation.
    pub checksum: bool,
}

/// Append a checksum frame covering everything already in the writer.
pub(crate) fn append_checksum_frame(w: &mut XbsWriter, order: ByteOrder) {
    let crc = crate::crc32c::crc32c(w.as_bytes());
    w.put_raw_u8(prefix_byte(order, FrameType::Checksum));
    w.put_raw_u8(crate::frame::CHECKSUM_FRAME_LEN as u8);
    w.put_raw_u8(crate::frame::CHECKSUM_ALG_CRC32C);
    // Raw bytes, not `put_u32`: scalar puts align to the buffer start,
    // which would pad the frame to a position-dependent size. The frame
    // is fixed-layout; only the CRC's byte order follows the prefix.
    let bytes = match order {
        ByteOrder::Little => crc.to_le_bytes(),
        ByteOrder::Big => crc.to_be_bytes(),
    };
    w.put_bytes(&bytes);
}

/// Encode a document with default options (little-endian).
pub fn encode(doc: &Document) -> BxsaResult<Vec<u8>> {
    encode_with(doc, &EncodeOptions::default())
}

/// Encode a document with explicit options.
pub fn encode_with(doc: &Document, opts: &EncodeOptions) -> BxsaResult<Vec<u8>> {
    // Pre-size the output from the estimate: one allocation for the
    // common case.
    let bound = document_body_bound(&doc.children);
    let mut enc = Encoder {
        w: XbsWriter::with_capacity(bound + 12, opts.byte_order),
        order: opts.byte_order,
    };
    enc.write_document(doc)?;
    if opts.checksum {
        append_checksum_frame(&mut enc.w, opts.byte_order);
    }
    Ok(enc.w.into_bytes())
}

/// Encode a document into a caller-provided buffer with default options.
///
/// The buffer is cleared first but keeps its capacity, so cycling the same
/// buffer through repeated calls reaches a steady state with **zero heap
/// allocations per message** (the property the `bench` crate's counting
/// allocator asserts). On error the buffer is left cleared.
pub fn encode_into(doc: &Document, buf: &mut Vec<u8>) -> BxsaResult<()> {
    encode_into_with(doc, &EncodeOptions::default(), buf)
}

/// Encode a document into a caller-provided buffer with explicit options.
pub fn encode_into_with(
    doc: &Document,
    opts: &EncodeOptions,
    buf: &mut Vec<u8>,
) -> BxsaResult<()> {
    let mut enc = Encoder {
        w: XbsWriter::from_buf(std::mem::take(buf), opts.byte_order),
        order: opts.byte_order,
    };
    let result = enc.write_document(doc);
    if result.is_ok() && opts.checksum {
        append_checksum_frame(&mut enc.w, opts.byte_order);
    }
    *buf = enc.w.take_buf();
    if result.is_err() {
        buf.clear();
    }
    result
}

/// Encode a single element as a standalone frame sequence (no document
/// frame). Used by tests and by intermediaries re-framing message parts.
pub fn encode_element(element: &Element, opts: &EncodeOptions) -> BxsaResult<Vec<u8>> {
    let body = element_body_bound(element);
    let mut enc = Encoder {
        w: XbsWriter::with_capacity(1 + size_field_len(body) + body, opts.byte_order),
        order: opts.byte_order,
    };
    enc.write_element_frame(element, None)?;
    if opts.checksum {
        append_checksum_frame(&mut enc.w, opts.byte_order);
    }
    Ok(enc.w.into_bytes())
}

/// [`encode_element`] into a caller-provided buffer (cleared first,
/// capacity kept).
pub fn encode_element_into(
    element: &Element,
    opts: &EncodeOptions,
    buf: &mut Vec<u8>,
) -> BxsaResult<()> {
    let mut enc = Encoder {
        w: XbsWriter::from_buf(std::mem::take(buf), opts.byte_order),
        order: opts.byte_order,
    };
    let result = enc.write_element_frame(element, None);
    if result.is_ok() && opts.checksum {
        append_checksum_frame(&mut enc.w, opts.byte_order);
    }
    *buf = enc.w.take_buf();
    if result.is_err() {
        buf.clear();
    }
    result
}

struct Encoder {
    w: XbsWriter,
    order: ByteOrder,
}

impl Encoder {
    fn write_document(&mut self, doc: &Document) -> BxsaResult<()> {
        let bound = document_body_bound(&doc.children);
        let (start, field_len) = self.open_frame(FrameType::Document, bound);
        self.w.put_vls(doc.children.len() as u64);
        for child in &doc.children {
            self.write_frame(child, None)?;
        }
        self.close_frame(start, field_len);
        Ok(())
    }

    /// Write the prefix byte and reserve the size field; returns the frame
    /// start offset and the reserved length.
    fn open_frame(&mut self, frame_type: FrameType, bound: usize) -> (usize, usize) {
        let start = self.w.offset();
        self.w.put_raw_u8(prefix_byte(self.order, frame_type));
        let field_len = size_field_len(bound);
        self.w.reserve(field_len);
        (start, field_len)
    }

    /// Backpatch the size field with the frame's actual total size.
    fn close_frame(&mut self, start: usize, field_len: usize) {
        let total = (self.w.offset() - start) as u64;
        self.w.patch_vls_padded(start + 1, total, field_len);
    }

    fn write_frame(&mut self, node: &Node, parent: Option<&ScopeChain<'_>>) -> BxsaResult<()> {
        match node {
            Node::Element(e) => self.write_element_frame(e, parent),
            Node::Text(t) => {
                self.write_text_like(FrameType::CharData, t);
                Ok(())
            }
            Node::Comment(c) => {
                crate::wellformed::check_comment(c)?;
                self.write_text_like(FrameType::Comment, c);
                Ok(())
            }
            Node::Pi { target, data } => {
                crate::wellformed::check_pi(target, data)?;
                let bound = body_bound(node);
                let (start, field_len) = self.open_frame(FrameType::Pi, bound);
                self.w.put_str(target);
                self.w.put_str(data);
                self.close_frame(start, field_len);
                Ok(())
            }
        }
    }

    fn write_text_like(&mut self, frame_type: FrameType, text: &str) {
        let bound = xbs::vls::vls_len(text.len() as u64) + text.len();
        let (start, field_len) = self.open_frame(frame_type, bound);
        self.w.put_str(text);
        self.close_frame(start, field_len);
    }

    fn write_element_frame(
        &mut self,
        e: &Element,
        parent: Option<&ScopeChain<'_>>,
    ) -> BxsaResult<()> {
        let node_bound = element_body_bound(e);
        let frame_type = match &e.content {
            Content::Children(_) => FrameType::Component,
            Content::Leaf(_) => FrameType::Leaf,
            Content::Array(_) => FrameType::Array,
        };
        let (start, field_len) = self.open_frame(frame_type, node_bound);

        // Namespace symbol table ("Repeated N1 times" in Figure 2). An
        // absent prefix (default namespace) is encoded as a zero-length
        // prefix string.
        self.w.put_vls(e.namespaces.len() as u64);
        for decl in &e.namespaces {
            if let Some(prefix) = decl.prefix.as_deref() {
                crate::wellformed::check_name("namespace prefix", prefix)?;
            }
            self.w.put_str(decl.prefix.as_deref().unwrap_or(""));
            self.w.put_str(&decl.uri);
        }
        // The element's own declarations are in scope for its own name.
        // The scope chain lives on the recursion stack and borrows the
        // element's declaration slice, so namespace tracking costs no heap.
        let chain = match parent {
            Some(p) => p.child(&e.namespaces),
            None => ScopeChain::root(&e.namespaces),
        };

        crate::wellformed::check_name("local name", e.name.local())?;
        self.write_ns_ref(&chain, e.name.prefix(), false)?;
        self.w.put_str(e.name.local());

        self.w.put_vls(e.attributes.len() as u64);
        for attr in &e.attributes {
            crate::wellformed::check_name("local name", attr.name.local())?;
            self.write_ns_ref(&chain, attr.name.prefix(), true)?;
            self.w.put_str(attr.name.local());
            self.write_atomic(&attr.value);
        }

        match &e.content {
            Content::Children(children) => {
                self.w.put_vls(children.len() as u64);
                for child in children {
                    self.write_frame(child, Some(&chain))?;
                }
            }
            Content::Leaf(value) => self.write_atomic(value),
            Content::Array(array) => self.write_array(array),
        }

        self.close_frame(start, field_len);
        Ok(())
    }

    /// Encode a namespace reference: VLS 0 for "no namespace", else
    /// VLS(scope depth + 1) followed by VLS(index) — the tokenized form of
    /// §4.1 ("a namespace reference also includes the namespace scope
    /// depth ... a count backwards to indicate where the namespace was
    /// declared").
    fn write_ns_ref(
        &mut self,
        chain: &ScopeChain<'_>,
        prefix: Option<&str>,
        is_attr: bool,
    ) -> BxsaResult<()> {
        // Per the XML namespaces rules, unprefixed attributes are never in
        // the default namespace, so they always encode "no namespace".
        let r = if is_attr && prefix.is_none() {
            None
        } else {
            chain.find_ref(prefix)
        };
        match r {
            Some(r) => {
                self.w.put_vls(r.scope_depth as u64 + 1);
                self.w.put_vls(r.index as u64);
            }
            None => {
                if let Some(p) = prefix {
                    return Err(BxsaError::UndeclaredPrefix { prefix: p.to_owned() });
                }
                self.w.put_vls(0);
            }
        }
        Ok(())
    }

    fn write_atomic(&mut self, value: &bxdm::AtomicValue) {
        use bxdm::AtomicValue as A;
        self.w.put_raw_u8(value.type_code() as u8);
        match value {
            A::I8(v) => self.w.put_i8(*v),
            A::U8(v) => self.w.put_u8(*v),
            A::I16(v) => self.w.put_i16(*v),
            A::U16(v) => self.w.put_u16(*v),
            A::I32(v) => self.w.put_i32(*v),
            A::U32(v) => self.w.put_u32(*v),
            A::I64(v) => self.w.put_i64(*v),
            A::U64(v) => self.w.put_u64(*v),
            A::F32(v) => self.w.put_f32(*v),
            A::F64(v) => self.w.put_f64(*v),
            A::Str(s) => self.w.put_str(s),
            A::Bool(b) => self.w.put_raw_u8(*b as u8),
        }
    }

    fn write_array(&mut self, array: &bxdm::ArrayValue) {
        use bxdm::ArrayValue as V;
        self.w.put_raw_u8(array.type_code() as u8);
        self.w.put_vls(array.len() as u64);
        match array {
            V::I8(v) => self.w.put_packed(v),
            V::U8(v) => self.w.put_packed(v),
            V::I16(v) => self.w.put_packed(v),
            V::U16(v) => self.w.put_packed(v),
            V::I32(v) => self.w.put_packed(v),
            V::U32(v) => self.w.put_packed(v),
            V::I64(v) => self.w.put_packed(v),
            V::U64(v) => self.w.put_packed(v),
            V::F32(v) => self.w.put_packed(v),
            V::F64(v) => self.w.put_packed(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::{ArrayValue, AtomicValue};

    #[test]
    fn undeclared_prefix_is_an_error() {
        let doc = Document::with_root(Element::component("nope:root"));
        assert_eq!(
            encode(&doc).unwrap_err(),
            BxsaError::UndeclaredPrefix {
                prefix: "nope".into()
            }
        );
    }

    #[test]
    fn declared_prefix_encodes() {
        let doc = Document::with_root(
            Element::component("p:root").with_namespace("p", "http://example.org"),
        );
        assert!(encode(&doc).is_ok());
    }

    #[test]
    fn unprefixed_attr_never_needs_declaration() {
        let doc = Document::with_root(
            Element::component("r")
                .with_default_namespace("http://example.org")
                .with_attr("plain", "v"),
        );
        assert!(encode(&doc).is_ok());
    }

    #[test]
    fn document_frame_leads() {
        let doc = Document::with_root(Element::component("r"));
        let bytes = encode(&doc).unwrap();
        let (order, ft) = crate::frame::parse_prefix(bytes[0], 0).unwrap();
        assert_eq!(order, ByteOrder::Little);
        assert_eq!(ft, FrameType::Document);
    }

    #[test]
    fn encoding_overhead_is_small_for_arrays() {
        // The Table 1 claim in miniature: framing overhead on a packed
        // array should be on the order of a percent, not double.
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let native = values.len() * 8;
        let doc = Document::with_root(Element::array("v", ArrayValue::F64(values)));
        let bytes = encode(&doc).unwrap();
        let overhead = bytes.len() - native;
        assert!(
            overhead < native / 50,
            "overhead {overhead} bytes on {native}"
        );
    }

    #[test]
    fn leaf_scalar_layout_has_type_code() {
        let doc = Document::with_root(Element::leaf("n", AtomicValue::Bool(true)));
        let bytes = encode(&doc).unwrap();
        // Bool code 0x0c followed by 0x01 must appear in the stream.
        assert!(bytes.windows(2).any(|w| w == [0x0c, 0x01]));
    }

    #[test]
    fn element_helper_encodes_without_document_frame() {
        let e = Element::component("r");
        let bytes = encode_element(&e, &EncodeOptions::default()).unwrap();
        let (_, ft) = crate::frame::parse_prefix(bytes[0], 0).unwrap();
        assert_eq!(ft, FrameType::Component);
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let doc = Document::with_root(Element::array(
            "v",
            ArrayValue::F64((0..256).map(f64::from).collect()),
        ));
        let mut buf = Vec::new();
        encode_into(&doc, &mut buf).unwrap();
        assert_eq!(buf, encode(&doc).unwrap());
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        encode_into(&doc, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap, "steady-state encode must not grow");
        assert_eq!(buf.as_ptr(), ptr, "steady-state encode must not reallocate");
    }

    #[test]
    fn encode_into_clears_the_buffer_on_error() {
        let doc = Document::with_root(Element::component("nope:root"));
        let mut buf = vec![1, 2, 3];
        assert!(encode_into(&doc, &mut buf).is_err());
        assert!(buf.is_empty());
    }

    #[test]
    fn encode_element_into_matches_encode_element() {
        let e = Element::leaf("p:n", AtomicValue::I32(9)).with_namespace("p", "http://p");
        let owned = encode_element(&e, &EncodeOptions::default()).unwrap();
        let mut buf = vec![0xaa; 4];
        encode_element_into(&e, &EncodeOptions::default(), &mut buf).unwrap();
        assert_eq!(buf, owned);
    }
}
