//! The common frame prefix (paper Figure 2, top rows).
//!
//! Bit layout of the prefix byte: the two high bits are the byte-order
//! code ("BO" in Figure 2), the low six bits are the frame-type code.

use xbs::ByteOrder;

use crate::error::{BxsaError, BxsaResult};

/// The kinds of frames a BXSA document is built from.
///
/// The paper deliberately makes the frame granularity *coarser* than the
/// node granularity: attributes and namespace declarations are fields of
/// their owning element frame, not frames of their own, to avoid the
/// encoding overhead of numerous tiny frames (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameType {
    /// The document node; contains a count and the top-level frames.
    Document = 0x01,
    /// A general element with child frames ("Component Element Frame").
    Component = 0x02,
    /// An element with one typed atomic value ("Leaf Element Frame").
    Leaf = 0x03,
    /// An element with a packed homogeneous array ("Array Element Frame").
    Array = 0x04,
    /// Character data in mixed content.
    CharData = 0x05,
    /// A comment (same structure as CharData, different type code).
    Comment = 0x06,
    /// A processing instruction.
    Pi = 0x07,
}

impl FrameType {
    /// Decode the low six bits of a prefix byte.
    pub fn from_code(code: u8, offset: usize) -> BxsaResult<FrameType> {
        Ok(match code {
            0x01 => FrameType::Document,
            0x02 => FrameType::Component,
            0x03 => FrameType::Leaf,
            0x04 => FrameType::Array,
            0x05 => FrameType::CharData,
            0x06 => FrameType::Comment,
            0x07 => FrameType::Pi,
            _ => return Err(BxsaError::BadFrameType { offset, code }),
        })
    }

    /// `true` for the three element frame kinds.
    pub fn is_element(self) -> bool {
        matches!(self, FrameType::Component | FrameType::Leaf | FrameType::Array)
    }
}

/// Pack a prefix byte from byte order and frame type.
#[inline]
pub fn prefix_byte(order: ByteOrder, frame_type: FrameType) -> u8 {
    (order.code() << 6) | (frame_type as u8)
}

/// Unpack a prefix byte.
pub fn parse_prefix(byte: u8, offset: usize) -> BxsaResult<(ByteOrder, FrameType)> {
    let order = ByteOrder::from_code(byte >> 6).ok_or(BxsaError::BadByteOrder {
        offset,
        code: byte >> 6,
    })?;
    let frame_type = FrameType::from_code(byte & 0x3f, offset)?;
    Ok((order, frame_type))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_roundtrip() {
        for order in [ByteOrder::Little, ByteOrder::Big] {
            for ft in [
                FrameType::Document,
                FrameType::Component,
                FrameType::Leaf,
                FrameType::Array,
                FrameType::CharData,
                FrameType::Comment,
                FrameType::Pi,
            ] {
                let b = prefix_byte(order, ft);
                assert_eq!(parse_prefix(b, 0).unwrap(), (order, ft));
            }
        }
    }

    #[test]
    fn bad_codes_rejected() {
        // frame type 0 is unassigned
        assert!(matches!(
            parse_prefix(0x00, 5),
            Err(BxsaError::BadFrameType { offset: 5, code: 0 })
        ));
        // byte-order code 2 is reserved
        assert!(matches!(
            parse_prefix(0b1000_0001, 0),
            Err(BxsaError::BadByteOrder { code: 2, .. })
        ));
        assert!(matches!(
            parse_prefix(0x3f, 0),
            Err(BxsaError::BadFrameType { code: 0x3f, .. })
        ));
    }

    #[test]
    fn element_kinds() {
        assert!(FrameType::Component.is_element());
        assert!(FrameType::Leaf.is_element());
        assert!(FrameType::Array.is_element());
        assert!(!FrameType::Document.is_element());
        assert!(!FrameType::CharData.is_element());
    }
}
