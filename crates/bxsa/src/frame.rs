//! The common frame prefix (paper Figure 2, top rows).
//!
//! Bit layout of the prefix byte: the two high bits are the byte-order
//! code ("BO" in Figure 2), the low six bits are the frame-type code.

use xbs::ByteOrder;

use crate::error::{BxsaError, BxsaResult};

/// The kinds of frames a BXSA document is built from.
///
/// The paper deliberately makes the frame granularity *coarser* than the
/// node granularity: attributes and namespace declarations are fields of
/// their owning element frame, not frames of their own, to avoid the
/// encoding overhead of numerous tiny frames (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameType {
    /// The document node; contains a count and the top-level frames.
    Document = 0x01,
    /// A general element with child frames ("Component Element Frame").
    Component = 0x02,
    /// An element with one typed atomic value ("Leaf Element Frame").
    Leaf = 0x03,
    /// An element with a packed homogeneous array ("Array Element Frame").
    Array = 0x04,
    /// Character data in mixed content.
    CharData = 0x05,
    /// A comment (same structure as CharData, different type code).
    Comment = 0x06,
    /// A processing instruction.
    Pi = 0x07,
    /// An integrity checksum covering the immediately preceding frame.
    ///
    /// Trailing placement (after the frame it covers, never before)
    /// keeps document and part frames at buffer offset 0, which the
    /// packed-array alignment rules depend on, and lets encoders append
    /// the checksum without backpatching. Body layout after the common
    /// prefix + padded-VLS size: 1 algorithm byte (0x01 = CRC32C), then
    /// the 4-byte CRC stored in the frame's declared byte order. The CRC
    /// covers every byte of the preceding frame, prefix included.
    Checksum = 0x08,
}

impl FrameType {
    /// Decode the low six bits of a prefix byte.
    pub fn from_code(code: u8, offset: usize) -> BxsaResult<FrameType> {
        Ok(match code {
            0x01 => FrameType::Document,
            0x02 => FrameType::Component,
            0x03 => FrameType::Leaf,
            0x04 => FrameType::Array,
            0x05 => FrameType::CharData,
            0x06 => FrameType::Comment,
            0x07 => FrameType::Pi,
            0x08 => FrameType::Checksum,
            _ => return Err(BxsaError::BadFrameType { offset, code }),
        })
    }

    /// `true` for the three element frame kinds.
    pub fn is_element(self) -> bool {
        matches!(self, FrameType::Component | FrameType::Leaf | FrameType::Array)
    }
}

/// Total wire size of a checksum frame as this crate emits it: prefix
/// byte, 1-byte padded-VLS size, algorithm byte, 4-byte CRC.
pub(crate) const CHECKSUM_FRAME_LEN: usize = 7;

/// Algorithm byte for CRC32C — the only algorithm currently assigned.
pub(crate) const CHECKSUM_ALG_CRC32C: u8 = 0x01;

/// Parse and verify a checksum frame starting at `at`, whose CRC must
/// cover `buf[covered_start..at]`. Returns the frame's end offset.
///
/// Any malformation is a typed error — a corrupt checksum frame must
/// never be silently skipped, or it would defeat the integrity check it
/// exists to provide.
pub(crate) fn verify_checksum_frame(
    buf: &[u8],
    covered_start: usize,
    at: usize,
) -> BxsaResult<usize> {
    let mut r = xbs::XbsReader::new(buf, ByteOrder::Little);
    r.seek(at)?;
    let (order, ft) = parse_prefix(r.read_raw_u8()?, at)?;
    if ft != FrameType::Checksum {
        return Err(BxsaError::Structure {
            what: format!("expected checksum frame at offset {at}"),
        });
    }
    if at == covered_start {
        return Err(BxsaError::Structure {
            what: format!("checksum frame at offset {at} has no preceding frame to cover"),
        });
    }
    r.set_order(order);
    let size = r.read_vls_padded()?;
    let end = at
        .checked_add(size as usize)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| BxsaError::Structure {
            what: format!("checksum frame at offset {at} declares size {size} past buffer end"),
        })?;
    let alg = r.read_raw_u8()?;
    if alg != CHECKSUM_ALG_CRC32C {
        return Err(BxsaError::Structure {
            what: format!("unknown checksum algorithm {alg:#04x} at offset {at}"),
        });
    }
    // Raw unaligned read — see `append_checksum_frame` for why the CRC
    // is not an aligned scalar field.
    let raw = r.read_bytes(4)?;
    let raw: [u8; 4] = raw.try_into().expect("read_bytes(4) returned 4 bytes");
    let stored = match order {
        ByteOrder::Little => u32::from_le_bytes(raw),
        ByteOrder::Big => u32::from_be_bytes(raw),
    };
    if r.position() != end {
        return Err(BxsaError::FrameSizeMismatch {
            offset: at,
            declared: size,
            consumed: (r.position() - at) as u64,
        });
    }
    let computed = crate::crc32c::crc32c(&buf[covered_start..at]);
    if stored != computed {
        return Err(BxsaError::ChecksumMismatch {
            offset: at,
            stored,
            computed,
        });
    }
    Ok(end)
}

/// Pack a prefix byte from byte order and frame type.
#[inline]
pub fn prefix_byte(order: ByteOrder, frame_type: FrameType) -> u8 {
    (order.code() << 6) | (frame_type as u8)
}

/// Unpack a prefix byte.
pub fn parse_prefix(byte: u8, offset: usize) -> BxsaResult<(ByteOrder, FrameType)> {
    let order = ByteOrder::from_code(byte >> 6).ok_or(BxsaError::BadByteOrder {
        offset,
        code: byte >> 6,
    })?;
    let frame_type = FrameType::from_code(byte & 0x3f, offset)?;
    Ok((order, frame_type))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_roundtrip() {
        for order in [ByteOrder::Little, ByteOrder::Big] {
            for ft in [
                FrameType::Document,
                FrameType::Component,
                FrameType::Leaf,
                FrameType::Array,
                FrameType::CharData,
                FrameType::Comment,
                FrameType::Pi,
                FrameType::Checksum,
            ] {
                let b = prefix_byte(order, ft);
                assert_eq!(parse_prefix(b, 0).unwrap(), (order, ft));
            }
        }
    }

    #[test]
    fn bad_codes_rejected() {
        // frame type 0 is unassigned
        assert!(matches!(
            parse_prefix(0x00, 5),
            Err(BxsaError::BadFrameType { offset: 5, code: 0 })
        ));
        // byte-order code 2 is reserved
        assert!(matches!(
            parse_prefix(0b1000_0001, 0),
            Err(BxsaError::BadByteOrder { code: 2, .. })
        ));
        assert!(matches!(
            parse_prefix(0x3f, 0),
            Err(BxsaError::BadFrameType { code: 0x3f, .. })
        ));
    }

    #[test]
    fn element_kinds() {
        assert!(FrameType::Component.is_element());
        assert!(FrameType::Leaf.is_element());
        assert!(FrameType::Array.is_element());
        assert!(!FrameType::Document.is_element());
        assert!(!FrameType::CharData.is_element());
    }
}
