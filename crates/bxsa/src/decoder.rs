//! BXSA frames → bXDM.

use bxdm::{
    ArrayValue, Attribute, AtomicValue, Content, Document, Element, NamespaceDecl, Node, QName,
    ScopeChain,
};
use bxdm::namespace::NsRef;
use xbs::{ByteOrder, TypeCode, XbsReader};

use crate::error::{BxsaError, BxsaResult};
use crate::frame::{parse_prefix, FrameType};

/// Decoding options.
#[derive(Debug, Clone)]
pub struct DecodeOptions {
    /// Maximum frame nesting depth accepted. Guards the recursive parser
    /// against stack exhaustion on adversarial input.
    pub max_depth: usize,
}

impl Default for DecodeOptions {
    fn default() -> DecodeOptions {
        DecodeOptions { max_depth: 256 }
    }
}

/// Decode a complete BXSA document with default options.
pub fn decode(bytes: &[u8]) -> BxsaResult<Document> {
    decode_with(bytes, &DecodeOptions::default())
}

/// Decode a complete BXSA document.
pub fn decode_with(bytes: &[u8], opts: &DecodeOptions) -> BxsaResult<Document> {
    let mut dec = Decoder {
        r: XbsReader::new(bytes, ByteOrder::Little),
        opts,
    };
    let doc = dec.read_document()?;
    if !dec.r.is_at_end() {
        return Err(BxsaError::Structure {
            what: format!("{} trailing byte(s) after the document frame", dec.r.remaining()),
        });
    }
    Ok(doc)
}

/// Decode a standalone element frame (the output of
/// [`crate::encoder::encode_element`]).
pub fn decode_element(bytes: &[u8], opts: &DecodeOptions) -> BxsaResult<Element> {
    decode_element_at(bytes, 0, opts)
}

/// Decode one element frame located at `offset` inside a larger document
/// buffer (e.g. a frame found by [`crate::scan::FrameScanner`]).
///
/// The whole buffer must be passed, not a slice of the frame: alignment
/// padding inside the frame is relative to the *document* start, so the
/// decoder has to see the true offsets.
pub fn decode_element_at(
    bytes: &[u8],
    offset: usize,
    opts: &DecodeOptions,
) -> BxsaResult<Element> {
    let mut dec = Decoder {
        r: XbsReader::new(bytes, ByteOrder::Little),
        opts,
    };
    dec.r.seek(offset)?;
    match dec.read_frame(0, None)? {
        Node::Element(e) => Ok(e),
        other => Err(BxsaError::Structure {
            what: format!("expected an element frame, found {other:?}"),
        }),
    }
}

struct Decoder<'a, 'o> {
    r: XbsReader<'a>,
    opts: &'o DecodeOptions,
}

impl Decoder<'_, '_> {
    fn read_document(&mut self) -> BxsaResult<Document> {
        let start = self.r.position();
        let (order, frame_type) = parse_prefix(self.r.read_raw_u8()?, start)?;
        if frame_type != FrameType::Document {
            return Err(BxsaError::Structure {
                what: format!("expected a document frame, found {frame_type:?}"),
            });
        }
        self.r.set_order(order);
        let size = self.r.read_vls_padded()?;
        let count = self.r.read_count(1)?;
        let mut doc = Document::new();
        doc.children.reserve(count.min(1024));
        for _ in 0..count {
            doc.children.push(self.read_frame(0, None)?);
        }
        self.check_frame_end(start, size)?;
        Ok(doc)
    }

    fn check_frame_end(&mut self, start: usize, declared: u64) -> BxsaResult<()> {
        let consumed = (self.r.position() - start) as u64;
        if consumed != declared {
            return Err(BxsaError::FrameSizeMismatch {
                offset: start,
                declared,
                consumed,
            });
        }
        Ok(())
    }

    fn read_frame(&mut self, depth: usize, parent: Option<&ScopeChain<'_>>) -> BxsaResult<Node> {
        if depth > self.opts.max_depth {
            return Err(BxsaError::Structure {
                what: format!("frame nesting exceeds max_depth {}", self.opts.max_depth),
            });
        }
        let start = self.r.position();
        let (order, frame_type) = parse_prefix(self.r.read_raw_u8()?, start)?;
        // Byte order is a per-frame property; restore the enclosing
        // frame's order afterwards (embedded frames may differ).
        let outer_order = self.r.order();
        self.r.set_order(order);
        let size = self.r.read_vls_padded()?;
        let node = match frame_type {
            FrameType::Document => {
                self.r.set_order(outer_order);
                return Err(BxsaError::Structure {
                    what: "nested document frame".into(),
                });
            }
            FrameType::Component | FrameType::Leaf | FrameType::Array => {
                self.read_element_body(frame_type, depth, parent)
            }
            FrameType::CharData => self.r.read_str().map(|s| Node::Text(s.to_owned())).map_err(Into::into),
            FrameType::Comment => self
                .r
                .read_str()
                .map(|s| Node::Comment(s.to_owned()))
                .map_err(Into::into),
            FrameType::Pi => (|| {
                let target = self.r.read_str()?.to_owned();
                let data = self.r.read_str()?.to_owned();
                Ok(Node::Pi { target, data })
            })(),
        };
        self.r.set_order(outer_order);
        let node = node?;
        self.check_frame_end(start, size)?;
        Ok(node)
    }

    fn read_element_body(
        &mut self,
        frame_type: FrameType,
        depth: usize,
        parent: Option<&ScopeChain<'_>>,
    ) -> BxsaResult<Node> {
        // Namespace symbol table. The declarations Vec is read once and
        // *moved* into the finished element; during recursion the scope
        // chain borrows it from the stack, so namespace tracking needs no
        // side allocations and no final clone.
        let n1 = self.r.read_count(2)?;
        let mut decls = Vec::with_capacity(n1);
        for _ in 0..n1 {
            let prefix = self.r.read_str()?;
            let uri = self.r.read_str()?.to_owned();
            decls.push(NamespaceDecl {
                prefix: (!prefix.is_empty()).then(|| prefix.to_owned()),
                uri,
            });
        }
        let chain = match parent {
            Some(p) => p.child(&decls),
            None => ScopeChain::root(&decls),
        };

        let name = self.read_qname(&chain)?;
        let n2 = self.r.read_count(3)?;
        let mut attributes = Vec::with_capacity(n2);
        for _ in 0..n2 {
            let attr_name = self.read_qname(&chain)?;
            let value = self.read_atomic()?;
            attributes.push(Attribute {
                name: attr_name,
                value,
            });
        }

        let content = match frame_type {
            FrameType::Leaf => Content::Leaf(self.read_atomic()?),
            FrameType::Array => Content::Array(self.read_array()?),
            FrameType::Component => {
                let count = self.r.read_count(1)?;
                let mut children = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    children.push(self.read_frame(depth + 1, Some(&chain))?);
                }
                Content::Children(children)
            }
            _ => unreachable!("caller filters to element frames"),
        };

        Ok(Node::Element(Element {
            name,
            namespaces: decls,
            attributes,
            content,
        }))
    }

    /// Read a tokenized namespace reference + local name.
    fn read_qname(&mut self, chain: &ScopeChain<'_>) -> BxsaResult<QName> {
        let at = self.r.position();
        let tag = self.r.read_vls()?;
        let prefix: Option<&str> = if tag == 0 {
            None
        } else {
            let index = self.r.read_vls()?;
            let r = NsRef {
                scope_depth: (tag - 1).try_into().map_err(|_| BxsaError::BadNamespaceRef { offset: at })?,
                index: index.try_into().map_err(|_| BxsaError::BadNamespaceRef { offset: at })?,
            };
            let decl = chain
                .lookup_ref(r)
                .ok_or(BxsaError::BadNamespaceRef { offset: at })?;
            decl.prefix.as_deref()
        };
        let local = self.r.read_str()?;
        Ok(QName::new(prefix, local))
    }

    fn read_atomic(&mut self) -> BxsaResult<AtomicValue> {
        let at = self.r.position();
        let code = TypeCode::from_byte(self.r.read_raw_u8()?, at)?;
        Ok(match code {
            TypeCode::I8 => AtomicValue::I8(self.r.read_i8()?),
            TypeCode::U8 => AtomicValue::U8(self.r.read_u8()?),
            TypeCode::I16 => AtomicValue::I16(self.r.read_i16()?),
            TypeCode::U16 => AtomicValue::U16(self.r.read_u16()?),
            TypeCode::I32 => AtomicValue::I32(self.r.read_i32()?),
            TypeCode::U32 => AtomicValue::U32(self.r.read_u32()?),
            TypeCode::I64 => AtomicValue::I64(self.r.read_i64()?),
            TypeCode::U64 => AtomicValue::U64(self.r.read_u64()?),
            TypeCode::F32 => AtomicValue::F32(self.r.read_f32()?),
            TypeCode::F64 => AtomicValue::F64(self.r.read_f64()?),
            TypeCode::Str => AtomicValue::Str(self.r.read_str()?.to_owned()),
            TypeCode::Bool => {
                let b = self.r.read_raw_u8()?;
                if b > 1 {
                    return Err(BxsaError::BadValueType {
                        offset: at,
                        what: format!("boolean byte {b:#04x}"),
                    });
                }
                AtomicValue::Bool(b == 1)
            }
        })
    }

    fn read_array(&mut self) -> BxsaResult<ArrayValue> {
        let at = self.r.position();
        let code = TypeCode::from_byte(self.r.read_raw_u8()?, at)?;
        let width = code.width().filter(|_| code != TypeCode::Bool && code != TypeCode::Str);
        let Some(width) = width else {
            return Err(BxsaError::BadValueType {
                offset: at,
                what: format!("{code:?} is not a valid array element type"),
            });
        };
        let count = self.r.read_count(width)?;
        Ok(match code {
            TypeCode::I8 => ArrayValue::I8(self.r.read_packed(count)?),
            TypeCode::U8 => ArrayValue::U8(self.r.read_packed(count)?),
            TypeCode::I16 => ArrayValue::I16(self.r.read_packed(count)?),
            TypeCode::U16 => ArrayValue::U16(self.r.read_packed(count)?),
            TypeCode::I32 => ArrayValue::I32(self.r.read_packed(count)?),
            TypeCode::U32 => ArrayValue::U32(self.r.read_packed(count)?),
            TypeCode::I64 => ArrayValue::I64(self.r.read_packed(count)?),
            TypeCode::U64 => ArrayValue::U64(self.r.read_packed(count)?),
            TypeCode::F32 => ArrayValue::F32(self.r.read_packed(count)?),
            TypeCode::F64 => ArrayValue::F64(self.r.read_packed(count)?),
            TypeCode::Str | TypeCode::Bool => unreachable!("filtered above"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, encode_element, encode_with, EncodeOptions};

    fn sample_doc() -> Document {
        Document::with_root(
            Element::component("d:set")
                .with_namespace("d", "http://example.org/data")
                .with_attr("run", "7")
                .with_child(Element::leaf("d:count", AtomicValue::I32(2)))
                .with_child(Element::array(
                    "d:values",
                    ArrayValue::F64(vec![0.25, -1.5]),
                ))
                .with_text("note")
                .with_comment("end"),
        )
    }

    #[test]
    fn roundtrip_sample() {
        let doc = sample_doc();
        let bytes = encode(&doc).unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc);
    }

    #[test]
    fn roundtrip_big_endian() {
        let doc = sample_doc();
        let bytes = encode_with(
            &doc,
            &EncodeOptions {
                byte_order: ByteOrder::Big,
            },
        )
        .unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc);
    }

    #[test]
    fn nested_namespace_scopes_roundtrip() {
        let doc = Document::with_root(
            Element::component("a:r")
                .with_namespace("a", "http://a")
                .with_child(
                    Element::component("b:mid")
                        .with_namespace("b", "http://b")
                        .with_child(Element::leaf("a:deep", AtomicValue::Bool(false))),
                ),
        );
        let bytes = encode(&doc).unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc);
    }

    #[test]
    fn shadowed_prefix_resolves_innermost() {
        let doc = Document::with_root(
            Element::component("p:r")
                .with_namespace("p", "http://outer")
                .with_child(
                    Element::component("p:inner").with_namespace("p", "http://inner"),
                ),
        );
        let bytes = encode(&doc).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = encode(&sample_doc()).unwrap();
        for cut in [0, 1, 2, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupted_type_codes_error() {
        let mut bytes = encode(&Document::with_root(Element::leaf(
            "n",
            AtomicValue::I32(5),
        )))
        .unwrap();
        // Find the I32 type code and corrupt it to an unassigned code.
        let pos = bytes.iter().position(|&b| b == TypeCode::I32 as u8).unwrap();
        bytes[pos] = 0x3f;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&sample_doc()).unwrap();
        bytes.push(0xaa);
        assert!(matches!(
            decode(&bytes),
            Err(BxsaError::Structure { .. })
        ));
    }

    #[test]
    fn depth_limit_enforced() {
        let mut e = Element::component("leafmost");
        for _ in 0..40 {
            e = Element::component("wrap").with_child(e);
        }
        let bytes = encode(&Document::with_root(e)).unwrap();
        let ok = decode_with(&bytes, &DecodeOptions { max_depth: 64 });
        assert!(ok.is_ok());
        let err = decode_with(&bytes, &DecodeOptions { max_depth: 8 });
        assert!(matches!(err, Err(BxsaError::Structure { .. })));
    }

    #[test]
    fn standalone_element_roundtrip() {
        let e = Element::array("v", ArrayValue::U8(vec![1, 2, 3]));
        let bytes = encode_element(&e, &EncodeOptions::default()).unwrap();
        assert_eq!(decode_element(&bytes, &DecodeOptions::default()).unwrap(), e);
    }

    #[test]
    fn empty_document_roundtrips() {
        let doc = Document::new();
        let bytes = encode(&doc).unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc);
    }

    #[test]
    fn all_array_types_roundtrip() {
        let arrays = vec![
            ArrayValue::I8(vec![-1, 2]),
            ArrayValue::U8(vec![3, 4]),
            ArrayValue::I16(vec![-5]),
            ArrayValue::U16(vec![6]),
            ArrayValue::I32(vec![-7, 8, 9]),
            ArrayValue::U32(vec![10]),
            ArrayValue::I64(vec![i64::MIN]),
            ArrayValue::U64(vec![u64::MAX]),
            ArrayValue::F32(vec![0.5]),
            ArrayValue::F64(vec![std::f64::consts::E]),
        ];
        for a in arrays {
            let doc = Document::with_root(Element::array("v", a));
            let bytes = encode(&doc).unwrap();
            assert_eq!(decode(&bytes).unwrap(), doc);
        }
    }

    #[test]
    fn all_atomic_types_roundtrip() {
        let values = vec![
            AtomicValue::I8(-1),
            AtomicValue::U8(200),
            AtomicValue::I16(-300),
            AtomicValue::U16(60000),
            AtomicValue::I32(12345),
            AtomicValue::U32(u32::MAX),
            AtomicValue::I64(-(1 << 50)),
            AtomicValue::U64(1 << 60),
            AtomicValue::F32(1.25),
            AtomicValue::F64(-0.0),
            AtomicValue::Str("héllo <xml>".into()),
            AtomicValue::Bool(true),
        ];
        for v in values {
            let doc = Document::with_root(Element::leaf("n", v));
            let bytes = encode(&doc).unwrap();
            assert_eq!(decode(&bytes).unwrap(), doc);
        }
    }
}
