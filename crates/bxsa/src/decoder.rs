//! BXSA frames → bXDM.

use bxdm::{
    ArrayValue, Attribute, AtomicValue, Content, Document, Element, NamespaceDecl, Node, QName,
    ScopeChain,
};
use bxdm::namespace::NsRef;
use xbs::{ByteOrder, TypeCode, XbsReader};

use crate::error::{BxsaError, BxsaResult};
use crate::frame::{parse_prefix, FrameType};

/// Decoding options.
#[derive(Debug, Clone)]
pub struct DecodeOptions {
    /// Maximum frame nesting depth accepted. Guards the recursive parser
    /// against stack exhaustion on adversarial input.
    pub max_depth: usize,
}

impl Default for DecodeOptions {
    fn default() -> DecodeOptions {
        DecodeOptions { max_depth: 256 }
    }
}

/// Decode a complete BXSA document with default options.
pub fn decode(bytes: &[u8]) -> BxsaResult<Document> {
    decode_with(bytes, &DecodeOptions::default())
}

/// Decode a complete BXSA document.
pub fn decode_with(bytes: &[u8], opts: &DecodeOptions) -> BxsaResult<Document> {
    let mut doc = Document::new();
    decode_into_with(bytes, &mut doc, opts)?;
    Ok(doc)
}

/// Decode a complete BXSA document *into* `doc`, reusing its storage.
///
/// Where [`decode`] builds every node, string, and array from scratch,
/// `decode_into` walks the existing tree in lockstep with the frame
/// stream and refills it: node slots are overwritten in place, `String`
/// and `Vec` capacity (names, namespace tables, attribute lists, child
/// lists, packed arrays) survives across messages, and packed-array
/// payloads land in reused `Vec<T>` capacity via one endian-aware bulk
/// copy. When the incoming message has the same shape as the previous
/// one — the steady state of a request/response service — the refill
/// performs zero heap allocations. Where shapes diverge, the decoder
/// falls back to fresh allocation for the divergent subtree only.
///
/// On error the contents of `doc` are unspecified (but memory-safe);
/// callers must treat the document as garbage until the next successful
/// decode.
pub fn decode_into(bytes: &[u8], doc: &mut Document) -> BxsaResult<()> {
    decode_into_with(bytes, doc, &DecodeOptions::default())
}

/// [`decode_into`] with explicit options.
pub fn decode_into_with(bytes: &[u8], doc: &mut Document, opts: &DecodeOptions) -> BxsaResult<()> {
    let mut dec = Decoder {
        r: XbsReader::new(bytes, ByteOrder::Little),
        opts,
    };
    dec.fill_document(doc)?;
    finish_with_optional_checksum(&mut dec.r, "document")
}

/// End-of-input check shared by the tree decoders and the pull reader:
/// after the top-level frame, the input must either end or carry exactly
/// one checksum frame covering everything before it (which is verified).
/// Anything else is a typed error.
pub(crate) fn finish_with_optional_checksum(r: &mut XbsReader<'_>, what: &str) -> BxsaResult<()> {
    if r.is_at_end() {
        return Ok(());
    }
    let pos = r.position();
    let buf = r.buffer();
    if matches!(parse_prefix(buf[pos], pos), Ok((_, FrameType::Checksum))) {
        let end = crate::frame::verify_checksum_frame(buf, 0, pos)?;
        r.seek(end)?;
    }
    if !r.is_at_end() {
        return Err(BxsaError::Structure {
            what: format!("{} trailing byte(s) after the {what} frame", r.remaining()),
        });
    }
    Ok(())
}

/// Decode a standalone element frame (the output of
/// [`crate::encoder::encode_element`]).
pub fn decode_element(bytes: &[u8], opts: &DecodeOptions) -> BxsaResult<Element> {
    // Not `decode_element_at(bytes, 0, ..)`: that entry point decodes a
    // frame embedded in a larger buffer and so cannot demand end-of-input.
    // A standalone part must end after its frame (or its checksum), else
    // trailing garbage — or a checksum frame that would catch corruption —
    // would be silently ignored.
    let mut dec = Decoder {
        r: XbsReader::new(bytes, ByteOrder::Little),
        opts,
    };
    let node = dec.read_frame(0, None)?;
    finish_with_optional_checksum(&mut dec.r, "element")?;
    match node {
        Node::Element(e) => Ok(e),
        other => Err(BxsaError::Structure {
            what: format!("expected an element frame, found {other:?}"),
        }),
    }
}

/// [`decode_element`] into a reusable [`Node`] slot: contents are
/// replaced, but element/string/array storage from the previous part is
/// refilled in place, so decoding a stream of similarly-shaped parts is
/// allocation-free at steady state (the per-part mirror of
/// [`decode_into`]). On error the slot holds unspecified but valid
/// contents.
pub fn decode_element_into(bytes: &[u8], node: &mut Node) -> BxsaResult<()> {
    decode_element_into_with(bytes, node, &DecodeOptions::default())
}

/// [`decode_element_into`] with explicit options.
pub fn decode_element_into_with(
    bytes: &[u8],
    node: &mut Node,
    opts: &DecodeOptions,
) -> BxsaResult<()> {
    let mut dec = Decoder {
        r: XbsReader::new(bytes, ByteOrder::Little),
        opts,
    };
    dec.fill_frame(0, None, node)?;
    finish_with_optional_checksum(&mut dec.r, "element")
}

/// Decode one element frame located at `offset` inside a larger document
/// buffer (e.g. a frame found by [`crate::scan::FrameScanner`]).
///
/// The whole buffer must be passed, not a slice of the frame: alignment
/// padding inside the frame is relative to the *document* start, so the
/// decoder has to see the true offsets.
pub fn decode_element_at(
    bytes: &[u8],
    offset: usize,
    opts: &DecodeOptions,
) -> BxsaResult<Element> {
    let mut dec = Decoder {
        r: XbsReader::new(bytes, ByteOrder::Little),
        opts,
    };
    dec.r.seek(offset)?;
    match dec.read_frame(0, None)? {
        Node::Element(e) => Ok(e),
        other => Err(BxsaError::Structure {
            what: format!("expected an element frame, found {other:?}"),
        }),
    }
}

struct Decoder<'a, 'o> {
    r: XbsReader<'a>,
    opts: &'o DecodeOptions,
}

/// A placeholder node for growing a recycled child list; allocation-free
/// (`String::new` does not allocate) and immediately overwritten by
/// [`Decoder::fill_frame`].
fn blank_node() -> Node {
    Node::Text(String::new())
}

/// Overwrite an `Option<String>` slot, reusing the existing capacity.
fn set_opt_string(slot: &mut Option<String>, value: Option<&str>) {
    match value {
        Some(v) => match slot {
            Some(s) => {
                s.clear();
                s.push_str(v);
            }
            None => *slot = Some(v.to_owned()),
        },
        None => *slot = None,
    }
}

/// Overwrite a `String` slot, reusing the existing capacity.
fn set_string(slot: &mut String, value: &str) {
    slot.clear();
    slot.push_str(value);
}

impl Decoder<'_, '_> {
    fn fill_document(&mut self, doc: &mut Document) -> BxsaResult<()> {
        let start = self.r.position();
        let (order, frame_type) = parse_prefix(self.r.read_raw_u8()?, start)?;
        if frame_type != FrameType::Document {
            return Err(BxsaError::Structure {
                what: format!("expected a document frame, found {frame_type:?}"),
            });
        }
        self.r.set_order(order);
        let size = self.r.read_vls_padded()?;
        let count = self.r.read_count(1)?;
        doc.children.truncate(count);
        if count > doc.children.len() {
            doc.children.reserve(count.min(1024) - doc.children.len());
        }
        for i in 0..count {
            if i == doc.children.len() {
                doc.children.push(blank_node());
            }
            self.fill_frame(0, None, &mut doc.children[i])?;
        }
        self.check_frame_end(start, size)?;
        Ok(())
    }

    fn check_frame_end(&mut self, start: usize, declared: u64) -> BxsaResult<()> {
        let consumed = (self.r.position() - start) as u64;
        if consumed != declared {
            return Err(BxsaError::FrameSizeMismatch {
                offset: start,
                declared,
                consumed,
            });
        }
        Ok(())
    }

    /// Read one frame into a fresh node (the standalone-element entry
    /// point; document decoding goes through [`Decoder::fill_frame`]).
    fn read_frame(&mut self, depth: usize, parent: Option<&ScopeChain<'_>>) -> BxsaResult<Node> {
        let mut node = blank_node();
        self.fill_frame(depth, parent, &mut node)?;
        Ok(node)
    }

    fn fill_frame(
        &mut self,
        depth: usize,
        parent: Option<&ScopeChain<'_>>,
        slot: &mut Node,
    ) -> BxsaResult<()> {
        if depth > self.opts.max_depth {
            return Err(BxsaError::Structure {
                what: format!("frame nesting exceeds max_depth {}", self.opts.max_depth),
            });
        }
        let start = self.r.position();
        let (order, frame_type) = parse_prefix(self.r.read_raw_u8()?, start)?;
        // Byte order is a per-frame property; restore the enclosing
        // frame's order afterwards (embedded frames may differ).
        let outer_order = self.r.order();
        self.r.set_order(order);
        let size = self.r.read_vls_padded()?;
        let result = match frame_type {
            FrameType::Document => Err(BxsaError::Structure {
                what: "nested document frame".into(),
            }),
            // Checksum frames are only valid trailing a top-level frame
            // (see `finish_with_optional_checksum`); one inside a
            // container is a structure violation.
            FrameType::Checksum => Err(BxsaError::Structure {
                what: format!("checksum frame at offset {start} inside a container frame"),
            }),
            FrameType::Component | FrameType::Leaf | FrameType::Array => {
                let el = match slot {
                    Node::Element(e) => e,
                    other => {
                        *other = Node::Element(Element::component(""));
                        match other {
                            Node::Element(e) => e,
                            _ => unreachable!("just assigned"),
                        }
                    }
                };
                self.fill_element_body(frame_type, depth, parent, el)
            }
            FrameType::CharData => self.r.read_str().map_err(Into::into).map(|s| match slot {
                Node::Text(t) => set_string(t, s),
                other => *other = Node::Text(s.to_owned()),
            }),
            FrameType::Comment => (|| {
                let s = self.r.read_str()?;
                crate::wellformed::check_comment(s)?;
                match slot {
                    Node::Comment(t) => set_string(t, s),
                    other => *other = Node::Comment(s.to_owned()),
                }
                Ok(())
            })(),
            FrameType::Pi => (|| {
                let t = self.r.read_str()?;
                let d = self.r.read_str()?;
                crate::wellformed::check_pi(t, d)?;
                match slot {
                    Node::Pi { target, data } => {
                        set_string(target, t);
                        set_string(data, d);
                    }
                    other => {
                        *other = Node::Pi {
                            target: t.to_owned(),
                            data: d.to_owned(),
                        }
                    }
                }
                Ok(())
            })(),
        };
        self.r.set_order(outer_order);
        result?;
        self.check_frame_end(start, size)
    }

    fn fill_element_body(
        &mut self,
        frame_type: FrameType,
        depth: usize,
        parent: Option<&ScopeChain<'_>>,
        el: &mut Element,
    ) -> BxsaResult<()> {
        // Namespace symbol table, refilled slot-by-slot into the
        // element's own `namespaces` Vec; during recursion the scope
        // chain borrows it from the element being filled, so namespace
        // tracking needs no side allocations and no final clone.
        let n1 = self.r.read_count(2)?;
        el.namespaces.truncate(n1);
        for i in 0..n1 {
            let prefix = self.r.read_str()?;
            let uri = self.r.read_str()?;
            if !prefix.is_empty() {
                crate::wellformed::check_name("namespace prefix", prefix)?;
            }
            match el.namespaces.get_mut(i) {
                Some(decl) => {
                    set_opt_string(&mut decl.prefix, (!prefix.is_empty()).then_some(prefix));
                    set_string(&mut decl.uri, uri);
                }
                None => el.namespaces.push(NamespaceDecl {
                    prefix: (!prefix.is_empty()).then(|| prefix.to_owned()),
                    uri: uri.to_owned(),
                }),
            }
        }
        // Disjoint-field split: the chain immutably borrows `namespaces`
        // while the name, attributes, and content slots are refilled.
        let Element {
            name,
            namespaces,
            attributes,
            content,
        } = el;
        let chain = match parent {
            Some(p) => p.child(namespaces),
            None => ScopeChain::root(namespaces),
        };

        self.fill_qname(&chain, name)?;
        let n2 = self.r.read_count(3)?;
        attributes.truncate(n2);
        for i in 0..n2 {
            if i == attributes.len() {
                attributes.push(Attribute {
                    name: QName::new(None, ""),
                    value: AtomicValue::Bool(false),
                });
            }
            let attr = &mut attributes[i];
            self.fill_qname(&chain, &mut attr.name)?;
            self.fill_atomic(&mut attr.value)?;
        }

        match frame_type {
            FrameType::Leaf => {
                let value = match content {
                    Content::Leaf(v) => v,
                    other => {
                        *other = Content::Leaf(AtomicValue::Bool(false));
                        match other {
                            Content::Leaf(v) => v,
                            _ => unreachable!("just assigned"),
                        }
                    }
                };
                self.fill_atomic(value)?;
            }
            FrameType::Array => {
                let value = match content {
                    Content::Array(v) => v,
                    other => {
                        *other = Content::Array(ArrayValue::U8(Vec::new()));
                        match other {
                            Content::Array(v) => v,
                            _ => unreachable!("just assigned"),
                        }
                    }
                };
                self.fill_array(value)?;
            }
            FrameType::Component => {
                let count = self.r.read_count(1)?;
                let children = match content {
                    Content::Children(c) => c,
                    other => {
                        *other = Content::Children(Vec::new());
                        match other {
                            Content::Children(c) => c,
                            _ => unreachable!("just assigned"),
                        }
                    }
                };
                children.truncate(count);
                if count > children.len() {
                    children.reserve(count.min(4096) - children.len());
                }
                for i in 0..count {
                    if i == children.len() {
                        children.push(blank_node());
                    }
                    self.fill_frame(depth + 1, Some(&chain), &mut children[i])?;
                }
            }
            _ => unreachable!("caller filters to element frames"),
        }
        Ok(())
    }

    /// Read a tokenized namespace reference + local name into `name`.
    fn fill_qname(&mut self, chain: &ScopeChain<'_>, name: &mut QName) -> BxsaResult<()> {
        let at = self.r.position();
        let tag = self.r.read_vls()?;
        let prefix: Option<&str> = if tag == 0 {
            None
        } else {
            let index = self.r.read_vls()?;
            let r = NsRef {
                scope_depth: (tag - 1).try_into().map_err(|_| BxsaError::BadNamespaceRef { offset: at })?,
                index: index.try_into().map_err(|_| BxsaError::BadNamespaceRef { offset: at })?,
            };
            let decl = chain
                .lookup_ref(r)
                .ok_or(BxsaError::BadNamespaceRef { offset: at })?;
            decl.prefix.as_deref()
        };
        let local = self.r.read_str()?;
        crate::wellformed::check_name("local name", local)?;
        name.set(prefix, local);
        Ok(())
    }

    fn fill_atomic(&mut self, slot: &mut AtomicValue) -> BxsaResult<()> {
        let at = self.r.position();
        let code = TypeCode::from_byte(self.r.read_raw_u8()?, at)?;
        *slot = match code {
            TypeCode::I8 => AtomicValue::I8(self.r.read_i8()?),
            TypeCode::U8 => AtomicValue::U8(self.r.read_u8()?),
            TypeCode::I16 => AtomicValue::I16(self.r.read_i16()?),
            TypeCode::U16 => AtomicValue::U16(self.r.read_u16()?),
            TypeCode::I32 => AtomicValue::I32(self.r.read_i32()?),
            TypeCode::U32 => AtomicValue::U32(self.r.read_u32()?),
            TypeCode::I64 => AtomicValue::I64(self.r.read_i64()?),
            TypeCode::U64 => AtomicValue::U64(self.r.read_u64()?),
            TypeCode::F32 => AtomicValue::F32(self.r.read_f32()?),
            TypeCode::F64 => AtomicValue::F64(self.r.read_f64()?),
            TypeCode::Str => {
                let s = self.r.read_str()?;
                if let AtomicValue::Str(t) = slot {
                    set_string(t, s);
                    return Ok(());
                }
                AtomicValue::Str(s.to_owned())
            }
            TypeCode::Bool => {
                let b = self.r.read_raw_u8()?;
                if b > 1 {
                    return Err(BxsaError::BadValueType {
                        offset: at,
                        what: format!("boolean byte {b:#04x}"),
                    });
                }
                AtomicValue::Bool(b == 1)
            }
        };
        Ok(())
    }

    fn fill_array(&mut self, slot: &mut ArrayValue) -> BxsaResult<()> {
        let at = self.r.position();
        let code = TypeCode::from_byte(self.r.read_raw_u8()?, at)?;
        let width = code.width().filter(|_| code != TypeCode::Bool && code != TypeCode::Str);
        let Some(width) = width else {
            return Err(BxsaError::BadValueType {
                offset: at,
                what: format!("{code:?} is not a valid array element type"),
            });
        };
        let count = self.r.read_count(width)?;
        // Same-variant slots refill their payload Vec in place (one
        // bounds-checked bulk copy on native byte order); a variant
        // change allocates a fresh payload for this array only.
        macro_rules! fill_variant {
            ($variant:ident) => {{
                if let ArrayValue::$variant(v) = slot {
                    self.r.read_packed_into(count, v)?;
                } else {
                    *slot = ArrayValue::$variant(self.r.read_packed(count)?);
                }
            }};
        }
        match code {
            TypeCode::I8 => fill_variant!(I8),
            TypeCode::U8 => fill_variant!(U8),
            TypeCode::I16 => fill_variant!(I16),
            TypeCode::U16 => fill_variant!(U16),
            TypeCode::I32 => fill_variant!(I32),
            TypeCode::U32 => fill_variant!(U32),
            TypeCode::I64 => fill_variant!(I64),
            TypeCode::U64 => fill_variant!(U64),
            TypeCode::F32 => fill_variant!(F32),
            TypeCode::F64 => fill_variant!(F64),
            TypeCode::Str | TypeCode::Bool => unreachable!("filtered above"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, encode_element, encode_with, EncodeOptions};

    fn sample_doc() -> Document {
        Document::with_root(
            Element::component("d:set")
                .with_namespace("d", "http://example.org/data")
                .with_attr("run", "7")
                .with_child(Element::leaf("d:count", AtomicValue::I32(2)))
                .with_child(Element::array(
                    "d:values",
                    ArrayValue::F64(vec![0.25, -1.5]),
                ))
                .with_text("note")
                .with_comment("end"),
        )
    }

    #[test]
    fn roundtrip_sample() {
        let doc = sample_doc();
        let bytes = encode(&doc).unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc);
    }

    #[test]
    fn roundtrip_big_endian() {
        let doc = sample_doc();
        let bytes = encode_with(
            &doc,
            &EncodeOptions {
                byte_order: ByteOrder::Big,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc);
    }

    #[test]
    fn nested_namespace_scopes_roundtrip() {
        let doc = Document::with_root(
            Element::component("a:r")
                .with_namespace("a", "http://a")
                .with_child(
                    Element::component("b:mid")
                        .with_namespace("b", "http://b")
                        .with_child(Element::leaf("a:deep", AtomicValue::Bool(false))),
                ),
        );
        let bytes = encode(&doc).unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc);
    }

    #[test]
    fn shadowed_prefix_resolves_innermost() {
        let doc = Document::with_root(
            Element::component("p:r")
                .with_namespace("p", "http://outer")
                .with_child(
                    Element::component("p:inner").with_namespace("p", "http://inner"),
                ),
        );
        let bytes = encode(&doc).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = encode(&sample_doc()).unwrap();
        for cut in [0, 1, 2, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupted_type_codes_error() {
        let mut bytes = encode(&Document::with_root(Element::leaf(
            "n",
            AtomicValue::I32(5),
        )))
        .unwrap();
        // Find the I32 type code and corrupt it to an unassigned code.
        let pos = bytes.iter().position(|&b| b == TypeCode::I32 as u8).unwrap();
        bytes[pos] = 0x3f;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&sample_doc()).unwrap();
        bytes.push(0xaa);
        assert!(matches!(
            decode(&bytes),
            Err(BxsaError::Structure { .. })
        ));
    }

    #[test]
    fn depth_limit_enforced() {
        let mut e = Element::component("leafmost");
        for _ in 0..40 {
            e = Element::component("wrap").with_child(e);
        }
        let bytes = encode(&Document::with_root(e)).unwrap();
        let ok = decode_with(&bytes, &DecodeOptions { max_depth: 64 });
        assert!(ok.is_ok());
        let err = decode_with(&bytes, &DecodeOptions { max_depth: 8 });
        assert!(matches!(err, Err(BxsaError::Structure { .. })));
    }

    #[test]
    fn standalone_element_roundtrip() {
        let e = Element::array("v", ArrayValue::U8(vec![1, 2, 3]));
        let bytes = encode_element(&e, &EncodeOptions::default()).unwrap();
        assert_eq!(decode_element(&bytes, &DecodeOptions::default()).unwrap(), e);
    }

    #[test]
    fn empty_document_roundtrips() {
        let doc = Document::new();
        let bytes = encode(&doc).unwrap();
        assert_eq!(decode(&bytes).unwrap(), doc);
    }

    #[test]
    fn all_array_types_roundtrip() {
        let arrays = vec![
            ArrayValue::I8(vec![-1, 2]),
            ArrayValue::U8(vec![3, 4]),
            ArrayValue::I16(vec![-5]),
            ArrayValue::U16(vec![6]),
            ArrayValue::I32(vec![-7, 8, 9]),
            ArrayValue::U32(vec![10]),
            ArrayValue::I64(vec![i64::MIN]),
            ArrayValue::U64(vec![u64::MAX]),
            ArrayValue::F32(vec![0.5]),
            ArrayValue::F64(vec![std::f64::consts::E]),
        ];
        for a in arrays {
            let doc = Document::with_root(Element::array("v", a));
            let bytes = encode(&doc).unwrap();
            assert_eq!(decode(&bytes).unwrap(), doc);
        }
    }

    /// The transcode-matrix corpus: every content kind, atomic type,
    /// array type, byte order, and namespace shape the codec supports.
    fn corpus() -> Vec<Vec<u8>> {
        let mut docs = vec![Document::new(), sample_doc()];
        docs.push(Document::with_root(
            Element::component("d:set")
                .with_namespace("d", "http://example.org/data")
                .with_attr("run", "9")
                .with_child(Element::leaf("d:count", AtomicValue::I32(3)))
                .with_child(Element::leaf("d:mean", AtomicValue::F64(0.1 + 0.2)))
                .with_child(Element::array(
                    "d:values",
                    ArrayValue::F64(vec![1.5, -2.25, 3.0e-9]),
                ))
                .with_child(Element::array("d:index", ArrayValue::I32(vec![0, 1, 2]))),
        ));
        for a in [
            ArrayValue::I8(vec![-1, 2]),
            ArrayValue::U8(vec![3, 4]),
            ArrayValue::I16(vec![-5]),
            ArrayValue::U16(vec![6]),
            ArrayValue::I32(vec![-7, 8, 9]),
            ArrayValue::U32(vec![10]),
            ArrayValue::I64(vec![i64::MIN]),
            ArrayValue::U64(vec![u64::MAX]),
            ArrayValue::F32(vec![0.5]),
            ArrayValue::F64(vec![]),
        ] {
            docs.push(Document::with_root(Element::array("v", a)));
        }
        for v in [
            AtomicValue::Str("héllo <xml>".into()),
            AtomicValue::Bool(true),
            AtomicValue::F64(-0.0),
            AtomicValue::I64(-(1 << 50)),
        ] {
            docs.push(Document::with_root(Element::leaf("n", v)));
        }
        docs.push(Document::with_root(
            Element::component("a:r")
                .with_namespace("a", "http://a")
                .with_child(
                    Element::component("b:mid")
                        .with_namespace("b", "http://b")
                        .with_child(Element::leaf("a:deep", AtomicValue::Bool(false))),
                ),
        ));
        let mut out = Vec::new();
        for doc in &docs {
            for order in [ByteOrder::Little, ByteOrder::Big] {
                out.push(encode_with(doc, &EncodeOptions { byte_order: order, ..Default::default() }).unwrap());
            }
        }
        out
    }

    /// `decode_into` must be observationally identical to `decode`, both
    /// on a fresh document and on one still holding any *other* corpus
    /// document's tree (the dirty-slot case where shapes diverge).
    #[test]
    fn decode_into_matches_decode_on_corpus() {
        let corpus = corpus();
        let mut recycled = Document::new();
        for (i, bytes) in corpus.iter().enumerate() {
            let fresh = decode(bytes).unwrap();
            let mut target = Document::new();
            decode_into(bytes, &mut target).unwrap();
            assert_eq!(target, fresh, "fresh-target mismatch on corpus[{i}]");
            // The recycled document carries whatever the previous
            // iteration left in it.
            decode_into(bytes, &mut recycled).unwrap();
            assert_eq!(recycled, fresh, "dirty-target mismatch on corpus[{i}]");
        }
    }

    /// Same-shape refill must not reallocate the payload of a large
    /// packed array: the array Vec's address is stable across messages.
    #[test]
    fn decode_into_reuses_array_storage() {
        let doc = Document::with_root(Element::array(
            "v",
            ArrayValue::F64((0..512).map(|i| i as f64).collect()),
        ));
        let bytes = encode(&doc).unwrap();
        let mut target = Document::new();
        decode_into(&bytes, &mut target).unwrap();
        let ptr = match target.root().unwrap().array_value().unwrap() {
            ArrayValue::F64(v) => v.as_ptr(),
            other => panic!("expected F64 array, got {other:?}"),
        };
        decode_into(&bytes, &mut target).unwrap();
        assert_eq!(target, doc);
        let ptr2 = match target.root().unwrap().array_value().unwrap() {
            ArrayValue::F64(v) => v.as_ptr(),
            other => panic!("expected F64 array, got {other:?}"),
        };
        assert_eq!(ptr, ptr2, "same-shape refill must reuse the array buffer");
    }

    /// A failed refill leaves the document in an unspecified-but-valid
    /// state and the next successful decode repairs it completely.
    #[test]
    fn decode_into_recovers_after_error() {
        let doc = sample_doc();
        let bytes = encode(&doc).unwrap();
        let mut target = Document::new();
        decode_into(&bytes, &mut target).unwrap();
        assert!(decode_into(&bytes[..bytes.len() / 2], &mut target).is_err());
        decode_into(&bytes, &mut target).unwrap();
        assert_eq!(target, doc);
    }

    #[test]
    fn all_atomic_types_roundtrip() {
        let values = vec![
            AtomicValue::I8(-1),
            AtomicValue::U8(200),
            AtomicValue::I16(-300),
            AtomicValue::U16(60000),
            AtomicValue::I32(12345),
            AtomicValue::U32(u32::MAX),
            AtomicValue::I64(-(1 << 50)),
            AtomicValue::U64(1 << 60),
            AtomicValue::F32(1.25),
            AtomicValue::F64(-0.0),
            AtomicValue::Str("héllo <xml>".into()),
            AtomicValue::Bool(true),
        ];
        for v in values {
            let doc = Document::with_root(Element::leaf("n", v));
            let bytes = encode(&doc).unwrap();
            assert_eq!(decode(&bytes).unwrap(), doc);
        }
    }
}
