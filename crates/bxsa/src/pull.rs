//! A streaming (pull) reader for BXSA documents.
//!
//! The tree decoder ([`crate::decoder`]) materializes a full bXDM tree;
//! for large documents a consumer often wants to walk events and touch
//! only what it needs — the streaming style XBS was originally built for
//! (Chiu, "XBS: a *streaming* binary serializer", HPCS 2004). The pull
//! reader yields one event per frame boundary and hands arrays back as
//! lazy handles, so a filter that only inspects element names never pays
//! for payload decoding at all.
//!
//! ```
//! use bxdm::{Document, Element, ArrayValue};
//! use bxsa::pull::{PullReader, PullEvent};
//!
//! let doc = Document::with_root(
//!     Element::component("set")
//!         .with_child(Element::array("v", ArrayValue::F64(vec![1.0, 2.0]))),
//! );
//! let bytes = bxsa::encode(&doc).unwrap();
//! let mut names = Vec::new();
//! let mut reader = PullReader::new(&bytes).unwrap();
//! while let Some(event) = reader.next_event().unwrap() {
//!     if let PullEvent::ElementStart(start) = &event {
//!         names.push(start.name.local().to_owned());
//!     }
//! }
//! assert_eq!(names, ["set", "v"]);
//! ```

use bxdm::namespace::NsRef;
use bxdm::{ArrayValue, Attribute, AtomicValue, NamespaceDecl, NsContext, QName};
use xbs::{ByteOrder, Primitive, TypeCode, XbsReader};

use crate::error::{BxsaError, BxsaResult};
use crate::frame::{parse_prefix, FrameType};

/// The header of an element frame, common to all three element kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementStart {
    /// Qualified element name.
    pub name: QName,
    /// Namespace declarations on this element.
    pub namespaces: Vec<NamespaceDecl>,
    /// Typed attributes.
    pub attributes: Vec<Attribute>,
}

/// A lazy handle onto an array frame's payload.
///
/// Nothing is decoded until [`ArrayHandle::read`] or
/// [`ArrayHandle::view`] is called; skipping the element costs nothing.
#[derive(Debug, Clone, Copy)]
pub struct ArrayHandle<'a> {
    buf: &'a [u8],
    payload_start: usize,
    /// Element type of the array.
    pub code: TypeCode,
    /// Number of items.
    pub len: usize,
    /// Byte order of the payload.
    pub order: ByteOrder,
}

impl<'a> ArrayHandle<'a> {
    /// Decode the payload into an owned [`ArrayValue`].
    pub fn read(&self) -> BxsaResult<ArrayValue> {
        let mut r = XbsReader::new(self.buf, self.order);
        r.seek(self.payload_start)?;
        Ok(match self.code {
            TypeCode::I8 => ArrayValue::I8(r.read_packed(self.len)?),
            TypeCode::U8 => ArrayValue::U8(r.read_packed(self.len)?),
            TypeCode::I16 => ArrayValue::I16(r.read_packed(self.len)?),
            TypeCode::U16 => ArrayValue::U16(r.read_packed(self.len)?),
            TypeCode::I32 => ArrayValue::I32(r.read_packed(self.len)?),
            TypeCode::U32 => ArrayValue::U32(r.read_packed(self.len)?),
            TypeCode::I64 => ArrayValue::I64(r.read_packed(self.len)?),
            TypeCode::U64 => ArrayValue::U64(r.read_packed(self.len)?),
            TypeCode::F32 => ArrayValue::F32(r.read_packed(self.len)?),
            TypeCode::F64 => ArrayValue::F64(r.read_packed(self.len)?),
            other => {
                return Err(BxsaError::BadValueType {
                    offset: self.payload_start,
                    what: format!("{other:?} is not an array element type"),
                })
            }
        })
    }

    /// Borrow the payload zero-copy when byte order and alignment allow.
    pub fn view<T: Primitive>(&self) -> BxsaResult<Option<&'a [T]>> {
        if T::TYPE_CODE != self.code {
            return Err(BxsaError::BadValueType {
                offset: self.payload_start,
                what: format!("payload is {:?}, requested {:?}", self.code, T::TYPE_CODE),
            });
        }
        let mut r = XbsReader::new(self.buf, self.order);
        r.seek(self.payload_start)?;
        Ok(r.read_packed_zero_copy::<T>(self.len)?)
    }
}

/// A leaf element's typed value, borrowed from the stream.
///
/// Numeric variants are decoded scalars; the string variant points into
/// the receive buffer — the aliasing contract of all borrowed pull data
/// (see [`PullEvent`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeafValue<'a> {
    /// `xsd:byte`.
    I8(i8),
    /// `xsd:unsignedByte`.
    U8(u8),
    /// `xsd:short`.
    I16(i16),
    /// `xsd:unsignedShort`.
    U16(u16),
    /// `xsd:int`.
    I32(i32),
    /// `xsd:unsignedInt`.
    U32(u32),
    /// `xsd:long`.
    I64(i64),
    /// `xsd:unsignedLong`.
    U64(u64),
    /// `xsd:float`.
    F32(f32),
    /// `xsd:double`.
    F64(f64),
    /// `xsd:boolean`.
    Bool(bool),
    /// `xsd:string`, borrowed zero-copy from the buffer.
    Str(&'a str),
}

impl LeafValue<'_> {
    /// Copy into an owned [`AtomicValue`] (allocates for strings only).
    pub fn to_atomic(self) -> AtomicValue {
        match self {
            LeafValue::I8(v) => AtomicValue::I8(v),
            LeafValue::U8(v) => AtomicValue::U8(v),
            LeafValue::I16(v) => AtomicValue::I16(v),
            LeafValue::U16(v) => AtomicValue::U16(v),
            LeafValue::I32(v) => AtomicValue::I32(v),
            LeafValue::U32(v) => AtomicValue::U32(v),
            LeafValue::I64(v) => AtomicValue::I64(v),
            LeafValue::U64(v) => AtomicValue::U64(v),
            LeafValue::F32(v) => AtomicValue::F32(v),
            LeafValue::F64(v) => AtomicValue::F64(v),
            LeafValue::Bool(v) => AtomicValue::Bool(v),
            LeafValue::Str(v) => AtomicValue::Str(v.to_owned()),
        }
    }
}

/// One streaming event.
///
/// Events are zero-copy: text, comment, PI, and leaf-string payloads are
/// `&str` slices *aliasing the receive buffer*, and [`ArrayHandle`] /
/// [`ArrayHandle::view`] borrow the packed payload in place. The borrow
/// checker enforces the aliasing rule — the buffer the reader was opened
/// over cannot be mutated or freed while any event (or array view) from
/// it is alive, so a connection loop must finish consuming a message's
/// events before reusing its receive buffer for the next message. Copy
/// out (`to_owned`, [`LeafValue::to_atomic`], [`ArrayHandle::read`])
/// anything that must outlive the buffer.
#[derive(Debug, Clone)]
pub enum PullEvent<'a> {
    /// An element frame opened (any kind; see the following events).
    ElementStart(ElementStart),
    /// The typed value of a leaf element (between its start and end).
    LeafValue(LeafValue<'a>),
    /// The payload handle of an array element (between start and end).
    Array(ArrayHandle<'a>),
    /// An element frame closed (emitted for leaf/array elements too).
    ElementEnd,
    /// Character data, borrowed from the buffer.
    Text(&'a str),
    /// A comment, borrowed from the buffer.
    Comment(&'a str),
    /// A processing instruction, borrowed from the buffer.
    Pi {
        /// PI target.
        target: &'a str,
        /// PI data.
        data: &'a str,
    },
}

/// What the reader still owes for an open scope.
#[derive(Debug)]
enum Pending {
    /// A component element with `remaining` child frames to read.
    Component { end: usize, remaining: usize },
    /// A leaf element whose value event is due.
    LeafValue { end: usize },
    /// An array element whose handle event is due.
    ArrayValue { end: usize },
    /// An element whose end event is due, then the frame closes at `end`.
    End { end: usize },
}

/// The streaming reader.
pub struct PullReader<'a> {
    r: XbsReader<'a>,
    ctx: NsContext,
    stack: Vec<Pending>,
    /// Remaining top-level frames in the document frame.
    top_remaining: usize,
    doc_end: usize,
    finished: bool,
}

impl<'a> PullReader<'a> {
    /// Open a reader over an encoded document.
    pub fn new(buf: &'a [u8]) -> BxsaResult<PullReader<'a>> {
        let mut r = XbsReader::new(buf, ByteOrder::Little);
        let start = r.position();
        let (order, frame_type) = parse_prefix(r.read_raw_u8()?, start)?;
        if frame_type != FrameType::Document {
            return Err(BxsaError::Structure {
                what: format!("expected a document frame, found {frame_type:?}"),
            });
        }
        r.set_order(order);
        let size = r.read_vls_padded()? as usize;
        // Hostile size fields are attacker-controlled u64s: the addition
        // must not wrap, and the declared end must stay inside the buffer.
        let doc_end = start
            .checked_add(size)
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| BxsaError::Structure {
                what: format!("document frame declares size {size} past buffer end"),
            })?;
        let top_remaining = r.read_count(1)?;
        Ok(PullReader {
            r,
            ctx: NsContext::new(),
            stack: Vec::new(),
            top_remaining,
            doc_end,
            finished: false,
        })
    }

    /// Pull the next event; `None` at end of document.
    #[allow(clippy::should_implement_trait)]
    pub fn next_event(&mut self) -> BxsaResult<Option<PullEvent<'a>>> {
        if self.finished {
            return Ok(None);
        }
        // Deliver owed value/end events for the innermost open scope.
        match self.stack.pop() {
            None => {
                if self.top_remaining == 0 {
                    self.finish()?;
                    return Ok(None);
                }
                self.top_remaining -= 1;
                self.read_frame().map(Some)
            }
            Some(Pending::LeafValue { end }) => {
                let value = self.read_leaf()?;
                self.stack.push(Pending::End { end });
                Ok(Some(PullEvent::LeafValue(value)))
            }
            Some(Pending::ArrayValue { end }) => {
                let handle = self.read_array_handle(end)?;
                self.stack.push(Pending::End { end });
                Ok(Some(PullEvent::Array(handle)))
            }
            Some(Pending::End { end }) => {
                self.close_element(end)?;
                Ok(Some(PullEvent::ElementEnd))
            }
            Some(Pending::Component { end, remaining }) => {
                if remaining == 0 {
                    self.close_element(end)?;
                    return Ok(Some(PullEvent::ElementEnd));
                }
                self.stack.push(Pending::Component {
                    end,
                    remaining: remaining - 1,
                });
                self.read_frame().map(Some)
            }
        }
    }

    /// Skip the innermost open element entirely (children, payload and
    /// all), without generating events — the streaming counterpart of the
    /// size-field skip-scan.
    pub fn skip_element(&mut self) -> BxsaResult<()> {
        let end = match self.stack.pop() {
            Some(
                Pending::Component { end, .. }
                | Pending::LeafValue { end }
                | Pending::ArrayValue { end }
                | Pending::End { end },
            ) => end,
            None => {
                return Err(BxsaError::Structure {
                    what: "skip_element with no open element".into(),
                })
            }
        };
        self.ctx.pop_scope();
        self.r.seek(end)?;
        Ok(())
    }

    fn finish(&mut self) -> BxsaResult<()> {
        self.finished = true;
        if self.r.position() != self.doc_end {
            return Err(BxsaError::FrameSizeMismatch {
                offset: 0,
                declared: self.doc_end as u64,
                consumed: self.r.position() as u64,
            });
        }
        // Verify a trailing checksum frame when the sender appended one.
        crate::decoder::finish_with_optional_checksum(&mut self.r, "document")
    }

    fn close_element(&mut self, end: usize) -> BxsaResult<()> {
        self.ctx.pop_scope();
        let at = self.r.position();
        if at != end {
            return Err(BxsaError::FrameSizeMismatch {
                offset: end,
                declared: end as u64,
                consumed: at as u64,
            });
        }
        Ok(())
    }

    fn read_frame(&mut self) -> BxsaResult<PullEvent<'a>> {
        let start = self.r.position();
        let (order, frame_type) = parse_prefix(self.r.read_raw_u8()?, start)?;
        self.r.set_order(order);
        let size = self.r.read_vls_padded()? as usize;
        let end = start
            .checked_add(size)
            .filter(|&e| e <= self.r.buffer().len())
            .ok_or_else(|| BxsaError::Structure {
                what: format!("frame at offset {start} declares size {size} past buffer end"),
            })?;
        match frame_type {
            FrameType::Document => Err(BxsaError::Structure {
                what: "nested document frame".into(),
            }),
            FrameType::Checksum => Err(BxsaError::Structure {
                what: format!("checksum frame at offset {start} inside a container frame"),
            }),
            FrameType::CharData => {
                let text = self.r.read_str()?;
                self.expect_end(start, end)?;
                Ok(PullEvent::Text(text))
            }
            FrameType::Comment => {
                let text = self.r.read_str()?;
                self.expect_end(start, end)?;
                Ok(PullEvent::Comment(text))
            }
            FrameType::Pi => {
                let target = self.r.read_str()?;
                let data = self.r.read_str()?;
                self.expect_end(start, end)?;
                Ok(PullEvent::Pi { target, data })
            }
            FrameType::Component | FrameType::Leaf | FrameType::Array => {
                let header = self.read_element_header()?;
                match frame_type {
                    FrameType::Component => {
                        let remaining = self.r.read_count(1)?;
                        self.stack.push(Pending::Component { end, remaining });
                    }
                    FrameType::Leaf => self.stack.push(Pending::LeafValue { end }),
                    FrameType::Array => self.stack.push(Pending::ArrayValue { end }),
                    _ => unreachable!(),
                }
                Ok(PullEvent::ElementStart(header))
            }
        }
    }

    fn expect_end(&mut self, start: usize, end: usize) -> BxsaResult<()> {
        if self.r.position() != end {
            return Err(BxsaError::FrameSizeMismatch {
                offset: start,
                declared: (end - start) as u64,
                consumed: (self.r.position() - start) as u64,
            });
        }
        Ok(())
    }

    fn read_element_header(&mut self) -> BxsaResult<ElementStart> {
        let n1 = self.r.read_count(2)?;
        let mut decls = Vec::with_capacity(n1);
        for _ in 0..n1 {
            let prefix = self.r.read_str()?;
            let uri = self.r.read_str()?.to_owned();
            decls.push(NamespaceDecl {
                prefix: (!prefix.is_empty()).then(|| prefix.to_owned()),
                uri,
            });
        }
        self.ctx.push_scope(&decls);
        let name = self.read_qname()?;
        let n2 = self.r.read_count(3)?;
        let mut attributes = Vec::with_capacity(n2);
        for _ in 0..n2 {
            let attr_name = self.read_qname()?;
            let value = self.read_atomic()?;
            attributes.push(Attribute {
                name: attr_name,
                value,
            });
        }
        Ok(ElementStart {
            name,
            namespaces: decls,
            attributes,
        })
    }

    fn read_qname(&mut self) -> BxsaResult<QName> {
        let at = self.r.position();
        let tag = self.r.read_vls()?;
        let prefix: Option<&str> = if tag == 0 {
            None
        } else {
            let index = self.r.read_vls()?;
            let r = NsRef {
                scope_depth: (tag - 1)
                    .try_into()
                    .map_err(|_| BxsaError::BadNamespaceRef { offset: at })?,
                index: index
                    .try_into()
                    .map_err(|_| BxsaError::BadNamespaceRef { offset: at })?,
            };
            self.ctx
                .lookup_ref(r)
                .ok_or(BxsaError::BadNamespaceRef { offset: at })?
                .prefix
                .as_deref()
        };
        let local = self.r.read_str()?;
        Ok(QName::new(prefix, local))
    }

    fn read_leaf(&mut self) -> BxsaResult<LeafValue<'a>> {
        let at = self.r.position();
        let code = TypeCode::from_byte(self.r.read_raw_u8()?, at)?;
        Ok(match code {
            TypeCode::I8 => LeafValue::I8(self.r.read_i8()?),
            TypeCode::U8 => LeafValue::U8(self.r.read_u8()?),
            TypeCode::I16 => LeafValue::I16(self.r.read_i16()?),
            TypeCode::U16 => LeafValue::U16(self.r.read_u16()?),
            TypeCode::I32 => LeafValue::I32(self.r.read_i32()?),
            TypeCode::U32 => LeafValue::U32(self.r.read_u32()?),
            TypeCode::I64 => LeafValue::I64(self.r.read_i64()?),
            TypeCode::U64 => LeafValue::U64(self.r.read_u64()?),
            TypeCode::F32 => LeafValue::F32(self.r.read_f32()?),
            TypeCode::F64 => LeafValue::F64(self.r.read_f64()?),
            TypeCode::Str => LeafValue::Str(self.r.read_str()?),
            TypeCode::Bool => {
                let b = self.r.read_raw_u8()?;
                if b > 1 {
                    return Err(BxsaError::BadValueType {
                        offset: at,
                        what: format!("boolean byte {b:#04x}"),
                    });
                }
                LeafValue::Bool(b == 1)
            }
        })
    }

    fn read_atomic(&mut self) -> BxsaResult<AtomicValue> {
        self.read_leaf().map(LeafValue::to_atomic)
    }

    fn read_array_handle(&mut self, end: usize) -> BxsaResult<ArrayHandle<'a>> {
        let at = self.r.position();
        let code = TypeCode::from_byte(self.r.read_raw_u8()?, at)?;
        let width = code
            .width()
            .filter(|_| code != TypeCode::Bool && code != TypeCode::Str)
            .ok_or_else(|| BxsaError::BadValueType {
                offset: at,
                what: format!("{code:?} is not a valid array element type"),
            })?;
        let len = self.r.read_count(width)?;
        let payload_start = self.r.position();
        let handle = ArrayHandle {
            buf: self.r.buffer(),
            payload_start,
            code,
            len,
            order: self.r.order(),
        };
        // Advance past the payload without touching it.
        let aligned = xbs::align_up(payload_start, width);
        self.r.seek(aligned + len * width)?;
        let _ = end;
        Ok(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use bxdm::{Document, Element, Node};

    fn sample_doc() -> Document {
        Document::with_root(
            Element::component("d:set")
                .with_namespace("d", "http://example.org")
                .with_attr("run", "1")
                .with_child(Element::leaf("d:count", AtomicValue::I32(2)))
                .with_child(Element::array(
                    "d:values",
                    ArrayValue::F64(vec![0.5, 1.5, -2.0]),
                ))
                .with_text("note")
                .with_comment("end"),
        )
    }

    /// Replay pull events into a tree and compare with the tree decoder.
    fn rebuild(bytes: &[u8]) -> Document {
        let mut reader = PullReader::new(bytes).unwrap();
        let mut doc = Document::new();
        let mut stack: Vec<Element> = Vec::new();
        while let Some(event) = reader.next_event().unwrap() {
            match event {
                PullEvent::ElementStart(start) => {
                    let mut e = Element::component(start.name.lexical().as_str());
                    e.namespaces = start.namespaces;
                    e.attributes = start.attributes;
                    stack.push(e);
                }
                PullEvent::LeafValue(v) => {
                    stack.last_mut().unwrap().content = bxdm::Content::Leaf(v.to_atomic());
                }
                PullEvent::Array(h) => {
                    stack.last_mut().unwrap().content = bxdm::Content::Array(h.read().unwrap());
                }
                PullEvent::ElementEnd => {
                    let done = stack.pop().unwrap();
                    match stack.last_mut() {
                        Some(parent) => parent.push_child(done),
                        None => doc.children.push(Node::Element(done)),
                    }
                }
                PullEvent::Text(t) => match stack.last_mut() {
                    Some(p) => p.push_node(Node::Text(t.to_owned())),
                    None => doc.children.push(Node::Text(t.to_owned())),
                },
                PullEvent::Comment(c) => match stack.last_mut() {
                    Some(p) => p.push_node(Node::Comment(c.to_owned())),
                    None => doc.children.push(Node::Comment(c.to_owned())),
                },
                PullEvent::Pi { target, data } => {
                    let node = Node::Pi {
                        target: target.to_owned(),
                        data: data.to_owned(),
                    };
                    match stack.last_mut() {
                        Some(p) => p.push_node(node),
                        None => doc.children.push(node),
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn pull_rebuild_matches_tree_decode() {
        let doc = sample_doc();
        let bytes = encode(&doc).unwrap();
        assert_eq!(rebuild(&bytes), doc);
    }

    #[test]
    fn event_sequence_shape() {
        let bytes = encode(&sample_doc()).unwrap();
        let mut reader = PullReader::new(&bytes).unwrap();
        let mut kinds = Vec::new();
        while let Some(e) = reader.next_event().unwrap() {
            kinds.push(match e {
                PullEvent::ElementStart(_) => "start",
                PullEvent::LeafValue(_) => "leaf",
                PullEvent::Array(_) => "array",
                PullEvent::ElementEnd => "end",
                PullEvent::Text(_) => "text",
                PullEvent::Comment(_) => "comment",
                PullEvent::Pi { .. } => "pi",
            });
        }
        assert_eq!(
            kinds,
            vec![
                "start", // d:set
                "start", "leaf", "end", // d:count
                "start", "array", "end", // d:values
                "text", "comment", "end", // note, end-comment, </d:set>
            ]
        );
    }

    #[test]
    fn skip_element_jumps_payload() {
        let doc = Document::with_root(
            Element::component("root")
                .with_child(Element::array(
                    "big",
                    ArrayValue::F64((0..10_000).map(f64::from).collect()),
                ))
                .with_child(Element::leaf("after", AtomicValue::Bool(true))),
        );
        let bytes = encode(&doc).unwrap();
        let mut reader = PullReader::new(&bytes).unwrap();
        // root start, big start...
        assert!(matches!(
            reader.next_event().unwrap(),
            Some(PullEvent::ElementStart(_))
        ));
        match reader.next_event().unwrap() {
            Some(PullEvent::ElementStart(s)) => assert_eq!(s.name.local(), "big"),
            other => panic!("unexpected {other:?}"),
        }
        // Skip the array without reading its handle.
        reader.skip_element().unwrap();
        match reader.next_event().unwrap() {
            Some(PullEvent::ElementStart(s)) => assert_eq!(s.name.local(), "after"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_handle_lazy_read_and_view() {
        let values: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
        let doc = Document::with_root(Element::array("v", ArrayValue::F64(values.clone())));
        let bytes = encode(&doc).unwrap();
        let mut reader = PullReader::new(&bytes).unwrap();
        reader.next_event().unwrap(); // start
        match reader.next_event().unwrap() {
            Some(PullEvent::Array(h)) => {
                assert_eq!(h.len, 64);
                assert_eq!(h.code, TypeCode::F64);
                assert_eq!(h.read().unwrap(), ArrayValue::F64(values.clone()));
                if let Some(view) = h.view::<f64>().unwrap() {
                    assert_eq!(view, &values[..]);
                }
                assert!(h.view::<i32>().is_err());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Text, comment, PI, and leaf-string events alias the input buffer
    /// (no copies): each borrowed slice's address range lies inside it.
    #[test]
    fn events_borrow_payload_from_buffer() {
        let mut root = Element::component("r")
            .with_child(Element::leaf("s", AtomicValue::Str("payload".into())))
            .with_text("note")
            .with_comment("c");
        root.push_node(Node::Pi {
            target: "t".into(),
            data: "d".into(),
        });
        let doc = Document::with_root(root);
        let bytes = encode(&doc).unwrap();
        let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        let in_buf = |s: &str| range.contains(&(s.as_ptr() as usize));
        let mut reader = PullReader::new(&bytes).unwrap();
        let mut borrowed = 0;
        while let Some(event) = reader.next_event().unwrap() {
            match event {
                PullEvent::Text(t) | PullEvent::Comment(t) => {
                    assert!(in_buf(t), "text/comment must alias the buffer");
                    borrowed += 1;
                }
                PullEvent::LeafValue(LeafValue::Str(s)) => {
                    assert!(in_buf(s), "leaf string must alias the buffer");
                    borrowed += 1;
                }
                PullEvent::Pi { target, data } => {
                    assert!(in_buf(target) && in_buf(data), "pi must alias the buffer");
                    borrowed += 1;
                }
                _ => {}
            }
        }
        assert_eq!(borrowed, 4);
    }

    #[test]
    fn namespace_context_tracks_across_events() {
        let doc = Document::with_root(
            Element::component("a:r")
                .with_namespace("a", "http://a")
                .with_child(Element::leaf("a:x", AtomicValue::I32(1))),
        );
        let bytes = encode(&doc).unwrap();
        let rebuilt = rebuild(&bytes);
        assert_eq!(rebuilt, doc);
    }

    #[test]
    fn truncated_stream_errors() {
        let bytes = encode(&sample_doc()).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        // The document frame's declared size now exceeds the truncated
        // buffer, so the open itself may reject — also a surfaced error.
        let mut reader = match PullReader::new(cut) {
            Ok(r) => r,
            Err(_) => return,
        };
        let mut saw_error = false;
        for _ in 0..100 {
            match reader.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "truncation must surface as an error");
    }

    #[test]
    fn rejects_non_document_input() {
        assert!(PullReader::new(&[0x02, 0x05]).is_err());
        assert!(PullReader::new(&[]).is_err());
    }
}
