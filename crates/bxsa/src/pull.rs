//! A streaming (pull) reader for BXSA documents.
//!
//! The tree decoder ([`crate::decoder`]) materializes a full bXDM tree;
//! for large documents a consumer often wants to walk events and touch
//! only what it needs — the streaming style XBS was originally built for
//! (Chiu, "XBS: a *streaming* binary serializer", HPCS 2004). The pull
//! reader yields one event per frame boundary and hands arrays back as
//! lazy handles, so a filter that only inspects element names never pays
//! for payload decoding at all.
//!
//! ```
//! use bxdm::{Document, Element, ArrayValue};
//! use bxsa::pull::{PullReader, PullEvent};
//!
//! let doc = Document::with_root(
//!     Element::component("set")
//!         .with_child(Element::array("v", ArrayValue::F64(vec![1.0, 2.0]))),
//! );
//! let bytes = bxsa::encode(&doc).unwrap();
//! let mut names = Vec::new();
//! let mut reader = PullReader::new(&bytes).unwrap();
//! while let Some(event) = reader.next_event().unwrap() {
//!     if let PullEvent::ElementStart(start) = &event {
//!         names.push(start.name.local().to_owned());
//!     }
//! }
//! assert_eq!(names, ["set", "v"]);
//! ```

use bxdm::namespace::NsRef;
use bxdm::{ArrayValue, Attribute, AtomicValue, NamespaceDecl, NsContext, QName};
use xbs::{ByteOrder, Primitive, TypeCode, XbsReader};

use crate::error::{BxsaError, BxsaResult};
use crate::frame::{parse_prefix, FrameType};

/// The header of an element frame, common to all three element kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementStart {
    /// Qualified element name.
    pub name: QName,
    /// Namespace declarations on this element.
    pub namespaces: Vec<NamespaceDecl>,
    /// Typed attributes.
    pub attributes: Vec<Attribute>,
}

/// A lazy handle onto an array frame's payload.
///
/// Nothing is decoded until [`ArrayHandle::read`] or
/// [`ArrayHandle::view`] is called; skipping the element costs nothing.
#[derive(Debug, Clone, Copy)]
pub struct ArrayHandle<'a> {
    buf: &'a [u8],
    payload_start: usize,
    /// Element type of the array.
    pub code: TypeCode,
    /// Number of items.
    pub len: usize,
    /// Byte order of the payload.
    pub order: ByteOrder,
}

impl<'a> ArrayHandle<'a> {
    /// Decode the payload into an owned [`ArrayValue`].
    pub fn read(&self) -> BxsaResult<ArrayValue> {
        let mut r = XbsReader::new(self.buf, self.order);
        r.seek(self.payload_start)?;
        Ok(match self.code {
            TypeCode::I8 => ArrayValue::I8(r.read_packed(self.len)?),
            TypeCode::U8 => ArrayValue::U8(r.read_packed(self.len)?),
            TypeCode::I16 => ArrayValue::I16(r.read_packed(self.len)?),
            TypeCode::U16 => ArrayValue::U16(r.read_packed(self.len)?),
            TypeCode::I32 => ArrayValue::I32(r.read_packed(self.len)?),
            TypeCode::U32 => ArrayValue::U32(r.read_packed(self.len)?),
            TypeCode::I64 => ArrayValue::I64(r.read_packed(self.len)?),
            TypeCode::U64 => ArrayValue::U64(r.read_packed(self.len)?),
            TypeCode::F32 => ArrayValue::F32(r.read_packed(self.len)?),
            TypeCode::F64 => ArrayValue::F64(r.read_packed(self.len)?),
            other => {
                return Err(BxsaError::BadValueType {
                    offset: self.payload_start,
                    what: format!("{other:?} is not an array element type"),
                })
            }
        })
    }

    /// Borrow the payload zero-copy when byte order and alignment allow.
    pub fn view<T: Primitive>(&self) -> BxsaResult<Option<&'a [T]>> {
        if T::TYPE_CODE != self.code {
            return Err(BxsaError::BadValueType {
                offset: self.payload_start,
                what: format!("payload is {:?}, requested {:?}", self.code, T::TYPE_CODE),
            });
        }
        let mut r = XbsReader::new(self.buf, self.order);
        r.seek(self.payload_start)?;
        Ok(r.read_packed_zero_copy::<T>(self.len)?)
    }
}

/// One streaming event.
#[derive(Debug, Clone)]
pub enum PullEvent<'a> {
    /// An element frame opened (any kind; see the following events).
    ElementStart(ElementStart),
    /// The typed value of a leaf element (between its start and end).
    LeafValue(AtomicValue),
    /// The payload handle of an array element (between start and end).
    Array(ArrayHandle<'a>),
    /// An element frame closed (emitted for leaf/array elements too).
    ElementEnd,
    /// Character data.
    Text(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// PI target.
        target: String,
        /// PI data.
        data: String,
    },
}

/// What the reader still owes for an open scope.
#[derive(Debug)]
enum Pending {
    /// A component element with `remaining` child frames to read.
    Component { end: usize, remaining: usize },
    /// A leaf element whose value event is due.
    LeafValue { end: usize },
    /// An array element whose handle event is due.
    ArrayValue { end: usize },
    /// An element whose end event is due, then the frame closes at `end`.
    End { end: usize },
}

/// The streaming reader.
pub struct PullReader<'a> {
    r: XbsReader<'a>,
    ctx: NsContext,
    stack: Vec<Pending>,
    /// Remaining top-level frames in the document frame.
    top_remaining: usize,
    doc_end: usize,
    finished: bool,
}

impl<'a> PullReader<'a> {
    /// Open a reader over an encoded document.
    pub fn new(buf: &'a [u8]) -> BxsaResult<PullReader<'a>> {
        let mut r = XbsReader::new(buf, ByteOrder::Little);
        let start = r.position();
        let (order, frame_type) = parse_prefix(r.read_raw_u8()?, start)?;
        if frame_type != FrameType::Document {
            return Err(BxsaError::Structure {
                what: format!("expected a document frame, found {frame_type:?}"),
            });
        }
        r.set_order(order);
        let size = r.read_vls_padded()? as usize;
        let top_remaining = r.read_count(1)?;
        Ok(PullReader {
            r,
            ctx: NsContext::new(),
            stack: Vec::new(),
            top_remaining,
            doc_end: start + size,
            finished: false,
        })
    }

    /// Pull the next event; `None` at end of document.
    #[allow(clippy::should_implement_trait)]
    pub fn next_event(&mut self) -> BxsaResult<Option<PullEvent<'a>>> {
        if self.finished {
            return Ok(None);
        }
        // Deliver owed value/end events for the innermost open scope.
        match self.stack.pop() {
            None => {
                if self.top_remaining == 0 {
                    self.finish()?;
                    return Ok(None);
                }
                self.top_remaining -= 1;
                self.read_frame().map(Some)
            }
            Some(Pending::LeafValue { end }) => {
                let value = self.read_atomic()?;
                self.stack.push(Pending::End { end });
                Ok(Some(PullEvent::LeafValue(value)))
            }
            Some(Pending::ArrayValue { end }) => {
                let handle = self.read_array_handle(end)?;
                self.stack.push(Pending::End { end });
                Ok(Some(PullEvent::Array(handle)))
            }
            Some(Pending::End { end }) => {
                self.close_element(end)?;
                Ok(Some(PullEvent::ElementEnd))
            }
            Some(Pending::Component { end, remaining }) => {
                if remaining == 0 {
                    self.close_element(end)?;
                    return Ok(Some(PullEvent::ElementEnd));
                }
                self.stack.push(Pending::Component {
                    end,
                    remaining: remaining - 1,
                });
                self.read_frame().map(Some)
            }
        }
    }

    /// Skip the innermost open element entirely (children, payload and
    /// all), without generating events — the streaming counterpart of the
    /// size-field skip-scan.
    pub fn skip_element(&mut self) -> BxsaResult<()> {
        let end = match self.stack.pop() {
            Some(
                Pending::Component { end, .. }
                | Pending::LeafValue { end }
                | Pending::ArrayValue { end }
                | Pending::End { end },
            ) => end,
            None => {
                return Err(BxsaError::Structure {
                    what: "skip_element with no open element".into(),
                })
            }
        };
        self.ctx.pop_scope();
        self.r.seek(end)?;
        Ok(())
    }

    fn finish(&mut self) -> BxsaResult<()> {
        self.finished = true;
        if self.r.position() != self.doc_end {
            return Err(BxsaError::FrameSizeMismatch {
                offset: 0,
                declared: self.doc_end as u64,
                consumed: self.r.position() as u64,
            });
        }
        Ok(())
    }

    fn close_element(&mut self, end: usize) -> BxsaResult<()> {
        self.ctx.pop_scope();
        let at = self.r.position();
        if at != end {
            return Err(BxsaError::FrameSizeMismatch {
                offset: end,
                declared: end as u64,
                consumed: at as u64,
            });
        }
        Ok(())
    }

    fn read_frame(&mut self) -> BxsaResult<PullEvent<'a>> {
        let start = self.r.position();
        let (order, frame_type) = parse_prefix(self.r.read_raw_u8()?, start)?;
        self.r.set_order(order);
        let size = self.r.read_vls_padded()? as usize;
        let end = start + size;
        match frame_type {
            FrameType::Document => Err(BxsaError::Structure {
                what: "nested document frame".into(),
            }),
            FrameType::CharData => {
                let text = self.r.read_str()?.to_owned();
                self.expect_end(start, end)?;
                Ok(PullEvent::Text(text))
            }
            FrameType::Comment => {
                let text = self.r.read_str()?.to_owned();
                self.expect_end(start, end)?;
                Ok(PullEvent::Comment(text))
            }
            FrameType::Pi => {
                let target = self.r.read_str()?.to_owned();
                let data = self.r.read_str()?.to_owned();
                self.expect_end(start, end)?;
                Ok(PullEvent::Pi { target, data })
            }
            FrameType::Component | FrameType::Leaf | FrameType::Array => {
                let header = self.read_element_header()?;
                match frame_type {
                    FrameType::Component => {
                        let remaining = self.r.read_count(1)?;
                        self.stack.push(Pending::Component { end, remaining });
                    }
                    FrameType::Leaf => self.stack.push(Pending::LeafValue { end }),
                    FrameType::Array => self.stack.push(Pending::ArrayValue { end }),
                    _ => unreachable!(),
                }
                Ok(PullEvent::ElementStart(header))
            }
        }
    }

    fn expect_end(&mut self, start: usize, end: usize) -> BxsaResult<()> {
        if self.r.position() != end {
            return Err(BxsaError::FrameSizeMismatch {
                offset: start,
                declared: (end - start) as u64,
                consumed: (self.r.position() - start) as u64,
            });
        }
        Ok(())
    }

    fn read_element_header(&mut self) -> BxsaResult<ElementStart> {
        let n1 = self.r.read_count(2)?;
        let mut decls = Vec::with_capacity(n1);
        for _ in 0..n1 {
            let prefix = self.r.read_str()?;
            let uri = self.r.read_str()?.to_owned();
            decls.push(NamespaceDecl {
                prefix: (!prefix.is_empty()).then(|| prefix.to_owned()),
                uri,
            });
        }
        self.ctx.push_scope(&decls);
        let name = self.read_qname()?;
        let n2 = self.r.read_count(3)?;
        let mut attributes = Vec::with_capacity(n2);
        for _ in 0..n2 {
            let attr_name = self.read_qname()?;
            let value = self.read_atomic()?;
            attributes.push(Attribute {
                name: attr_name,
                value,
            });
        }
        Ok(ElementStart {
            name,
            namespaces: decls,
            attributes,
        })
    }

    fn read_qname(&mut self) -> BxsaResult<QName> {
        let at = self.r.position();
        let tag = self.r.read_vls()?;
        let prefix: Option<&str> = if tag == 0 {
            None
        } else {
            let index = self.r.read_vls()?;
            let r = NsRef {
                scope_depth: (tag - 1)
                    .try_into()
                    .map_err(|_| BxsaError::BadNamespaceRef { offset: at })?,
                index: index
                    .try_into()
                    .map_err(|_| BxsaError::BadNamespaceRef { offset: at })?,
            };
            self.ctx
                .lookup_ref(r)
                .ok_or(BxsaError::BadNamespaceRef { offset: at })?
                .prefix
                .as_deref()
        };
        let local = self.r.read_str()?;
        Ok(QName::new(prefix, local))
    }

    fn read_atomic(&mut self) -> BxsaResult<AtomicValue> {
        let at = self.r.position();
        let code = TypeCode::from_byte(self.r.read_raw_u8()?, at)?;
        Ok(match code {
            TypeCode::I8 => AtomicValue::I8(self.r.read_i8()?),
            TypeCode::U8 => AtomicValue::U8(self.r.read_u8()?),
            TypeCode::I16 => AtomicValue::I16(self.r.read_i16()?),
            TypeCode::U16 => AtomicValue::U16(self.r.read_u16()?),
            TypeCode::I32 => AtomicValue::I32(self.r.read_i32()?),
            TypeCode::U32 => AtomicValue::U32(self.r.read_u32()?),
            TypeCode::I64 => AtomicValue::I64(self.r.read_i64()?),
            TypeCode::U64 => AtomicValue::U64(self.r.read_u64()?),
            TypeCode::F32 => AtomicValue::F32(self.r.read_f32()?),
            TypeCode::F64 => AtomicValue::F64(self.r.read_f64()?),
            TypeCode::Str => AtomicValue::Str(self.r.read_str()?.to_owned()),
            TypeCode::Bool => {
                let b = self.r.read_raw_u8()?;
                if b > 1 {
                    return Err(BxsaError::BadValueType {
                        offset: at,
                        what: format!("boolean byte {b:#04x}"),
                    });
                }
                AtomicValue::Bool(b == 1)
            }
        })
    }

    fn read_array_handle(&mut self, end: usize) -> BxsaResult<ArrayHandle<'a>> {
        let at = self.r.position();
        let code = TypeCode::from_byte(self.r.read_raw_u8()?, at)?;
        let width = code
            .width()
            .filter(|_| code != TypeCode::Bool && code != TypeCode::Str)
            .ok_or_else(|| BxsaError::BadValueType {
                offset: at,
                what: format!("{code:?} is not a valid array element type"),
            })?;
        let len = self.r.read_count(width)?;
        let payload_start = self.r.position();
        let handle = ArrayHandle {
            buf: self.r.buffer(),
            payload_start,
            code,
            len,
            order: self.r.order(),
        };
        // Advance past the payload without touching it.
        let aligned = xbs::align_up(payload_start, width);
        self.r.seek(aligned + len * width)?;
        let _ = end;
        Ok(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use bxdm::{Document, Element, Node};

    fn sample_doc() -> Document {
        Document::with_root(
            Element::component("d:set")
                .with_namespace("d", "http://example.org")
                .with_attr("run", "1")
                .with_child(Element::leaf("d:count", AtomicValue::I32(2)))
                .with_child(Element::array(
                    "d:values",
                    ArrayValue::F64(vec![0.5, 1.5, -2.0]),
                ))
                .with_text("note")
                .with_comment("end"),
        )
    }

    /// Replay pull events into a tree and compare with the tree decoder.
    fn rebuild(bytes: &[u8]) -> Document {
        let mut reader = PullReader::new(bytes).unwrap();
        let mut doc = Document::new();
        let mut stack: Vec<Element> = Vec::new();
        while let Some(event) = reader.next_event().unwrap() {
            match event {
                PullEvent::ElementStart(start) => {
                    let mut e = Element::component(start.name.lexical().as_str());
                    e.namespaces = start.namespaces;
                    e.attributes = start.attributes;
                    stack.push(e);
                }
                PullEvent::LeafValue(v) => {
                    stack.last_mut().unwrap().content = bxdm::Content::Leaf(v);
                }
                PullEvent::Array(h) => {
                    stack.last_mut().unwrap().content = bxdm::Content::Array(h.read().unwrap());
                }
                PullEvent::ElementEnd => {
                    let done = stack.pop().unwrap();
                    match stack.last_mut() {
                        Some(parent) => parent.push_child(done),
                        None => doc.children.push(Node::Element(done)),
                    }
                }
                PullEvent::Text(t) => match stack.last_mut() {
                    Some(p) => p.push_node(Node::Text(t)),
                    None => doc.children.push(Node::Text(t)),
                },
                PullEvent::Comment(c) => match stack.last_mut() {
                    Some(p) => p.push_node(Node::Comment(c)),
                    None => doc.children.push(Node::Comment(c)),
                },
                PullEvent::Pi { target, data } => {
                    let node = Node::Pi { target, data };
                    match stack.last_mut() {
                        Some(p) => p.push_node(node),
                        None => doc.children.push(node),
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn pull_rebuild_matches_tree_decode() {
        let doc = sample_doc();
        let bytes = encode(&doc).unwrap();
        assert_eq!(rebuild(&bytes), doc);
    }

    #[test]
    fn event_sequence_shape() {
        let bytes = encode(&sample_doc()).unwrap();
        let mut reader = PullReader::new(&bytes).unwrap();
        let mut kinds = Vec::new();
        while let Some(e) = reader.next_event().unwrap() {
            kinds.push(match e {
                PullEvent::ElementStart(_) => "start",
                PullEvent::LeafValue(_) => "leaf",
                PullEvent::Array(_) => "array",
                PullEvent::ElementEnd => "end",
                PullEvent::Text(_) => "text",
                PullEvent::Comment(_) => "comment",
                PullEvent::Pi { .. } => "pi",
            });
        }
        assert_eq!(
            kinds,
            vec![
                "start", // d:set
                "start", "leaf", "end", // d:count
                "start", "array", "end", // d:values
                "text", "comment", "end", // note, end-comment, </d:set>
            ]
        );
    }

    #[test]
    fn skip_element_jumps_payload() {
        let doc = Document::with_root(
            Element::component("root")
                .with_child(Element::array(
                    "big",
                    ArrayValue::F64((0..10_000).map(f64::from).collect()),
                ))
                .with_child(Element::leaf("after", AtomicValue::Bool(true))),
        );
        let bytes = encode(&doc).unwrap();
        let mut reader = PullReader::new(&bytes).unwrap();
        // root start, big start...
        assert!(matches!(
            reader.next_event().unwrap(),
            Some(PullEvent::ElementStart(_))
        ));
        match reader.next_event().unwrap() {
            Some(PullEvent::ElementStart(s)) => assert_eq!(s.name.local(), "big"),
            other => panic!("unexpected {other:?}"),
        }
        // Skip the array without reading its handle.
        reader.skip_element().unwrap();
        match reader.next_event().unwrap() {
            Some(PullEvent::ElementStart(s)) => assert_eq!(s.name.local(), "after"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_handle_lazy_read_and_view() {
        let values: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
        let doc = Document::with_root(Element::array("v", ArrayValue::F64(values.clone())));
        let bytes = encode(&doc).unwrap();
        let mut reader = PullReader::new(&bytes).unwrap();
        reader.next_event().unwrap(); // start
        match reader.next_event().unwrap() {
            Some(PullEvent::Array(h)) => {
                assert_eq!(h.len, 64);
                assert_eq!(h.code, TypeCode::F64);
                assert_eq!(h.read().unwrap(), ArrayValue::F64(values.clone()));
                if let Some(view) = h.view::<f64>().unwrap() {
                    assert_eq!(view, &values[..]);
                }
                assert!(h.view::<i32>().is_err());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn namespace_context_tracks_across_events() {
        let doc = Document::with_root(
            Element::component("a:r")
                .with_namespace("a", "http://a")
                .with_child(Element::leaf("a:x", AtomicValue::I32(1))),
        );
        let bytes = encode(&doc).unwrap();
        let rebuilt = rebuild(&bytes);
        assert_eq!(rebuilt, doc);
    }

    #[test]
    fn truncated_stream_errors() {
        let bytes = encode(&sample_doc()).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        let mut reader = PullReader::new(cut).unwrap();
        let mut saw_error = false;
        for _ in 0..100 {
            match reader.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "truncation must surface as an error");
    }

    #[test]
    fn rejects_non_document_input() {
        assert!(PullReader::new(&[0x02, 0x05]).is_err());
        assert!(PullReader::new(&[]).is_err());
    }
}
