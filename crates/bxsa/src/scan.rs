//! Accelerated sequential access.
//!
//! Paper §4.1: the size field "enables the accelerated sequential access
//! ability, by which we can sequentially scan frames without fully
//! parsing all parts of the document." [`FrameScanner`] walks sibling
//! frames by hopping over their declared sizes; nothing inside a skipped
//! frame is touched. The `skip_scan` bench quantifies the win over a full
//! parse.

use xbs::{ByteOrder, Primitive, XbsReader};

use crate::error::{BxsaError, BxsaResult};
use crate::frame::{parse_prefix, FrameType};

/// A frame located by a scan, without its body having been parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Frame kind.
    pub frame_type: FrameType,
    /// Byte order of the frame's numeric payload.
    pub byte_order: ByteOrder,
    /// Offset of the frame's first byte within the scanned buffer.
    pub start: usize,
    /// Total frame length in bytes (prefix and size field included).
    pub len: usize,
    /// Offset of the first body byte (after prefix and size field).
    pub body_start: usize,
}

impl FrameInfo {
    /// The frame's bytes within the buffer it was scanned from.
    pub fn slice<'a>(&self, buf: &'a [u8]) -> &'a [u8] {
        &buf[self.start..self.start + self.len]
    }
}

/// Iterator over sibling frames starting at a given offset.
pub struct FrameScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    end: usize,
}

impl<'a> FrameScanner<'a> {
    /// Scan the frames of an encoded document, starting at the first
    /// top-level frame *inside* the document frame.
    pub fn document(buf: &'a [u8]) -> BxsaResult<FrameScanner<'a>> {
        let info = peek_frame(buf, 0)?;
        if info.frame_type != FrameType::Document {
            return Err(BxsaError::Structure {
                what: format!("expected a document frame, found {:?}", info.frame_type),
            });
        }
        // Skip the child-count VLS to land on the first child frame.
        let mut r = XbsReader::new(buf, info.byte_order);
        r.seek(info.body_start)?;
        let _count = r.read_vls()?;
        Ok(FrameScanner {
            buf,
            pos: r.position(),
            end: info.start + info.len,
        })
    }

    /// Scan sibling frames in `buf[start..end]` (e.g. the children region
    /// of a component frame).
    pub fn range(buf: &'a [u8], start: usize, end: usize) -> FrameScanner<'a> {
        FrameScanner {
            buf,
            pos: start,
            end: end.min(buf.len()),
        }
    }
}

impl Iterator for FrameScanner<'_> {
    type Item = BxsaResult<FrameInfo>;

    fn next(&mut self) -> Option<BxsaResult<FrameInfo>> {
        if self.pos >= self.end {
            return None;
        }
        match peek_frame(self.buf, self.pos) {
            Ok(info) => {
                if info.start + info.len > self.end {
                    self.pos = self.end;
                    return Some(Err(BxsaError::Structure {
                        what: format!(
                            "frame at {} overruns its container (len {})",
                            info.start, info.len
                        ),
                    }));
                }
                self.pos = info.start + info.len;
                Some(Ok(info))
            }
            Err(e) => {
                self.pos = self.end; // stop iteration after an error
                Some(Err(e))
            }
        }
    }
}

/// Read just a frame's prefix and size field at `offset`.
pub fn peek_frame(buf: &[u8], offset: usize) -> BxsaResult<FrameInfo> {
    let mut r = XbsReader::new(buf, ByteOrder::Little);
    r.seek(offset)?;
    let (byte_order, frame_type) = parse_prefix(r.read_raw_u8()?, offset)?;
    let len = r.read_vls_padded()?;
    let body_start = r.position();
    let len: usize = len.try_into().map_err(|_| BxsaError::Structure {
        what: "frame size exceeds addressable memory".into(),
    })?;
    if len < body_start - offset || offset + len > buf.len() {
        return Err(BxsaError::Structure {
            what: format!("frame at {offset} declares impossible size {len}"),
        });
    }
    Ok(FrameInfo {
        frame_type,
        byte_order,
        start: offset,
        len,
        body_start,
    })
}

/// Zero-copy view of an **array frame's** packed payload, without parsing
/// the element header.
///
/// Walks the header fields of the array frame located by `info`
/// (namespace table, name, attributes), checks the element type code
/// matches `T`, and returns a borrowed slice over the payload when the
/// byte order is native and the mapping is aligned; `Ok(None)` means a
/// copying read is required (foreign order or unaligned buffer).
pub fn array_payload_view<'a, T: Primitive>(
    buf: &'a [u8],
    info: &FrameInfo,
) -> BxsaResult<Option<&'a [T]>> {
    if info.frame_type != FrameType::Array {
        return Err(BxsaError::Structure {
            what: format!("{:?} is not an array frame", info.frame_type),
        });
    }
    let mut r = XbsReader::new(buf, info.byte_order);
    r.seek(info.body_start)?;
    skip_element_header(&mut r)?;
    let at = r.position();
    let code = xbs::TypeCode::from_byte(r.read_raw_u8()?, at)?;
    if code != T::TYPE_CODE {
        return Err(BxsaError::BadValueType {
            offset: at,
            what: format!("payload is {code:?}, requested {:?}", T::TYPE_CODE),
        });
    }
    let count = r.read_count(T::WIDTH)?;
    Ok(r.read_packed_zero_copy::<T>(count)?)
}

/// Copying read of an array frame's payload (always succeeds on valid
/// input; pairs with [`array_payload_view`]).
pub fn array_payload_copy<T: Primitive>(buf: &[u8], info: &FrameInfo) -> BxsaResult<Vec<T>> {
    if info.frame_type != FrameType::Array {
        return Err(BxsaError::Structure {
            what: format!("{:?} is not an array frame", info.frame_type),
        });
    }
    let mut r = XbsReader::new(buf, info.byte_order);
    r.seek(info.body_start)?;
    skip_element_header(&mut r)?;
    let at = r.position();
    let code = xbs::TypeCode::from_byte(r.read_raw_u8()?, at)?;
    if code != T::TYPE_CODE {
        return Err(BxsaError::BadValueType {
            offset: at,
            what: format!("payload is {code:?}, requested {:?}", T::TYPE_CODE),
        });
    }
    let count = r.read_count(T::WIDTH)?;
    Ok(r.read_packed(count)?)
}

/// Advance a reader past an element frame's namespace table, name
/// reference, local name and attribute list, leaving it at the content.
fn skip_element_header(r: &mut XbsReader<'_>) -> BxsaResult<()> {
    let n1 = r.read_count(2)?;
    for _ in 0..n1 {
        let _prefix = r.read_str()?;
        let _uri = r.read_str()?;
    }
    skip_qname(r)?;
    let n2 = r.read_count(3)?;
    for _ in 0..n2 {
        skip_qname(r)?;
        skip_atomic(r)?;
    }
    Ok(())
}

fn skip_qname(r: &mut XbsReader<'_>) -> BxsaResult<()> {
    let tag = r.read_vls()?;
    if tag != 0 {
        let _index = r.read_vls()?;
    }
    let _local = r.read_str()?;
    Ok(())
}

fn skip_atomic(r: &mut XbsReader<'_>) -> BxsaResult<()> {
    let at = r.position();
    let code = xbs::TypeCode::from_byte(r.read_raw_u8()?, at)?;
    match code {
        xbs::TypeCode::Str => {
            let _s = r.read_str()?;
        }
        xbs::TypeCode::Bool => {
            let _b = r.read_raw_u8()?;
        }
        other => {
            let w = other.width().expect("fixed width");
            r.align(w)?;
            let _ = r.read_bytes(w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use bxdm::{ArrayValue, AtomicValue, Document, Element};

    fn doc_with_frames() -> (Document, Vec<u8>) {
        let doc = Document::with_root(
            Element::component("root")
                .with_child(Element::leaf("a", AtomicValue::I32(1)))
                .with_child(Element::array("v", ArrayValue::F64(vec![1.0; 100])))
                .with_child(Element::leaf("b", AtomicValue::Str("x".into()))),
        );
        let bytes = encode(&doc).unwrap();
        (doc, bytes)
    }

    #[test]
    fn document_scan_finds_root() {
        let (_, bytes) = doc_with_frames();
        let frames: Vec<_> = FrameScanner::document(&bytes)
            .unwrap()
            .collect::<BxsaResult<_>>()
            .unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].frame_type, FrameType::Component);
        // The root frame spans to the end of the buffer.
        assert_eq!(frames[0].start + frames[0].len, bytes.len());
    }

    #[test]
    fn scan_skips_without_parsing() {
        let (_, bytes) = doc_with_frames();
        let root = FrameScanner::document(&bytes)
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        // Children of the root: skip over the element header by parsing
        // the root normally, then locating children via a range scan is
        // exercised in decoder tests; here we verify sizes chain.
        assert!(root.len <= bytes.len());
        assert_eq!(peek_frame(&bytes, root.start).unwrap(), root);
    }

    #[test]
    fn array_payload_reads() {
        let data: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        let doc = Document::with_root(Element::array("v", ArrayValue::F64(data.clone())));
        let bytes = encode(&doc).unwrap();
        let root = FrameScanner::document(&bytes)
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        assert_eq!(root.frame_type, FrameType::Array);
        // Copying read always works.
        assert_eq!(array_payload_copy::<f64>(&bytes, &root).unwrap(), data);
        // Zero-copy read matches when the allocation happens to align.
        if let Some(view) = array_payload_view::<f64>(&bytes, &root).unwrap() {
            assert_eq!(view, &data[..]);
        }
    }

    #[test]
    fn array_payload_type_mismatch() {
        let doc = Document::with_root(Element::array("v", ArrayValue::I32(vec![1])));
        let bytes = encode(&doc).unwrap();
        let root = FrameScanner::document(&bytes)
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        assert!(matches!(
            array_payload_copy::<f64>(&bytes, &root),
            Err(BxsaError::BadValueType { .. })
        ));
    }

    #[test]
    fn peek_rejects_overrun_sizes() {
        let (_, mut bytes) = doc_with_frames();
        // Inflate the document frame's size field beyond the buffer:
        // byte 1 starts the padded VLS; overwrite with a huge canonical VLS.
        bytes[1] = 0xff;
        bytes[2] = 0x7f;
        assert!(peek_frame(&bytes, 0).is_err());
    }

    #[test]
    fn range_scan_stops_on_error() {
        let junk = [0xffu8, 0x00, 0x00];
        let mut scanner = FrameScanner::range(&junk, 0, junk.len());
        assert!(scanner.next().unwrap().is_err());
        assert!(scanner.next().is_none());
    }
}
