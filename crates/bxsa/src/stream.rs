//! Streaming frame emission and assembly — the constant-memory pipeline
//! primitives.
//!
//! A streamed BXSA message is a sequence of standalone element frames
//! ("parts"), each encoded exactly as [`crate::encode_element`] would —
//! at offset 0 of its own buffer, so the array-alignment rule (padding
//! is relative to the buffer start) holds for every part independently.
//! The two halves here bound memory to a *window* regardless of how
//! large the whole message grows:
//!
//! * [`FrameSink`] is the push side: feed it elements one at a time and
//!   it emits each as a finished frame to a sink callback, reusing one
//!   window-bounded encode buffer (the same [`crate::FrameWriter`]-backed
//!   machinery as the document encoder underneath).
//! * [`FrameAssembler`] is the pull side: feed it arbitrary byte slices
//!   (socket reads, chunk payloads) and it surfaces complete frames as
//!   they complete, holding at most one window of buffered bytes. Each
//!   surfaced frame starts at offset 0 of the returned slice, so it can
//!   go straight to [`crate::decode_element`],
//!   [`crate::decoder::decode_element_into`], or a
//!   [`crate::PullReader`]-style scan via [`crate::scan::peek_frame`].

use bxdm::Element;
use xbs::vls::read_vls_padded;
use xbs::XbsError;

use crate::encoder::{encode_element_into, EncodeOptions};
use crate::error::{BxsaError, BxsaResult};
use crate::frame::{parse_prefix, FrameType};

/// Default streaming window: the upper bound on a single part frame and
/// on the bytes either half buffers at steady state.
pub const DEFAULT_WINDOW: usize = 64 * 1024;

/// Push-side streaming encoder: elements in, finished frames out.
///
/// Every [`push`](FrameSink::push) encodes one element as a standalone
/// frame into a reused buffer and hands the bytes to the sink. A part
/// larger than the window is refused *before* the sink sees anything —
/// the window is the contract that lets every downstream hop cap its
/// buffering.
pub struct FrameSink<F> {
    sink: F,
    opts: EncodeOptions,
    window: usize,
    buf: Vec<u8>,
    parts: u64,
}

impl<F: FnMut(&[u8]) -> BxsaResult<()>> FrameSink<F> {
    /// A sink emitting frames encoded with `opts`, each at most `window`
    /// bytes, to `sink`.
    pub fn new(opts: EncodeOptions, window: usize, sink: F) -> FrameSink<F> {
        FrameSink {
            sink,
            opts,
            window,
            buf: Vec::new(),
            parts: 0,
        }
    }

    /// Encode `element` as one standalone frame and emit it.
    pub fn push(&mut self, element: &Element) -> BxsaResult<()> {
        encode_element_into(element, &self.opts, &mut self.buf)?;
        if self.buf.len() > self.window {
            return Err(BxsaError::Structure {
                what: format!(
                    "part frame ({} bytes) exceeds the {}-byte streaming window",
                    self.buf.len(),
                    self.window
                ),
            });
        }
        self.parts += 1;
        (self.sink)(&self.buf)
    }

    /// Frames emitted so far.
    pub fn parts_emitted(&self) -> u64 {
        self.parts
    }
}

/// Pull-side streaming assembler: bytes in, complete frames out.
///
/// Feed byte slices in whatever sizes the transport delivers; call
/// [`next_frame`](FrameAssembler::next_frame) until it returns `None`
/// (more input needed), then feed again. Buffered bytes never exceed one
/// window plus one read's worth, so memory stays O(window) no matter how
/// long the stream runs.
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Bytes of `buf` already surfaced as a frame (dropped lazily so the
    /// returned slice stays valid until the next call).
    consumed: usize,
    window: usize,
    finished: bool,
}

impl FrameAssembler {
    /// An assembler refusing frames larger than `window` bytes.
    pub fn new(window: usize) -> FrameAssembler {
        FrameAssembler {
            buf: Vec::new(),
            consumed: 0,
            window,
            finished: false,
        }
    }

    /// Append transport bytes.
    ///
    /// Deliberately does *not* drop the previously surfaced frame: it
    /// must stay buffered until the next
    /// [`next_frame`](FrameAssembler::next_frame) call in case the bytes
    /// that follow it are a checksum frame covering it.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Declare end of input: a partial frame still buffered becomes an
    /// error on the next [`next_frame`](FrameAssembler::next_frame) call
    /// instead of a silent wait.
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// Bytes currently buffered (diagnostics / window accounting).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    fn compact(&mut self) {
        if self.consumed > 0 {
            // Move the tail to the front so the next frame sits at offset
            // 0 of the buffer — required by the alignment rule (array
            // padding inside a standalone frame is relative to the buffer
            // start) and at most one window of bytes per call.
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Declared total size of the frame starting at `at`, or `None` when
    /// more input is needed to learn or to hold it.
    fn frame_total_at(&mut self, at: usize) -> BxsaResult<Option<usize>> {
        // Size field: a padded VLS right after the prefix. A truncated
        // field reads as UnexpectedEof — "need more" unless the stream
        // already ended.
        let total = match read_vls_padded(&self.buf[at + 1..], at + 1) {
            Ok((len, _)) => {
                let len: usize = len.try_into().map_err(|_| BxsaError::Structure {
                    what: "frame size exceeds addressable memory".into(),
                })?;
                len
            }
            Err(XbsError::UnexpectedEof { .. }) if !self.finished => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if total > self.window {
            return Err(BxsaError::Structure {
                what: format!(
                    "frame declares {total} bytes, over the {}-byte streaming window",
                    self.window
                ),
            });
        }
        if total < 2 {
            return Err(BxsaError::Structure {
                what: format!("frame declares impossible size {total}"),
            });
        }
        let avail = self.buf.len() - at;
        if avail < total {
            if self.finished {
                return Err(BxsaError::Structure {
                    what: format!("stream ended mid-frame: {avail} of {total} bytes"),
                });
            }
            self.buf.reserve(total - avail);
            return Ok(None);
        }
        Ok(Some(total))
    }

    /// Surface the next complete frame, or `None` if more input is
    /// needed. The slice starts at the frame's first byte and is valid
    /// until the next call on this assembler.
    ///
    /// A checksum frame following the previously surfaced frame is
    /// *absorbed*: its CRC is verified against that frame's bytes (still
    /// buffered until this call) and both are consumed, so checksummed
    /// and plain senders look identical to the caller. Verification can
    /// only happen here — one call after the covered frame was surfaced —
    /// because a frame must surface the moment it completes, without
    /// waiting to learn whether a checksum follows.
    pub fn next_frame(&mut self) -> BxsaResult<Option<&[u8]>> {
        // The previously surfaced frame is still at buf[..consumed]; if
        // the next frame is a checksum over it, verify and drop both.
        if self.consumed > 0 && self.buf.len() == self.consumed && !self.finished {
            // Exactly at the frame boundary: whether a checksum trailer
            // follows is unknowable until at least one more byte arrives,
            // and verifying it needs the covered bytes — don't compact.
            return Ok(None);
        }
        if self.consumed > 0 && self.buf.len() > self.consumed {
            if let (_, FrameType::Checksum) = parse_prefix(self.buf[self.consumed], self.consumed)?
            {
                let Some(total) = self.frame_total_at(self.consumed)? else {
                    return Ok(None);
                };
                let end = crate::frame::verify_checksum_frame(
                    &self.buf[..self.consumed + total],
                    0,
                    self.consumed,
                )?;
                self.consumed = end;
            }
        }
        self.compact();
        if self.buf.is_empty() {
            return Ok(None);
        }
        // Prefix byte: validate eagerly so garbage fails fast. A checksum
        // frame at offset 0 has no preceding frame to cover — reject.
        let (_, ft) = parse_prefix(self.buf[0], 0)?;
        if ft == FrameType::Checksum {
            return Err(BxsaError::Structure {
                what: "checksum frame with no preceding frame to cover".into(),
            });
        }
        let Some(total) = self.frame_total_at(0)? else {
            return Ok(None);
        };
        self.consumed = total;
        Ok(Some(&self.buf[..total]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{decode_element, decode_element_into, DecodeOptions};
    use crate::pull::{PullEvent, PullReader};
    use bxdm::{ArrayValue, AtomicValue, Node};

    fn part(i: usize, n: usize) -> Element {
        Element::component("p:part")
            .with_namespace("p", "http://example.org/parts")
            .with_child(Element::leaf("p:seq", AtomicValue::I64(i as i64)))
            .with_child(Element::array(
                "p:data",
                ArrayValue::F64((0..n).map(|j| (i * n + j) as f64).collect()),
            ))
    }

    #[test]
    fn sink_to_assembler_roundtrip_across_awkward_splits() {
        let mut wire = Vec::new();
        let mut sink = FrameSink::new(EncodeOptions::default(), DEFAULT_WINDOW, |frame| {
            wire.extend_from_slice(frame);
            Ok(())
        });
        let parts: Vec<Element> = (0..7).map(|i| part(i, 50)).collect();
        for p in &parts {
            sink.push(p).unwrap();
        }
        assert_eq!(sink.parts_emitted(), 7);

        // Feed the whole stream in pathological slice sizes (1, 3, 17
        // bytes...) so frame boundaries never align with feed boundaries.
        for step in [1usize, 3, 17, 64, 1000] {
            let mut asm = FrameAssembler::new(DEFAULT_WINDOW);
            let mut got = Vec::new();
            let mut fed = 0;
            while fed < wire.len() {
                let end = (fed + step).min(wire.len());
                asm.feed(&wire[fed..end]);
                fed = end;
                while let Some(frame) = asm.next_frame().unwrap() {
                    got.push(decode_element(frame, &DecodeOptions::default()).unwrap());
                }
            }
            asm.finish();
            assert!(asm.next_frame().unwrap().is_none());
            assert_eq!(got, parts, "step {step}");
        }
    }

    #[test]
    fn assembled_frames_pull_decode_in_place() {
        // The layering the streaming read side stands on: each surfaced
        // frame can be walked by the pull reader machinery (here via a
        // standalone-element scan) without re-buffering.
        let mut wire = Vec::new();
        let mut sink = FrameSink::new(EncodeOptions::default(), DEFAULT_WINDOW, |frame| {
            wire.extend_from_slice(frame);
            Ok(())
        });
        sink.push(&part(1, 8)).unwrap();
        let mut asm = FrameAssembler::new(DEFAULT_WINDOW);
        asm.feed(&wire);
        let frame = asm.next_frame().unwrap().expect("one whole frame fed");
        // A standalone element frame is exactly a document body; wrap it
        // for the pull reader by scanning the element directly.
        let info = crate::scan::peek_frame(frame, 0).unwrap();
        assert!(info.frame_type.is_element());
        let element = decode_element(frame, &DecodeOptions::default()).unwrap();
        assert_eq!(element, part(1, 8));
    }

    #[test]
    fn pull_reader_still_owns_document_streams() {
        // Guard the claimed equivalence: a document built from the same
        // element walks the same values through PullReader events.
        let doc = bxdm::Document::with_root(part(2, 4));
        let bytes = crate::encode(&doc).unwrap();
        let mut r = PullReader::new(&bytes).unwrap();
        let mut leaves = 0;
        let mut arrays = 0;
        while let Some(event) = r.next_event().unwrap() {
            match event {
                PullEvent::LeafValue(_) => leaves += 1,
                PullEvent::Array(a) => {
                    arrays += 1;
                    assert_eq!(a.read().unwrap(), ArrayValue::F64(vec![8.0, 9.0, 10.0, 11.0]));
                }
                _ => {}
            }
        }
        assert_eq!((leaves, arrays), (1, 1));
    }

    #[test]
    fn oversized_part_is_refused_before_the_sink() {
        let mut emitted = 0usize;
        let mut sink = FrameSink::new(EncodeOptions::default(), 256, |_| {
            emitted += 1;
            Ok(())
        });
        let err = sink.push(&part(0, 500)).unwrap_err();
        assert!(err.to_string().contains("window"), "{err}");
        drop(sink);
        assert_eq!(emitted, 0);
    }

    #[test]
    fn oversized_declared_frame_is_refused_at_assembly() {
        let mut wire = Vec::new();
        let mut sink = FrameSink::new(EncodeOptions::default(), DEFAULT_WINDOW, |f| {
            wire.extend_from_slice(f);
            Ok(())
        });
        sink.push(&part(0, 2000)).unwrap();
        let mut asm = FrameAssembler::new(256);
        asm.feed(&wire[..64]);
        let err = asm.next_frame().unwrap_err();
        assert!(err.to_string().contains("window"), "{err}");
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_hang() {
        let mut wire = Vec::new();
        let mut sink = FrameSink::new(EncodeOptions::default(), DEFAULT_WINDOW, |f| {
            wire.extend_from_slice(f);
            Ok(())
        });
        sink.push(&part(0, 20)).unwrap();
        let mut asm = FrameAssembler::new(DEFAULT_WINDOW);
        asm.feed(&wire[..wire.len() / 2]);
        assert!(asm.next_frame().unwrap().is_none(), "must wait while open");
        asm.finish();
        assert!(asm.next_frame().is_err(), "must fail once closed");
    }

    #[test]
    fn decode_element_into_refills_in_place() {
        let mut node = Node::Text(String::new());
        for i in 0..4 {
            let bytes = crate::encode_element(&part(i, 16), &EncodeOptions::default()).unwrap();
            decode_element_into(&bytes, &mut node).unwrap();
            match &node {
                Node::Element(e) => assert_eq!(*e, part(i, 16)),
                other => panic!("expected element, got {other:?}"),
            }
        }
    }
}
