//! # BXSA — Binary XML for Scientific Applications
//!
//! The binary serialization of the bXDM model from the HPDC 2006 paper
//! (§4, Figure 2). A BXSA document is a sequence of **frames**, one per
//! bXDM node; container frames embed their children recursively, so the
//! tree structure *is* the embedding structure.
//!
//! Every frame starts with a **common frame prefix**: one byte holding a
//! 2-bit byte-order code (endianness is recorded *per frame*, so a frame
//! can be embedded in a container of different endianness unchanged) and a
//! 6-bit frame-type code, followed by the frame's total size as a
//! variable-length integer. The size field enables **accelerated
//! sequential access** — frames can be skipped without parsing their
//! bodies (see [`scan`]).
//!
//! The payload of an array frame is a naturally-aligned packed run of
//! numbers, so a receiver on a same-endian machine can *view* the data in
//! place with zero copies (see [`scan::array_payload_view`] and the
//! `zero_copy` bench).
//!
//! Namespaces are tokenized: each element frame carries its namespace
//! declarations as a symbol table, and every qualified name refers to the
//! declaring table by *(scope depth, index)* instead of repeating prefix
//! strings (§4.1).
//!
//! ```
//! use bxdm::{Document, Element, AtomicValue, ArrayValue};
//!
//! let doc = Document::with_root(
//!     Element::component("d:set")
//!         .with_namespace("d", "http://example.org/data")
//!         .with_child(Element::leaf("d:count", AtomicValue::I32(3)))
//!         .with_child(Element::array("d:values", ArrayValue::F64(vec![1.0, 2.0, 3.0]))),
//! );
//! let bytes = bxsa::encode(&doc).unwrap();
//! let back = bxsa::decode(&bytes).unwrap();
//! assert_eq!(back, doc);
//! ```

pub mod crc32c;
pub mod decoder;
pub mod encoder;
pub mod error;
pub mod estimate;
pub mod frame;
pub mod pull;
pub mod scan;
pub mod stream;
pub mod transcode;
pub mod typed;
mod wellformed;

pub use decoder::{
    decode, decode_element, decode_element_at, decode_element_into, decode_element_into_with,
    decode_into, decode_into_with, decode_with, DecodeOptions,
};
pub use encoder::{
    encode, encode_element, encode_element_into, encode_into, encode_into_with, encode_with,
    EncodeOptions,
};
pub use error::{BxsaError, BxsaResult};
pub use frame::FrameType;
pub use pull::{ArrayHandle, ElementStart, LeafValue, PullEvent, PullReader};
pub use scan::FrameScanner;
pub use stream::{FrameAssembler, FrameSink, DEFAULT_WINDOW};
pub use transcode::{bxsa_to_xml, xml_to_bxsa};
pub use typed::{ElementHead, FieldReader, FrameWriter, TypedDecl, TypedName};

#[cfg(test)]
mod roundtrip_tests {
    use bxdm::{ArrayValue, AtomicValue, Document, Element, Node};
    use proptest::prelude::*;
    use xbs::ByteOrder;

    use crate::{decode, encode, encode_into, encode_with, EncodeOptions};

    /// Strategy producing arbitrary (namespace-well-formed) bXDM trees.
    fn arb_leaf_value() -> impl Strategy<Value = AtomicValue> {
        prop_oneof![
            any::<i8>().prop_map(AtomicValue::I8),
            any::<u16>().prop_map(AtomicValue::U16),
            any::<i32>().prop_map(AtomicValue::I32),
            any::<i64>().prop_map(AtomicValue::I64),
            any::<f32>().prop_map(AtomicValue::F32),
            any::<f64>().prop_map(AtomicValue::F64),
            "[a-zA-Z0-9 .,;]{0,24}".prop_map(AtomicValue::Str),
            any::<bool>().prop_map(AtomicValue::Bool),
        ]
    }

    fn arb_array_value() -> impl Strategy<Value = ArrayValue> {
        prop_oneof![
            proptest::collection::vec(any::<i32>(), 0..64).prop_map(ArrayValue::I32),
            proptest::collection::vec(any::<f64>(), 0..64).prop_map(ArrayValue::F64),
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(ArrayValue::U8),
            proptest::collection::vec(any::<f32>(), 0..64).prop_map(ArrayValue::F32),
        ]
    }

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,6}"
    }

    fn arb_element(depth: u32) -> impl Strategy<Value = Element> {
        let leaf_like = prop_oneof![
            (arb_name(), arb_leaf_value()).prop_map(|(n, v)| Element::leaf(n.as_str(), v)),
            (arb_name(), arb_array_value()).prop_map(|(n, v)| Element::array(n.as_str(), v)),
            arb_name().prop_map(|n| Element::component(n.as_str())),
        ];
        leaf_like.prop_recursive(depth, 24, 4, |inner| {
            (
                arb_name(),
                proptest::collection::vec(
                    prop_oneof![
                        inner.prop_map(Node::Element),
                        "[a-zA-Z ]{1,10}".prop_map(Node::Text),
                        "[a-zA-Z ]{0,10}".prop_map(Node::Comment),
                    ],
                    0..4,
                ),
                proptest::option::of(("[a-z]{1,4}", "[a-z:/.]{1,12}")),
            )
                .prop_map(|(name, children, ns)| {
                    let mut e = match ns {
                        Some((prefix, uri)) => Element::component(format!("{prefix}:{name}"))
                            .with_namespace(&prefix, &uri),
                        None => Element::component(name.as_str()),
                    };
                    for c in children {
                        e.push_node(c);
                    }
                    e
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn arbitrary_trees_roundtrip(root in arb_element(3)) {
            let doc = Document::with_root(root);
            let bytes = encode(&doc).unwrap();
            let back = decode(&bytes).unwrap();
            prop_assert_eq!(back, doc);
        }

        #[test]
        fn big_endian_roundtrips(root in arb_element(2)) {
            let doc = Document::with_root(root);
            let opts = EncodeOptions { byte_order: ByteOrder::Big, ..Default::default() };
            let bytes = encode_with(&doc, &opts).unwrap();
            let back = decode(&bytes).unwrap();
            prop_assert_eq!(back, doc);
        }

        #[test]
        fn encode_into_matches_encode(root in arb_element(3)) {
            let doc = Document::with_root(root);
            let owned = encode(&doc).unwrap();
            // A dirty, pre-grown buffer must produce identical bytes.
            let mut buf = vec![0xee; 32];
            encode_into(&doc, &mut buf).unwrap();
            prop_assert_eq!(&buf, &owned);
            // And again, reusing the now-larger buffer.
            encode_into(&doc, &mut buf).unwrap();
            prop_assert_eq!(&buf, &owned);
        }

        #[test]
        fn encoding_is_deterministic(root in arb_element(2)) {
            let doc = Document::with_root(root);
            let a = encode(&doc).unwrap();
            let b = encode(&doc).unwrap();
            prop_assert_eq!(a.clone(), b);
            // decode → re-encode is also byte-identical (transcodability
            // prerequisite, paper §4.2).
            let back = decode(&a).unwrap();
            prop_assert_eq!(encode(&back).unwrap(), a);
        }
    }
}
