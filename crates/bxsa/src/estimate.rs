//! Conservative size bounds used to pre-size frame size fields.
//!
//! The encoder writes each frame in a single pass: it reserves the size
//! field *before* the body, then backpatches. The reservation length comes
//! from the upper bounds computed here; they must hold for **any** start
//! offset (alignment padding is bounded by `width - 1` per aligned item)
//! and for any namespace context (references are bounded by their maximum
//! VLS lengths). Over-estimating only costs padded size-field bytes;
//! under-estimating would be a panic in the encoder, and the property
//! tests in `lib.rs` exercise this.

use bxdm::{ArrayValue, AtomicValue, Content, Element, Node};
use xbs::vls::vls_len;
use xbs::TypeCode;

/// Upper bound on an encoded *(scope depth, index)* namespace reference.
const NS_REF_BOUND: usize = 20;

fn str_field(s: &str) -> usize {
    vls_len(s.len() as u64) + s.len()
}

fn atomic_value_bound(v: &AtomicValue) -> usize {
    // 1 byte type code + value (+ worst-case alignment padding).
    1 + match v.type_code() {
        TypeCode::Str => match v {
            AtomicValue::Str(s) => str_field(s),
            _ => unreachable!("Str code implies Str variant"),
        },
        code => {
            let w = code.width().expect("fixed-width code");
            w + (w - 1)
        }
    }
}

fn array_value_bound(a: &ArrayValue) -> usize {
    let w = a
        .type_code()
        .width()
        .expect("array element types are fixed-width");
    // type code + count + padding + payload
    1 + vls_len(a.len() as u64) + (w - 1) + a.len() * w
}

fn element_header_bound(e: &Element) -> usize {
    let mut n = 0;
    // Namespace declaration table.
    n += vls_len(e.namespaces.len() as u64);
    for decl in &e.namespaces {
        n += str_field(decl.prefix.as_deref().unwrap_or(""));
        n += str_field(&decl.uri);
    }
    // Element name reference + local name.
    n += NS_REF_BOUND + str_field(e.name.local());
    // Attributes.
    n += vls_len(e.attributes.len() as u64);
    for attr in &e.attributes {
        n += NS_REF_BOUND + str_field(attr.name.local());
        n += atomic_value_bound(&attr.value);
    }
    n
}

/// Upper bound on an element frame's *body* (no prefix/size field).
pub fn element_body_bound(e: &Element) -> usize {
    let mut n = element_header_bound(e);
    match &e.content {
        Content::Children(children) => {
            n += vls_len(children.len() as u64);
            for child in children {
                n += frame_bound(child);
            }
        }
        Content::Leaf(v) => n += atomic_value_bound(v),
        Content::Array(a) => n += array_value_bound(a),
    }
    n
}

/// Upper bound on a frame *body* (everything after the prefix byte and
/// the size field).
pub fn body_bound(node: &Node) -> usize {
    match node {
        Node::Element(e) => element_body_bound(e),
        Node::Text(t) | Node::Comment(t) => str_field(t),
        Node::Pi { target, data } => str_field(target) + str_field(data),
    }
}

/// The size-field length the encoder will reserve for a body bound:
/// the smallest VLS length that can express any total up to
/// `1 + len + bound`.
pub fn size_field_len(bound: usize) -> usize {
    for len in 1..=xbs::vls::MAX_VLS_LEN {
        let max_total = 1 + len + bound;
        if 7 * len >= 64 || (max_total as u64) >> (7 * len) == 0 {
            return len;
        }
    }
    xbs::vls::MAX_VLS_LEN
}

/// Upper bound on a complete frame (prefix + size field + body).
pub fn frame_bound(node: &Node) -> usize {
    let body = body_bound(node);
    1 + size_field_len(body) + body
}

/// Upper bound on a document frame's body.
pub fn document_body_bound(children: &[Node]) -> usize {
    vls_len(children.len() as u64) + children.iter().map(frame_bound).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::Element;

    #[test]
    fn size_field_len_brackets() {
        assert_eq!(size_field_len(0), 1);
        assert_eq!(size_field_len(100), 1);
        // bound 126: max total = 128 needs 2 bytes
        assert_eq!(size_field_len(126), 2);
        assert_eq!(size_field_len(10_000), 2);
        assert_eq!(size_field_len(2_000_000), 3);
        assert_eq!(size_field_len(100 << 20), 4);
    }

    #[test]
    fn array_bound_scales_with_payload() {
        let small = Node::Element(Element::array("v", ArrayValue::F64(vec![0.0; 10])));
        let big = Node::Element(Element::array("v", ArrayValue::F64(vec![0.0; 1000])));
        assert!(body_bound(&big) - body_bound(&small) >= 990 * 8);
    }

    #[test]
    fn leaf_str_bound_is_exactish() {
        let n = Node::Element(Element::leaf("s", AtomicValue::Str("abc".into())));
        // header: nsdecls(1) + ref(20) + name(1+1) + attrs(1); value: code(1)+len(1)+3
        assert_eq!(body_bound(&n), 1 + 20 + 2 + 1 + 1 + 1 + 3);
    }

    #[test]
    fn nested_component_bounds_compose() {
        let inner = Element::leaf("x", AtomicValue::I32(1));
        let outer = Node::Element(Element::component("o").with_child(inner.clone()));
        let inner_frame = frame_bound(&Node::Element(inner));
        assert!(body_bound(&outer) > inner_frame);
    }
}
