//! Conservative size bounds used to pre-size frame size fields.
//!
//! The encoder writes each frame in a single pass: it reserves the size
//! field *before* the body, then backpatches. The reservation length comes
//! from the upper bounds computed here; they must hold for **any** start
//! offset (alignment padding is bounded by `width - 1` per aligned item)
//! and for any namespace context (references are bounded by their maximum
//! VLS lengths). Over-estimating only costs padded size-field bytes;
//! under-estimating would be a panic in the encoder, and the property
//! tests in `lib.rs` exercise this.

use bxdm::{ArrayValue, AtomicValue, Content, Element, Node};
use xbs::vls::vls_len;
use xbs::TypeCode;

/// Upper bound on an encoded *(scope depth, index)* namespace reference.
pub const NS_REF_BOUND: usize = 20;

/// Exact size of a length-prefixed string field (VLS length + bytes).
pub fn str_field(s: &str) -> usize {
    vls_len(s.len() as u64) + s.len()
}

/// Upper bound on an encoded atomic value (type-code byte + value, plus
/// worst-case alignment padding for fixed-width values). `str_len` is
/// consulted only when `code` is [`TypeCode::Str`].
pub fn atomic_bound(code: TypeCode, str_len: usize) -> usize {
    1 + match code.width() {
        Some(w) => w + (w - 1),
        None if code == TypeCode::Str => vls_len(str_len as u64) + str_len,
        None => 1, // Bool: one raw byte
    }
}

/// Exact upper bound on an encoded packed-array value: type-code byte,
/// VLS element count, worst-case alignment padding, payload.
///
/// # Panics
/// Panics if `code` is not a fixed-width numeric type (arrays of strings
/// or booleans do not exist in the bXDM model).
pub fn packed_array_bound(code: TypeCode, len: usize) -> usize {
    let w = code.width().expect("array element types are fixed-width");
    1 + vls_len(len as u64) + (w - 1) + len * w
}

/// Upper bound on the header of an *attribute-free* element frame body:
/// namespace table, name reference, local name, and the (zero) attribute
/// count. This is the shape every typed ([`crate::typed`]) element has;
/// it matches what [`element_body_bound`] computes for the equivalent
/// tree element, so typed and tree encodes reserve identically sized
/// frame size fields — a prerequisite for byte-for-byte equality.
pub fn plain_element_header_bound(local: &str, decls: &[(Option<&str>, &str)]) -> usize {
    let mut n = vls_len(decls.len() as u64);
    for (prefix, uri) in decls {
        n += str_field(prefix.unwrap_or(""));
        n += str_field(uri);
    }
    n + NS_REF_BOUND + str_field(local) + vls_len(0)
}

/// Upper bound on the body of an attribute-free leaf element frame.
pub fn plain_leaf_body_bound(
    local: &str,
    decls: &[(Option<&str>, &str)],
    code: TypeCode,
    str_len: usize,
) -> usize {
    plain_element_header_bound(local, decls) + atomic_bound(code, str_len)
}

/// Upper bound on the body of an attribute-free packed-array element
/// frame.
pub fn plain_array_body_bound(
    local: &str,
    decls: &[(Option<&str>, &str)],
    code: TypeCode,
    len: usize,
) -> usize {
    plain_element_header_bound(local, decls) + packed_array_bound(code, len)
}

/// Upper bound on the body of an attribute-free component element frame,
/// given the summed [`framed`] bounds of its children.
pub fn plain_component_body_bound(
    local: &str,
    decls: &[(Option<&str>, &str)],
    child_count: usize,
    children_frames_bound: usize,
) -> usize {
    plain_element_header_bound(local, decls) + vls_len(child_count as u64) + children_frames_bound
}

/// Upper bound on a complete frame given its body bound: prefix byte +
/// size field + body.
pub fn framed(body_bound: usize) -> usize {
    1 + size_field_len(body_bound) + body_bound
}

fn atomic_value_bound(v: &AtomicValue) -> usize {
    // 1 byte type code + value (+ worst-case alignment padding).
    1 + match v.type_code() {
        TypeCode::Str => match v {
            AtomicValue::Str(s) => str_field(s),
            _ => unreachable!("Str code implies Str variant"),
        },
        code => {
            let w = code.width().expect("fixed-width code");
            w + (w - 1)
        }
    }
}

fn array_value_bound(a: &ArrayValue) -> usize {
    let w = a
        .type_code()
        .width()
        .expect("array element types are fixed-width");
    // type code + count + padding + payload
    1 + vls_len(a.len() as u64) + (w - 1) + a.len() * w
}

fn element_header_bound(e: &Element) -> usize {
    let mut n = 0;
    // Namespace declaration table.
    n += vls_len(e.namespaces.len() as u64);
    for decl in &e.namespaces {
        n += str_field(decl.prefix.as_deref().unwrap_or(""));
        n += str_field(&decl.uri);
    }
    // Element name reference + local name.
    n += NS_REF_BOUND + str_field(e.name.local());
    // Attributes.
    n += vls_len(e.attributes.len() as u64);
    for attr in &e.attributes {
        n += NS_REF_BOUND + str_field(attr.name.local());
        n += atomic_value_bound(&attr.value);
    }
    n
}

/// Upper bound on an element frame's *body* (no prefix/size field).
pub fn element_body_bound(e: &Element) -> usize {
    let mut n = element_header_bound(e);
    match &e.content {
        Content::Children(children) => {
            n += vls_len(children.len() as u64);
            for child in children {
                n += frame_bound(child);
            }
        }
        Content::Leaf(v) => n += atomic_value_bound(v),
        Content::Array(a) => n += array_value_bound(a),
    }
    n
}

/// Upper bound on a frame *body* (everything after the prefix byte and
/// the size field).
pub fn body_bound(node: &Node) -> usize {
    match node {
        Node::Element(e) => element_body_bound(e),
        Node::Text(t) | Node::Comment(t) => str_field(t),
        Node::Pi { target, data } => str_field(target) + str_field(data),
    }
}

/// The size-field length the encoder will reserve for a body bound:
/// the smallest VLS length that can express any total up to
/// `1 + len + bound`.
pub fn size_field_len(bound: usize) -> usize {
    for len in 1..=xbs::vls::MAX_VLS_LEN {
        let max_total = 1 + len + bound;
        if 7 * len >= 64 || (max_total as u64) >> (7 * len) == 0 {
            return len;
        }
    }
    xbs::vls::MAX_VLS_LEN
}

/// Upper bound on a complete frame (prefix + size field + body).
pub fn frame_bound(node: &Node) -> usize {
    framed(body_bound(node))
}

/// Upper bound on a document frame's body.
pub fn document_body_bound(children: &[Node]) -> usize {
    vls_len(children.len() as u64) + children.iter().map(frame_bound).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::Element;

    #[test]
    fn size_field_len_brackets() {
        assert_eq!(size_field_len(0), 1);
        assert_eq!(size_field_len(100), 1);
        // bound 126: max total = 128 needs 2 bytes
        assert_eq!(size_field_len(126), 2);
        assert_eq!(size_field_len(10_000), 2);
        assert_eq!(size_field_len(2_000_000), 3);
        assert_eq!(size_field_len(100 << 20), 4);
    }

    #[test]
    fn array_bound_scales_with_payload() {
        let small = Node::Element(Element::array("v", ArrayValue::F64(vec![0.0; 10])));
        let big = Node::Element(Element::array("v", ArrayValue::F64(vec![0.0; 1000])));
        assert!(body_bound(&big) - body_bound(&small) >= 990 * 8);
    }

    #[test]
    fn leaf_str_bound_is_exactish() {
        let n = Node::Element(Element::leaf("s", AtomicValue::Str("abc".into())));
        // header: nsdecls(1) + ref(20) + name(1+1) + attrs(1); value: code(1)+len(1)+3
        assert_eq!(body_bound(&n), 1 + 20 + 2 + 1 + 1 + 1 + 3);
    }

    /// The typed path's scalar bound helpers must agree exactly with the
    /// tree walker's bounds for the attribute-free shapes typed elements
    /// take, or typed and tree encodes would reserve differently sized
    /// frame size fields and diverge byte-for-byte.
    #[test]
    fn plain_bounds_match_tree_bounds() {
        let decls: &[(Option<&str>, &str)] = &[(Some("d"), "http://example.org/lead")];
        let leaf = Element::leaf("d:count", AtomicValue::I64(7))
            .with_namespace("d", "http://example.org/lead");
        assert_eq!(
            plain_leaf_body_bound("count", decls, TypeCode::I64, 0),
            element_body_bound(&leaf)
        );
        let sleaf = Element::leaf("s", AtomicValue::Str("hello".into()));
        assert_eq!(
            plain_leaf_body_bound("s", &[], TypeCode::Str, 5),
            element_body_bound(&sleaf)
        );
        let arr = Element::array("d:v", ArrayValue::F64(vec![0.5; 321]))
            .with_namespace("d", "http://example.org/lead");
        assert_eq!(
            plain_array_body_bound("v", decls, TypeCode::F64, 321),
            element_body_bound(&arr)
        );
        let comp = Element::component("d:set")
            .with_namespace("d", "http://example.org/lead")
            .with_child(arr.clone())
            .with_child(leaf.clone());
        let children = frame_bound(&Node::Element(arr)) + frame_bound(&Node::Element(leaf));
        assert_eq!(
            plain_component_body_bound("set", decls, 2, children),
            element_body_bound(&comp)
        );
    }

    /// Packed-array frames must never out-grow their estimate (that
    /// would make the encoder's reserved size field too small), and the
    /// estimate must be *tight*: only alignment padding and size-field
    /// slack separate bound from actuality.
    #[test]
    fn packed_array_bound_is_an_exact_upper_bound() {
        for len in [0usize, 1, 7, 1000] {
            let e = Element::array("v", ArrayValue::F64(vec![1.5; len]));
            let node = Node::Element(e.clone());
            let bytes =
                crate::encode_element(&e, &crate::EncodeOptions::default()).expect("encode");
            let bound = frame_bound(&node);
            assert!(
                bytes.len() <= bound,
                "array len {len}: actual {} exceeds bound {bound}",
                bytes.len()
            );
            // Tight: worst-case slack is the 7 alignment-padding bytes
            // the bound charges plus nothing else (the name reference
            // bound NS_REF_BOUND - the 1 byte actually written).
            let slack = bound - bytes.len();
            assert!(
                slack <= NS_REF_BOUND + 7,
                "array len {len}: slack {slack} is not tight"
            );
        }
    }

    #[test]
    fn nested_component_bounds_compose() {
        let inner = Element::leaf("x", AtomicValue::I32(1));
        let outer = Node::Element(Element::component("o").with_child(inner.clone()));
        let inner_frame = frame_bound(&Node::Element(inner));
        assert!(body_bound(&outer) > inner_frame);
    }
}
