//! Naming, registration, and exposition.
//!
//! The registry is the *read* side of the metrics system: instrumented
//! code updates its atomics directly (no lookup, no lock), and the
//! registry holds `{name, labels} → metric` references so a scrape can
//! walk everything. Two registration styles cover the two lifetimes:
//!
//! * `register_*` takes a `&'static` metric — the zero-overhead form
//!   for instrumentation that lives in `static` items;
//! * `counter`/`gauge`/`histogram` get-or-create an [`Arc`]-owned
//!   metric keyed by `(name, labels)` — for per-endpoint families whose
//!   label sets are only known at runtime. Repeated calls with the same
//!   key return the same metric.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A reference to a registered metric: borrowed from a `static`, or
/// shared via `Arc` for dynamically created label sets.
enum MetricRef<T: 'static> {
    Static(&'static T),
    Shared(Arc<T>),
}

impl<T> MetricRef<T> {
    fn get(&self) -> &T {
        match self {
            MetricRef::Static(m) => m,
            MetricRef::Shared(m) => m,
        }
    }
}

enum Instrument {
    Counter(MetricRef<Counter>),
    Gauge(MetricRef<Gauge>),
    Histogram(MetricRef<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// One `(labels, metric)` row of a family.
struct Row {
    /// Rendered label block, `{a="b",c="d"}` or `""`.
    labels: String,
    instrument: Instrument,
}

/// All rows sharing one metric name (one `# TYPE` block).
struct Family {
    name: String,
    help: String,
    rows: Vec<Row>,
}

/// A named collection of metrics with Prometheus text exposition.
///
/// `const`-constructible, so it can live in a `static` (see
/// [`crate::global`]). All methods take `&self`; the interior mutex
/// guards only the registration table, never the hot-path atomics. A
/// panic while the table lock is held poisons nothing observable:
/// the registry recovers the inner state and keeps serving.
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// An empty registry (usable in `static` items).
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            families: Mutex::new(Vec::new()),
        }
    }

    fn table(&self) -> MutexGuard<'_, Vec<Family>> {
        // A panicked registrant must not take exposition down with it.
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        instrument: Instrument,
    ) {
        let labels = render_labels(labels);
        let mut families = self.table();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    rows: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        debug_assert!(
            family
                .rows
                .first()
                .is_none_or(|r| r.instrument.kind() == instrument.kind()),
            "metric {name} registered with two kinds"
        );
        match family.rows.iter_mut().find(|r| r.labels == labels) {
            // Same (name, labels) twice: last registration wins, so a
            // re-created dynamic family replaces its row instead of
            // duplicating it.
            Some(row) => row.instrument = instrument,
            None => family.rows.push(Row { labels, instrument }),
        }
    }

    fn get_or_create<T: 'static, F>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        find: F,
        make: impl FnOnce() -> (Arc<T>, Instrument),
        help: &str,
    ) -> Arc<T>
    where
        F: Fn(&Instrument) -> Option<&MetricRef<T>>,
    {
        let rendered = render_labels(labels);
        {
            let families = self.table();
            if let Some(family) = families.iter().find(|f| f.name == name) {
                if let Some(row) = family.rows.iter().find(|r| r.labels == rendered) {
                    if let Some(MetricRef::Shared(existing)) = find(&row.instrument) {
                        return Arc::clone(existing);
                    }
                }
            }
        }
        let (metric, instrument) = make();
        self.insert(name, help, labels, instrument);
        metric
    }

    /// Register a `static` counter under `name` with a fixed label set.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &'static Counter,
    ) {
        self.insert(name, help, labels, Instrument::Counter(MetricRef::Static(counter)));
    }

    /// Register a `static` gauge.
    pub fn register_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        gauge: &'static Gauge,
    ) {
        self.insert(name, help, labels, Instrument::Gauge(MetricRef::Static(gauge)));
    }

    /// Register a `static` histogram.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: &'static Histogram,
    ) {
        self.insert(
            name,
            help,
            labels,
            Instrument::Histogram(MetricRef::Static(histogram)),
        );
    }

    /// The shared counter for `(name, labels)`, created on first use.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_create(
            name,
            labels,
            |i| match i {
                Instrument::Counter(r) => Some(r),
                _ => None,
            },
            || {
                let metric = Arc::new(Counter::new());
                let instrument = Instrument::Counter(MetricRef::Shared(Arc::clone(&metric)));
                (metric, instrument)
            },
            help,
        )
    }

    /// The shared gauge for `(name, labels)`, created on first use.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_create(
            name,
            labels,
            |i| match i {
                Instrument::Gauge(r) => Some(r),
                _ => None,
            },
            || {
                let metric = Arc::new(Gauge::new());
                let instrument = Instrument::Gauge(MetricRef::Shared(Arc::clone(&metric)));
                (metric, instrument)
            },
            help,
        )
    }

    /// The shared histogram for `(name, labels)`, created on first use.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.get_or_create(
            name,
            labels,
            |i| match i {
                Instrument::Histogram(r) => Some(r),
                _ => None,
            },
            || {
                let metric = Arc::new(Histogram::new());
                let instrument = Instrument::Histogram(MetricRef::Shared(Arc::clone(&metric)));
                (metric, instrument)
            },
            help,
        )
    }

    /// Render everything in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// [`render`](MetricsRegistry::render) into a caller-owned buffer.
    pub fn render_into(&self, out: &mut String) {
        let families = self.table();
        for family in families.iter() {
            let Some(kind) = family.rows.first().map(|r| r.instrument.kind()) else {
                continue;
            };
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            }
            let _ = writeln!(out, "# TYPE {} {}", family.name, kind);
            for row in &family.rows {
                match &row.instrument {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", family.name, row.labels, c.get().get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", family.name, row.labels, g.get().get());
                    }
                    Instrument::Histogram(h) => {
                        render_histogram(out, &family.name, &row.labels, &h.get().snapshot());
                    }
                }
            }
        }
    }

    /// A typed point-in-time copy of every registered metric — the
    /// snapshot API for deployments without a scrape port.
    pub fn snapshot(&self) -> Vec<Sample> {
        let families = self.table();
        let mut samples = Vec::new();
        for family in families.iter() {
            for row in &family.rows {
                let value = match &row.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get().get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get().get()),
                    Instrument::Histogram(h) => SampleValue::Histogram(h.get().snapshot()),
                };
                samples.push(Sample {
                    name: family.name.clone(),
                    labels: row.labels.clone(),
                    value,
                });
            }
        }
        samples
    }

    /// The exposition text as an owned string — `render` under the name
    /// the TCP-only deployments and bench binaries use.
    pub fn dump(&self) -> String {
        self.render()
    }

    /// Number of registered metric names.
    pub fn len(&self) -> usize {
        self.table().len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// One metric value in a [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Rendered label block (`{a="b"}` or empty).
    pub labels: String,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// The typed value of a [`Sample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(f64),
    /// A histogram in cumulative-bucket form.
    Histogram(HistogramSnapshot),
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (name, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{name}=\"");
        // Prometheus label-value escaping.
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Append `{labels, le="..."}` histogram rows: non-empty cumulative
/// buckets, a closing `+Inf`, then `_sum` and `_count`.
fn render_histogram(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    // Splice `le` into the existing block: `{a="b"` + `,` + `le="…"}`.
    let open = if labels.is_empty() {
        String::from("{")
    } else {
        format!("{},", &labels[..labels.len() - 1])
    };
    let close = "}";
    let mut wrote_inf = false;
    for &(le, cumulative) in &snap.buckets {
        if le == u64::MAX {
            let _ = writeln!(out, "{name}_bucket{open}le=\"+Inf\"{close} {cumulative}");
            wrote_inf = true;
        } else {
            let _ = writeln!(out, "{name}_bucket{open}le=\"{le}\"{close} {cumulative}");
        }
    }
    if !wrote_inf {
        let _ = writeln!(out, "{name}_bucket{open}le=\"+Inf\"{close} {}", snap.count);
    }
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum);
    let _ = writeln!(out, "{name}_count{labels} {}", snap.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_registration_renders() {
        static REQUESTS: Counter = Counter::new();
        static DEPTH: Gauge = Gauge::new();
        let registry = MetricsRegistry::new();
        registry.register_counter("requests_total", "Requests served.", &[], &REQUESTS);
        registry.register_gauge("queue_depth", "", &[("shard", "0")], &DEPTH);
        REQUESTS.add(3);
        DEPTH.set(7.0);
        let text = registry.render();
        assert!(text.contains("# HELP requests_total Requests served."), "{text}");
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total 3"), "{text}");
        assert!(text.contains("queue_depth{shard=\"0\"} 7"), "{text}");
    }

    #[test]
    fn get_or_create_dedupes_by_name_and_labels() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("hits_total", "h", &[("endpoint", "a")]);
        let a2 = registry.counter("hits_total", "h", &[("endpoint", "a")]);
        let b = registry.counter("hits_total", "h", &[("endpoint", "b")]);
        assert!(Arc::ptr_eq(&a, &a2), "same key must share one counter");
        assert!(!Arc::ptr_eq(&a, &b));
        a.inc();
        a2.inc();
        b.inc();
        let text = registry.render();
        assert!(text.contains("hits_total{endpoint=\"a\"} 2"), "{text}");
        assert!(text.contains("hits_total{endpoint=\"b\"} 1"), "{text}");
        // One TYPE line for the whole family.
        assert_eq!(text.matches("# TYPE hits_total counter").count(), 1);
    }

    #[test]
    fn histogram_exposition_shape() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("latency_nanoseconds", "", &[("transport", "tcp")]);
        h.observe(5); // bucket le=7
        h.observe(5);
        h.observe(1000); // bucket le=1023
        let text = registry.render();
        assert!(
            text.contains("latency_nanoseconds_bucket{transport=\"tcp\",le=\"7\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("latency_nanoseconds_bucket{transport=\"tcp\",le=\"1023\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("latency_nanoseconds_bucket{transport=\"tcp\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("latency_nanoseconds_sum{transport=\"tcp\"} 1010"), "{text}");
        assert!(text.contains("latency_nanoseconds_count{transport=\"tcp\"} 3"), "{text}");
    }

    #[test]
    fn unlabeled_histogram_buckets_still_carry_le() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("latency_nanoseconds", "", &[]);
        h.observe(1);
        let text = registry.render();
        assert!(text.contains("latency_nanoseconds_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("latency_nanoseconds_count 1"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("odd_total", "", &[("path", "a\"b\\c\nd")]);
        c.inc();
        let text = registry.render();
        assert!(text.contains(r#"odd_total{path="a\"b\\c\nd"} 1"#), "{text}");
    }

    #[test]
    fn snapshot_carries_typed_values() {
        static EVENTS: Counter = Counter::new();
        let registry = MetricsRegistry::new();
        registry.register_counter("events_total", "", &[], &EVENTS);
        let g = registry.gauge("level", "", &[]);
        let h = registry.histogram("sizes", "", &[]);
        EVENTS.add(2);
        g.set(-1.5);
        h.observe(100);
        let samples = registry.snapshot();
        assert_eq!(samples.len(), 3);
        assert!(matches!(
            samples.iter().find(|s| s.name == "events_total").unwrap().value,
            SampleValue::Counter(2)
        ));
        assert!(matches!(
            samples.iter().find(|s| s.name == "level").unwrap().value,
            SampleValue::Gauge(v) if v == -1.5
        ));
        match &samples.iter().find(|s| s.name == "sizes").unwrap().value {
            SampleValue::Histogram(snap) => assert_eq!(snap.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn exposition_is_consistent_under_concurrent_writers() {
        // Writers hammer a counter and a histogram while a reader
        // renders repeatedly; every parsed value must be monotone
        // nondecreasing, and the final render must see exact totals.
        let registry = MetricsRegistry::new();
        let c = registry.counter("writes_total", "", &[]);
        let h = registry.histogram("write_sizes", "", &[]);
        let writers = 4u64;
        let per_writer = 20_000u64;
        crossbeam::thread::scope(|s| {
            for _ in 0..writers {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move |_| {
                    for i in 0..per_writer {
                        c.inc();
                        h.observe(i % 64);
                    }
                });
            }
            s.spawn(|_| {
                let mut last_counter = 0u64;
                let mut last_count = 0u64;
                for _ in 0..200 {
                    let text = registry.render();
                    let counter = parse_value(&text, "writes_total ");
                    let count = parse_value(&text, "write_sizes_count ");
                    assert!(counter >= last_counter, "counter went backwards");
                    assert!(count >= last_count, "histogram count went backwards");
                    last_counter = counter;
                    last_count = count;
                }
            });
        })
        .unwrap();
        let text = registry.render();
        assert_eq!(parse_value(&text, "writes_total "), writers * per_writer);
        assert_eq!(parse_value(&text, "write_sizes_count "), writers * per_writer);
    }

    fn parse_value(text: &str, prefix: &str) -> u64 {
        text.lines()
            .find(|l| l.starts_with(prefix))
            .and_then(|l| l[prefix.len()..].trim().parse().ok())
            .unwrap_or(0)
    }
}
