//! The three metric primitives: all plain atomics, all `const`
//! constructible, all safe to share by reference from any thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count.
///
/// `inc`/`add` are single relaxed fetch-adds — no locks, no allocation —
/// so counters can sit directly on per-message hot paths.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` items).
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A value that can go up and down (breaker state, queue depth, rates).
///
/// Stored as `f64` bits in an atomic word; `set` is a store, `add` a CAS
/// loop. Still lock-free and allocation-free.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0` (usable in `static` items).
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Raise the value to `value` if it is higher than the current one —
    /// a lock-free high-watermark (e.g. the largest streaming window a
    /// connection ever buffered). Concurrent racers keep the true max.
    pub fn record_max(&self, value: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(current) >= value {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// Number of log₂ buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log-bucketed histogram of `u64` observations.
///
/// Bucket `i` counts values whose bit length is `i` — value `0` lands in
/// bucket 0, values in `[2^(i-1), 2^i)` in bucket `i`, and everything
/// with 63 or more significant bits in the final bucket. One relaxed
/// fetch-add per observation (plus one for the running sum): the bucket
/// index is a `leading_zeros`, so observing costs no division, no float
/// math, no allocation.
///
/// Durations are recorded in nanoseconds via
/// [`observe_duration`](Histogram::observe_duration); metric names carry
/// a `_nanoseconds` suffix to say so.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram (usable in `static` items).
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let index = (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration, in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The inclusive upper bound of bucket `index` (`u64::MAX` stands in
    /// for `+Inf` on the final bucket).
    pub fn upper_bound(index: usize) -> u64 {
        if index >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// A point-in-time copy. Buckets are read in order with relaxed
    /// loads, so under concurrent writers the snapshot is a *consistent
    /// lower bound*: every cumulative count is ≤ the true count at the
    /// moment the snapshot finished, and cumulative counts are monotone
    /// across buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                buckets.push((Histogram::upper_bound(i), cumulative));
            }
        }
        HistogramSnapshot {
            count: cumulative,
            sum: self.sum(),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A point-in-time copy of a [`Histogram`], in cumulative
/// (Prometheus-`le`) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(upper_bound, cumulative_count)` for each non-empty bucket, in
    /// ascending bound order (`u64::MAX` = `+Inf`).
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (`0.0..=1.0`): rank `ceil(q·count)`
    /// lands in some bucket, and the estimate interpolates linearly
    /// between that bucket's lower and upper value edges by where the
    /// rank sits among the bucket's own observations (the same
    /// assumption Prometheus's `histogram_quantile` makes).
    ///
    /// Compared to reporting the raw upper bound — which with log₂
    /// buckets over-reports by up to 2× — interpolation keeps median and
    /// tail figures honest enough to difference between benchmark runs.
    /// The `+Inf` bucket cannot be interpolated into; a rank landing
    /// there reports the highest finite bound seen instead. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut prev_cumulative = 0u64;
        let mut prev_bound = None;
        for &(bound, cumulative) in &self.buckets {
            if cumulative >= rank {
                if bound == u64::MAX {
                    return prev_bound.unwrap_or(u64::MAX);
                }
                // Bucket `le 2^k−1` holds values in [2^(k−1), 2^k−1]:
                // its value-space floor follows from the bound alone.
                let lower = if bound == 0 { 0 } else { (bound >> 1) + 1 };
                // Non-empty bucket and prev_cumulative < rank ≤
                // cumulative, so both divisor and numerator are ≥ 1.
                let f = (rank - prev_cumulative) as f64 / (cumulative - prev_cumulative) as f64;
                return lower + (f * (bound - lower) as f64).round() as u64;
            }
            prev_cumulative = cumulative;
            prev_bound = Some(bound);
        }
        self.buckets.last().map(|&(bound, _)| bound).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_exactly_across_threads() {
        static HAMMERED: Counter = Counter::new();
        let threads = 8;
        let per_thread = 100_000u64;
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    for _ in 0..per_thread {
                        HAMMERED.inc();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(HAMMERED.get(), threads * per_thread);
    }

    #[test]
    fn counter_add_and_get() {
        let c = Counter::new();
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn gauge_add_is_atomic_across_threads() {
        let g = Gauge::new();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..10_000 {
                        g.add(1.0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(g.get(), 40_000.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new();
        // 0 → bucket 0 (le 0); 1 → bucket 1 (le 1); 2,3 → bucket 2
        // (le 3); 1024 → bucket 11 (le 2047).
        for v in [0u64, 1, 2, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 0u64.wrapping_add(1 + 2 + 3 + 1024).wrapping_add(u64::MAX));
        let bounds: Vec<u64> = snap.buckets.iter().map(|&(le, _)| le).collect();
        assert_eq!(bounds, vec![0, 1, 3, 2047, u64::MAX]);
        // Cumulative counts are monotone and end at the total.
        let counts: Vec<u64> = snap.buckets.iter().map(|&(_, n)| n).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), 6);
    }

    #[test]
    fn histogram_exact_totals_across_threads() {
        static HAMMERED: Histogram = Histogram::new();
        let threads = 8u64;
        let per_thread = 50_000u64;
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    for i in 0..per_thread {
                        HAMMERED.observe(i % 1000);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(HAMMERED.count(), threads * per_thread);
        let per_thread_sum: u64 = (0..per_thread).map(|i| i % 1000).sum();
        assert_eq!(HAMMERED.sum(), threads * per_thread_sum);
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let h = Histogram::new();
        // 90 fast observations and 10 slow ones: p50 is in the fast
        // bucket, p99 in the slow one.
        for _ in 0..90 {
            h.observe(100); // bucket le 127, value floor 64
        }
        for _ in 0..10 {
            h.observe(1_000_000); // bucket le 2^20 - 1, value floor 2^19
        }
        let snap = h.snapshot();
        // Interpolated within [64, 127]: rank 50 of 90 → 64 + ⌈...⌉ ≈ 99.
        assert_eq!(snap.quantile(0.5), 99);
        // Rank 90 of 90 sits on the bucket's upper edge.
        assert_eq!(snap.quantile(0.9), 127);
        // Rank 99: 9 of the 10 slow observations → 2^19 + 0.9·(2^20−1−2^19).
        assert_eq!(snap.quantile(0.99), 996_146);
        assert_eq!(snap.quantile(1.0), (1 << 20) - 1);
        assert_eq!(HistogramSnapshot { count: 0, sum: 0, buckets: vec![] }.quantile(0.5), 0);
    }

    #[test]
    fn quantile_in_the_inf_bucket_reports_the_last_finite_bound() {
        let h = Histogram::new();
        for _ in 0..9 {
            h.observe(100); // le 127
        }
        h.observe(u64::MAX); // +Inf bucket
        let snap = h.snapshot();
        assert_eq!(snap.quantile(1.0), 127, "+Inf cannot be interpolated");
        // All mass in +Inf: nothing finite to report.
        let h = Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.snapshot().quantile(0.5), u64::MAX);
    }

    #[test]
    fn duration_observation_lands_in_a_plausible_bucket() {
        let h = Histogram::new();
        h.observe_duration(Duration::from_micros(10)); // 10_000 ns → bucket 14
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.buckets[0].0, (1 << 14) - 1);
    }
}
