//! # obs — lock-free metrics and Prometheus-style exposition
//!
//! The paper's whole argument is quantitative: Figs. 4–6 and Table 1
//! exist because every layer of the stack was measurable. This crate
//! gives the reproduction the same property at runtime. Three primitives
//! — [`Counter`], [`Gauge`], and a log-bucketed [`Histogram`] — are
//! plain atomics, safe to hammer from any thread, and cheap enough to
//! sit on the per-message hot path (one relaxed atomic RMW per event,
//! zero heap traffic; the `bench` crate's alloc-counter gate checks
//! this).
//!
//! A [`MetricsRegistry`] names the primitives for exposition. It is
//! *static-friendly*: every constructor is `const`, so metrics live in
//! `static` items and instrumented code pays no registry lookup — the
//! registry only holds references for the scrape path. Dynamic,
//! per-label-set metrics (e.g. one breaker gauge per endpoint) are
//! created through the registry's get-or-create accessors and shared
//! via [`Arc`](std::sync::Arc).
//!
//! Exposition is Prometheus text format ([`MetricsRegistry::render`])
//! for the HTTP `/metrics` handler, plus a typed
//! [`MetricsRegistry::snapshot`] and a [`MetricsRegistry::dump`] string
//! for TCP-only deployments and the bench binaries, which have no
//! scrape port.
//!
//! One process-wide default registry is available via [`global()`]; the
//! transport and soap crates register their instrumentation there.

mod metrics;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricsRegistry, Sample, SampleValue};

/// The process-wide default registry. The stack's built-in
/// instrumentation (engine, breaker, servers, pools) registers here, so
/// one scrape of `global().render()` sees every layer.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry::new();
    &GLOBAL
}

/// Shorthand for `global().dump()` — the snapshot string for deployments
/// without a scrape port.
pub fn dump() -> String {
    global().dump()
}
