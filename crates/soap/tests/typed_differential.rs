//! Differential property tests for the typed fast path.
//!
//! The [`soap::ToBxsa`]/[`soap::FromBxsa`] contract is that typed codecs
//! are *invisible on the wire*: for any message shape they must produce
//! exactly the bytes the generic tree pipeline produces, and recover
//! exactly the values the tree pipeline would. These tests check that
//! over randomly generated messages covering every `xbs::TypeCode` —
//! every numeric leaf and packed-array type, strings, booleans — plus
//! the deterministic edge cases that property generators hit rarely:
//! empty arrays, NaN/±Inf floats, and maximum-length element names.

use std::sync::OnceLock;

use bxdm::{ArrayValue, AtomicValue, Element};
use bxsa::estimate::{framed, plain_array_body_bound, plain_component_body_bound,
    plain_leaf_body_bound};
use bxsa::{ElementHead, EncodeOptions, FieldReader, FrameWriter, TypedName};
use proptest::prelude::*;
use soap::{
    BxsaEncoding, EncodingPolicy, FromBxsa, SoapEnvelope, SoapError, SoapResult, ToBxsa,
    TypedDecode, TypedEncoding, TypedScratch, XmlEncoding,
};
use xbs::{ByteOrder, TypeCode};
use xmltext::{XmlFieldReader, XmlFieldWriter, XmlHead, XmlItem};

const MSG_NS: &str = "http://example.org/differential";
const MSG_DECLS: [(Option<&str>, &str); 1] = [(Some("t"), MSG_NS)];

/// The name pool fields draw from. Entry 0 is the longest name the test
/// exercises (255 characters — names travel as VLS-prefixed strings, so
/// nothing structural changes past one byte of length, but the length
/// byte boundary at 2^7 is worth crossing).
fn name_pool() -> &'static [&'static str] {
    static POOL: OnceLock<Vec<&'static str>> = OnceLock::new();
    POOL.get_or_init(|| {
        vec![
            Box::leak("q".repeat(255).into_boxed_str()),
            "a",
            "field",
            "x0",
            "payload",
            "deeplynested",
        ]
    })
}

/// One body-entry child: every TypeCode as a leaf, every numeric
/// TypeCode as a packed array.
#[derive(Debug, Clone)]
enum Val {
    I8(i8),
    U8(u8),
    I16(i16),
    U16(u16),
    I32(i32),
    U32(u32),
    I64(i64),
    U64(u64),
    F32(f32),
    F64(f64),
    Bool(bool),
    Str(String),
    AI8(Vec<i8>),
    AU8(Vec<u8>),
    AI16(Vec<i16>),
    AU16(Vec<u16>),
    AI32(Vec<i32>),
    AU32(Vec<u32>),
    AI64(Vec<i64>),
    AU64(Vec<u64>),
    AF32(Vec<f32>),
    AF64(Vec<f64>),
}

impl Val {
    fn body_bound(&self, local: &str) -> usize {
        match self {
            Val::I8(_) => plain_leaf_body_bound(local, &[], TypeCode::I8, 0),
            Val::U8(_) => plain_leaf_body_bound(local, &[], TypeCode::U8, 0),
            Val::I16(_) => plain_leaf_body_bound(local, &[], TypeCode::I16, 0),
            Val::U16(_) => plain_leaf_body_bound(local, &[], TypeCode::U16, 0),
            Val::I32(_) => plain_leaf_body_bound(local, &[], TypeCode::I32, 0),
            Val::U32(_) => plain_leaf_body_bound(local, &[], TypeCode::U32, 0),
            Val::I64(_) => plain_leaf_body_bound(local, &[], TypeCode::I64, 0),
            Val::U64(_) => plain_leaf_body_bound(local, &[], TypeCode::U64, 0),
            Val::F32(_) => plain_leaf_body_bound(local, &[], TypeCode::F32, 0),
            Val::F64(_) => plain_leaf_body_bound(local, &[], TypeCode::F64, 0),
            Val::Bool(_) => plain_leaf_body_bound(local, &[], TypeCode::Bool, 0),
            Val::Str(s) => plain_leaf_body_bound(local, &[], TypeCode::Str, s.len()),
            Val::AI8(v) => plain_array_body_bound(local, &[], TypeCode::I8, v.len()),
            Val::AU8(v) => plain_array_body_bound(local, &[], TypeCode::U8, v.len()),
            Val::AI16(v) => plain_array_body_bound(local, &[], TypeCode::I16, v.len()),
            Val::AU16(v) => plain_array_body_bound(local, &[], TypeCode::U16, v.len()),
            Val::AI32(v) => plain_array_body_bound(local, &[], TypeCode::I32, v.len()),
            Val::AU32(v) => plain_array_body_bound(local, &[], TypeCode::U32, v.len()),
            Val::AI64(v) => plain_array_body_bound(local, &[], TypeCode::I64, v.len()),
            Val::AU64(v) => plain_array_body_bound(local, &[], TypeCode::U64, v.len()),
            Val::AF32(v) => plain_array_body_bound(local, &[], TypeCode::F32, v.len()),
            Val::AF64(v) => plain_array_body_bound(local, &[], TypeCode::F64, v.len()),
        }
    }

    fn encode_bxsa(&self, w: &mut FrameWriter, name: TypedName) -> SoapResult<()> {
        match self {
            Val::I8(v) => w.leaf(name, &[], *v)?,
            Val::U8(v) => w.leaf(name, &[], *v)?,
            Val::I16(v) => w.leaf(name, &[], *v)?,
            Val::U16(v) => w.leaf(name, &[], *v)?,
            Val::I32(v) => w.leaf(name, &[], *v)?,
            Val::U32(v) => w.leaf(name, &[], *v)?,
            Val::I64(v) => w.leaf(name, &[], *v)?,
            Val::U64(v) => w.leaf(name, &[], *v)?,
            Val::F32(v) => w.leaf(name, &[], *v)?,
            Val::F64(v) => w.leaf(name, &[], *v)?,
            Val::Bool(v) => w.leaf_bool(name, &[], *v)?,
            Val::Str(s) => w.leaf_str(name, &[], s)?,
            Val::AI8(v) => w.array(name, &[], v)?,
            Val::AU8(v) => w.array(name, &[], v)?,
            Val::AI16(v) => w.array(name, &[], v)?,
            Val::AU16(v) => w.array(name, &[], v)?,
            Val::AI32(v) => w.array(name, &[], v)?,
            Val::AU32(v) => w.array(name, &[], v)?,
            Val::AI64(v) => w.array(name, &[], v)?,
            Val::AU64(v) => w.array(name, &[], v)?,
            Val::AF32(v) => w.array(name, &[], v)?,
            Val::AF64(v) => w.array(name, &[], v)?,
        }
        Ok(())
    }

    fn encode_xml(&self, w: &mut XmlFieldWriter<'_>, qname: &str) {
        match self {
            Val::I8(v) => w.leaf(qname, &[], *v),
            Val::U8(v) => w.leaf(qname, &[], *v),
            Val::I16(v) => w.leaf(qname, &[], *v),
            Val::U16(v) => w.leaf(qname, &[], *v),
            Val::I32(v) => w.leaf(qname, &[], *v),
            Val::U32(v) => w.leaf(qname, &[], *v),
            Val::I64(v) => w.leaf(qname, &[], *v),
            Val::U64(v) => w.leaf(qname, &[], *v),
            Val::F32(v) => w.leaf(qname, &[], *v),
            Val::F64(v) => w.leaf(qname, &[], *v),
            Val::Bool(v) => w.leaf_bool(qname, &[], *v),
            Val::Str(s) => w.leaf_str(qname, &[], s),
            Val::AI8(v) => w.array(qname, &[], v),
            Val::AU8(v) => w.array(qname, &[], v),
            Val::AI16(v) => w.array(qname, &[], v),
            Val::AU16(v) => w.array(qname, &[], v),
            Val::AI32(v) => w.array(qname, &[], v),
            Val::AU32(v) => w.array(qname, &[], v),
            Val::AI64(v) => w.array(qname, &[], v),
            Val::AU64(v) => w.array(qname, &[], v),
            Val::AF32(v) => w.array(qname, &[], v),
            Val::AF64(v) => w.array(qname, &[], v),
        }
    }

    fn tree_element(&self, qname: &str) -> Element {
        match self {
            Val::I8(v) => Element::leaf(qname, AtomicValue::I8(*v)),
            Val::U8(v) => Element::leaf(qname, AtomicValue::U8(*v)),
            Val::I16(v) => Element::leaf(qname, AtomicValue::I16(*v)),
            Val::U16(v) => Element::leaf(qname, AtomicValue::U16(*v)),
            Val::I32(v) => Element::leaf(qname, AtomicValue::I32(*v)),
            Val::U32(v) => Element::leaf(qname, AtomicValue::U32(*v)),
            Val::I64(v) => Element::leaf(qname, AtomicValue::I64(*v)),
            Val::U64(v) => Element::leaf(qname, AtomicValue::U64(*v)),
            Val::F32(v) => Element::leaf(qname, AtomicValue::F32(*v)),
            Val::F64(v) => Element::leaf(qname, AtomicValue::F64(*v)),
            Val::Bool(v) => Element::leaf(qname, AtomicValue::Bool(*v)),
            Val::Str(s) => Element::leaf(qname, AtomicValue::Str(s.clone())),
            Val::AI8(v) => Element::array(qname, ArrayValue::I8(v.clone())),
            Val::AU8(v) => Element::array(qname, ArrayValue::U8(v.clone())),
            Val::AI16(v) => Element::array(qname, ArrayValue::I16(v.clone())),
            Val::AU16(v) => Element::array(qname, ArrayValue::U16(v.clone())),
            Val::AI32(v) => Element::array(qname, ArrayValue::I32(v.clone())),
            Val::AU32(v) => Element::array(qname, ArrayValue::U32(v.clone())),
            Val::AI64(v) => Element::array(qname, ArrayValue::I64(v.clone())),
            Val::AU64(v) => Element::array(qname, ArrayValue::U64(v.clone())),
            Val::AF32(v) => Element::array(qname, ArrayValue::F32(v.clone())),
            Val::AF64(v) => Element::array(qname, ArrayValue::F64(v.clone())),
        }
    }

    /// Clear values, keep the shape — the starting point for a
    /// clear-and-refill decode.
    fn zero(&mut self) {
        match self {
            Val::I8(v) => *v = 0,
            Val::U8(v) => *v = 0,
            Val::I16(v) => *v = 0,
            Val::U16(v) => *v = 0,
            Val::I32(v) => *v = 0,
            Val::U32(v) => *v = 0,
            Val::I64(v) => *v = 0,
            Val::U64(v) => *v = 0,
            Val::F32(v) => *v = 0.0,
            Val::F64(v) => *v = 0.0,
            Val::Bool(v) => *v = false,
            Val::Str(s) => s.clear(),
            Val::AI8(v) => v.clear(),
            Val::AU8(v) => v.clear(),
            Val::AI16(v) => v.clear(),
            Val::AU16(v) => v.clear(),
            Val::AI32(v) => v.clear(),
            Val::AU32(v) => v.clear(),
            Val::AI64(v) => v.clear(),
            Val::AU64(v) => v.clear(),
            Val::AF32(v) => v.clear(),
            Val::AF64(v) => v.clear(),
        }
    }

    fn decode_bxsa<'a>(
        &mut self,
        r: &mut FieldReader<'a>,
        head: &ElementHead<'a>,
    ) -> SoapResult<()> {
        match self {
            Val::I8(v) => *v = r.read_value(head)?,
            Val::U8(v) => *v = r.read_value(head)?,
            Val::I16(v) => *v = r.read_value(head)?,
            Val::U16(v) => *v = r.read_value(head)?,
            Val::I32(v) => *v = r.read_value(head)?,
            Val::U32(v) => *v = r.read_value(head)?,
            Val::I64(v) => *v = r.read_value(head)?,
            Val::U64(v) => *v = r.read_value(head)?,
            Val::F32(v) => *v = r.read_value(head)?,
            Val::F64(v) => *v = r.read_value(head)?,
            Val::Bool(v) => *v = r.read_bool(head)?,
            Val::Str(s) => {
                s.clear();
                s.push_str(r.read_str(head)?);
            }
            Val::AI8(v) => r.read_array_into(head, v)?,
            Val::AU8(v) => r.read_array_into(head, v)?,
            Val::AI16(v) => r.read_array_into(head, v)?,
            Val::AU16(v) => r.read_array_into(head, v)?,
            Val::AI32(v) => r.read_array_into(head, v)?,
            Val::AU32(v) => r.read_array_into(head, v)?,
            Val::AI64(v) => r.read_array_into(head, v)?,
            Val::AU64(v) => r.read_array_into(head, v)?,
            Val::AF32(v) => r.read_array_into(head, v)?,
            Val::AF64(v) => r.read_array_into(head, v)?,
        }
        Ok(())
    }

    fn decode_xml<'a>(
        &mut self,
        r: &mut XmlFieldReader<'a>,
        head: &XmlHead<'a>,
    ) -> SoapResult<()> {
        match self {
            Val::I8(v) => *v = r.leaf_value(head)?,
            Val::U8(v) => *v = r.leaf_value(head)?,
            Val::I16(v) => *v = r.leaf_value(head)?,
            Val::U16(v) => *v = r.leaf_value(head)?,
            Val::I32(v) => *v = r.leaf_value(head)?,
            Val::U32(v) => *v = r.leaf_value(head)?,
            Val::I64(v) => *v = r.leaf_value(head)?,
            Val::U64(v) => *v = r.leaf_value(head)?,
            Val::F32(v) => *v = r.leaf_value(head)?,
            Val::F64(v) => *v = r.leaf_value(head)?,
            Val::Bool(v) => *v = r.leaf_bool(head)?,
            Val::Str(s) => r.leaf_str_into(head, s)?,
            Val::AI8(v) => r.array_into(head, v)?,
            Val::AU8(v) => r.array_into(head, v)?,
            Val::AI16(v) => r.array_into(head, v)?,
            Val::AU16(v) => r.array_into(head, v)?,
            Val::AI32(v) => r.array_into(head, v)?,
            Val::AU32(v) => r.array_into(head, v)?,
            Val::AI64(v) => r.array_into(head, v)?,
            Val::AU64(v) => r.array_into(head, v)?,
            Val::AF32(v) => r.array_into(head, v)?,
            Val::AF64(v) => r.array_into(head, v)?,
        }
        Ok(())
    }

    /// A bit-exact fingerprint: floats by their raw bits, so NaN
    /// payloads count.
    fn fingerprint(&self, out: &mut Vec<u8>) {
        match self {
            Val::I8(v) => out.extend(v.to_le_bytes()),
            Val::U8(v) => out.extend(v.to_le_bytes()),
            Val::I16(v) => out.extend(v.to_le_bytes()),
            Val::U16(v) => out.extend(v.to_le_bytes()),
            Val::I32(v) => out.extend(v.to_le_bytes()),
            Val::U32(v) => out.extend(v.to_le_bytes()),
            Val::I64(v) => out.extend(v.to_le_bytes()),
            Val::U64(v) => out.extend(v.to_le_bytes()),
            Val::F32(v) => out.extend(v.to_bits().to_le_bytes()),
            Val::F64(v) => out.extend(v.to_bits().to_le_bytes()),
            Val::Bool(v) => out.push(*v as u8),
            Val::Str(s) => out.extend(s.as_bytes()),
            Val::AI8(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
            Val::AU8(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
            Val::AI16(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
            Val::AU16(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
            Val::AI32(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
            Val::AU32(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
            Val::AI64(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
            Val::AU64(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
            Val::AF32(v) => v.iter().for_each(|x| out.extend(x.to_bits().to_le_bytes())),
            Val::AF64(v) => v.iter().for_each(|x| out.extend(x.to_bits().to_le_bytes())),
        }
        out.push(0xFE); // field separator
    }

    /// Textual XML canonicalizes non-finite floats to `NaN`/`INF`, so
    /// NaN payload bits do not survive that wire (the paper's stated
    /// exception). Collapse them before comparing an XML decode.
    fn canonicalize_nans(&mut self) {
        match self {
            Val::F32(v) if v.is_nan() => *v = f32::NAN,
            Val::F64(v) if v.is_nan() => *v = f64::NAN,
            Val::AF32(v) => v.iter_mut().filter(|x| x.is_nan()).for_each(|x| *x = f32::NAN),
            Val::AF64(v) => v.iter_mut().filter(|x| x.is_nan()).for_each(|x| *x = f64::NAN),
            _ => {}
        }
    }
}

/// A message of arbitrary shape. Fields carry their name (from the
/// static pool, so `TypedName` can borrow it) and pre-rendered
/// qualified name.
#[derive(Debug, Clone, Default)]
struct DynMsg {
    fields: Vec<(&'static str, String, Val)>,
}

impl DynMsg {
    fn new(fields: Vec<(&'static str, Val)>) -> DynMsg {
        DynMsg {
            fields: fields
                .into_iter()
                .map(|(local, val)| (local, format!("t:{local}"), val))
                .collect(),
        }
    }

    fn tree(&self) -> Element {
        let mut root = Element::component("t:Msg").with_namespace("t", MSG_NS);
        for (_, qname, val) in &self.fields {
            root = root.with_child(val.tree_element(qname));
        }
        root
    }

    fn fingerprint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (_, _, val) in &self.fields {
            out.extend(val.fingerprint_name_bytes());
            val.fingerprint(&mut out);
        }
        out
    }
}

impl Val {
    /// Variant discriminant for the fingerprint, so a decode that
    /// somehow swapped two same-width fields cannot collide.
    fn fingerprint_name_bytes(&self) -> [u8; 1] {
        [match self {
            Val::I8(_) => 0,
            Val::U8(_) => 1,
            Val::I16(_) => 2,
            Val::U16(_) => 3,
            Val::I32(_) => 4,
            Val::U32(_) => 5,
            Val::I64(_) => 6,
            Val::U64(_) => 7,
            Val::F32(_) => 8,
            Val::F64(_) => 9,
            Val::Bool(_) => 10,
            Val::Str(_) => 11,
            Val::AI8(_) => 12,
            Val::AU8(_) => 13,
            Val::AI16(_) => 14,
            Val::AU16(_) => 15,
            Val::AI32(_) => 16,
            Val::AU32(_) => 17,
            Val::AI64(_) => 18,
            Val::AU64(_) => 19,
            Val::AF32(_) => 20,
            Val::AF64(_) => 21,
        }]
    }
}

impl ToBxsa for DynMsg {
    fn element_name(&self) -> TypedName {
        TypedName::new(Some("t"), "Msg")
    }

    fn bxsa_body_bound(&self) -> usize {
        let children: usize = self
            .fields
            .iter()
            .map(|(local, _, val)| framed(val.body_bound(local)))
            .sum();
        plain_component_body_bound("Msg", &MSG_DECLS, self.fields.len(), children)
    }

    fn encode_bxsa(&self, w: &mut FrameWriter) -> SoapResult<()> {
        w.begin_component(self.element_name(), &MSG_DECLS, self.fields.len(), self.bxsa_body_bound())?;
        for (local, _, val) in &self.fields {
            val.encode_bxsa(w, TypedName::new(Some("t"), local))?;
        }
        Ok(w.end_component()?)
    }

    fn encode_xml(&self, w: &mut XmlFieldWriter<'_>) {
        if self.fields.is_empty() {
            w.empty_component("t:Msg", &MSG_DECLS);
            return;
        }
        w.begin_component("t:Msg", &MSG_DECLS);
        for (_, qname, val) in &self.fields {
            val.encode_xml(w, qname);
        }
        w.end_component("t:Msg");
    }
}

impl FromBxsa for DynMsg {
    fn expected_local() -> &'static str {
        "Msg"
    }

    fn decode_bxsa<'a>(
        &mut self,
        r: &mut FieldReader<'a>,
        head: &ElementHead<'a>,
    ) -> SoapResult<()> {
        if head.child_count != self.fields.len() {
            return Err(SoapError::Protocol("child count mismatch".into()));
        }
        for (_, _, val) in &mut self.fields {
            let f = r.open()?;
            val.decode_bxsa(r, &f)?;
        }
        Ok(r.close(head)?)
    }

    fn decode_xml<'a>(
        &mut self,
        r: &mut XmlFieldReader<'a>,
        head: &XmlHead<'a>,
    ) -> SoapResult<()> {
        if head.self_closing {
            if self.fields.is_empty() {
                return Ok(());
            }
            return Err(SoapError::Protocol("child count mismatch".into()));
        }
        for (_, _, val) in &mut self.fields {
            match r.next()? {
                XmlItem::Start(f) => val.decode_xml(r, &f)?,
                _ => return Err(SoapError::Protocol("child count mismatch".into())),
            }
        }
        match r.next()? {
            XmlItem::End(l) if l == head.local => Ok(()),
            _ => Err(SoapError::Protocol("trailing content in Msg".into())),
        }
    }
}

fn arb_val() -> impl Strategy<Value = Val> {
    use proptest::collection::vec;
    prop_oneof![
        any::<i8>().prop_map(Val::I8),
        any::<u8>().prop_map(Val::U8),
        any::<i16>().prop_map(Val::I16),
        any::<u16>().prop_map(Val::U16),
        any::<i32>().prop_map(Val::I32),
        any::<u32>().prop_map(Val::U32),
        any::<i64>().prop_map(Val::I64),
        any::<u64>().prop_map(Val::U64),
        any::<f32>().prop_map(Val::F32),
        any::<f64>().prop_map(Val::F64),
        any::<bool>().prop_map(Val::Bool),
        "[a-zA-Z0-9 <>&'\".,]{0,24}".prop_map(Val::Str),
        vec(any::<i8>(), 0..32).prop_map(Val::AI8),
        vec(any::<u8>(), 0..32).prop_map(Val::AU8),
        vec(any::<i16>(), 0..32).prop_map(Val::AI16),
        vec(any::<u16>(), 0..32).prop_map(Val::AU16),
        vec(any::<i32>(), 0..32).prop_map(Val::AI32),
        vec(any::<u32>(), 0..32).prop_map(Val::AU32),
        vec(any::<i64>(), 0..32).prop_map(Val::AI64),
        vec(any::<u64>(), 0..32).prop_map(Val::AU64),
        vec(any::<f32>(), 0..32).prop_map(Val::AF32),
        vec(any::<f64>(), 0..32).prop_map(Val::AF64),
    ]
}

fn arb_msg() -> impl Strategy<Value = DynMsg> {
    proptest::collection::vec((0..name_pool().len(), arb_val()), 0..5)
        .prop_map(|fields| {
            DynMsg::new(
                fields
                    .into_iter()
                    .map(|(i, val)| (name_pool()[i], val))
                    .collect(),
            )
        })
}

/// Typed encode == tree encode, byte for byte, on every wire.
fn assert_encodes_match(msg: &DynMsg) {
    let envelope = SoapEnvelope::with_body(msg.tree());
    let doc = envelope.to_document();
    let mut scratch = TypedScratch::default();

    for order in [ByteOrder::Little, ByteOrder::Big] {
        let enc = BxsaEncoding {
            options: EncodeOptions { byte_order: order, ..Default::default() },
        };
        let tree = EncodingPolicy::encode(&enc, &doc).unwrap();
        let mut typed = Vec::new();
        enc.encode_typed(msg, None, &mut scratch, &mut typed).unwrap();
        assert_eq!(typed, tree, "BXSA {order:?} bytes diverge for {msg:?}");
    }

    let enc = XmlEncoding::default();
    let tree = EncodingPolicy::encode(&enc, &doc).unwrap();
    let mut typed = Vec::new();
    enc.encode_typed(msg, None, &mut scratch, &mut typed).unwrap();
    assert_eq!(
        String::from_utf8(typed).unwrap(),
        String::from_utf8(tree).unwrap(),
        "XML bytes diverge for {msg:?}"
    );
}

/// Typed decode of the tree-encoded reply recovers the exact values
/// (bit-exact on BXSA; NaN-canonicalized on textual XML).
fn assert_decodes_match(msg: &DynMsg) {
    let doc = SoapEnvelope::with_body(msg.tree()).to_document();

    for order in [ByteOrder::Little, ByteOrder::Big] {
        let enc = BxsaEncoding {
            options: EncodeOptions { byte_order: order, ..Default::default() },
        };
        let wire = EncodingPolicy::encode(&enc, &doc).unwrap();
        let mut back = msg.clone();
        back.fields.iter_mut().for_each(|(_, _, v)| v.zero());
        let outcome = enc.decode_typed_reply(&wire, &mut back).unwrap();
        assert_eq!(outcome, TypedDecode::Matched);
        assert_eq!(back.fingerprint(), msg.fingerprint(), "BXSA {order:?} decode for {msg:?}");
    }

    let enc = XmlEncoding::default();
    let wire = EncodingPolicy::encode(&enc, &doc).unwrap();
    let mut back = msg.clone();
    back.fields.iter_mut().for_each(|(_, _, v)| v.zero());
    let outcome = enc.decode_typed_reply(&wire, &mut back).unwrap();
    assert_eq!(outcome, TypedDecode::Matched);
    let mut expect = msg.clone();
    expect.fields.iter_mut().for_each(|(_, _, v)| v.canonicalize_nans());
    back.fields.iter_mut().for_each(|(_, _, v)| v.canonicalize_nans());
    assert_eq!(back.fingerprint(), expect.fingerprint(), "XML decode for {msg:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn typed_and_tree_encodes_are_byte_identical(msg in arb_msg()) {
        assert_encodes_match(&msg);
    }

    #[test]
    fn typed_decode_recovers_tree_encoded_values(msg in arb_msg()) {
        assert_decodes_match(&msg);
    }
}

/// The shapes random generation hits rarely but the paper's workloads
/// hit constantly: empty arrays of every element type, non-finite
/// floats in leaves and packed arrays, the longest name in the pool,
/// and the empty message.
#[test]
fn deterministic_edge_cases_match_on_both_wires() {
    let long = name_pool()[0];
    let cases = vec![
        DynMsg::new(vec![]),
        DynMsg::new(vec![
            ("a", Val::AI8(vec![])),
            ("field", Val::AU8(vec![])),
            ("x0", Val::AI16(vec![])),
            ("payload", Val::AU16(vec![])),
            ("a", Val::AI32(vec![])),
            ("field", Val::AU32(vec![])),
            ("x0", Val::AI64(vec![])),
            ("payload", Val::AU64(vec![])),
            ("a", Val::AF32(vec![])),
            ("field", Val::AF64(vec![])),
        ]),
        DynMsg::new(vec![
            ("a", Val::F64(f64::NAN)),
            ("field", Val::F64(f64::INFINITY)),
            ("x0", Val::F64(f64::NEG_INFINITY)),
            ("payload", Val::F32(f32::NAN)),
            ("a", Val::F32(f32::INFINITY)),
            ("field", Val::F32(f32::NEG_INFINITY)),
        ]),
        DynMsg::new(vec![
            (
                "a",
                Val::AF64(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1.5e-300]),
            ),
            (
                "field",
                Val::AF32(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1.5e-30]),
            ),
        ]),
        DynMsg::new(vec![
            (long, Val::I64(i64::MIN)),
            (long, Val::AF64((0..64).map(|i| i as f64).collect())),
            (long, Val::Str("x".repeat(300))),
        ]),
    ];
    for msg in &cases {
        assert_encodes_match(msg);
        assert_decodes_match(msg);
    }
}
