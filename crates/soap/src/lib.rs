//! # soap — the generic SOAP engine
//!
//! The paper's central software artifact (§5): a SOAP implementation that
//! is *generic over its encoding and its transport binding*, so that
//! `SOAP over XML/HTTP` and `SOAP over BXSA/TCP` (and the other two
//! combinations) are just different instantiations of one engine:
//!
//! ```text
//! C++ (paper):  SoapEngine<XMLEncoding, HttpBinding>  soapXML;
//!               SoapEngine<BXSAEncoding, TCPBinding>  soapBin;
//! Rust (here):  SoapEngine<XmlEncoding, HttpBinding>
//!               SoapEngine<BxsaEncoding, TcpBinding>
//! ```
//!
//! Rust generics play the role of C++ templates: policies bind at compile
//! time, the engine monomorphizes per combination, cross-policy inlining
//! is preserved, and adding a policy is adding a type parameter — the
//! "policy-based design" of Alexandrescu that §5 adopts.
//!
//! The SOAP message itself is modeled in **bXDM** (not text): the engine
//! builds a `soapenv:Envelope` element tree, hands it to the
//! [`EncodingPolicy`] to serialize, and hands the bytes to the
//! [`BindingPolicy`] to move. Everything above the envelope — services,
//! WS-Addressing, eventing — is encoding-agnostic, which is the paper's
//! "intact web service protocol stack" argument.
//!
//! ```no_run
//! use soap::{CallOptions, SoapEngine, SoapEnvelope, XmlEncoding, HttpBinding};
//! use bxdm::{Element, AtomicValue};
//!
//! let mut engine = SoapEngine::new(
//!     XmlEncoding::default(),
//!     HttpBinding::new("127.0.0.1:8080", "/soap"),
//! );
//! let request = SoapEnvelope::with_body(
//!     Element::component("m:Ping")
//!         .with_namespace("m", "http://example.org/ping")
//!         .with_child(Element::leaf("m:seq", AtomicValue::I32(1))),
//! );
//! let response = engine.call_with(request, &CallOptions::new()).unwrap();
//! assert!(response.body_element().is_some());
//! ```

pub mod anyengine;
pub mod binding;
pub mod encoding;
pub mod engine;
pub mod envelope;
pub mod error;
pub mod fault;
pub mod intermediary;
pub mod metrics;
pub mod server;
pub mod service;
pub mod streaming;
pub mod typed;

pub use anyengine::{AnyEngine, WireConfig, WireEncoding, WireTransport};
pub use binding::{BindingPolicy, FaultingBinding, HttpBinding, LoopbackBinding, TcpBinding};
pub use encoding::{BxsaEncoding, EncodingPolicy, XmlEncoding};
pub use engine::{CallOptions, NoSecurity, SecurityPolicy, SoapEngine};
pub use envelope::{
    DeadlineHeader, SoapEnvelope, DEADLINE_HEADER_LOCAL, DEFAULT_HOPS, SOAP_ENV_PREFIX,
    SOAP_ENV_URI,
};
pub use error::{SoapError, SoapResult};
pub use fault::{FaultCode, SoapFault};
pub use intermediary::Intermediary;
pub use server::{HttpSoapServer, TcpSoapServer};
pub use service::{
    fault_for_error, DecodeScratch, HandleOutcome, OperationDefaults, ServiceHandler,
    ServiceMetadata, ServiceRegistry, SoapService, EXPIRED_RETRY_AFTER,
};
pub use streaming::{PartScratch, StreamEncoding, StreamOp, MAX_PART_LEN};
pub use typed::{
    FromBxsa, ToBxsa, TypedDecode, TypedEncoding, TypedRequest, TypedScratch, ENVELOPE_DECLS,
};

// Re-exported so `soap` users reach the resilience vocabulary without a
// direct `transport` dependency.
pub use transport::{
    BreakerConfig, BreakerHandle, BreakerRegistry, BreakerState, Deadline, RetryPolicy, Timeouts,
};

/// The four canonical engine instantiations (paper §5: "obviously we can
/// have two more combinations").
pub type XmlHttpEngine = SoapEngine<XmlEncoding, HttpBinding>;
/// BXSA over raw TCP — the paper's fast path.
pub type BxsaTcpEngine = SoapEngine<BxsaEncoding, TcpBinding>;
/// Textual XML over raw TCP.
pub type XmlTcpEngine = SoapEngine<XmlEncoding, TcpBinding>;
/// BXSA over HTTP.
pub type BxsaHttpEngine = SoapEngine<BxsaEncoding, HttpBinding>;
