//! Service-side message processing: registry, dispatch, faults, and
//! per-operation metadata (default deadline / retry policy / idempotency
//! / preferred encoding, resolved under explicit [`CallOptions`]).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bxdm::Document;
use transport::{Deadline, RetryPolicy};

use crate::anyengine::WireEncoding;
use crate::encoding::EncodingPolicy;
use crate::engine::CallOptions;
use crate::envelope::{must_understand, DeadlineHeader, SoapEnvelope};
use crate::error::{SoapError, SoapResult};
use crate::fault::{FaultCode, SoapFault};
use crate::typed::{FromBxsa, ToBxsa, TypedEncoding, TypedRequest, TypedScratch};

/// The retry hint a node attaches when it rejects a request whose
/// `bx:Deadline` budget was already spent on arrival: the fixed backoff
/// suggested to a caller whose own clock has clearly run out.
pub const EXPIRED_RETRY_AFTER: Duration = Duration::from_secs(1);

/// A service operation: request envelope in, response envelope out.
pub type ServiceHandler =
    dyn Fn(&SoapEnvelope) -> SoapResult<SoapEnvelope> + Send + Sync + 'static;

/// Per-operation call defaults, published by a service alongside its
/// handlers — the "service metadata" a client consults so that calling a
/// named operation with plain `CallOptions::new()` still gets the
/// deadline, retry policy, idempotency class, and wire encoding the
/// operation was designed for. Every field is optional; unset fields
/// defer to the caller's own settings.
#[derive(Debug, Clone, Default)]
pub struct OperationDefaults {
    /// Default end-to-end budget for one call of this operation.
    pub deadline: Option<Duration>,
    /// Default retry policy for this operation.
    pub retry: Option<RetryPolicy>,
    /// Whether the operation may be replayed on retry-safe failures.
    /// `Some(false)` marks a non-idempotent operation: it *vetoes*
    /// retries even for callers who didn't think to turn them off.
    pub idempotent: Option<bool>,
    /// The encoding this operation is happiest with (e.g. BXSA for
    /// array-heavy scientific payloads, XML for interop endpoints).
    pub preferred_encoding: Option<WireEncoding>,
}

impl OperationDefaults {
    /// No defaults — every field defers to the caller.
    pub fn new() -> OperationDefaults {
        OperationDefaults::default()
    }

    /// Default end-to-end budget (chainable).
    pub fn with_deadline(mut self, budget: Duration) -> OperationDefaults {
        self.deadline = Some(budget);
        self
    }

    /// Default retry policy (chainable).
    pub fn with_retry(mut self, policy: RetryPolicy) -> OperationDefaults {
        self.retry = Some(policy);
        self
    }

    /// Declare the idempotency class (chainable). `false` vetoes
    /// retries for every caller of this operation.
    pub fn idempotent(mut self, yes: bool) -> OperationDefaults {
        self.idempotent = Some(yes);
        self
    }

    /// Declare the preferred wire encoding (chainable).
    pub fn prefer_encoding(mut self, encoding: WireEncoding) -> OperationDefaults {
        self.preferred_encoding = Some(encoding);
        self
    }
}

/// The operation-name → [`OperationDefaults`] map a service publishes.
///
/// Clients install a (shared) copy on their engine
/// ([`crate::SoapEngine::with_metadata`]); the engine then resolves each
/// call's effective options via [`ServiceMetadata::resolve`].
#[derive(Debug, Clone, Default)]
pub struct ServiceMetadata {
    ops: HashMap<String, OperationDefaults>,
}

impl ServiceMetadata {
    /// An empty metadata table.
    pub fn new() -> ServiceMetadata {
        ServiceMetadata::default()
    }

    /// Add defaults for an operation (chainable).
    pub fn with_operation(mut self, name: &str, defaults: OperationDefaults) -> ServiceMetadata {
        self.set(name, defaults);
        self
    }

    /// Add or replace defaults for an operation.
    pub fn set(&mut self, name: &str, defaults: OperationDefaults) {
        self.ops.insert(name.to_owned(), defaults);
    }

    /// The defaults registered for `op`, if any.
    pub fn get(&self, op: &str) -> Option<&OperationDefaults> {
        self.ops.get(op)
    }

    /// The wire encoding `op` prefers, if declared.
    pub fn preferred_encoding(&self, op: &str) -> Option<WireEncoding> {
        self.ops.get(op).and_then(|d| d.preferred_encoding)
    }

    /// Merge `op`'s registered defaults *under* the caller's explicit
    /// options: an explicit deadline or retry override wins outright; a
    /// missing one falls back to the operation's default. Idempotency
    /// composes as a conjunction — either side saying "not safe to
    /// replay" suppresses retries (a caller can always be *more*
    /// conservative than the metadata, never less).
    pub fn resolve(&self, op: &str, explicit: &CallOptions) -> CallOptions {
        let Some(d) = self.ops.get(op) else {
            return explicit.clone();
        };
        CallOptions {
            idempotent: explicit.idempotent && d.idempotent.unwrap_or(true),
            deadline: explicit
                .deadline
                .or_else(|| d.deadline.map(Deadline::within)),
            retry_override: explicit
                .retry_override
                .clone()
                .or_else(|| d.retry.clone()),
            breaker: explicit.breaker.clone(),
        }
    }
}

/// Maps operation names (the local name of the first body entry) to
/// handlers, and records which header types the service understands.
#[derive(Default)]
pub struct ServiceRegistry {
    handlers: HashMap<String, Box<ServiceHandler>>,
    understood_headers: Vec<String>,
    metadata: ServiceMetadata,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Register an operation by name (chainable).
    pub fn with_operation<F>(mut self, name: &str, handler: F) -> ServiceRegistry
    where
        F: Fn(&SoapEnvelope) -> SoapResult<SoapEnvelope> + Send + Sync + 'static,
    {
        self.register(name, handler);
        self
    }

    /// Register an operation by name.
    pub fn register<F>(&mut self, name: &str, handler: F)
    where
        F: Fn(&SoapEnvelope) -> SoapResult<SoapEnvelope> + Send + Sync + 'static,
    {
        self.handlers.insert(name.to_owned(), Box::new(handler));
    }

    /// Declare a header (by local name) as understood, for
    /// `mustUnderstand` checking (chainable).
    pub fn with_understood_header(mut self, local: &str) -> ServiceRegistry {
        self.understood_headers.push(local.to_owned());
        self
    }

    /// Publish call defaults for an operation (chainable). Purely
    /// declarative: the server never reads them; clients fetch them via
    /// [`shared_metadata`](ServiceRegistry::shared_metadata) and install
    /// them on their engine.
    pub fn with_operation_defaults(
        mut self,
        name: &str,
        defaults: OperationDefaults,
    ) -> ServiceRegistry {
        self.metadata.set(name, defaults);
        self
    }

    /// The per-operation call defaults this registry publishes.
    pub fn metadata(&self) -> &ServiceMetadata {
        &self.metadata
    }

    /// A shareable snapshot of the metadata, ready for
    /// [`crate::SoapEngine::with_metadata`].
    pub fn shared_metadata(&self) -> Arc<ServiceMetadata> {
        Arc::new(self.metadata.clone())
    }

    /// Registered operation names (sorted, for diagnostics).
    pub fn operations(&self) -> Vec<&str> {
        let mut ops: Vec<&str> = self.handlers.keys().map(String::as_str).collect();
        ops.sort_unstable();
        ops
    }

    /// Process one request envelope into a response envelope.
    ///
    /// All failure modes are mapped onto SOAP faults:
    /// * un-understood `mustUnderstand` headers → `MustUnderstand`;
    /// * unknown operation → `Client`;
    /// * handler errors → the fault they carry, or `Server`.
    pub fn dispatch(&self, request: &SoapEnvelope) -> SoapEnvelope {
        // mustUnderstand processing (SOAP 1.1 §4.2.3).
        for header in &request.headers {
            if must_understand(header)
                && !self
                    .understood_headers
                    .iter()
                    .any(|h| h == header.name.local())
            {
                return fault_envelope(SoapFault::new(
                    FaultCode::MustUnderstand,
                    &format!("header {:?} not understood", header.name.local()),
                ));
            }
        }
        let Some(op) = request.operation() else {
            return fault_envelope(SoapFault::new(FaultCode::Client, "empty SOAP body"));
        };
        let Some(handler) = self.handlers.get(op) else {
            return fault_envelope(
                SoapFault::new(FaultCode::Client, &format!("unknown operation {op:?}"))
                    .with_detail(&format!("known operations: {:?}", self.operations())),
            );
        };
        match handler(request) {
            Ok(response) => response,
            Err(SoapError::Fault(f)) => fault_envelope(f),
            Err(other) => fault_envelope(SoapFault::server(other)),
        }
    }
}

/// Wrap a fault as a response envelope.
pub fn fault_envelope(fault: SoapFault) -> SoapEnvelope {
    SoapEnvelope::with_body(fault.to_element())
}

/// Map a processing error onto the SOAP 1.1 fault class it deserves
/// (SOAP 1.1 §4.4.1): failures *of the sender's message* — undecodable
/// bytes, malformed envelopes — are `Client` faults ("the message ...
/// should not be resent without change"); failures *of the service* —
/// transport trouble behind the server, internal errors — are `Server`
/// faults (the same message may later succeed). A carried [`SoapFault`]
/// keeps its own code.
pub fn fault_for_error(err: SoapError) -> SoapFault {
    match err {
        SoapError::Fault(f) => f,
        e @ (SoapError::Bxsa(_) | SoapError::Xml(_) | SoapError::Protocol(_)) => {
            SoapFault::new(FaultCode::Client, &e.to_string())
        }
        // Transport trouble behind this node — and a tripped breaker on
        // an upstream it relays to — are the service's problem, not the
        // sender's: `Server` class, the same message may later succeed.
        e @ (SoapError::Transport(_) | SoapError::CircuitOpen { .. }) => {
            SoapFault::new(FaultCode::Server, &e.to_string())
        }
    }
}

/// Reusable server-side decode state: the request document each message
/// is decoded into, refilled in place by
/// [`EncodingPolicy::decode_into`]. Keep one per connection (or pool
/// them across one-shot connections) and steady-state dispatch of
/// similarly-shaped requests does no decode-side allocation.
#[derive(Default)]
pub struct DecodeScratch {
    doc: Document,
}

/// What a typed operation closure decided about one request.
enum TypedServe {
    /// The request matched the typed shape and a response (or fault) was
    /// encoded into the output buffer; the flag is "response is a fault".
    Handled(bool),
    /// The request doesn't fit the typed fast path (foreign headers,
    /// wrong operation shape) — run the generic tree pipeline instead.
    Fallback,
}

/// A type-erased typed-operation servicer: request bytes + optional
/// deadline outcome in, response bytes out.
type TypedOp = dyn Fn(&[u8], Option<&mut HandleOutcome>, &mut Vec<u8>) -> TypedServe + Send + Sync;

/// A type-erased operation peek: wire bytes in, borrowed operation name
/// out (`None` when the bytes don't parse far enough to name one).
type TypedPeek = dyn for<'a> Fn(&'a [u8]) -> Option<&'a str> + Send + Sync;

/// Encode a tree response, never failing (errors degrade to a plain-text
/// payload rather than a server panic). Returns whether the response is
/// a fault.
fn encode_tree_response<E: EncodingPolicy>(
    encoding: &E,
    response: &SoapEnvelope,
    out: &mut Vec<u8>,
) -> bool {
    let is_fault = response.is_fault();
    if let Err(e) = encoding.encode_into(&response.to_document(), out) {
        // Encoding a fault envelope cannot realistically fail, but
        // never panic in the server path.
        out.clear();
        out.extend_from_slice(format!("encoding failure: {e}").as_bytes());
    }
    is_fault
}

/// A byte-level SOAP service: a registry plus an encoding policy.
///
/// This is the piece both server bindings share — "receiving the message
/// is just the reverse procedure" (paper §5.1): decode bytes → envelope →
/// dispatch → envelope → encode bytes. It never fails: every error
/// becomes an encoded fault envelope.
///
/// Operations registered through
/// [`register_typed`](SoapService::register_typed) additionally get the
/// typed fast path: requests whose envelope matches the expected typed
/// shape are decoded field-by-field straight into a reusable request
/// struct and the response is encoded straight from the response struct
/// — no element tree on either side. Requests that don't fit (foreign
/// headers, faults, unexpected shapes) silently fall back to the tree
/// pipeline above, so the fast path is purely an optimization.
pub struct SoapService<E: EncodingPolicy> {
    encoding: E,
    registry: Arc<ServiceRegistry>,
    typed_ops: HashMap<String, Box<TypedOp>>,
    typed_peek: Option<Box<TypedPeek>>,
    stream_ops: HashMap<String, Box<crate::streaming::StreamOpFactory>>,
}

impl<E: EncodingPolicy> SoapService<E> {
    /// Assemble a service.
    pub fn new(encoding: E, registry: Arc<ServiceRegistry>) -> SoapService<E> {
        SoapService {
            encoding,
            registry,
            typed_ops: HashMap::new(),
            typed_peek: None,
            stream_ops: HashMap::new(),
        }
    }

    /// Register a streaming operation: requests arriving as chunked
    /// part streams whose manifest names `name` are served by a fresh
    /// [`crate::StreamOp`] from `factory`, one instance per exchange.
    /// Parts are fed to it as they arrive and its reply parts are
    /// pulled as the client drains them, so neither direction ever
    /// buffers more than one part. Buffered (non-chunked) requests for
    /// the same operation still take the ordinary registry path.
    pub fn register_streaming<F>(&mut self, name: &str, factory: F)
    where
        F: Fn() -> Box<dyn crate::streaming::StreamOp> + Send + Sync + 'static,
    {
        self.stream_ops.insert(name.to_owned(), Box::new(factory));
    }

    /// Whether any streaming operations are registered (servers only
    /// install the chunked-upgrade hook when there are).
    pub fn has_streaming(&self) -> bool {
        !self.stream_ops.is_empty()
    }

    /// A fresh [`crate::StreamOp`] for `name`, if one is registered.
    pub(crate) fn new_stream_op(&self, name: &str) -> Option<Box<dyn crate::streaming::StreamOp>> {
        self.stream_ops.get(name).map(|f| f())
    }

    /// Serve `request` through the typed fast path if a typed operation
    /// matches. `Some(is_fault)` means the response was written to
    /// `out`; `None` means "take the generic pipeline".
    fn try_typed(
        &self,
        request: &[u8],
        outcome: Option<&mut HandleOutcome>,
        out: &mut Vec<u8>,
    ) -> Option<bool> {
        if self.typed_ops.is_empty() {
            return None;
        }
        let op = (self.typed_peek.as_ref()?)(request)?;
        let serve = self.typed_ops.get(op)?;
        match serve(request, outcome, out) {
            TypedServe::Handled(is_fault) => Some(is_fault),
            TypedServe::Fallback => None,
        }
    }

    /// The service's encoding policy.
    pub fn encoding(&self) -> &E {
        &self.encoding
    }

    /// Process one encoded request into an encoded response, plus a flag
    /// for whether the response is a fault (HTTP bindings map faults to
    /// status 500).
    pub fn handle_bytes(&self, request: &[u8]) -> (Vec<u8>, bool) {
        let mut out = Vec::new();
        let is_fault = self.handle_bytes_into(request, &mut out);
        (out, is_fault)
    }

    /// [`handle_bytes`](SoapService::handle_bytes) into a reusable
    /// response buffer (replaced, capacity kept) — the allocation-free
    /// encode path for server bindings cycling one buffer per
    /// connection.
    pub fn handle_bytes_into(&self, request: &[u8], out: &mut Vec<u8>) -> bool {
        self.handle_bytes_scratch(&mut DecodeScratch::default(), request, out)
    }

    /// [`handle_bytes_into`](SoapService::handle_bytes_into) with
    /// caller-owned decode scratch — the fully reusing path: the request
    /// is decoded into `scratch`'s document in place, so a server
    /// keeping one scratch per connection serves same-shape request
    /// streams without decode-side allocation either.
    pub fn handle_bytes_scratch(
        &self,
        scratch: &mut DecodeScratch,
        request: &[u8],
        out: &mut Vec<u8>,
    ) -> bool {
        if let Some(is_fault) = self.try_typed(request, None, out) {
            return is_fault;
        }
        let response = match self.try_handle(scratch, request) {
            Ok(envelope) => envelope,
            Err(e) => fault_envelope(fault_for_error(e)),
        };
        encode_tree_response(&self.encoding, &response, out)
    }

    fn try_handle(&self, scratch: &mut DecodeScratch, request: &[u8]) -> SoapResult<SoapEnvelope> {
        self.encoding.decode_into(request, &mut scratch.doc)?;
        let envelope = SoapEnvelope::from_document(&scratch.doc)?;
        Ok(self.registry.dispatch(&envelope))
    }

    /// [`handle_bytes_scratch`](SoapService::handle_bytes_scratch) with
    /// `bx:Deadline` honoring — the entry point the deadline-aware
    /// servers use:
    ///
    /// * a request whose budget is already spent is rejected with a
    ///   `Server` fault carrying a retry hint, **without dispatching**
    ///   (the caller is gone; running the handler would be pure waste);
    /// * otherwise the budget restarts as a local clock, and the time
    ///   left after the handler ran comes back as
    ///   [`HandleOutcome::reply_budget`] so the transport can cap the
    ///   reply write to the caller's remaining patience.
    pub fn handle_bytes_deadline(
        &self,
        scratch: &mut DecodeScratch,
        request: &[u8],
        out: &mut Vec<u8>,
    ) -> HandleOutcome {
        let mut outcome = HandleOutcome::default();
        if let Some(is_fault) = self.try_typed(request, Some(&mut outcome), out) {
            outcome.is_fault = is_fault;
            return outcome;
        }
        let response = match self.try_handle_deadline(scratch, request, &mut outcome) {
            Ok(envelope) => envelope,
            Err(e) => fault_envelope(fault_for_error(e)),
        };
        outcome.is_fault = encode_tree_response(&self.encoding, &response, out);
        outcome
    }

    fn try_handle_deadline(
        &self,
        scratch: &mut DecodeScratch,
        request: &[u8],
        outcome: &mut HandleOutcome,
    ) -> SoapResult<SoapEnvelope> {
        self.encoding.decode_into(request, &mut scratch.doc)?;
        let envelope = SoapEnvelope::from_document(&scratch.doc)?;
        // A malformed deadline header errors out of `?` into a Client
        // fault — a budget we failed to read must not be silently waived.
        let Some(header) = DeadlineHeader::from_envelope(&envelope)? else {
            return Ok(self.registry.dispatch(&envelope));
        };
        if header.expired() {
            outcome.retry_after = Some(EXPIRED_RETRY_AFTER);
            return Ok(fault_envelope(SoapFault::deadline_expired(
                EXPIRED_RETRY_AFTER,
            )));
        }
        // Relative-budget scheme: the stamped milliseconds restart as a
        // local clock; whatever the handler leaves bounds the reply.
        let local = header.start();
        let response = self.registry.dispatch(&envelope);
        outcome.reply_budget = Some(
            local
                .budget()
                .unwrap_or_default()
                .saturating_sub(local.elapsed()),
        );
        Ok(response)
    }
}

impl<E: TypedEncoding + Clone + Send + Sync + 'static> SoapService<E> {
    /// Register a typed operation: requests named `name` whose envelope
    /// matches `Req`'s shape are decoded field-by-field into a reusable
    /// `Req`, handled, and answered straight from a reusable `Resp` —
    /// no element tree either direction, allocation-free at steady
    /// state. Anything that doesn't fit falls back to the generic tree
    /// pipeline (and from there to a handler registered under the same
    /// name, or a Client fault if none exists).
    ///
    /// `bx:Deadline` is honored with the same semantics as
    /// [`handle_bytes_deadline`](SoapService::handle_bytes_deadline):
    /// expired-on-arrival requests are rejected without running the
    /// handler, and the remaining budget caps the reply write.
    pub fn register_typed<Req, Resp, F>(&mut self, name: &str, handler: F)
    where
        Req: FromBxsa + Send + 'static,
        Resp: ToBxsa + Default + Send + 'static,
        F: Fn(&Req, &mut Resp) -> SoapResult<()> + Send + Sync + 'static,
    {
        if self.typed_peek.is_none() {
            let enc = self.encoding.clone();
            self.typed_peek = Some(Box::new(move |bytes| enc.peek_operation(bytes)));
        }
        let enc = self.encoding.clone();
        // Per-operation scratch: the request/response structs and the
        // frame writer survive between requests, so a steady stream of
        // same-shape calls does no codec allocation. Under concurrent
        // dispatch of the *same* operation, latecomers fall back to
        // fresh scratch rather than waiting on the lock.
        let scratch: parking_lot::Mutex<(Req, Resp, TypedScratch)> =
            parking_lot::Mutex::new((Req::default(), Resp::default(), TypedScratch::default()));
        let op = move |request: &[u8],
                       outcome: Option<&mut HandleOutcome>,
                       out: &mut Vec<u8>|
              -> TypedServe {
            let mut fresh;
            let mut guard;
            let (req, resp, ts) = match scratch.try_lock() {
                Some(g) => {
                    guard = g;
                    &mut *guard
                }
                None => {
                    fresh = (Req::default(), Resp::default(), TypedScratch::default());
                    &mut fresh
                }
            };
            let deadline = match enc.decode_typed_request(request, req) {
                Ok(TypedRequest::Matched { deadline }) => deadline,
                Ok(TypedRequest::Fallback) => return TypedServe::Fallback,
                // The operation matched but its payload didn't decode:
                // that's the sender's bad message, not a shape mismatch
                // — answer the Client fault here (a typed-only operation
                // has no tree handler to fall back to, and "unknown
                // operation" would mislead).
                Err(e) => {
                    let is_fault =
                        encode_tree_response(&enc, &fault_envelope(fault_for_error(e)), out);
                    return TypedServe::Handled(is_fault);
                }
            };
            let serve = |req: &Req, resp: &mut Resp, ts: &mut TypedScratch, out: &mut Vec<u8>| {
                let served = handler(req, resp)
                    .and_then(|()| enc.encode_typed(&*resp, None, ts, out));
                match served {
                    Ok(()) => false,
                    Err(e) => encode_tree_response(&enc, &fault_envelope(fault_for_error(e)), out),
                }
            };
            let is_fault = match (deadline, outcome) {
                // Deadline semantics match the generic entry points: the
                // deadline-blind `handle_bytes` path (outcome `None`)
                // ignores the header entirely.
                (Some(header), Some(oc)) => {
                    if header.expired() {
                        oc.retry_after = Some(EXPIRED_RETRY_AFTER);
                        encode_tree_response(
                            &enc,
                            &fault_envelope(SoapFault::deadline_expired(EXPIRED_RETRY_AFTER)),
                            out,
                        )
                    } else {
                        let local = header.start();
                        let is_fault = serve(req, resp, ts, out);
                        oc.reply_budget = Some(
                            local
                                .budget()
                                .unwrap_or_default()
                                .saturating_sub(local.elapsed()),
                        );
                        is_fault
                    }
                }
                _ => serve(req, resp, ts, out),
            };
            TypedServe::Handled(is_fault)
        };
        self.typed_ops.insert(name.to_owned(), Box::new(op));
    }
}

/// What [`SoapService::handle_bytes_deadline`] decided, beyond the
/// response bytes themselves.
#[derive(Debug, Default)]
pub struct HandleOutcome {
    /// The response is a fault (HTTP bindings map this to status 500).
    pub is_fault: bool,
    /// Time left on the request's deadline after handling — the cap for
    /// writing the reply. `None` when the request carried no deadline.
    /// May be zero: the budget ran out *during* handling, and the
    /// transport clamps the write budget to its minimum.
    pub reply_budget: Option<Duration>,
    /// Retry hint for expired-on-arrival rejections, for transports with
    /// an out-of-band place to put it (HTTP `Retry-After`).
    pub retry_after: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::XmlEncoding;
    use bxdm::{AtomicValue, Element};

    fn echo_registry() -> Arc<ServiceRegistry> {
        Arc::new(
            ServiceRegistry::new()
                .with_operation("Echo", |req| {
                    let payload = req.body_element().expect("dispatch checked").clone();
                    Ok(SoapEnvelope::with_body(
                        Element::component("EchoResponse").with_child(payload),
                    ))
                })
                .with_operation("Fail", |_req| {
                    Err(SoapError::Fault(SoapFault::new(
                        FaultCode::Server,
                        "deliberate",
                    )))
                })
                .with_understood_header("Known"),
        )
    }

    fn env(op: &str) -> SoapEnvelope {
        SoapEnvelope::with_body(Element::component(op))
    }

    #[test]
    fn dispatch_routes_by_operation() {
        let reg = echo_registry();
        let resp = reg.dispatch(&env("Echo"));
        assert_eq!(resp.operation(), Some("EchoResponse"));
    }

    #[test]
    fn unknown_operation_is_client_fault() {
        let reg = echo_registry();
        let resp = reg.dispatch(&env("Nope"));
        let fault = resp.as_fault().unwrap();
        assert_eq!(fault.code, FaultCode::Client);
        assert!(fault.detail.unwrap().contains("Echo"));
    }

    #[test]
    fn handler_faults_propagate() {
        let reg = echo_registry();
        let fault = reg.dispatch(&env("Fail")).as_fault().unwrap();
        assert_eq!(fault.code, FaultCode::Server);
        assert_eq!(fault.string, "deliberate");
    }

    #[test]
    fn must_understand_enforced() {
        let reg = echo_registry();
        let req = env("Echo").with_header(
            Element::component("Mystery").with_attr("soapenv:mustUnderstand", "1"),
        );
        let fault = reg.dispatch(&req).as_fault().unwrap();
        assert_eq!(fault.code, FaultCode::MustUnderstand);

        // Understood headers pass.
        let req = env("Echo").with_header(
            Element::component("Known").with_attr("soapenv:mustUnderstand", "1"),
        );
        assert!(reg.dispatch(&req).as_fault().is_none());
    }

    #[test]
    fn empty_body_is_client_fault() {
        let reg = echo_registry();
        let fault = reg.dispatch(&SoapEnvelope::default()).as_fault().unwrap();
        assert_eq!(fault.code, FaultCode::Client);
    }

    #[test]
    fn service_handles_bytes_end_to_end() {
        let service = SoapService::new(XmlEncoding::default(), echo_registry());
        let req_bytes = XmlEncoding::default()
            .encode(&env("Echo").to_document())
            .unwrap();
        let (resp_bytes, is_fault) = service.handle_bytes(&req_bytes);
        assert!(!is_fault);
        let doc = XmlEncoding::default().decode(&resp_bytes).unwrap();
        let resp = SoapEnvelope::from_document(&doc).unwrap();
        assert_eq!(resp.operation(), Some("EchoResponse"));
    }

    #[test]
    fn service_turns_garbage_into_fault_bytes() {
        let service = SoapService::new(XmlEncoding::default(), echo_registry());
        let (resp_bytes, is_fault) = service.handle_bytes(b"<<<not xml");
        assert!(is_fault);
        let doc = XmlEncoding::default().decode(&resp_bytes).unwrap();
        assert!(SoapEnvelope::from_document(&doc).unwrap().is_fault());
    }

    #[test]
    fn error_classes_map_to_the_right_fault_codes() {
        // Sender's problem: bad bytes, bad structure.
        let bxsa_err = bxsa::decode(b"junk").unwrap_err();
        assert_eq!(
            fault_for_error(SoapError::Bxsa(bxsa_err)).code,
            FaultCode::Client
        );
        let xml_err = xmltext::parse("<open").unwrap_err();
        assert_eq!(
            fault_for_error(SoapError::Xml(xml_err)).code,
            FaultCode::Client
        );
        assert_eq!(
            fault_for_error(SoapError::Protocol("no Envelope".into())).code,
            FaultCode::Client
        );
        // Service's problem: transport trouble behind the server.
        assert_eq!(
            fault_for_error(SoapError::Transport(
                transport::TransportError::ConnectionClosed
            ))
            .code,
            FaultCode::Server
        );
        // A carried fault keeps its own code.
        let f = SoapFault::new(FaultCode::MustUnderstand, "hdr");
        assert_eq!(
            fault_for_error(SoapError::Fault(f)).code,
            FaultCode::MustUnderstand
        );
    }

    #[test]
    fn typed_payload_survives_dispatch() {
        let reg = echo_registry();
        let req = SoapEnvelope::with_body(
            Element::component("Echo")
                .with_child(Element::leaf("n", AtomicValue::F64(2.5))),
        );
        let resp = reg.dispatch(&req);
        let echoed = resp.body_element().unwrap().find_child("Echo").unwrap();
        assert_eq!(echoed.child_value("n"), Some(&AtomicValue::F64(2.5)));
    }

    #[test]
    fn metadata_defaults_resolve_under_explicit_options() {
        let registry = ServiceRegistry::new().with_operation_defaults(
            "Slow",
            OperationDefaults::new()
                .with_deadline(Duration::from_millis(250))
                .with_retry(RetryPolicy::new(5))
                .idempotent(false)
                .prefer_encoding(WireEncoding::Bxsa),
        );
        let meta = registry.shared_metadata();

        // A bare call inherits every registered default.
        let resolved = meta.resolve("Slow", &CallOptions::new());
        assert!(!resolved.idempotent, "Some(false) must veto retries");
        let budget = resolved.deadline.unwrap().budget().unwrap();
        assert!(budget <= Duration::from_millis(250));
        assert_eq!(resolved.retry_override.unwrap().max_attempts, 5);
        assert_eq!(meta.preferred_encoding("Slow"), Some(WireEncoding::Bxsa));

        // Explicit settings win over the defaults.
        let explicit = CallOptions::new()
            .within(Duration::from_secs(9))
            .with_retry(RetryPolicy::new(2));
        let resolved = meta.resolve("Slow", &explicit);
        assert!(resolved.deadline.unwrap().budget().unwrap() > Duration::from_secs(8));
        assert_eq!(resolved.retry_override.unwrap().max_attempts, 2);

        // Unregistered operations pass the explicit options through.
        let resolved = meta.resolve("Unknown", &CallOptions::new());
        assert!(resolved.idempotent);
        assert!(resolved.deadline.is_none());
        assert!(resolved.retry_override.is_none());
        assert_eq!(meta.preferred_encoding("Unknown"), None);
    }

    mod typed_dispatch {
        use super::*;
        use crate::encoding::BxsaEncoding;
        use crate::typed::probe::{probe, tree_envelope, Probe};
        use crate::typed::{TypedDecode, TypedEncoding, TypedScratch};
        use std::sync::atomic::{AtomicBool, Ordering};

        /// A service whose `Probe` handler doubles the values and bumps
        /// the tag — distinguishable from the echo a tree handler gives.
        fn typed_service() -> SoapService<BxsaEncoding> {
            let mut service =
                SoapService::new(BxsaEncoding::default(), Arc::new(ServiceRegistry::new()));
            service.register_typed::<Probe, Probe, _>("Probe", |req, resp| {
                resp.values.clear();
                resp.values.extend(req.values.iter().map(|v| v * 2.0));
                resp.tag = req.tag + 1;
                Ok(())
            });
            service
        }

        fn typed_request(p: &Probe, deadline: Option<DeadlineHeader>) -> Vec<u8> {
            let enc = BxsaEncoding::default();
            let mut scratch = TypedScratch::default();
            let mut bytes = Vec::new();
            enc.encode_typed(p, deadline.as_ref(), &mut scratch, &mut bytes)
                .unwrap();
            bytes
        }

        #[test]
        fn typed_operation_is_served_end_to_end() {
            let service = typed_service();
            let request = typed_request(&probe(4), None);
            let (reply, is_fault) = service.handle_bytes(&request);
            assert!(!is_fault);
            let mut back = Probe::default();
            let decode = BxsaEncoding::default()
                .decode_typed_reply(&reply, &mut back)
                .unwrap();
            assert_eq!(decode, TypedDecode::Matched);
            assert_eq!(back.tag, 43);
            assert_eq!(back.values, probe(4).values.iter().map(|v| v * 2.0).collect::<Vec<_>>());
        }

        #[test]
        fn foreign_header_falls_back_to_the_tree_pipeline() {
            let service = typed_service();
            // A mustUnderstand header the typed path can't check: it must
            // fall back — and the tree pipeline, with no generic handler
            // registered, answers MustUnderstand (not a typed reply).
            let mut envelope = tree_envelope(&probe(2), None);
            envelope = envelope.with_header(
                Element::component("Mystery").with_attr("soapenv:mustUnderstand", "1"),
            );
            let request = BxsaEncoding::default()
                .encode(&envelope.to_document())
                .unwrap();
            let (reply, is_fault) = service.handle_bytes(&request);
            assert!(is_fault);
            let doc = BxsaEncoding::default().decode(&reply).unwrap();
            let fault = SoapEnvelope::from_document(&doc)
                .unwrap()
                .as_fault()
                .unwrap();
            assert_eq!(fault.code, FaultCode::MustUnderstand);
        }

        #[test]
        fn matched_operation_with_bad_payload_is_a_client_fault() {
            let service = typed_service();
            // Operation name matches, payload doesn't: a Probe missing
            // its required tag field must answer Client directly (there
            // is no tree handler to fall back to).
            let envelope = SoapEnvelope::with_body(
                Element::component("p:Probe").with_namespace("p", "http://example.org/probe"),
            );
            let request = BxsaEncoding::default()
                .encode(&envelope.to_document())
                .unwrap();
            let (reply, is_fault) = service.handle_bytes(&request);
            assert!(is_fault);
            let doc = BxsaEncoding::default().decode(&reply).unwrap();
            let fault = SoapEnvelope::from_document(&doc)
                .unwrap()
                .as_fault()
                .unwrap();
            assert_eq!(fault.code, FaultCode::Client);
        }

        #[test]
        fn expired_deadline_rejects_without_running_the_handler() {
            static RAN: AtomicBool = AtomicBool::new(false);
            let mut service =
                SoapService::new(BxsaEncoding::default(), Arc::new(ServiceRegistry::new()));
            service.register_typed::<Probe, Probe, _>("Probe", |_req, _resp| {
                RAN.store(true, Ordering::SeqCst);
                Ok(())
            });
            let request = typed_request(&probe(1), Some(DeadlineHeader::new(0, 8)));
            let mut out = Vec::new();
            let outcome =
                service.handle_bytes_deadline(&mut DecodeScratch::default(), &request, &mut out);
            assert!(outcome.is_fault);
            assert_eq!(outcome.retry_after, Some(EXPIRED_RETRY_AFTER));
            assert!(!RAN.load(Ordering::SeqCst), "expired requests must not dispatch");
        }

        #[test]
        fn live_deadline_leaves_a_reply_budget() {
            let service = typed_service();
            let request = typed_request(&probe(3), Some(DeadlineHeader::new(5_000, 8)));
            let mut out = Vec::new();
            let outcome =
                service.handle_bytes_deadline(&mut DecodeScratch::default(), &request, &mut out);
            assert!(!outcome.is_fault);
            let budget = outcome.reply_budget.expect("deadline ⇒ reply budget");
            assert!(budget > Duration::from_secs(4), "budget {budget:?}");
            let mut back = Probe::default();
            BxsaEncoding::default()
                .decode_typed_reply(&out, &mut back)
                .unwrap();
            assert_eq!(back.tag, 43);
        }
    }
}
