//! Service-side message processing: registry, dispatch, faults.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bxdm::Document;

use crate::encoding::EncodingPolicy;
use crate::envelope::{must_understand, DeadlineHeader, SoapEnvelope};
use crate::error::{SoapError, SoapResult};
use crate::fault::{FaultCode, SoapFault};

/// The retry hint a node attaches when it rejects a request whose
/// `bx:Deadline` budget was already spent on arrival: the fixed backoff
/// suggested to a caller whose own clock has clearly run out.
pub const EXPIRED_RETRY_AFTER: Duration = Duration::from_secs(1);

/// A service operation: request envelope in, response envelope out.
pub type ServiceHandler =
    dyn Fn(&SoapEnvelope) -> SoapResult<SoapEnvelope> + Send + Sync + 'static;

/// Maps operation names (the local name of the first body entry) to
/// handlers, and records which header types the service understands.
#[derive(Default)]
pub struct ServiceRegistry {
    handlers: HashMap<String, Box<ServiceHandler>>,
    understood_headers: Vec<String>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Register an operation by name (chainable).
    pub fn with_operation<F>(mut self, name: &str, handler: F) -> ServiceRegistry
    where
        F: Fn(&SoapEnvelope) -> SoapResult<SoapEnvelope> + Send + Sync + 'static,
    {
        self.register(name, handler);
        self
    }

    /// Register an operation by name.
    pub fn register<F>(&mut self, name: &str, handler: F)
    where
        F: Fn(&SoapEnvelope) -> SoapResult<SoapEnvelope> + Send + Sync + 'static,
    {
        self.handlers.insert(name.to_owned(), Box::new(handler));
    }

    /// Declare a header (by local name) as understood, for
    /// `mustUnderstand` checking (chainable).
    pub fn with_understood_header(mut self, local: &str) -> ServiceRegistry {
        self.understood_headers.push(local.to_owned());
        self
    }

    /// Registered operation names (sorted, for diagnostics).
    pub fn operations(&self) -> Vec<&str> {
        let mut ops: Vec<&str> = self.handlers.keys().map(String::as_str).collect();
        ops.sort_unstable();
        ops
    }

    /// Process one request envelope into a response envelope.
    ///
    /// All failure modes are mapped onto SOAP faults:
    /// * un-understood `mustUnderstand` headers → `MustUnderstand`;
    /// * unknown operation → `Client`;
    /// * handler errors → the fault they carry, or `Server`.
    pub fn dispatch(&self, request: &SoapEnvelope) -> SoapEnvelope {
        // mustUnderstand processing (SOAP 1.1 §4.2.3).
        for header in &request.headers {
            if must_understand(header)
                && !self
                    .understood_headers
                    .iter()
                    .any(|h| h == header.name.local())
            {
                return fault_envelope(SoapFault::new(
                    FaultCode::MustUnderstand,
                    &format!("header {:?} not understood", header.name.local()),
                ));
            }
        }
        let Some(op) = request.operation() else {
            return fault_envelope(SoapFault::new(FaultCode::Client, "empty SOAP body"));
        };
        let Some(handler) = self.handlers.get(op) else {
            return fault_envelope(
                SoapFault::new(FaultCode::Client, &format!("unknown operation {op:?}"))
                    .with_detail(&format!("known operations: {:?}", self.operations())),
            );
        };
        match handler(request) {
            Ok(response) => response,
            Err(SoapError::Fault(f)) => fault_envelope(f),
            Err(other) => fault_envelope(SoapFault::server(other)),
        }
    }
}

/// Wrap a fault as a response envelope.
pub fn fault_envelope(fault: SoapFault) -> SoapEnvelope {
    SoapEnvelope::with_body(fault.to_element())
}

/// Map a processing error onto the SOAP 1.1 fault class it deserves
/// (SOAP 1.1 §4.4.1): failures *of the sender's message* — undecodable
/// bytes, malformed envelopes — are `Client` faults ("the message ...
/// should not be resent without change"); failures *of the service* —
/// transport trouble behind the server, internal errors — are `Server`
/// faults (the same message may later succeed). A carried [`SoapFault`]
/// keeps its own code.
pub fn fault_for_error(err: SoapError) -> SoapFault {
    match err {
        SoapError::Fault(f) => f,
        e @ (SoapError::Bxsa(_) | SoapError::Xml(_) | SoapError::Protocol(_)) => {
            SoapFault::new(FaultCode::Client, &e.to_string())
        }
        // Transport trouble behind this node — and a tripped breaker on
        // an upstream it relays to — are the service's problem, not the
        // sender's: `Server` class, the same message may later succeed.
        e @ (SoapError::Transport(_) | SoapError::CircuitOpen { .. }) => {
            SoapFault::new(FaultCode::Server, &e.to_string())
        }
    }
}

/// Reusable server-side decode state: the request document each message
/// is decoded into, refilled in place by
/// [`EncodingPolicy::decode_into`]. Keep one per connection (or pool
/// them across one-shot connections) and steady-state dispatch of
/// similarly-shaped requests does no decode-side allocation.
#[derive(Default)]
pub struct DecodeScratch {
    doc: Document,
}

/// A byte-level SOAP service: a registry plus an encoding policy.
///
/// This is the piece both server bindings share — "receiving the message
/// is just the reverse procedure" (paper §5.1): decode bytes → envelope →
/// dispatch → envelope → encode bytes. It never fails: every error
/// becomes an encoded fault envelope.
pub struct SoapService<E: EncodingPolicy> {
    encoding: E,
    registry: Arc<ServiceRegistry>,
}

impl<E: EncodingPolicy> SoapService<E> {
    /// Assemble a service.
    pub fn new(encoding: E, registry: Arc<ServiceRegistry>) -> SoapService<E> {
        SoapService { encoding, registry }
    }

    /// The service's encoding policy.
    pub fn encoding(&self) -> &E {
        &self.encoding
    }

    /// Process one encoded request into an encoded response, plus a flag
    /// for whether the response is a fault (HTTP bindings map faults to
    /// status 500).
    pub fn handle_bytes(&self, request: &[u8]) -> (Vec<u8>, bool) {
        let mut out = Vec::new();
        let is_fault = self.handle_bytes_into(request, &mut out);
        (out, is_fault)
    }

    /// [`handle_bytes`](SoapService::handle_bytes) into a reusable
    /// response buffer (replaced, capacity kept) — the allocation-free
    /// encode path for server bindings cycling one buffer per
    /// connection.
    pub fn handle_bytes_into(&self, request: &[u8], out: &mut Vec<u8>) -> bool {
        self.handle_bytes_scratch(&mut DecodeScratch::default(), request, out)
    }

    /// [`handle_bytes_into`](SoapService::handle_bytes_into) with
    /// caller-owned decode scratch — the fully reusing path: the request
    /// is decoded into `scratch`'s document in place, so a server
    /// keeping one scratch per connection serves same-shape request
    /// streams without decode-side allocation either.
    pub fn handle_bytes_scratch(
        &self,
        scratch: &mut DecodeScratch,
        request: &[u8],
        out: &mut Vec<u8>,
    ) -> bool {
        let response = match self.try_handle(scratch, request) {
            Ok(envelope) => envelope,
            Err(e) => fault_envelope(fault_for_error(e)),
        };
        let is_fault = response.is_fault();
        if let Err(e) = self.encoding.encode_into(&response.to_document(), out) {
            // Encoding a fault envelope cannot realistically fail, but
            // never panic in the server path.
            out.clear();
            out.extend_from_slice(format!("encoding failure: {e}").as_bytes());
        }
        is_fault
    }

    fn try_handle(&self, scratch: &mut DecodeScratch, request: &[u8]) -> SoapResult<SoapEnvelope> {
        self.encoding.decode_into(request, &mut scratch.doc)?;
        let envelope = SoapEnvelope::from_document(&scratch.doc)?;
        Ok(self.registry.dispatch(&envelope))
    }

    /// [`handle_bytes_scratch`](SoapService::handle_bytes_scratch) with
    /// `bx:Deadline` honoring — the entry point the deadline-aware
    /// servers use:
    ///
    /// * a request whose budget is already spent is rejected with a
    ///   `Server` fault carrying a retry hint, **without dispatching**
    ///   (the caller is gone; running the handler would be pure waste);
    /// * otherwise the budget restarts as a local clock, and the time
    ///   left after the handler ran comes back as
    ///   [`HandleOutcome::reply_budget`] so the transport can cap the
    ///   reply write to the caller's remaining patience.
    pub fn handle_bytes_deadline(
        &self,
        scratch: &mut DecodeScratch,
        request: &[u8],
        out: &mut Vec<u8>,
    ) -> HandleOutcome {
        let mut outcome = HandleOutcome::default();
        let response = match self.try_handle_deadline(scratch, request, &mut outcome) {
            Ok(envelope) => envelope,
            Err(e) => fault_envelope(fault_for_error(e)),
        };
        outcome.is_fault = response.is_fault();
        if let Err(e) = self.encoding.encode_into(&response.to_document(), out) {
            out.clear();
            out.extend_from_slice(format!("encoding failure: {e}").as_bytes());
        }
        outcome
    }

    fn try_handle_deadline(
        &self,
        scratch: &mut DecodeScratch,
        request: &[u8],
        outcome: &mut HandleOutcome,
    ) -> SoapResult<SoapEnvelope> {
        self.encoding.decode_into(request, &mut scratch.doc)?;
        let envelope = SoapEnvelope::from_document(&scratch.doc)?;
        // A malformed deadline header errors out of `?` into a Client
        // fault — a budget we failed to read must not be silently waived.
        let Some(header) = DeadlineHeader::from_envelope(&envelope)? else {
            return Ok(self.registry.dispatch(&envelope));
        };
        if header.expired() {
            outcome.retry_after = Some(EXPIRED_RETRY_AFTER);
            return Ok(fault_envelope(SoapFault::deadline_expired(
                EXPIRED_RETRY_AFTER,
            )));
        }
        // Relative-budget scheme: the stamped milliseconds restart as a
        // local clock; whatever the handler leaves bounds the reply.
        let local = header.start();
        let response = self.registry.dispatch(&envelope);
        outcome.reply_budget = Some(
            local
                .budget()
                .unwrap_or_default()
                .saturating_sub(local.elapsed()),
        );
        Ok(response)
    }
}

/// What [`SoapService::handle_bytes_deadline`] decided, beyond the
/// response bytes themselves.
#[derive(Debug, Default)]
pub struct HandleOutcome {
    /// The response is a fault (HTTP bindings map this to status 500).
    pub is_fault: bool,
    /// Time left on the request's deadline after handling — the cap for
    /// writing the reply. `None` when the request carried no deadline.
    /// May be zero: the budget ran out *during* handling, and the
    /// transport clamps the write budget to its minimum.
    pub reply_budget: Option<Duration>,
    /// Retry hint for expired-on-arrival rejections, for transports with
    /// an out-of-band place to put it (HTTP `Retry-After`).
    pub retry_after: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::XmlEncoding;
    use bxdm::{AtomicValue, Element};

    fn echo_registry() -> Arc<ServiceRegistry> {
        Arc::new(
            ServiceRegistry::new()
                .with_operation("Echo", |req| {
                    let payload = req.body_element().expect("dispatch checked").clone();
                    Ok(SoapEnvelope::with_body(
                        Element::component("EchoResponse").with_child(payload),
                    ))
                })
                .with_operation("Fail", |_req| {
                    Err(SoapError::Fault(SoapFault::new(
                        FaultCode::Server,
                        "deliberate",
                    )))
                })
                .with_understood_header("Known"),
        )
    }

    fn env(op: &str) -> SoapEnvelope {
        SoapEnvelope::with_body(Element::component(op))
    }

    #[test]
    fn dispatch_routes_by_operation() {
        let reg = echo_registry();
        let resp = reg.dispatch(&env("Echo"));
        assert_eq!(resp.operation(), Some("EchoResponse"));
    }

    #[test]
    fn unknown_operation_is_client_fault() {
        let reg = echo_registry();
        let resp = reg.dispatch(&env("Nope"));
        let fault = resp.as_fault().unwrap();
        assert_eq!(fault.code, FaultCode::Client);
        assert!(fault.detail.unwrap().contains("Echo"));
    }

    #[test]
    fn handler_faults_propagate() {
        let reg = echo_registry();
        let fault = reg.dispatch(&env("Fail")).as_fault().unwrap();
        assert_eq!(fault.code, FaultCode::Server);
        assert_eq!(fault.string, "deliberate");
    }

    #[test]
    fn must_understand_enforced() {
        let reg = echo_registry();
        let req = env("Echo").with_header(
            Element::component("Mystery").with_attr("soapenv:mustUnderstand", "1"),
        );
        let fault = reg.dispatch(&req).as_fault().unwrap();
        assert_eq!(fault.code, FaultCode::MustUnderstand);

        // Understood headers pass.
        let req = env("Echo").with_header(
            Element::component("Known").with_attr("soapenv:mustUnderstand", "1"),
        );
        assert!(reg.dispatch(&req).as_fault().is_none());
    }

    #[test]
    fn empty_body_is_client_fault() {
        let reg = echo_registry();
        let fault = reg.dispatch(&SoapEnvelope::default()).as_fault().unwrap();
        assert_eq!(fault.code, FaultCode::Client);
    }

    #[test]
    fn service_handles_bytes_end_to_end() {
        let service = SoapService::new(XmlEncoding::default(), echo_registry());
        let req_bytes = XmlEncoding::default()
            .encode(&env("Echo").to_document())
            .unwrap();
        let (resp_bytes, is_fault) = service.handle_bytes(&req_bytes);
        assert!(!is_fault);
        let doc = XmlEncoding::default().decode(&resp_bytes).unwrap();
        let resp = SoapEnvelope::from_document(&doc).unwrap();
        assert_eq!(resp.operation(), Some("EchoResponse"));
    }

    #[test]
    fn service_turns_garbage_into_fault_bytes() {
        let service = SoapService::new(XmlEncoding::default(), echo_registry());
        let (resp_bytes, is_fault) = service.handle_bytes(b"<<<not xml");
        assert!(is_fault);
        let doc = XmlEncoding::default().decode(&resp_bytes).unwrap();
        assert!(SoapEnvelope::from_document(&doc).unwrap().is_fault());
    }

    #[test]
    fn error_classes_map_to_the_right_fault_codes() {
        // Sender's problem: bad bytes, bad structure.
        let bxsa_err = bxsa::decode(b"junk").unwrap_err();
        assert_eq!(
            fault_for_error(SoapError::Bxsa(bxsa_err)).code,
            FaultCode::Client
        );
        let xml_err = xmltext::parse("<open").unwrap_err();
        assert_eq!(
            fault_for_error(SoapError::Xml(xml_err)).code,
            FaultCode::Client
        );
        assert_eq!(
            fault_for_error(SoapError::Protocol("no Envelope".into())).code,
            FaultCode::Client
        );
        // Service's problem: transport trouble behind the server.
        assert_eq!(
            fault_for_error(SoapError::Transport(
                transport::TransportError::ConnectionClosed
            ))
            .code,
            FaultCode::Server
        );
        // A carried fault keeps its own code.
        let f = SoapFault::new(FaultCode::MustUnderstand, "hdr");
        assert_eq!(
            fault_for_error(SoapError::Fault(f)).code,
            FaultCode::MustUnderstand
        );
    }

    #[test]
    fn typed_payload_survives_dispatch() {
        let reg = echo_registry();
        let req = SoapEnvelope::with_body(
            Element::component("Echo")
                .with_child(Element::leaf("n", AtomicValue::F64(2.5))),
        );
        let resp = reg.dispatch(&req);
        let echoed = resp.body_element().unwrap().find_child("Echo").unwrap();
        assert_eq!(echoed.child_value("n"), Some(&AtomicValue::F64(2.5)));
    }
}
