//! Encoding policies (paper §5.2).
//!
//! "The encoding policy is an object that is able to serialize and
//! deserialize the bXDM model." Serialization runs as a visitor over the
//! tree (inside the `xmltext`/`bxsa` crates); deserialization is the
//! factory method producing a fresh bXDM document.

use bxdm::Document;

use crate::error::SoapResult;

/// A policy that can serialize and deserialize bXDM documents.
///
/// The engine is generic over this trait, so the concrete encoder is
/// chosen at compile time and its calls inline into the engine
/// (the paper: "Because the binding is at compile time, compiler
/// optimizations are not impacted, and inlining is still enabled").
///
/// The buffer-reusing `_into` forms are the *required* methods: every
/// policy must be able to serialize into — and deserialize into — storage
/// the caller owns, because that is the shape the engine's and servers'
/// steady-state (allocation-free) paths use. The allocating `encode`/
/// `decode` are conveniences with default implementations on top.
pub trait EncodingPolicy {
    /// MIME type announced on HTTP-like bindings.
    fn content_type(&self) -> &'static str;
    /// Short scheme name for logging/diagnostics ("xml", "bxsa").
    fn name(&self) -> &'static str;
    /// Serialize a document into a reusable buffer (replacing its
    /// contents, keeping its capacity).
    fn encode_into(&self, doc: &Document, out: &mut Vec<u8>) -> SoapResult<()>;
    /// Deserialize into a reusable document: contents are replaced, but
    /// node slots, strings, and array buffers from the previous message
    /// are refilled in place, so decoding a stream of similarly-shaped
    /// messages is allocation-free at steady state. On error the
    /// document holds unspecified but valid contents.
    fn decode_into(&self, bytes: &[u8], doc: &mut Document) -> SoapResult<()>;
    /// Serialize a document into fresh storage. Default: delegates to
    /// [`encode_into`](EncodingPolicy::encode_into).
    fn encode(&self, doc: &Document) -> SoapResult<Vec<u8>> {
        let mut out = Vec::new();
        self.encode_into(doc, &mut out)?;
        Ok(out)
    }
    /// Deserialize a fresh document. Default: delegates to
    /// [`decode_into`](EncodingPolicy::decode_into).
    fn decode(&self, bytes: &[u8]) -> SoapResult<Document> {
        let mut doc = Document::new();
        self.decode_into(bytes, &mut doc)?;
        Ok(doc)
    }
}

/// Textual XML 1.0 — SOAP's de-facto default wire format.
#[derive(Debug, Clone, Default)]
pub struct XmlEncoding {
    /// Writer options (typed `xsi:type` emission on by default).
    pub write_options: xmltext::XmlWriteOptions,
}

impl EncodingPolicy for XmlEncoding {
    fn content_type(&self) -> &'static str {
        "text/xml; charset=utf-8"
    }

    fn name(&self) -> &'static str {
        "xml"
    }

    fn encode_into(&self, doc: &Document, out: &mut Vec<u8>) -> SoapResult<()> {
        // Reuse the byte buffer's capacity as the writer's String; the
        // round trip through from_utf8 is free (the buffer's prior
        // contents don't matter — write_into clears the string first,
        // so a non-UTF-8 residue just falls back to a fresh String).
        let mut text = String::from_utf8(std::mem::take(out)).unwrap_or_default();
        let Ok(()) = xmltext::write_into(doc, &self.write_options, &mut text);
        *out = text.into_bytes();
        Ok(())
    }

    fn decode_into(&self, bytes: &[u8], doc: &mut Document) -> SoapResult<()> {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            crate::error::SoapError::Protocol("XML payload is not valid UTF-8".into())
        })?;
        Ok(xmltext::parse_into(text, doc)?)
    }
}

/// BXSA binary XML — the paper's high-performance encoding.
#[derive(Debug, Clone, Default)]
pub struct BxsaEncoding {
    /// Encoder options (byte order; little-endian default).
    pub options: bxsa::EncodeOptions,
}

impl BxsaEncoding {
    /// Encode in the machine's native byte order, enabling zero-copy
    /// array reads when both endpoints share an architecture.
    pub fn native_order() -> BxsaEncoding {
        BxsaEncoding {
            options: bxsa::EncodeOptions {
                byte_order: xbs::ByteOrder::native(),
                ..Default::default()
            },
        }
    }

    /// Enable per-frame CRC32C integrity checksums on everything this
    /// policy encodes (envelopes and streamed parts alike). Decoding is
    /// unaffected: checksums are verified whenever present, so a
    /// checksum-enabled endpoint interops with plain peers transparently.
    pub fn with_checksum(mut self) -> BxsaEncoding {
        self.options.checksum = true;
        self
    }
}

impl EncodingPolicy for BxsaEncoding {
    fn content_type(&self) -> &'static str {
        "application/bxsa"
    }

    fn name(&self) -> &'static str {
        "bxsa"
    }

    fn encode_into(&self, doc: &Document, out: &mut Vec<u8>) -> SoapResult<()> {
        Ok(bxsa::encode_into_with(doc, &self.options, out)?)
    }

    fn decode_into(&self, bytes: &[u8], doc: &mut Document) -> SoapResult<()> {
        Ok(bxsa::decode_into(bytes, doc)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::SoapEnvelope;
    use bxdm::{ArrayValue, Element};

    fn sample_doc() -> Document {
        SoapEnvelope::with_body(
            Element::component("m:Op")
                .with_namespace("m", "http://example.org")
                .with_child(Element::array("m:v", ArrayValue::I32(vec![1, 2, 3]))),
        )
        .to_document()
    }

    #[test]
    fn xml_roundtrip() {
        let enc = XmlEncoding::default();
        let bytes = enc.encode(&sample_doc()).unwrap();
        assert!(std::str::from_utf8(&bytes).unwrap().starts_with("<soapenv:Envelope"));
        assert_eq!(enc.decode(&bytes).unwrap(), sample_doc());
    }

    #[test]
    fn bxsa_roundtrip() {
        let enc = BxsaEncoding::default();
        let bytes = enc.encode(&sample_doc()).unwrap();
        assert_eq!(enc.decode(&bytes).unwrap(), sample_doc());
    }

    #[test]
    fn bxsa_is_smaller_for_numeric_payloads() {
        let doc = SoapEnvelope::with_body(
            Element::component("m:Data")
                .with_namespace("m", "http://example.org")
                .with_child(Element::array(
                    "m:values",
                    ArrayValue::F64((0..1000).map(|i| i as f64 * 0.123).collect()),
                )),
        )
        .to_document();
        let xml = XmlEncoding::default().encode(&doc).unwrap();
        let bin = BxsaEncoding::default().encode(&doc).unwrap();
        assert!(
            bin.len() * 2 < xml.len(),
            "bxsa {} should be far below xml {}",
            bin.len(),
            xml.len()
        );
    }

    #[test]
    fn encode_into_matches_encode_for_both_policies() {
        let doc = sample_doc();
        // Dirty, non-UTF-8 residue in the reused buffer must not leak
        // into the output of either policy.
        let mut buf = vec![0xff; 64];
        let xml = XmlEncoding::default();
        xml.encode_into(&doc, &mut buf).unwrap();
        assert_eq!(buf, xml.encode(&doc).unwrap());
        xml.encode_into(&doc, &mut buf).unwrap();
        assert_eq!(buf, xml.encode(&doc).unwrap());
        let bin = BxsaEncoding::default();
        bin.encode_into(&doc, &mut buf).unwrap();
        assert_eq!(buf, bin.encode(&doc).unwrap());
    }

    #[test]
    fn decode_into_matches_decode_for_both_policies() {
        let doc = sample_doc();
        // The reused document starts dirty (a different prior message);
        // decode_into must fully replace it for both policies.
        let stale = SoapEnvelope::with_body(
            Element::component("m:Other")
                .with_namespace("m", "http://example.org")
                .with_child(Element::array("m:w", ArrayValue::F64(vec![9.9; 64]))),
        )
        .to_document();
        let xml = XmlEncoding::default();
        let bytes = xml.encode(&doc).unwrap();
        let mut reused = stale.clone();
        xml.decode_into(&bytes, &mut reused).unwrap();
        assert_eq!(reused, xml.decode(&bytes).unwrap());
        xml.decode_into(&bytes, &mut reused).unwrap();
        assert_eq!(reused, doc);
        let bin = BxsaEncoding::default();
        let bytes = bin.encode(&doc).unwrap();
        let mut reused = stale;
        bin.decode_into(&bytes, &mut reused).unwrap();
        assert_eq!(reused, bin.decode(&bytes).unwrap());
        assert_eq!(reused, doc);
    }

    #[test]
    fn content_types_differ() {
        assert_ne!(
            XmlEncoding::default().content_type(),
            BxsaEncoding::default().content_type()
        );
    }

    #[test]
    fn xml_rejects_non_utf8() {
        let enc = XmlEncoding::default();
        assert!(enc.decode(&[0xff, 0xfe, 0x00]).is_err());
    }

    #[test]
    fn cross_decoding_fails_cleanly() {
        // Feeding XML bytes to the BXSA decoder (and vice versa) must be
        // an error, not a panic.
        let xml_bytes = XmlEncoding::default().encode(&sample_doc()).unwrap();
        assert!(BxsaEncoding::default().decode(&xml_bytes).is_err());
        let bin_bytes = BxsaEncoding::default().encode(&sample_doc()).unwrap();
        assert!(XmlEncoding::default().decode(&bin_bytes).is_err());
    }
}
