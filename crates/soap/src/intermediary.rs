//! SOAP intermediaries: hop-by-hop relaying with re-encoding.
//!
//! Paper §5.1: "SOAP messages are designed to be transferred in a
//! hop-by-hop style between the SOAP nodes and the bindings between the
//! hops can be various... the intermediary node can just simply deploy
//! multiple generic SOAP engines with different policy configurations to
//! serve the up-link and down-link message flows. Furthermore,
//! transcodability enables BXSA to be the intermediate protocol over the
//! message hops, even when the message sender and receiver are
//! communicating via textual XML."
//!
//! An [`Intermediary`] listens with one (encoding, transport) pair and
//! forwards with another; the message crosses the hop as a bXDM tree, so
//! nothing is lost in the re-encode.

use std::net::SocketAddr;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::binding::BindingPolicy;
use crate::encoding::EncodingPolicy;
use crate::envelope::{DeadlineHeader, SoapEnvelope};
use crate::error::SoapResult;
use crate::fault::{FaultCode, SoapFault};
use crate::service::{fault_envelope, EXPIRED_RETRY_AFTER};

/// A running relay node.
pub struct Intermediary {
    inner: transport::TcpServer,
}

impl Intermediary {
    /// Listen on framed TCP at `addr` with down-link encoding `InE`;
    /// forward every message through `up_encoding`/`up_binding` and relay
    /// the response back.
    ///
    /// The up-link binding is shared behind a mutex: SOAP intermediaries
    /// of the paper's era serialized on their upstream connection.
    pub fn bind_tcp<InE, UpE, UpB>(
        addr: &str,
        in_encoding: InE,
        up_encoding: UpE,
        up_binding: UpB,
    ) -> SoapResult<Intermediary>
    where
        InE: EncodingPolicy + Send + Sync + 'static,
        UpE: EncodingPolicy + Send + Sync + 'static,
        UpB: BindingPolicy + Send + 'static,
    {
        let upstream = Arc::new(Mutex::new((up_encoding, up_binding)));
        let inner = transport::TcpServer::bind(addr, move |request| {
            let result = relay(&in_encoding, &upstream, &request);
            match result {
                Ok(bytes) => bytes,
                Err(e) => {
                    let fault = fault_envelope(SoapFault::new(
                        FaultCode::Server,
                        &format!("intermediary relay failed: {e}"),
                    ));
                    in_encoding
                        .encode(&fault.to_document())
                        .unwrap_or_default()
                }
            }
        })?;
        Ok(Intermediary { inner })
    }

    /// The relay's listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stop relaying.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

fn relay<InE, UpE, UpB>(
    in_encoding: &InE,
    upstream: &Mutex<(UpE, UpB)>,
    request: &[u8],
) -> SoapResult<Vec<u8>>
where
    InE: EncodingPolicy,
    UpE: EncodingPolicy,
    UpB: BindingPolicy,
{
    // Decode on the down-link encoding...
    let doc = in_encoding.decode(request)?;
    // (Validate it is an envelope — intermediaries are SOAP nodes, not
    // byte pipes.)
    let mut envelope = SoapEnvelope::from_document(&doc)?;

    // A `bx:Deadline` header makes this hop budget- and hop-aware: an
    // already-spent budget is refused without touching the upstream, an
    // exhausted hop count is the *sender's* mistake (likely a routing
    // loop), and otherwise the remaining budget becomes this hop's local
    // clock, clamping the up-link exchange.
    let budget = match DeadlineHeader::from_envelope(&envelope)? {
        Some(h) if h.expired() => {
            let fault = fault_envelope(SoapFault::deadline_expired(EXPIRED_RETRY_AFTER));
            return in_encoding.encode(&fault.to_document());
        }
        Some(h) if h.hops == 0 => {
            let fault = fault_envelope(SoapFault::new(
                FaultCode::Client,
                "bx:Deadline hop count exhausted at intermediary",
            ));
            return in_encoding.encode(&fault.to_document());
        }
        Some(h) => Some((h, h.start())),
        None => None,
    };

    // ...re-encode and forward on the up-link policies...
    let response_doc = {
        let mut guard = upstream.lock();
        let (up_encoding, up_binding) = &mut *guard;
        if let Some((header, local)) = &budget {
            // Forward what is left of the budget (transit and transcode
            // time already spent here comes off the top) with one hop
            // consumed, and cap the upstream socket work the same way.
            header.decremented(local.elapsed()).stamp(&mut envelope);
            up_binding.set_call_deadline(Some(*local));
        }
        let payload = up_encoding.encode(&envelope.to_document())?;
        let exchanged = up_binding.exchange(&payload, up_encoding.content_type());
        if budget.is_some() {
            up_binding.set_call_deadline(None);
        }
        up_encoding.decode(&exchanged?)?
    };

    // ...and relay the response back in the down-link encoding.
    in_encoding.encode(&response_doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::TcpBinding;
    use crate::encoding::{BxsaEncoding, XmlEncoding};
    use crate::engine::SoapEngine;
    use crate::server::TcpSoapServer;
    use crate::service::ServiceRegistry;
    use bxdm::{AtomicValue, Element};

    fn upper_registry() -> Arc<ServiceRegistry> {
        Arc::new(ServiceRegistry::new().with_operation("Upper", |req| {
            let text = req
                .body_element()
                .expect("dispatch checked")
                .child_value("s")
                .and_then(AtomicValue::as_str)
                .unwrap_or("")
                .to_uppercase();
            Ok(SoapEnvelope::with_body(
                Element::component("UpperResponse")
                    .with_child(Element::leaf("s", AtomicValue::Str(text))),
            ))
        }))
    }

    #[test]
    fn xml_client_bxsa_hop_xml_server() {
        // Terminal service speaks XML over TCP.
        let server =
            TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), upper_registry())
                .unwrap();

        // Intermediary: listens in BXSA, forwards in XML — the message
        // crosses the middle hop in binary even though both ends are
        // textual (the transcodability scenario of §5.1).
        let relay = Intermediary::bind_tcp(
            "127.0.0.1:0",
            BxsaEncoding::default(),
            XmlEncoding::default(),
            TcpBinding::new(&server.local_addr().to_string()),
        )
        .unwrap();

        // Client speaks BXSA to the relay.
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&relay.local_addr().to_string()),
        );
        let resp = engine
            .call(SoapEnvelope::with_body(
                Element::component("Upper")
                    .with_child(Element::leaf("s", AtomicValue::Str("hello".into()))),
            ))
            .unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("s"),
            Some(&AtomicValue::Str("HELLO".into()))
        );

        relay.shutdown();
        server.shutdown();
    }

    #[test]
    fn relay_surfaces_upstream_faults() {
        let server =
            TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), upper_registry())
                .unwrap();
        let relay = Intermediary::bind_tcp(
            "127.0.0.1:0",
            BxsaEncoding::default(),
            XmlEncoding::default(),
            TcpBinding::new(&server.local_addr().to_string()),
        )
        .unwrap();
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&relay.local_addr().to_string()),
        );
        match engine.call(SoapEnvelope::with_body(Element::component("Nope"))) {
            Err(crate::error::SoapError::Fault(f)) => {
                assert_eq!(f.code, FaultCode::Client);
            }
            other => panic!("expected relayed fault, got {other:?}"),
        }
        relay.shutdown();
        server.shutdown();
    }

    #[test]
    fn relay_with_dead_upstream_faults_cleanly() {
        let relay = Intermediary::bind_tcp(
            "127.0.0.1:0",
            BxsaEncoding::default(),
            XmlEncoding::default(),
            TcpBinding::new("127.0.0.1:1"), // nothing listening
        )
        .unwrap();
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&relay.local_addr().to_string()),
        );
        match engine.call(SoapEnvelope::with_body(Element::component("Upper"))) {
            Err(crate::error::SoapError::Fault(f)) => {
                assert_eq!(f.code, FaultCode::Server);
                assert!(f.string.contains("relay failed"));
            }
            other => panic!("expected server fault, got {other:?}"),
        }
        relay.shutdown();
    }
}
