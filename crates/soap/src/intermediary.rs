//! SOAP intermediaries: hop-by-hop relaying with re-encoding.
//!
//! Paper §5.1: "SOAP messages are designed to be transferred in a
//! hop-by-hop style between the SOAP nodes and the bindings between the
//! hops can be various... the intermediary node can just simply deploy
//! multiple generic SOAP engines with different policy configurations to
//! serve the up-link and down-link message flows. Furthermore,
//! transcodability enables BXSA to be the intermediate protocol over the
//! message hops, even when the message sender and receiver are
//! communicating via textual XML."
//!
//! An [`Intermediary`] listens with one (encoding, transport) pair and
//! forwards with another; the message crosses the hop as a bXDM tree, so
//! nothing is lost in the re-encode.
//!
//! [`bind_http_streaming`](Intermediary::bind_http_streaming) extends
//! the relay to streamed messages: each part is forwarded (or
//! transcoded) the moment its chunk completes, so the relay holds one
//! part — never the message — and a gigabyte payload crosses the hop in
//! O(window) memory. When both hops speak the same encoding, payload
//! parts are forwarded *verbatim*: BXSA element frames self-describe
//! their byte order, so the middle hop never even decodes them.

use std::net::SocketAddr;
use std::sync::Arc;

use bxdm::Document;
use parking_lot::Mutex;
use transport::{
    HttpConnection, HttpRequest, HttpResponse, StreamReply as WireReply, Timeouts,
    TransportResult,
};

use crate::binding::{BindingPolicy, HttpBinding};
use crate::encoding::EncodingPolicy;
use crate::envelope::{DeadlineHeader, SoapEnvelope};
use crate::error::{SoapError, SoapResult};
use crate::fault::{FaultCode, SoapFault};
use crate::metrics;
use crate::service::{fault_envelope, fault_for_error, EXPIRED_RETRY_AFTER};
use crate::streaming::{wire_err, PartScratch, StreamEncoding, MAX_PART_LEN};

/// The listening half of a relay: framed TCP or reactor HTTP.
enum Inner {
    Tcp(transport::TcpServer),
    Http(transport::HttpServer),
}

/// A running relay node.
pub struct Intermediary {
    inner: Inner,
}

impl Intermediary {
    /// Listen on framed TCP at `addr` with down-link encoding `InE`;
    /// forward every message through `up_encoding`/`up_binding` and relay
    /// the response back.
    ///
    /// The up-link binding is shared behind a mutex: SOAP intermediaries
    /// of the paper's era serialized on their upstream connection.
    pub fn bind_tcp<InE, UpE, UpB>(
        addr: &str,
        in_encoding: InE,
        up_encoding: UpE,
        up_binding: UpB,
    ) -> SoapResult<Intermediary>
    where
        InE: EncodingPolicy + Send + Sync + 'static,
        UpE: EncodingPolicy + Send + Sync + 'static,
        UpB: BindingPolicy + Send + 'static,
    {
        let upstream = Arc::new(Mutex::new((up_encoding, up_binding)));
        let inner = transport::TcpServer::bind(addr, move |request| {
            let result = relay(&in_encoding, &upstream, &request);
            match result {
                Ok(bytes) => bytes,
                Err(e) => {
                    let fault = fault_envelope(SoapFault::new(
                        FaultCode::Server,
                        &format!("intermediary relay failed: {e}"),
                    ));
                    in_encoding
                        .encode(&fault.to_document())
                        .unwrap_or_default()
                }
            }
        })?;
        Ok(Intermediary {
            inner: Inner::Tcp(inner),
        })
    }

    /// Listen over HTTP at `addr`/`path` with down-link encoding `InE`
    /// and relay every call — buffered or streamed — to the HTTP SOAP
    /// endpoint at `upstream_addr`/`upstream_path` in `UpE`.
    ///
    /// Streamed requests stay streamed across the hop: each chunked part
    /// is forwarded upstream as it arrives and each reply part is pulled
    /// on demand, so the relay's memory stays O(window) regardless of
    /// message size — backpressure propagates end to end through the two
    /// TCP windows. Buffered (non-chunked) requests take the classic
    /// decode/re-encode path. Each streamed exchange dials its own
    /// upstream connection (concurrent streams must not serialize);
    /// buffered exchanges share one keep-alive upstream connection.
    pub fn bind_http_streaming<InE, UpE>(
        addr: &str,
        path: &str,
        in_encoding: InE,
        up_encoding: UpE,
        upstream_addr: &str,
        upstream_path: &str,
    ) -> SoapResult<Intermediary>
    where
        InE: StreamEncoding + Send + Sync + 'static,
        UpE: StreamEncoding + Send + Sync + 'static,
    {
        let target = Arc::new(RelayTarget {
            in_enc: in_encoding,
            up_enc: up_encoding,
            upstream_addr: upstream_addr.to_owned(),
            upstream_path: upstream_path.to_owned(),
        });

        let stream_target = Arc::clone(&target);
        let stream_path = path.to_owned();
        let buffered_path = path.to_owned();
        // Buffered fallback reuses the classic relay loop over a shared
        // keep-alive upstream HTTP connection.
        let buffered_upstream = Arc::new(Mutex::new((
            (),
            HttpBinding::new(upstream_addr, upstream_path),
        )));
        let buffered_target = Arc::clone(&target);

        let inner = transport::ServerBuilder::bind(addr)
            .stream_factory(move |head| {
                if head.method != "POST" || head.path != stream_path {
                    return None;
                }
                Some(Box::new(RelaySession::new(Arc::clone(&stream_target))))
            })
            .serve_http(move |request| {
                if request.method != "POST" || request.path != buffered_path {
                    return HttpResponse::not_found();
                }
                let t = &buffered_target;
                let result = {
                    let mut guard = buffered_upstream.lock();
                    let ((), binding) = &mut *guard;
                    relay_buffered(&t.in_enc, &t.up_enc, binding, &request.body)
                };
                let content_type = t.in_enc.content_type();
                match result {
                    Ok(bytes) => HttpResponse::ok(content_type, bytes),
                    Err(e) => {
                        let fault = fault_envelope(SoapFault::new(
                            FaultCode::Server,
                            &format!("intermediary relay failed: {e}"),
                        ));
                        HttpResponse::server_error(
                            t.in_enc.encode(&fault.to_document()).unwrap_or_default(),
                        )
                        .with_header("Content-Type", content_type)
                    }
                }
            })?;
        Ok(Intermediary {
            inner: Inner::Http(inner),
        })
    }

    /// The relay's listening address.
    pub fn local_addr(&self) -> SocketAddr {
        match &self.inner {
            Inner::Tcp(s) => s.local_addr(),
            Inner::Http(s) => s.local_addr(),
        }
    }

    /// Stop relaying.
    pub fn shutdown(self) {
        match self.inner {
            Inner::Tcp(s) => s.shutdown(),
            Inner::Http(s) => s.shutdown(),
        }
    }
}

fn relay<InE, UpE, UpB>(
    in_encoding: &InE,
    upstream: &Mutex<(UpE, UpB)>,
    request: &[u8],
) -> SoapResult<Vec<u8>>
where
    InE: EncodingPolicy,
    UpE: EncodingPolicy,
    UpB: BindingPolicy,
{
    // Decode on the down-link encoding...
    let doc = in_encoding.decode(request)?;
    // (Validate it is an envelope — intermediaries are SOAP nodes, not
    // byte pipes.)
    let mut envelope = SoapEnvelope::from_document(&doc)?;

    // A `bx:Deadline` header makes this hop budget- and hop-aware: an
    // already-spent budget is refused without touching the upstream, an
    // exhausted hop count is the *sender's* mistake (likely a routing
    // loop), and otherwise the remaining budget becomes this hop's local
    // clock, clamping the up-link exchange.
    let budget = match DeadlineHeader::from_envelope(&envelope)? {
        Some(h) if h.expired() => {
            let fault = fault_envelope(SoapFault::deadline_expired(EXPIRED_RETRY_AFTER));
            return in_encoding.encode(&fault.to_document());
        }
        Some(h) if h.hops == 0 => {
            let fault = fault_envelope(SoapFault::new(
                FaultCode::Client,
                "bx:Deadline hop count exhausted at intermediary",
            ));
            return in_encoding.encode(&fault.to_document());
        }
        Some(h) => Some((h, h.start())),
        None => None,
    };

    // ...re-encode and forward on the up-link policies...
    let response_doc = {
        let mut guard = upstream.lock();
        let (up_encoding, up_binding) = &mut *guard;
        if let Some((header, local)) = &budget {
            // Forward what is left of the budget (transit and transcode
            // time already spent here comes off the top) with one hop
            // consumed, and cap the upstream socket work the same way.
            header.decremented(local.elapsed()).stamp(&mut envelope);
            up_binding.set_call_deadline(Some(*local));
        }
        let payload = up_encoding.encode(&envelope.to_document())?;
        let exchanged = up_binding.exchange(&payload, up_encoding.content_type());
        if budget.is_some() {
            up_binding.set_call_deadline(None);
        }
        up_encoding.decode(&exchanged?)?
    };

    // ...and relay the response back in the down-link encoding.
    in_encoding.encode(&response_doc)
}

/// The buffered-HTTP variant of [`relay`]: same envelope/deadline
/// discipline, but the upstream is an [`HttpBinding`] owned by the
/// caller (the encodings live outside the mutex here).
fn relay_buffered<InE, UpE>(
    in_encoding: &InE,
    up_encoding: &UpE,
    up_binding: &mut HttpBinding,
    request: &[u8],
) -> SoapResult<Vec<u8>>
where
    InE: EncodingPolicy,
    UpE: EncodingPolicy,
{
    let doc = in_encoding.decode(request)?;
    let mut envelope = SoapEnvelope::from_document(&doc)?;
    let budget = match DeadlineHeader::from_envelope(&envelope)? {
        Some(h) if h.expired() => {
            let fault = fault_envelope(SoapFault::deadline_expired(EXPIRED_RETRY_AFTER));
            return in_encoding.encode(&fault.to_document());
        }
        Some(h) if h.hops == 0 => {
            let fault = fault_envelope(SoapFault::new(
                FaultCode::Client,
                "bx:Deadline hop count exhausted at intermediary",
            ));
            return in_encoding.encode(&fault.to_document());
        }
        Some(h) => Some((h, h.start())),
        None => None,
    };
    if let Some((header, local)) = &budget {
        header.decremented(local.elapsed()).stamp(&mut envelope);
        up_binding.set_call_deadline(Some(*local));
    }
    let payload = up_encoding.encode(&envelope.to_document())?;
    let exchanged = up_binding.exchange(&payload, up_encoding.content_type());
    if budget.is_some() {
        up_binding.set_call_deadline(None);
    }
    let response_doc = up_encoding.decode(&exchanged?)?;
    in_encoding.encode(&response_doc)
}

/// What a streamed relay forwards to.
struct RelayTarget<InE, UpE> {
    in_enc: InE,
    up_enc: UpE,
    upstream_addr: String,
    upstream_path: String,
}

/// Where one streamed relay exchange stands.
enum RelayState {
    /// Nothing received: the first part must be the manifest.
    AwaitManifest,
    /// Manifest forwarded; parts are proxying through.
    Proxying,
    /// The request phase failed: the encoded (down-link) fault waits for
    /// the sender's terminator; further parts are drained silently.
    Faulted(Vec<u8>),
}

/// One streamed exchange through the relay: an own upstream connection,
/// parts forwarded as chunks complete, the reply pulled part by part.
struct RelaySession<InE, UpE> {
    target: Arc<RelayTarget<InE, UpE>>,
    state: RelayState,
    /// The upstream connection, dialed when the manifest arrives.
    conn: Option<HttpConnection>,
    /// Same encoding on both hops: payload parts cross untouched (BXSA
    /// frames self-describe byte order, so bytes are portable as-is).
    verbatim: bool,
    /// Per-part transcode scratch (decode target).
    scratch: PartScratch,
    /// Manifest (whole-envelope) decode target.
    doc: Document,
    /// Encode landing zone: outgoing manifest, transcoded parts,
    /// upstream reply parts.
    buf: Vec<u8>,
    /// Transcoded reply manifest, emitted as the first reply part.
    reply_manifest: Vec<u8>,
    manifest_sent: bool,
}

impl<InE, UpE> RelaySession<InE, UpE>
where
    InE: StreamEncoding,
    UpE: StreamEncoding,
{
    fn new(target: Arc<RelayTarget<InE, UpE>>) -> RelaySession<InE, UpE> {
        let verbatim = target.in_enc.name() == target.up_enc.name();
        RelaySession {
            target,
            state: RelayState::AwaitManifest,
            conn: None,
            verbatim,
            scratch: PartScratch::default(),
            doc: Document::new(),
            buf: Vec::new(),
            reply_manifest: Vec::new(),
            manifest_sent: false,
        }
    }

    /// Doom the exchange: pre-encode the down-link fault and drop any
    /// upstream connection (it cannot be cleanly reused mid-stream).
    fn fault(&mut self, fault: SoapFault) {
        self.conn = None;
        let mut out = Vec::new();
        let envelope = fault_envelope(fault);
        if self
            .target
            .in_enc
            .encode_into(&envelope.to_document(), &mut out)
            .is_err()
        {
            out.clear();
            out.extend_from_slice(b"fault encoding failed");
        }
        self.state = RelayState::Faulted(out);
    }

    /// Decode the manifest, apply the hop/deadline discipline, dial the
    /// upstream, and forward the (re-stamped, re-encoded) manifest.
    fn handle_manifest(&mut self, part: &[u8]) {
        let opened = (|| -> SoapResult<HttpConnection> {
            let t = &self.target;
            t.in_enc.decode_into(part, &mut self.doc)?;
            let mut envelope = SoapEnvelope::from_document(&self.doc)?;
            let budget = match DeadlineHeader::from_envelope(&envelope)? {
                Some(h) if h.expired() => {
                    return Err(SoapError::Fault(SoapFault::deadline_expired(
                        EXPIRED_RETRY_AFTER,
                    )))
                }
                Some(h) if h.hops == 0 => {
                    return Err(SoapError::Fault(SoapFault::new(
                        FaultCode::Client,
                        "bx:Deadline hop count exhausted at intermediary",
                    )))
                }
                Some(h) => Some((h, h.start())),
                None => None,
            };
            let mut timeouts = Timeouts::none();
            if let Some((header, local)) = &budget {
                header.decremented(local.elapsed()).stamp(&mut envelope);
                timeouts = timeouts.clamped_to(local).map_err(SoapError::Transport)?;
            }
            let mut conn = HttpConnection::new(&t.upstream_addr);
            let head = HttpRequest::post(&t.upstream_path, t.up_enc.content_type(), Vec::new());
            conn.stream_begin_with(&head, &timeouts)
                .map_err(SoapError::Transport)?;
            t.up_enc.encode_into(&envelope.to_document(), &mut self.buf)?;
            conn.stream_send_part(&self.buf)
                .map_err(SoapError::Transport)?;
            Ok(conn)
        })();
        match opened {
            Ok(conn) => {
                self.conn = Some(conn);
                self.state = RelayState::Proxying;
            }
            Err(e) => self.fault(fault_for_error(e)),
        }
    }

    /// Forward one payload part upstream, transcoding unless the hops
    /// share an encoding.
    fn forward_part(&mut self, part: &[u8]) -> SoapResult<()> {
        let t = &self.target;
        let conn = self.conn.as_mut().expect("proxying state has a connection");
        if self.verbatim {
            return conn.stream_send_part(part).map_err(SoapError::Transport);
        }
        let elem = t.in_enc.decode_part(part, &mut self.scratch)?;
        t.up_enc.encode_part_into(elem, &mut self.buf)?;
        conn.stream_send_part(&self.buf).map_err(SoapError::Transport)
    }
}

impl<InE, UpE> transport::StreamSession for RelaySession<InE, UpE>
where
    InE: StreamEncoding + Send + Sync + 'static,
    UpE: StreamEncoding + Send + Sync + 'static,
{
    fn on_part(&mut self, part: &[u8]) -> TransportResult<()> {
        match &mut self.state {
            RelayState::AwaitManifest => {
                metrics::stream().streams.inc();
                self.handle_manifest(part);
            }
            RelayState::Proxying => {
                if let Err(e) = self.forward_part(part) {
                    // Our reply head is not out yet, so the sender can
                    // still get a clean in-band fault once it finishes.
                    self.fault(fault_for_error(e));
                }
            }
            RelayState::Faulted(_) => {}
        }
        Ok(())
    }

    fn finish(&mut self) -> TransportResult<WireReply> {
        let content_type = self.target.in_enc.content_type();
        match &mut self.state {
            RelayState::AwaitManifest => {
                self.fault(SoapFault::new(
                    FaultCode::Client,
                    "streamed request ended before its manifest",
                ));
                self.finish()
            }
            RelayState::Proxying => {
                let relayed = (|| -> SoapResult<WireReply> {
                    let conn = self.conn.as_mut().expect("proxying has a connection");
                    conn.stream_finish_send().map_err(SoapError::Transport)?;
                    let mut response = HttpResponse::ok(content_type, Vec::new());
                    let streamed = conn
                        .stream_read_head(&mut response)
                        .map_err(SoapError::Transport)?;
                    let t = &self.target;
                    if !streamed {
                        // Buffered upstream reply (typically a fault):
                        // transcode the whole body and mirror the status.
                        t.up_enc.decode_into(&response.body, &mut self.doc)?;
                        let mut out = Vec::new();
                        t.in_enc.encode_into(&self.doc, &mut out)?;
                        let mut reply = HttpResponse::ok(content_type, out);
                        reply.status = response.status;
                        return Ok(WireReply::Buffered(reply));
                    }
                    // Streamed reply: its first part is the manifest —
                    // transcode it now, while a clean fault downstream is
                    // still possible, and hold it as our first part.
                    if !conn
                        .stream_next_part_into(&mut self.buf, MAX_PART_LEN)
                        .map_err(SoapError::Transport)?
                    {
                        return Err(SoapError::Protocol(
                            "upstream streamed reply ended before its manifest".into(),
                        ));
                    }
                    if self.verbatim {
                        std::mem::swap(&mut self.reply_manifest, &mut self.buf);
                    } else {
                        t.up_enc.decode_into(&self.buf, &mut self.doc)?;
                        t.in_enc.encode_into(&self.doc, &mut self.reply_manifest)?;
                    }
                    self.manifest_sent = false;
                    Ok(WireReply::Streamed(HttpResponse::ok(
                        content_type,
                        Vec::new(),
                    )))
                })();
                match relayed {
                    Ok(reply) => Ok(reply),
                    Err(e) => {
                        self.fault(fault_for_error(SoapError::Fault(SoapFault::new(
                            FaultCode::Server,
                            &format!("intermediary relay failed: {e}"),
                        ))));
                        self.finish()
                    }
                }
            }
            RelayState::Faulted(bytes) => Ok(WireReply::Buffered(
                HttpResponse::server_error(std::mem::take(bytes))
                    .with_header("Content-Type", content_type),
            )),
        }
    }

    fn next_part(&mut self, out: &mut Vec<u8>) -> TransportResult<bool> {
        if !self.manifest_sent {
            self.manifest_sent = true;
            std::mem::swap(out, &mut self.reply_manifest);
            return Ok(true);
        }
        let Some(conn) = self.conn.as_mut() else {
            return Ok(false);
        };
        if self.verbatim {
            // One pull, zero transcodes: upstream chunk bytes become the
            // downstream chunk directly.
            return conn.stream_next_part_into(out, MAX_PART_LEN);
        }
        if !conn.stream_next_part_into(&mut self.buf, MAX_PART_LEN)? {
            return Ok(false);
        }
        let t = &self.target;
        let elem = t
            .up_enc
            .decode_part(&self.buf, &mut self.scratch)
            .map_err(wire_err)?;
        t.in_enc.encode_part_into(elem, out).map_err(wire_err)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::TcpBinding;
    use crate::encoding::{BxsaEncoding, XmlEncoding};
    use crate::engine::{CallOptions, SoapEngine};
    use crate::server::TcpSoapServer;
    use crate::service::ServiceRegistry;
    use bxdm::{AtomicValue, Element};

    fn upper_registry() -> Arc<ServiceRegistry> {
        Arc::new(ServiceRegistry::new().with_operation("Upper", |req| {
            let text = req
                .body_element()
                .expect("dispatch checked")
                .child_value("s")
                .and_then(AtomicValue::as_str)
                .unwrap_or("")
                .to_uppercase();
            Ok(SoapEnvelope::with_body(
                Element::component("UpperResponse")
                    .with_child(Element::leaf("s", AtomicValue::Str(text))),
            ))
        }))
    }

    #[test]
    fn xml_client_bxsa_hop_xml_server() {
        // Terminal service speaks XML over TCP.
        let server =
            TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), upper_registry())
                .unwrap();

        // Intermediary: listens in BXSA, forwards in XML — the message
        // crosses the middle hop in binary even though both ends are
        // textual (the transcodability scenario of §5.1).
        let relay = Intermediary::bind_tcp(
            "127.0.0.1:0",
            BxsaEncoding::default(),
            XmlEncoding::default(),
            TcpBinding::new(&server.local_addr().to_string()),
        )
        .unwrap();

        // Client speaks BXSA to the relay.
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&relay.local_addr().to_string()),
        );
        let resp = engine
            .call_with(
                SoapEnvelope::with_body(
                    Element::component("Upper")
                        .with_child(Element::leaf("s", AtomicValue::Str("hello".into()))),
                ),
                &CallOptions::new(),
            )
            .unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("s"),
            Some(&AtomicValue::Str("HELLO".into()))
        );

        relay.shutdown();
        server.shutdown();
    }

    #[test]
    fn relay_surfaces_upstream_faults() {
        let server =
            TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), upper_registry())
                .unwrap();
        let relay = Intermediary::bind_tcp(
            "127.0.0.1:0",
            BxsaEncoding::default(),
            XmlEncoding::default(),
            TcpBinding::new(&server.local_addr().to_string()),
        )
        .unwrap();
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&relay.local_addr().to_string()),
        );
        match engine.call_with(
            SoapEnvelope::with_body(Element::component("Nope")),
            &CallOptions::new(),
        ) {
            Err(crate::error::SoapError::Fault(f)) => {
                assert_eq!(f.code, FaultCode::Client);
            }
            other => panic!("expected relayed fault, got {other:?}"),
        }
        relay.shutdown();
        server.shutdown();
    }

    #[test]
    fn relay_with_dead_upstream_faults_cleanly() {
        let relay = Intermediary::bind_tcp(
            "127.0.0.1:0",
            BxsaEncoding::default(),
            XmlEncoding::default(),
            TcpBinding::new("127.0.0.1:1"), // nothing listening
        )
        .unwrap();
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&relay.local_addr().to_string()),
        );
        match engine.call_with(
            SoapEnvelope::with_body(Element::component("Upper")),
            &CallOptions::new(),
        ) {
            Err(crate::error::SoapError::Fault(f)) => {
                assert_eq!(f.code, FaultCode::Server);
                assert!(f.string.contains("relay failed"));
            }
            other => panic!("expected server fault, got {other:?}"),
        }
        relay.shutdown();
    }
}
