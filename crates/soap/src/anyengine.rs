//! Runtime-selected engines.
//!
//! The generic engine binds its policies at compile time; a client that
//! discovers a service's encoding/binding at *runtime* (e.g. from a WSDL
//! document, paper §2: "Users are free to specify the alternative message
//! encoding/binding scheme in the WSDL file") needs one value type that
//! can hold any of the four instantiations. [`AnyEngine`] is that enum —
//! one `match` at the call boundary, statically-dispatched engines
//! inside.

use std::sync::Arc;

use crate::binding::{HttpBinding, TcpBinding};
use crate::encoding::{BxsaEncoding, XmlEncoding};
use crate::engine::{CallOptions, SoapEngine};
use crate::envelope::SoapEnvelope;
use crate::error::{SoapError, SoapResult};
use crate::service::ServiceMetadata;
use crate::typed::{FromBxsa, ToBxsa};

/// A wire configuration: which encoding and which transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireConfig {
    /// Message encoding.
    pub encoding: WireEncoding,
    /// Transport binding.
    pub transport: WireTransport,
}

/// The encodings this stack ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireEncoding {
    /// Textual XML 1.0.
    Xml,
    /// BXSA binary XML.
    Bxsa,
}

/// The transports this stack ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireTransport {
    /// Length-prefixed raw TCP.
    Tcp,
    /// HTTP POST.
    Http,
}

impl WireConfig {
    /// Parse the `(encoding, transport)` tokens used in WSDL extension
    /// attributes (`"bxsa"`/`"xml"`, `"tcp"`/`"http"`).
    pub fn parse(encoding: &str, transport: &str) -> SoapResult<WireConfig> {
        let encoding = match encoding {
            "xml" => WireEncoding::Xml,
            "bxsa" => WireEncoding::Bxsa,
            other => {
                return Err(SoapError::Protocol(format!(
                    "unknown encoding token {other:?}"
                )))
            }
        };
        let transport = match transport {
            "tcp" => WireTransport::Tcp,
            "http" => WireTransport::Http,
            other => {
                return Err(SoapError::Protocol(format!(
                    "unknown transport token {other:?}"
                )))
            }
        };
        Ok(WireConfig {
            encoding,
            transport,
        })
    }

    /// The tokens, for WSDL generation.
    pub fn tokens(&self) -> (&'static str, &'static str) {
        (
            match self.encoding {
                WireEncoding::Xml => "xml",
                WireEncoding::Bxsa => "bxsa",
            },
            match self.transport {
                WireTransport::Tcp => "tcp",
                WireTransport::Http => "http",
            },
        )
    }
}

/// One engine value covering all four policy combinations.
pub enum AnyEngine {
    /// XML over HTTP.
    XmlHttp(SoapEngine<XmlEncoding, HttpBinding>),
    /// XML over raw TCP.
    XmlTcp(SoapEngine<XmlEncoding, TcpBinding>),
    /// BXSA over HTTP.
    BxsaHttp(SoapEngine<BxsaEncoding, HttpBinding>),
    /// BXSA over raw TCP.
    BxsaTcp(SoapEngine<BxsaEncoding, TcpBinding>),
}

impl AnyEngine {
    /// Build an engine for a runtime wire configuration. `address` is a
    /// `host:port`; HTTP bindings additionally take `path`.
    pub fn connect(config: WireConfig, address: &str, path: &str) -> AnyEngine {
        match (config.encoding, config.transport) {
            (WireEncoding::Xml, WireTransport::Http) => AnyEngine::XmlHttp(SoapEngine::new(
                XmlEncoding::default(),
                HttpBinding::new(address, path),
            )),
            (WireEncoding::Xml, WireTransport::Tcp) => AnyEngine::XmlTcp(SoapEngine::new(
                XmlEncoding::default(),
                TcpBinding::new(address),
            )),
            (WireEncoding::Bxsa, WireTransport::Http) => AnyEngine::BxsaHttp(SoapEngine::new(
                BxsaEncoding::default(),
                HttpBinding::new(address, path),
            )),
            (WireEncoding::Bxsa, WireTransport::Tcp) => AnyEngine::BxsaTcp(SoapEngine::new(
                BxsaEncoding::default(),
                TcpBinding::new(address),
            )),
        }
    }

    /// [`connect`](AnyEngine::connect), but let the service's published
    /// metadata pick the encoding: if `operation` declares a
    /// [`preferred_encoding`](crate::OperationDefaults::preferred_encoding),
    /// it overrides `config.encoding` (the transport is the caller's
    /// business either way). The metadata is installed on the engine, so
    /// per-operation deadline/retry defaults apply to its calls too.
    pub fn connect_for_operation(
        metadata: Arc<ServiceMetadata>,
        operation: &str,
        mut config: WireConfig,
        address: &str,
        path: &str,
    ) -> AnyEngine {
        if let Some(preferred) = metadata.preferred_encoding(operation) {
            config.encoding = preferred;
        }
        AnyEngine::connect(config, address, path).with_metadata(metadata)
    }

    /// Request/response exchange with per-call options (dispatches to
    /// the inner engine's [`SoapEngine::call_with`]).
    pub fn call_with(
        &mut self,
        request: SoapEnvelope,
        options: &CallOptions,
    ) -> SoapResult<SoapEnvelope> {
        match self {
            AnyEngine::XmlHttp(e) => e.call_with(request, options),
            AnyEngine::XmlTcp(e) => e.call_with(request, options),
            AnyEngine::BxsaHttp(e) => e.call_with(request, options),
            AnyEngine::BxsaTcp(e) => e.call_with(request, options),
        }
    }

    /// Request/response exchange with the default options (dispatches to
    /// the inner engine). Prefer [`AnyEngine::call_with`] in new code.
    pub fn call(&mut self, request: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        self.call_with(request, &CallOptions::new())
    }

    /// Typed request/response exchange (dispatches to the inner engine's
    /// [`SoapEngine::call_typed`]) — the fast path is available on every
    /// wire configuration, since both shipped encodings implement
    /// [`crate::TypedEncoding`].
    pub fn call_typed<Req: ToBxsa, Resp: FromBxsa>(
        &mut self,
        request: &Req,
        options: &CallOptions,
    ) -> SoapResult<Resp> {
        match self {
            AnyEngine::XmlHttp(e) => e.call_typed(request, options),
            AnyEngine::XmlTcp(e) => e.call_typed(request, options),
            AnyEngine::BxsaHttp(e) => e.call_typed(request, options),
            AnyEngine::BxsaTcp(e) => e.call_typed(request, options),
        }
    }

    /// Install per-operation service metadata on the inner engine
    /// (chainable) — see [`SoapEngine::with_metadata`].
    pub fn with_metadata(mut self, metadata: Arc<ServiceMetadata>) -> AnyEngine {
        match &mut self {
            AnyEngine::XmlHttp(e) => e.set_metadata(Some(Arc::clone(&metadata))),
            AnyEngine::XmlTcp(e) => e.set_metadata(Some(Arc::clone(&metadata))),
            AnyEngine::BxsaHttp(e) => e.set_metadata(Some(Arc::clone(&metadata))),
            AnyEngine::BxsaTcp(e) => e.set_metadata(Some(Arc::clone(&metadata))),
        }
        self
    }

    /// One-way send.
    pub fn send(&mut self, message: SoapEnvelope) -> SoapResult<()> {
        match self {
            AnyEngine::XmlHttp(e) => e.send(message),
            AnyEngine::XmlTcp(e) => e.send(message),
            AnyEngine::BxsaHttp(e) => e.send(message),
            AnyEngine::BxsaTcp(e) => e.send(message),
        }
    }

    /// The configuration this engine was built for.
    pub fn config(&self) -> WireConfig {
        match self {
            AnyEngine::XmlHttp(_) => WireConfig {
                encoding: WireEncoding::Xml,
                transport: WireTransport::Http,
            },
            AnyEngine::XmlTcp(_) => WireConfig {
                encoding: WireEncoding::Xml,
                transport: WireTransport::Tcp,
            },
            AnyEngine::BxsaHttp(_) => WireConfig {
                encoding: WireEncoding::Bxsa,
                transport: WireTransport::Http,
            },
            AnyEngine::BxsaTcp(_) => WireConfig {
                encoding: WireEncoding::Bxsa,
                transport: WireTransport::Tcp,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HttpSoapServer, TcpSoapServer};
    use crate::service::ServiceRegistry;
    use bxdm::Element;
    use std::sync::Arc;

    fn registry() -> Arc<ServiceRegistry> {
        Arc::new(ServiceRegistry::new().with_operation("Ping", |_req| {
            Ok(SoapEnvelope::with_body(Element::component("Pong")))
        }))
    }

    #[test]
    fn config_token_roundtrip() {
        for (e, t) in [("xml", "tcp"), ("xml", "http"), ("bxsa", "tcp"), ("bxsa", "http")] {
            let c = WireConfig::parse(e, t).unwrap();
            assert_eq!(c.tokens(), (e, t));
        }
        assert!(WireConfig::parse("exi", "tcp").is_err());
        assert!(WireConfig::parse("xml", "smtp").is_err());
    }

    #[test]
    fn all_configs_reach_matching_servers() {
        let tcp_bxsa =
            TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), registry()).unwrap();
        let tcp_xml =
            TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), registry()).unwrap();
        let http_bxsa =
            HttpSoapServer::bind("127.0.0.1:0", "/s", BxsaEncoding::default(), registry())
                .unwrap();
        let http_xml =
            HttpSoapServer::bind("127.0.0.1:0", "/s", XmlEncoding::default(), registry())
                .unwrap();

        let cases = [
            ("bxsa", "tcp", tcp_bxsa.local_addr().to_string()),
            ("xml", "tcp", tcp_xml.local_addr().to_string()),
            ("bxsa", "http", http_bxsa.local_addr().to_string()),
            ("xml", "http", http_xml.local_addr().to_string()),
        ];
        for (enc, tr, addr) in &cases {
            let config = WireConfig::parse(enc, tr).unwrap();
            let mut engine = AnyEngine::connect(config, addr, "/s");
            assert_eq!(engine.config(), config);
            let resp = engine
                .call_with(SoapEnvelope::with_body(Element::component("Ping")), &crate::engine::CallOptions::new())
                .unwrap_or_else(|e| panic!("{enc}/{tr}: {e}"));
            assert_eq!(resp.operation(), Some("Pong"));
        }

        tcp_bxsa.shutdown();
        tcp_xml.shutdown();
        http_bxsa.shutdown();
        http_xml.shutdown();
    }
}
