//! The generic SOAP engine (paper §5, §5.1).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bxdm::Document;
use transport::{BreakerHandle, Deadline, Permit, RetryPolicy};

use crate::binding::BindingPolicy;
use crate::encoding::EncodingPolicy;
use crate::envelope::{DeadlineHeader, SoapEnvelope};
use crate::error::{SoapError, SoapResult};
use crate::metrics;
use crate::service::ServiceMetadata;
use crate::typed::{FromBxsa, ToBxsa, TypedDecode, TypedEncoding, TypedScratch};

/// Per-call knobs for [`SoapEngine::call_with`] — the one place where
/// idempotency, deadline, retry, and circuit-breaker decisions meet.
///
/// The default (`CallOptions::new()`) reproduces the classic
/// `call` behaviour: idempotent, no deadline, the engine's installed
/// retry policy and breaker. Each knob overrides one dimension:
///
/// ```
/// use soap::CallOptions;
/// use std::time::Duration;
///
/// let opts = CallOptions::new()
///     .within(Duration::from_millis(250))
///     .non_idempotent();
/// assert!(!opts.idempotent);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CallOptions {
    /// May the exchange be replayed on retry-safe failures? `false`
    /// suppresses all retries regardless of installed policy (the old
    /// `call_non_idempotent`). Note `Default` derives `false`; use
    /// [`CallOptions::new`] for the idempotent default.
    pub idempotent: bool,
    /// End-to-end budget for the whole call (all attempts and backoff
    /// delays included). When set, the engine stamps a `bx:Deadline`
    /// header with the *remaining* budget on every attempt and narrows
    /// the binding's socket timeouts to what is left.
    pub deadline: Option<Deadline>,
    /// Retry policy for this call only, overriding the engine's.
    pub retry_override: Option<RetryPolicy>,
    /// Circuit breaker for this call only, overriding the engine's.
    pub breaker: Option<BreakerHandle>,
}

impl CallOptions {
    /// The defaults: idempotent, no deadline, engine-level retry/breaker.
    pub fn new() -> CallOptions {
        CallOptions {
            idempotent: true,
            deadline: None,
            retry_override: None,
            breaker: None,
        }
    }

    /// Forbid replays: the request has side effects that must happen at
    /// most once (chainable).
    pub fn non_idempotent(mut self) -> CallOptions {
        self.idempotent = false;
        self
    }

    /// Attach an end-to-end deadline (chainable).
    pub fn with_deadline(mut self, deadline: Deadline) -> CallOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Start a deadline `budget` from now (chainable shorthand for
    /// [`with_deadline`](CallOptions::with_deadline)`(Deadline::within(budget))`).
    pub fn within(self, budget: Duration) -> CallOptions {
        self.with_deadline(Deadline::within(budget))
    }

    /// Use this retry policy instead of the engine's (chainable).
    pub fn with_retry(mut self, policy: RetryPolicy) -> CallOptions {
        self.retry_override = Some(policy);
        self
    }

    /// Use this circuit breaker instead of the engine's (chainable).
    pub fn with_breaker(mut self, breaker: BreakerHandle) -> CallOptions {
        self.breaker = Some(breaker);
        self
    }
}

/// A message-level security policy: transform outgoing envelopes (e.g.
/// attach a signature header) and check incoming ones.
///
/// Paper §5: "It will be straightforward to introduce more policies
/// (e.g., a security policy) into the generic engine by just adding more
/// template parameters" — this is that parameter. The default,
/// [`NoSecurity`], compiles to nothing.
pub trait SecurityPolicy {
    /// Transform an outgoing envelope (sign, encrypt, stamp...).
    fn apply(&self, envelope: SoapEnvelope) -> SoapResult<SoapEnvelope>;
    /// Check an incoming envelope; an error aborts the exchange.
    fn check(&self, envelope: &SoapEnvelope) -> SoapResult<()>;
}

/// The no-op security policy (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSecurity;

impl SecurityPolicy for NoSecurity {
    #[inline]
    fn apply(&self, envelope: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        Ok(envelope)
    }

    #[inline]
    fn check(&self, _envelope: &SoapEnvelope) -> SoapResult<()> {
        Ok(())
    }
}

/// A SOAP client engine, generic over its encoding, binding, and
/// (optionally) security policies.
///
/// The Rust rendering of the paper's
/// `template <typename EncodingPolicy, typename BindingPolicy> class
/// SoapEngine` — each policy combination monomorphizes into its own
/// engine with static dispatch throughout, so the encoding/transport
/// choice has zero runtime overhead and full inlining (paper §5: "Because
/// the binding is at compile time, compiler optimizations are not
/// impacted").
///
/// Sending a message follows §5.1 exactly: construct the message in the
/// bXDM model, invoke the encoding policy to serialize it into the octet
/// stream, transfer the stream via the binding policy. Receiving is the
/// reverse.
pub struct SoapEngine<E: EncodingPolicy, B: BindingPolicy, S: SecurityPolicy = NoSecurity> {
    encoding: E,
    binding: B,
    security: S,
    /// Retry failed exchanges whose failure class proves the server
    /// cannot have processed the request (`None` = fail fast).
    retry: Option<RetryPolicy>,
    /// Shared circuit breaker consulted before every connect attempt
    /// (`None` = always try). Per-call [`CallOptions::breaker`] wins.
    breaker: Option<BreakerHandle>,
    /// Exchanges attempted by the most recent call.
    last_attempts: u32,
    /// Request-serialization scratch, reused across calls so a client
    /// issuing many similarly-sized requests serializes allocation-free.
    encode_buf: Vec<u8>,
    /// Response-byte scratch: the binding lands each reply's payload
    /// here, reusing the buffer's capacity call over call.
    response_buf: Vec<u8>,
    /// Response-document scratch: each reply is decoded into this
    /// document in place, so steady-state decoding of similarly-shaped
    /// responses allocates nothing.
    decode_buf: Document,
    /// Typed-encode scratch (frame writer tables), reused across
    /// [`call_typed`](SoapEngine::call_typed) invocations.
    typed_scratch: TypedScratch,
    /// Per-part decode scratch for streamed replies
    /// ([`call_streaming`](SoapEngine::call_streaming)).
    part_scratch: crate::streaming::PartScratch,
    /// Per-operation call defaults, consulted whenever a call's operation
    /// name is known (always, for typed calls; the first body entry's
    /// local name otherwise). Explicit [`CallOptions`] fields win.
    metadata: Option<Arc<ServiceMetadata>>,
}

impl<E: EncodingPolicy, B: BindingPolicy> SoapEngine<E, B> {
    /// Assemble an engine from its two core policies (no security).
    pub fn new(encoding: E, binding: B) -> SoapEngine<E, B> {
        SoapEngine {
            encoding,
            binding,
            security: NoSecurity,
            retry: None,
            breaker: None,
            last_attempts: 0,
            encode_buf: Vec::new(),
            response_buf: Vec::new(),
            decode_buf: Document::new(),
            typed_scratch: TypedScratch::default(),
            part_scratch: Default::default(),
            metadata: None,
        }
    }
}

impl<E: EncodingPolicy, B: BindingPolicy, S: SecurityPolicy> SoapEngine<E, B, S> {
    /// Assemble an engine with an explicit security policy — the paper's
    /// "web service ... with the XML signature applied" configuration.
    pub fn with_security(encoding: E, binding: B, security: S) -> SoapEngine<E, B, S> {
        SoapEngine {
            encoding,
            binding,
            security,
            retry: None,
            breaker: None,
            last_attempts: 0,
            encode_buf: Vec::new(),
            response_buf: Vec::new(),
            decode_buf: Document::new(),
            typed_scratch: TypedScratch::default(),
            part_scratch: Default::default(),
            metadata: None,
        }
    }

    /// Enable retries for retry-safe transport failures (chainable).
    pub fn with_retry(mut self, policy: RetryPolicy) -> SoapEngine<E, B, S> {
        self.retry = Some(policy);
        self
    }

    /// Enable or disable retries in place.
    pub fn set_retry(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Route every call through a shared circuit breaker (chainable).
    /// Typically a [`transport::BreakerRegistry`] handle for the
    /// endpoint, so all engines talking to it share one view of its
    /// health.
    pub fn with_breaker(mut self, breaker: BreakerHandle) -> SoapEngine<E, B, S> {
        self.breaker = Some(breaker);
        self
    }

    /// Install or remove the circuit breaker in place.
    pub fn set_breaker(&mut self, breaker: Option<BreakerHandle>) {
        self.breaker = breaker;
    }

    /// Consult a service's per-operation metadata for call defaults
    /// (chainable). For every call whose operation name is known, the
    /// registered [`crate::service::OperationDefaults`] fill in whatever
    /// the explicit [`CallOptions`] left unset — deadline, retry policy,
    /// idempotency. Typically the `Arc` handed out by
    /// [`crate::ServiceRegistry::shared_metadata`].
    pub fn with_metadata(mut self, metadata: Arc<ServiceMetadata>) -> SoapEngine<E, B, S> {
        self.metadata = Some(metadata);
        self
    }

    /// Install or remove the per-operation metadata in place.
    pub fn set_metadata(&mut self, metadata: Option<Arc<ServiceMetadata>>) {
        self.metadata = metadata;
    }

    /// Merge per-operation defaults under the caller's explicit options.
    fn resolve_options(&self, operation: Option<&str>, explicit: &CallOptions) -> CallOptions {
        match (&self.metadata, operation) {
            (Some(meta), Some(op)) => meta.resolve(op, explicit),
            _ => explicit.clone(),
        }
    }

    /// Exchanges attempted by the most recent call (1 = no retries).
    pub fn last_call_attempts(&self) -> u32 {
        self.last_attempts
    }

    /// The encoding policy.
    pub fn encoding(&self) -> &E {
        &self.encoding
    }

    /// The binding policy.
    pub fn binding(&mut self) -> &mut B {
        &mut self.binding
    }

    /// Request/response message exchange with per-call options — the
    /// consolidated call surface; [`call`](SoapEngine::call) and
    /// [`call_non_idempotent`](SoapEngine::call_non_idempotent) are thin
    /// wrappers over it.
    ///
    /// A SOAP fault in the response surfaces as [`SoapError::Fault`],
    /// keeping the happy path a plain envelope.
    ///
    /// **Retries.** With a [`RetryPolicy`] installed (engine-level via
    /// [`with_retry`](SoapEngine::with_retry), or per-call via
    /// [`CallOptions::with_retry`]), failed exchanges are replayed — but
    /// **only** when `options.idempotent` holds *and* the failure class
    /// proves the server cannot have processed the request (connect
    /// refused; 503 with the server declining up front — see
    /// [`transport::TransportError::retry_safe`]). A timeout or reset
    /// after bytes went out is ambiguous, and a SOAP fault is an answer;
    /// neither is ever retried.
    ///
    /// **Deadline.** With [`CallOptions::deadline`] set, the whole call —
    /// every attempt and every backoff delay — shares one budget. Each
    /// attempt stamps a `bx:Deadline` header carrying the *remaining*
    /// milliseconds, so servers and intermediaries downstream inherit
    /// the caller's clock; the binding's socket timeouts are narrowed
    /// the same way. An exhausted budget surfaces as the typed
    /// [`transport::TransportError::TimedOut`].
    ///
    /// **Circuit breaker.** With a [`BreakerHandle`] installed, each
    /// attempt asks the breaker for admission first. While the circuit
    /// is open and no retry budget remains, the call fails fast with
    /// [`SoapError::CircuitOpen`] — zero connect attempts, the
    /// retry-after hint attached. A rejection is generated locally (no
    /// bytes were sent), so when a retry policy *is* installed it counts
    /// as a retry-safe failure: the engine waits out
    /// `max(backoff, retry_after)` — clamped to the policy's delay cap
    /// and the remaining deadline — and tries again, riding through the
    /// breaker's cooldown instead of aborting. Outcomes feed back:
    /// transport-level failures count against the endpoint; an answer of
    /// any kind (including a fault) counts as proof of life.
    pub fn call_with(
        &mut self,
        request: SoapEnvelope,
        options: &CallOptions,
    ) -> SoapResult<SoapEnvelope> {
        let options = self.resolve_options(request.operation(), options);
        let mut request = self.security.apply(request)?;
        self.run_exchange(
            &options,
            |enc, header, out| {
                if let Some(h) = header {
                    h.stamp(&mut request);
                }
                enc.encode_into(&request.to_document(), out)
            },
            |me| me.finish_call(),
        )
    }

    /// The exchange loop shared by the tree and typed call paths: encode
    /// (re-stamping the remaining deadline budget per attempt), admit via
    /// the breaker, exchange, classify failures, back off and retry —
    /// then hand the successful response bytes to `finish`.
    fn run_exchange<R>(
        &mut self,
        options: &CallOptions,
        mut encode: impl FnMut(&E, Option<&DeadlineHeader>, &mut Vec<u8>) -> SoapResult<()>,
        finish: impl FnOnce(&mut Self) -> SoapResult<R>,
    ) -> SoapResult<R> {
        // `Deadline::none()` is unbounded: treat it as no deadline so the
        // single-encode fast path below still applies.
        let deadline = options.deadline.filter(|d| d.budget().is_some());
        let breaker = options.breaker.as_ref().or(self.breaker.as_ref()).cloned();
        let retry = if options.idempotent {
            options.retry_override.as_ref().or(self.retry.as_ref()).cloned()
        } else {
            None
        };
        if deadline.is_none() {
            // No deadline: the bytes are identical across attempts, so
            // serialize exactly once, outside the loop.
            encode(&self.encoding, None, &mut self.encode_buf)?;
        }
        self.binding.set_call_deadline(deadline);
        self.last_attempts = 0;
        let m = metrics::engine();
        m.calls.inc();
        let call_start = Instant::now();
        let mut schedule = retry.as_ref().map(|p| p.schedule());
        let result = 'call: loop {
            let error = 'attempt: {
                if let Some(d) = &deadline {
                    // Gate the attempt on budget left, and re-stamp/
                    // re-encode so the wire header carries the
                    // *remaining* budget.
                    if let Err(e) = d.remaining() {
                        m.deadline_expired.inc();
                        break 'call Err(SoapError::Transport(e));
                    }
                    let header = DeadlineHeader::from_deadline(d);
                    if let Err(e) = encode(&self.encoding, header.as_ref(), &mut self.encode_buf) {
                        break 'call Err(e);
                    }
                }
                if let Some(b) = &breaker {
                    if let Permit::Rejected { retry_after } = b.preflight() {
                        // A rejection is an ordinary retry-safe failure:
                        // nothing was sent, so a call with retry budget
                        // may wait out the cooldown below instead of
                        // aborting outright. Without a retry policy it
                        // still fails fast.
                        m.circuit_open.inc();
                        break 'attempt SoapError::CircuitOpen {
                            endpoint: b.endpoint().to_owned(),
                            retry_after,
                        };
                    }
                }
                self.last_attempts += 1;
                m.attempts.inc();
                match self.binding.exchange_into(
                    &self.encode_buf,
                    self.encoding.content_type(),
                    &mut self.response_buf,
                ) {
                    Ok(()) => {
                        if let Some(b) = &breaker {
                            b.record(true);
                        }
                        break 'call finish(self);
                    }
                    Err(e) => {
                        if let Some(b) = &breaker {
                            // Only transport-level failures indict the
                            // endpoint; any decoded answer (even a
                            // fault) proves it is alive.
                            b.record(!matches!(&e, SoapError::Transport(_)));
                        }
                        break 'attempt e;
                    }
                }
            };
            // May this failure be replayed, and did the other side name a
            // wait? A breaker rejection is generated locally — no bytes
            // reached the endpoint — so it is definitively retry-safe,
            // and its remaining cooldown is the wait hint. A 503 carries
            // its Retry-After the same way.
            let (retry_safe, hint) = match &error {
                SoapError::CircuitOpen { retry_after, .. } => (true, Some(*retry_after)),
                SoapError::Transport(t) => (
                    t.retry_safe(),
                    match t {
                        transport::TransportError::HttpStatus {
                            retry_after_secs: Some(secs),
                            ..
                        } => Some(Duration::from_secs(*secs)),
                        _ => None,
                    },
                ),
                _ => (false, None),
            };
            let delay = if retry_safe {
                schedule.as_mut().and_then(|s| s.next_delay())
            } else {
                None
            };
            let Some(mut delay) = delay else {
                break Err(error);
            };
            if let Some(hint) = hint {
                // The backpressure hint stretches the backoff, bounded by
                // the policy's delay cap so a hostile hint cannot park
                // the client; the stretch is charged against the total
                // sleep budget like any other wait.
                let cap = retry.as_ref().expect("retrying implies policy").cap;
                let stretched = delay.max(hint.min(cap));
                if let Some(s) = schedule.as_mut() {
                    s.absorb(stretched - delay);
                }
                delay = stretched;
            }
            if let Some(d) = &deadline {
                // Sleeping past the deadline cannot help: the budget
                // would expire mid-backoff, so surface the real error.
                match d.remaining() {
                    Ok(Some(left)) if delay < left => {}
                    _ => break Err(error),
                }
            }
            m.retries.inc();
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        };
        self.binding.set_call_deadline(None);
        m.call_latency.observe_duration(call_start.elapsed());
        result
    }

    /// Request/response message exchange with the default options
    /// (idempotent; engine-level retry and breaker; no deadline).
    ///
    /// Legacy surface, kept as a thin wrapper.
    #[deprecated(
        since = "0.9.0",
        note = "use `call_with(request, &CallOptions::new())`"
    )]
    pub fn call(&mut self, request: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        self.call_with(request, &CallOptions::new())
    }

    /// Request/response exchange for requests with side effects that
    /// must not be replayed: never retries, whatever policy is installed.
    ///
    /// Legacy surface, kept as a thin wrapper.
    #[deprecated(
        since = "0.9.0",
        note = "use `call_with(request, &CallOptions::new().non_idempotent())`"
    )]
    pub fn call_non_idempotent(&mut self, request: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        self.call_with(request, &CallOptions::new().non_idempotent())
    }

    fn finish_call(&mut self) -> SoapResult<SoapEnvelope> {
        self.encoding
            .decode_into(&self.response_buf, &mut self.decode_buf)?;
        let envelope = SoapEnvelope::from_document(&self.decode_buf)?;
        if let Some(fault) = envelope.as_fault() {
            return Err(SoapError::Fault(fault));
        }
        self.security.check(&envelope)?;
        Ok(envelope)
    }

    /// One-way message (no response expected).
    pub fn send(&mut self, message: SoapEnvelope) -> SoapResult<()> {
        let message = self.security.apply(message)?;
        let doc = message.to_document();
        self.encoding.encode_into(&doc, &mut self.encode_buf)?;
        self.binding
            .send_one_way(&self.encode_buf, self.encoding.content_type())
    }
}

/// The typed fast path (no-security engines only: a [`SecurityPolicy`]
/// transforms envelope *trees*, which the typed path never builds — a
/// secured engine keeps the tree surface).
impl<E: TypedEncoding, B: BindingPolicy> SoapEngine<E, B, NoSecurity> {
    /// [`call_with`](SoapEngine::call_with) without the tree: `request`
    /// serializes straight to wire bytes via [`ToBxsa`] and the reply
    /// decodes straight into a `Resp` via [`FromBxsa`]. Retry, deadline,
    /// breaker, and per-operation metadata semantics are identical —
    /// both paths share one exchange loop.
    ///
    /// Replies that don't match `Resp`'s shape fall back to the generic
    /// tree decoder, so faults still surface as [`SoapError::Fault`].
    pub fn call_typed<Req: ToBxsa, Resp: FromBxsa>(
        &mut self,
        request: &Req,
        options: &CallOptions,
    ) -> SoapResult<Resp> {
        let mut response = Resp::default();
        self.call_typed_into(request, &mut response, options)?;
        Ok(response)
    }

    /// [`call_typed`](SoapEngine::call_typed) decoding into a reusable
    /// response struct (clear-and-refill), so a steady-state caller
    /// allocates nothing per call.
    pub fn call_typed_into<Req: ToBxsa, Resp: FromBxsa>(
        &mut self,
        request: &Req,
        response: &mut Resp,
        options: &CallOptions,
    ) -> SoapResult<()> {
        let options = self.resolve_options(Some(request.element_name().local), options);
        let mut scratch = std::mem::take(&mut self.typed_scratch);
        let result = self.run_exchange(
            &options,
            |enc, header, out| enc.encode_typed(request, header, &mut scratch, out),
            |me| me.finish_typed_call(response),
        );
        self.typed_scratch = scratch;
        result
    }

    fn finish_typed_call<Resp: FromBxsa>(&mut self, response: &mut Resp) -> SoapResult<()> {
        let typed = self
            .encoding
            .decode_typed_reply(&self.response_buf, response);
        if let Ok(TypedDecode::Matched) = typed {
            return Ok(());
        }
        // Fallback: decode as a tree to classify the reply — a fault, a
        // foreign shape, or garbage (which errors here like any call).
        self.encoding
            .decode_into(&self.response_buf, &mut self.decode_buf)?;
        let envelope = SoapEnvelope::from_document(&self.decode_buf)?;
        if let Some(fault) = envelope.as_fault() {
            return Err(SoapError::Fault(fault));
        }
        match typed {
            // The shape matched well enough to be decoded generically
            // but a typed field was missing or mistyped: surface that.
            Err(e) => Err(e),
            _ => Err(SoapError::Protocol(format!(
                "typed call expected a {} reply, got {}",
                Resp::expected_local(),
                envelope.operation().unwrap_or("an empty body"),
            ))),
        }
    }
}

/// The streaming call path (HTTP binding only: chunked transfer-encoding
/// is the wire mechanism; no-security engines only: a security policy
/// would need the whole message, which streaming never materializes).
impl<E: crate::streaming::StreamEncoding> SoapEngine<E, crate::binding::HttpBinding, NoSecurity> {
    /// A streamed request/response exchange with constant memory on both
    /// sides: the `manifest` envelope opens the message (operation name,
    /// small parameters, the stamped deadline), then `produce` pushes
    /// the payload as individually encoded parts through a
    /// [`PartSender`], each transmitted — and forgotten — as one HTTP
    /// chunk. The reply comes back the same way: its manifest decodes
    /// eagerly and the payload parts are pulled one at a time from the
    /// returned [`StreamingReply`].
    ///
    /// Servers answer errors with a *buffered* fault (HTTP 500), which
    /// surfaces as [`SoapError::Fault`] exactly like the non-streamed
    /// path — including faults decided after the whole request streamed
    /// in.
    ///
    /// **No retries, ever.** Once the first part is on the wire the
    /// request is not replayable from memory (the parts are gone — that
    /// is the point), so failures surface immediately; the installed
    /// retry policy and any [`CallOptions::retry_override`] are ignored.
    /// A [`CallOptions::deadline`] still stamps the manifest and narrows
    /// every socket budget of the exchange. Per-operation metadata still
    /// resolves (for the deadline); breakers are not consulted (the
    /// exchange cannot be declined-and-replayed).
    ///
    /// [`PartSender`]: crate::streaming::PartSender
    /// [`StreamingReply`]: crate::streaming::StreamingReply
    pub fn call_streaming<F>(
        &mut self,
        manifest: SoapEnvelope,
        options: &CallOptions,
        produce: F,
    ) -> SoapResult<crate::streaming::StreamingReply<'_, E>>
    where
        F: FnOnce(&mut crate::streaming::PartSender<'_, E>) -> SoapResult<()>,
    {
        let options = self.resolve_options(manifest.operation(), options);
        let deadline = options.deadline.filter(|d| d.budget().is_some());
        let m = metrics::engine();
        m.calls.inc();
        m.attempts.inc();
        self.last_attempts = 1;
        metrics::stream().streams.inc();
        let mut manifest = manifest;
        if let Some(d) = &deadline {
            if let Err(e) = d.remaining() {
                m.deadline_expired.inc();
                return Err(SoapError::Transport(e));
            }
            if let Some(h) = DeadlineHeader::from_deadline(d) {
                h.stamp(&mut manifest);
            }
        }
        self.encoding
            .encode_into(&manifest.to_document(), &mut self.encode_buf)?;
        self.binding
            .stream_begin(self.encoding.content_type(), deadline.as_ref())?;
        self.binding.stream_send_part(&self.encode_buf)?;
        metrics::stream().parts_out.inc();
        let mut sender = crate::streaming::PartSender::new(
            &self.encoding,
            &mut self.binding,
            &mut self.encode_buf,
        );
        produce(&mut sender)?;
        self.binding.stream_finish_send()?;
        let streamed = self.binding.stream_read_head()?;
        if streamed {
            // A streamed reply's first part is its manifest.
            if !self.binding.stream_next_part_into(&mut self.response_buf)? {
                return Err(SoapError::Protocol(
                    "streamed reply ended before its manifest".into(),
                ));
            }
            metrics::stream().parts_in.inc();
        } else {
            // Buffered reply: the whole body is already here (faults
            // take this shape, but a part-less success may too).
            self.binding.take_response_body(&mut self.response_buf);
        }
        self.encoding
            .decode_into(&self.response_buf, &mut self.decode_buf)?;
        let envelope = SoapEnvelope::from_document(&self.decode_buf)?;
        if let Some(fault) = envelope.as_fault() {
            return Err(SoapError::Fault(fault));
        }
        Ok(crate::streaming::StreamingReply::new(
            &self.encoding,
            &mut self.binding,
            &mut self.response_buf,
            &mut self.part_scratch,
            envelope,
            !streamed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::LoopbackBinding;
    use crate::encoding::{BxsaEncoding, EncodingPolicy, XmlEncoding};
    use crate::fault::{FaultCode, SoapFault};
    use bxdm::{ArrayValue, AtomicValue, Element};
    use std::sync::Arc;

    /// A loopback service: sums the request's array, replies with a leaf.
    fn sum_service<Enc: EncodingPolicy>(enc: Enc) -> impl FnMut(&[u8]) -> Vec<u8> {
        move |bytes: &[u8]| {
            let doc = enc.decode(bytes).unwrap();
            let env = SoapEnvelope::from_document(&doc).unwrap();
            let op = env.body_element().unwrap();
            let data = op.find_child("data").unwrap().as_f64_array().unwrap();
            let total: f64 = data.iter().sum();
            let reply = SoapEnvelope::with_body(
                Element::component("m:SumResponse")
                    .with_namespace("m", "http://example.org/m")
                    .with_child(Element::leaf("m:total", AtomicValue::F64(total))),
            );
            enc.encode(&reply.to_document()).unwrap()
        }
    }

    fn sum_request() -> SoapEnvelope {
        SoapEnvelope::with_body(
            Element::component("m:Sum")
                .with_namespace("m", "http://example.org/m")
                .with_child(Element::array(
                    "m:data",
                    ArrayValue::F64(vec![1.0, 2.5, -0.5]),
                )),
        )
    }

    #[test]
    fn call_roundtrip_xml_encoding() {
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(sum_service(XmlEncoding::default())),
        );
        let resp = engine.call_with(sum_request(), &CallOptions::new()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("total"),
            Some(&AtomicValue::F64(3.0))
        );
    }

    #[test]
    fn call_roundtrip_bxsa_encoding() {
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            LoopbackBinding::new(sum_service(BxsaEncoding::default())),
        );
        let resp = engine.call_with(sum_request(), &CallOptions::new()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("total"),
            Some(&AtomicValue::F64(3.0))
        );
    }

    #[test]
    fn fault_responses_become_errors() {
        let enc = XmlEncoding::default();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(move |_: &[u8]| {
                let fault = SoapFault::new(FaultCode::Client, "rejected").to_element();
                enc.encode(&SoapEnvelope::with_body(fault).to_document())
                    .unwrap()
            }),
        );
        match engine.call_with(sum_request(), &CallOptions::new()) {
            Err(SoapError::Fault(f)) => {
                assert_eq!(f.code, FaultCode::Client);
                assert_eq!(f.string, "rejected");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn one_way_send() {
        let mut deliveries = 0u32;
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(|bytes: &[u8]| {
                assert!(!bytes.is_empty());
                deliveries += 1;
                vec![]
            }),
        );
        engine.send(sum_request()).unwrap();
        drop(engine);
        assert_eq!(deliveries, 1);
    }

    #[test]
    fn garbage_response_is_decoding_error() {
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            LoopbackBinding::new(|_: &[u8]| b"not a bxsa document".to_vec()),
        );
        assert!(matches!(
            engine.call_with(sum_request(), &CallOptions::new()),
            Err(SoapError::Bxsa(_))
        ));
    }

    #[test]
    fn retry_recovers_from_connect_refusals() {
        use crate::binding::FaultingBinding;
        use transport::faulty::{FaultInjector, FaultProfile};
        use transport::RetryPolicy;

        let injector = FaultInjector::new(FaultProfile::flaky_connect(7, 0.3)).shared();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            FaultingBinding::new(
                LoopbackBinding::new(sum_service(XmlEncoding::default())),
                Arc::clone(&injector),
            ),
        )
        .with_retry(RetryPolicy::no_delay(10));
        let mut retried_calls = 0u32;
        for _ in 0..50 {
            let resp = engine.call_with(sum_request(), &CallOptions::new()).expect("retry must recover");
            assert_eq!(
                resp.body_element().unwrap().child_value("total"),
                Some(&AtomicValue::F64(3.0))
            );
            if engine.last_call_attempts() > 1 {
                retried_calls += 1;
            }
        }
        assert!(retried_calls > 0, "a 30% refusal rate must trigger retries");
        assert!(injector.lock().connects_refused() > 0);
    }

    #[test]
    fn faults_are_never_retried() {
        use transport::RetryPolicy;

        let enc = XmlEncoding::default();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(move |_: &[u8]| {
                let fault = SoapFault::new(FaultCode::Client, "rejected").to_element();
                enc.encode(&SoapEnvelope::with_body(fault).to_document())
                    .unwrap()
            }),
        )
        .with_retry(RetryPolicy::no_delay(10));
        assert!(matches!(engine.call_with(sum_request(), &CallOptions::new()), Err(SoapError::Fault(_))));
        assert_eq!(engine.last_call_attempts(), 1, "faults are answers");
    }

    #[test]
    fn call_with_deadline_stamps_remaining_budget() {
        use crate::envelope::DeadlineHeader;
        use std::time::Duration;

        // The service inspects the header the engine stamped and echoes
        // the observed budget back, so the test sees the wire value.
        let enc = XmlEncoding::default();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(move |bytes: &[u8]| {
                let doc = enc.decode(bytes).unwrap();
                let env = SoapEnvelope::from_document(&doc).unwrap();
                let header = DeadlineHeader::from_envelope(&env)
                    .unwrap()
                    .expect("deadline header must be stamped");
                let reply = SoapEnvelope::with_body(
                    Element::component("m:Echo")
                        .with_namespace("m", "http://example.org/m")
                        .with_child(Element::leaf(
                            "m:budget",
                            AtomicValue::I64(header.budget_millis as i64),
                        )),
                );
                enc.encode(&reply.to_document()).unwrap()
            }),
        );
        let opts = CallOptions::new().within(Duration::from_secs(5));
        let resp = engine.call_with(sum_request(), &opts).unwrap();
        let Some(AtomicValue::I64(budget)) = resp.body_element().unwrap().child_value("budget")
        else {
            panic!("echoed budget missing");
        };
        assert!(*budget > 0 && *budget <= 5000, "stamped {budget} ms");
        // Plain `call` must not stamp anything.
        let enc = XmlEncoding::default();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(move |bytes: &[u8]| {
                let doc = enc.decode(bytes).unwrap();
                let env = SoapEnvelope::from_document(&doc).unwrap();
                assert_eq!(DeadlineHeader::from_envelope(&env).unwrap(), None);
                enc.encode(
                    &SoapEnvelope::with_body(Element::component("m:Ok").with_namespace(
                        "m",
                        "http://example.org/m",
                    ))
                    .to_document(),
                )
                .unwrap()
            }),
        );
        engine.call_with(sum_request(), &CallOptions::new()).unwrap();
    }

    #[test]
    fn expired_deadline_fails_before_any_exchange() {
        use std::time::Duration;

        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(|_: &[u8]| panic!("must not reach the service")),
        );
        let opts = CallOptions::new().with_deadline(transport::Deadline::within(Duration::ZERO));
        let err = engine.call_with(sum_request(), &opts).unwrap_err();
        assert!(matches!(
            err,
            SoapError::Transport(transport::TransportError::TimedOut { .. })
        ));
        assert_eq!(engine.last_call_attempts(), 0);
    }

    #[test]
    fn open_circuit_fast_fails_without_connecting() {
        use crate::binding::FaultingBinding;
        use std::time::Duration;
        use transport::faulty::{FaultInjector, FaultProfile};
        use transport::{BreakerConfig, BreakerHandle, BreakerState};

        // Every connect refused: each call records one breaker failure.
        let injector = FaultInjector::new(FaultProfile::flaky_connect(3, 1.0)).shared();
        let breaker = BreakerHandle::standalone(
            "loopback",
            BreakerConfig {
                window: Duration::from_secs(10),
                failure_threshold: 0.5,
                min_samples: 4,
                cooldown: Duration::from_secs(60),
                cooldown_cap: Duration::from_secs(120),
                half_open_successes: 1,
                seed: 11,
            },
        );
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            FaultingBinding::new(
                LoopbackBinding::new(sum_service(XmlEncoding::default())),
                Arc::clone(&injector),
            ),
        )
        .with_breaker(breaker.clone());
        for _ in 0..4 {
            let err = engine.call_with(sum_request(), &CallOptions::new()).unwrap_err();
            assert!(matches!(err, SoapError::Transport(_)));
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        let refused_so_far = injector.lock().connects_refused();
        // While open: typed fast-fail, zero exchanges attempted.
        let err = engine.call_with(sum_request(), &CallOptions::new()).unwrap_err();
        match err {
            SoapError::CircuitOpen {
                endpoint,
                retry_after,
            } => {
                assert_eq!(endpoint, "loopback");
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert_eq!(engine.last_call_attempts(), 0);
        assert_eq!(injector.lock().connects_refused(), refused_so_far);
    }

    #[test]
    fn retry_waits_out_open_circuit_and_recovers() {
        use transport::{BreakerConfig, BreakerHandle, BreakerState, RetryPolicy};

        let breaker = BreakerHandle::standalone(
            "loopback-recovery",
            BreakerConfig {
                window: Duration::from_secs(10),
                failure_threshold: 0.5,
                min_samples: 4,
                cooldown: Duration::from_millis(80),
                cooldown_cap: Duration::from_millis(160),
                half_open_successes: 1,
                seed: 5,
            },
        );
        // The endpoint was failing before this call: trip the breaker.
        for _ in 0..4 {
            breaker.record(false);
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        // The service itself is healthy — only the breaker stands in the
        // way. A retrying call must wait out the cooldown (the rejection
        // carries the hint), win the half-open probe, and succeed.
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(sum_service(XmlEncoding::default())),
        )
        .with_breaker(breaker.clone())
        .with_retry(RetryPolicy::new(4));
        let started = std::time::Instant::now();
        let resp = engine
            .call_with(sum_request(), &CallOptions::new())
            .expect("retry must ride out the breaker cooldown");
        assert_eq!(
            resp.body_element().unwrap().child_value("total"),
            Some(&AtomicValue::F64(3.0))
        );
        let waited = started.elapsed();
        assert!(
            waited >= Duration::from_millis(60),
            "must have slept out the hinted cooldown, waited only {waited:?}"
        );
        assert_eq!(engine.last_call_attempts(), 1, "only the admitted probe exchanged");
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn per_call_options_override_engine_policies() {
        use crate::binding::FaultingBinding;
        use transport::faulty::{FaultInjector, FaultProfile};
        use transport::RetryPolicy;

        let injector = FaultInjector::new(FaultProfile::flaky_connect(3, 1.0)).shared();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            FaultingBinding::new(
                LoopbackBinding::new(sum_service(XmlEncoding::default())),
                injector,
            ),
        )
        .with_retry(RetryPolicy::no_delay(10));
        // Per-call override narrows the engine's 10 attempts to 3.
        let opts = CallOptions::new().with_retry(RetryPolicy::no_delay(3));
        assert!(engine.call_with(sum_request(), &opts).is_err());
        assert_eq!(engine.last_call_attempts(), 3);
        // Non-idempotent wins over any retry configuration.
        let opts = opts.non_idempotent();
        assert!(engine.call_with(sum_request(), &opts).is_err());
        assert_eq!(engine.last_call_attempts(), 1);
    }

    #[test]
    // The deprecated shims must keep their exact semantics until removal.
    #[allow(deprecated)]
    fn call_non_idempotent_never_retries() {
        use crate::binding::FaultingBinding;
        use transport::faulty::{FaultInjector, FaultProfile};
        use transport::RetryPolicy;

        // Every connect refused: a retrying call would burn all attempts.
        let injector = FaultInjector::new(FaultProfile::flaky_connect(3, 1.0)).shared();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            FaultingBinding::new(
                LoopbackBinding::new(sum_service(XmlEncoding::default())),
                injector,
            ),
        )
        .with_retry(RetryPolicy::no_delay(10));
        let err = engine.call_non_idempotent(sum_request()).unwrap_err();
        assert!(matches!(err, SoapError::Transport(_)));
        assert_eq!(engine.last_call_attempts(), 1, "must not be replayed");
        // The installed policy survives for subsequent idempotent calls.
        let err = engine.call_with(sum_request(), &CallOptions::new()).unwrap_err();
        assert!(matches!(err, SoapError::Transport(_)));
        assert_eq!(engine.last_call_attempts(), 10, "policy still installed");
    }

    mod typed_calls {
        use super::*;
        use crate::service::{OperationDefaults, ServiceMetadata, ServiceRegistry, SoapService};
        use crate::typed::probe::{probe, Probe};
        use crate::typed::{TypedEncoding, TypedRequest};
        use std::sync::Mutex;
        use std::time::Duration;

        fn probe_loopback(enc: BxsaEncoding) -> impl FnMut(&[u8]) -> Vec<u8> {
            let mut service = SoapService::new(enc, Arc::new(ServiceRegistry::new()));
            service.register_typed::<Probe, Probe, _>("Probe", |req, resp| {
                resp.values.clear();
                resp.values.extend(req.values.iter().map(|v| v * 2.0));
                resp.tag = req.tag + 1;
                Ok(())
            });
            move |bytes: &[u8]| service.handle_bytes(bytes).0
        }

        #[test]
        fn call_typed_roundtrips_without_trees() {
            let mut engine = SoapEngine::new(
                BxsaEncoding::default(),
                LoopbackBinding::new(probe_loopback(BxsaEncoding::default())),
            );
            // Repeat: the engine's typed scratch is reused across calls.
            for _ in 0..3 {
                let resp: Probe = engine.call_typed(&probe(5), &CallOptions::new()).unwrap();
                assert_eq!(resp.tag, 43);
                let expected: Vec<f64> = probe(5).values.iter().map(|v| v * 2.0).collect();
                assert_eq!(resp.values, expected);
            }
        }

        #[test]
        fn call_typed_surfaces_fault_replies_as_errors() {
            let enc = BxsaEncoding::default();
            let mut engine = SoapEngine::new(
                BxsaEncoding::default(),
                LoopbackBinding::new(move |_: &[u8]| {
                    let fault = SoapFault::new(FaultCode::Client, "nope").to_element();
                    EncodingPolicy::encode(&enc, &SoapEnvelope::with_body(fault).to_document())
                        .unwrap()
                }),
            );
            match engine.call_typed::<Probe, Probe>(&probe(1), &CallOptions::new()) {
                Err(SoapError::Fault(f)) => assert_eq!(f.string, "nope"),
                other => panic!("expected fault, got {other:?}"),
            }
        }

        #[test]
        fn registered_metadata_stamps_a_deadline_on_bare_typed_calls() {
            let meta = Arc::new(ServiceMetadata::new().with_operation(
                "Probe",
                OperationDefaults::new().with_deadline(Duration::from_secs(30)),
            ));
            let seen = Arc::new(Mutex::new(Vec::new()));
            let tap = Arc::clone(&seen);
            let mut respond = probe_loopback(BxsaEncoding::default());
            let mut engine = SoapEngine::new(
                BxsaEncoding::default(),
                LoopbackBinding::new(move |bytes: &[u8]| {
                    tap.lock().unwrap().push(bytes.to_vec());
                    respond(bytes)
                }),
            )
            .with_metadata(meta);
            // No explicit options — yet the wire request must carry the
            // operation's registered deadline.
            let resp: Probe = engine.call_typed(&probe(2), &CallOptions::new()).unwrap();
            assert_eq!(resp.tag, 43);
            let request = seen.lock().unwrap().pop().unwrap();
            let mut decoy = Probe::default();
            match BxsaEncoding::default()
                .decode_typed_request(&request, &mut decoy)
                .unwrap()
            {
                TypedRequest::Matched { deadline: Some(h) } => assert!(
                    h.budget_millis > 25_000,
                    "registered 30 s budget, stamped {} ms",
                    h.budget_millis
                ),
                other => panic!("expected a stamped deadline, got {other:?}"),
            }
        }

        #[test]
        fn registered_metadata_applies_to_generic_calls_too() {
            let meta = Arc::new(ServiceMetadata::new().with_operation(
                "Sum",
                OperationDefaults::new().with_deadline(Duration::from_secs(30)),
            ));
            let seen = Arc::new(Mutex::new(Vec::new()));
            let tap = Arc::clone(&seen);
            let mut respond = sum_service(XmlEncoding::default());
            let mut engine = SoapEngine::new(
                XmlEncoding::default(),
                LoopbackBinding::new(move |bytes: &[u8]| {
                    tap.lock().unwrap().push(bytes.to_vec());
                    respond(bytes)
                }),
            )
            .with_metadata(meta);
            engine.call_with(sum_request(), &CallOptions::new()).unwrap();
            let request = seen.lock().unwrap().pop().unwrap();
            let doc = XmlEncoding::default().decode(&request).unwrap();
            let envelope = SoapEnvelope::from_document(&doc).unwrap();
            let header = DeadlineHeader::from_envelope(&envelope)
                .unwrap()
                .expect("metadata deadline must be stamped on the tree path");
            assert!(header.budget_millis > 25_000);
        }
    }
}
