//! The generic SOAP engine (paper §5, §5.1).

use bxdm::Document;
use transport::RetryPolicy;

use crate::binding::BindingPolicy;
use crate::encoding::EncodingPolicy;
use crate::envelope::SoapEnvelope;
use crate::error::{SoapError, SoapResult};

/// A message-level security policy: transform outgoing envelopes (e.g.
/// attach a signature header) and check incoming ones.
///
/// Paper §5: "It will be straightforward to introduce more policies
/// (e.g., a security policy) into the generic engine by just adding more
/// template parameters" — this is that parameter. The default,
/// [`NoSecurity`], compiles to nothing.
pub trait SecurityPolicy {
    /// Transform an outgoing envelope (sign, encrypt, stamp...).
    fn apply(&self, envelope: SoapEnvelope) -> SoapResult<SoapEnvelope>;
    /// Check an incoming envelope; an error aborts the exchange.
    fn check(&self, envelope: &SoapEnvelope) -> SoapResult<()>;
}

/// The no-op security policy (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSecurity;

impl SecurityPolicy for NoSecurity {
    #[inline]
    fn apply(&self, envelope: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        Ok(envelope)
    }

    #[inline]
    fn check(&self, _envelope: &SoapEnvelope) -> SoapResult<()> {
        Ok(())
    }
}

/// A SOAP client engine, generic over its encoding, binding, and
/// (optionally) security policies.
///
/// The Rust rendering of the paper's
/// `template <typename EncodingPolicy, typename BindingPolicy> class
/// SoapEngine` — each policy combination monomorphizes into its own
/// engine with static dispatch throughout, so the encoding/transport
/// choice has zero runtime overhead and full inlining (paper §5: "Because
/// the binding is at compile time, compiler optimizations are not
/// impacted").
///
/// Sending a message follows §5.1 exactly: construct the message in the
/// bXDM model, invoke the encoding policy to serialize it into the octet
/// stream, transfer the stream via the binding policy. Receiving is the
/// reverse.
pub struct SoapEngine<E: EncodingPolicy, B: BindingPolicy, S: SecurityPolicy = NoSecurity> {
    encoding: E,
    binding: B,
    security: S,
    /// Retry failed exchanges whose failure class proves the server
    /// cannot have processed the request (`None` = fail fast).
    retry: Option<RetryPolicy>,
    /// Exchanges attempted by the most recent `call`/`call_non_idempotent`.
    last_attempts: u32,
    /// Request-serialization scratch, reused across calls so a client
    /// issuing many similarly-sized requests serializes allocation-free.
    encode_buf: Vec<u8>,
    /// Response-byte scratch: the binding lands each reply's payload
    /// here, reusing the buffer's capacity call over call.
    response_buf: Vec<u8>,
    /// Response-document scratch: each reply is decoded into this
    /// document in place, so steady-state decoding of similarly-shaped
    /// responses allocates nothing.
    decode_buf: Document,
}

impl<E: EncodingPolicy, B: BindingPolicy> SoapEngine<E, B> {
    /// Assemble an engine from its two core policies (no security).
    pub fn new(encoding: E, binding: B) -> SoapEngine<E, B> {
        SoapEngine {
            encoding,
            binding,
            security: NoSecurity,
            retry: None,
            last_attempts: 0,
            encode_buf: Vec::new(),
            response_buf: Vec::new(),
            decode_buf: Document::new(),
        }
    }
}

impl<E: EncodingPolicy, B: BindingPolicy, S: SecurityPolicy> SoapEngine<E, B, S> {
    /// Assemble an engine with an explicit security policy — the paper's
    /// "web service ... with the XML signature applied" configuration.
    pub fn with_security(encoding: E, binding: B, security: S) -> SoapEngine<E, B, S> {
        SoapEngine {
            encoding,
            binding,
            security,
            retry: None,
            last_attempts: 0,
            encode_buf: Vec::new(),
            response_buf: Vec::new(),
            decode_buf: Document::new(),
        }
    }

    /// Enable retries for retry-safe transport failures (chainable).
    pub fn with_retry(mut self, policy: RetryPolicy) -> SoapEngine<E, B, S> {
        self.retry = Some(policy);
        self
    }

    /// Enable or disable retries in place.
    pub fn set_retry(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Exchanges attempted by the most recent call (1 = no retries).
    pub fn last_call_attempts(&self) -> u32 {
        self.last_attempts
    }

    /// The encoding policy.
    pub fn encoding(&self) -> &E {
        &self.encoding
    }

    /// The binding policy.
    pub fn binding(&mut self) -> &mut B {
        &mut self.binding
    }

    /// Request/response message exchange.
    ///
    /// A SOAP fault in the response surfaces as
    /// [`SoapError::Fault`], keeping the happy path a plain envelope.
    ///
    /// With a [`RetryPolicy`] installed (see
    /// [`with_retry`](SoapEngine::with_retry)), failed exchanges are
    /// replayed — but **only** when the failure class proves the server
    /// cannot have processed the request (connect refused; 503 with the
    /// server declining up front — see
    /// [`transport::TransportError::retry_safe`]). A timeout or reset
    /// after bytes went out is ambiguous, and a SOAP fault is an answer;
    /// neither is ever retried. For requests that must not be replayed
    /// even on safe failures, use
    /// [`call_non_idempotent`](SoapEngine::call_non_idempotent).
    pub fn call(&mut self, request: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        let request = self.security.apply(request)?;
        let doc = request.to_document();
        self.encoding.encode_into(&doc, &mut self.encode_buf)?;
        self.last_attempts = 0;
        let mut schedule = self.retry.as_ref().map(|p| p.schedule());
        loop {
            self.last_attempts += 1;
            let error = match self.binding.exchange_into(
                &self.encode_buf,
                self.encoding.content_type(),
                &mut self.response_buf,
            ) {
                Ok(()) => return self.finish_call(),
                Err(e) => e,
            };
            let retry_safe =
                matches!(&error, SoapError::Transport(t) if t.retry_safe());
            let delay = if retry_safe {
                schedule.as_mut().and_then(|s| s.next_delay())
            } else {
                None
            };
            let Some(mut delay) = delay else {
                return Err(error);
            };
            // A server-provided Retry-After hint stretches the backoff,
            // bounded by the policy's cap so a hostile hint cannot park
            // the client.
            if let SoapError::Transport(transport::TransportError::HttpStatus {
                retry_after_secs: Some(secs),
                ..
            }) = &error
            {
                let cap = self.retry.as_ref().expect("retrying implies policy").cap;
                delay = delay.max(std::time::Duration::from_secs(*secs).min(cap));
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
    }

    /// [`call`](SoapEngine::call) for requests with side effects that
    /// must not be replayed: never retries, whatever policy is installed.
    pub fn call_non_idempotent(&mut self, request: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        let policy = self.retry.take();
        let result = self.call(request);
        self.retry = policy;
        result
    }

    fn finish_call(&mut self) -> SoapResult<SoapEnvelope> {
        self.encoding
            .decode_into(&self.response_buf, &mut self.decode_buf)?;
        let envelope = SoapEnvelope::from_document(&self.decode_buf)?;
        if let Some(fault) = envelope.as_fault() {
            return Err(SoapError::Fault(fault));
        }
        self.security.check(&envelope)?;
        Ok(envelope)
    }

    /// One-way message (no response expected).
    pub fn send(&mut self, message: SoapEnvelope) -> SoapResult<()> {
        let message = self.security.apply(message)?;
        let doc = message.to_document();
        self.encoding.encode_into(&doc, &mut self.encode_buf)?;
        self.binding
            .send_one_way(&self.encode_buf, self.encoding.content_type())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::LoopbackBinding;
    use crate::encoding::{BxsaEncoding, EncodingPolicy, XmlEncoding};
    use crate::fault::{FaultCode, SoapFault};
    use bxdm::{ArrayValue, AtomicValue, Element};
    use std::sync::Arc;

    /// A loopback service: sums the request's array, replies with a leaf.
    fn sum_service<Enc: EncodingPolicy>(enc: Enc) -> impl FnMut(&[u8]) -> Vec<u8> {
        move |bytes: &[u8]| {
            let doc = enc.decode(bytes).unwrap();
            let env = SoapEnvelope::from_document(&doc).unwrap();
            let op = env.body_element().unwrap();
            let data = op.find_child("data").unwrap().as_f64_array().unwrap();
            let total: f64 = data.iter().sum();
            let reply = SoapEnvelope::with_body(
                Element::component("m:SumResponse")
                    .with_namespace("m", "http://example.org/m")
                    .with_child(Element::leaf("m:total", AtomicValue::F64(total))),
            );
            enc.encode(&reply.to_document()).unwrap()
        }
    }

    fn sum_request() -> SoapEnvelope {
        SoapEnvelope::with_body(
            Element::component("m:Sum")
                .with_namespace("m", "http://example.org/m")
                .with_child(Element::array(
                    "m:data",
                    ArrayValue::F64(vec![1.0, 2.5, -0.5]),
                )),
        )
    }

    #[test]
    fn call_roundtrip_xml_encoding() {
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(sum_service(XmlEncoding::default())),
        );
        let resp = engine.call(sum_request()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("total"),
            Some(&AtomicValue::F64(3.0))
        );
    }

    #[test]
    fn call_roundtrip_bxsa_encoding() {
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            LoopbackBinding::new(sum_service(BxsaEncoding::default())),
        );
        let resp = engine.call(sum_request()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("total"),
            Some(&AtomicValue::F64(3.0))
        );
    }

    #[test]
    fn fault_responses_become_errors() {
        let enc = XmlEncoding::default();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(move |_: &[u8]| {
                let fault = SoapFault::new(FaultCode::Client, "rejected").to_element();
                enc.encode(&SoapEnvelope::with_body(fault).to_document())
                    .unwrap()
            }),
        );
        match engine.call(sum_request()) {
            Err(SoapError::Fault(f)) => {
                assert_eq!(f.code, FaultCode::Client);
                assert_eq!(f.string, "rejected");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn one_way_send() {
        let mut deliveries = 0u32;
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(|bytes: &[u8]| {
                assert!(!bytes.is_empty());
                deliveries += 1;
                vec![]
            }),
        );
        engine.send(sum_request()).unwrap();
        drop(engine);
        assert_eq!(deliveries, 1);
    }

    #[test]
    fn garbage_response_is_decoding_error() {
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            LoopbackBinding::new(|_: &[u8]| b"not a bxsa document".to_vec()),
        );
        assert!(matches!(
            engine.call(sum_request()),
            Err(SoapError::Bxsa(_))
        ));
    }

    #[test]
    fn retry_recovers_from_connect_refusals() {
        use crate::binding::FaultingBinding;
        use transport::faulty::{FaultInjector, FaultProfile};
        use transport::RetryPolicy;

        let injector = FaultInjector::new(FaultProfile::flaky_connect(7, 0.3)).shared();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            FaultingBinding::new(
                LoopbackBinding::new(sum_service(XmlEncoding::default())),
                Arc::clone(&injector),
            ),
        )
        .with_retry(RetryPolicy::no_delay(10));
        let mut retried_calls = 0u32;
        for _ in 0..50 {
            let resp = engine.call(sum_request()).expect("retry must recover");
            assert_eq!(
                resp.body_element().unwrap().child_value("total"),
                Some(&AtomicValue::F64(3.0))
            );
            if engine.last_call_attempts() > 1 {
                retried_calls += 1;
            }
        }
        assert!(retried_calls > 0, "a 30% refusal rate must trigger retries");
        assert!(injector.lock().connects_refused() > 0);
    }

    #[test]
    fn faults_are_never_retried() {
        use transport::RetryPolicy;

        let enc = XmlEncoding::default();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(move |_: &[u8]| {
                let fault = SoapFault::new(FaultCode::Client, "rejected").to_element();
                enc.encode(&SoapEnvelope::with_body(fault).to_document())
                    .unwrap()
            }),
        )
        .with_retry(RetryPolicy::no_delay(10));
        assert!(matches!(engine.call(sum_request()), Err(SoapError::Fault(_))));
        assert_eq!(engine.last_call_attempts(), 1, "faults are answers");
    }

    #[test]
    fn call_non_idempotent_never_retries() {
        use crate::binding::FaultingBinding;
        use transport::faulty::{FaultInjector, FaultProfile};
        use transport::RetryPolicy;

        // Every connect refused: a retrying call would burn all attempts.
        let injector = FaultInjector::new(FaultProfile::flaky_connect(3, 1.0)).shared();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            FaultingBinding::new(
                LoopbackBinding::new(sum_service(XmlEncoding::default())),
                injector,
            ),
        )
        .with_retry(RetryPolicy::no_delay(10));
        let err = engine.call_non_idempotent(sum_request()).unwrap_err();
        assert!(matches!(err, SoapError::Transport(_)));
        assert_eq!(engine.last_call_attempts(), 1, "must not be replayed");
        // The installed policy survives for subsequent idempotent calls.
        let err = engine.call(sum_request()).unwrap_err();
        assert!(matches!(err, SoapError::Transport(_)));
        assert_eq!(engine.last_call_attempts(), 10, "policy still installed");
    }
}
