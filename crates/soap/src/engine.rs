//! The generic SOAP engine (paper §5, §5.1).

use crate::binding::BindingPolicy;
use crate::encoding::EncodingPolicy;
use crate::envelope::SoapEnvelope;
use crate::error::{SoapError, SoapResult};

/// A message-level security policy: transform outgoing envelopes (e.g.
/// attach a signature header) and check incoming ones.
///
/// Paper §5: "It will be straightforward to introduce more policies
/// (e.g., a security policy) into the generic engine by just adding more
/// template parameters" — this is that parameter. The default,
/// [`NoSecurity`], compiles to nothing.
pub trait SecurityPolicy {
    /// Transform an outgoing envelope (sign, encrypt, stamp...).
    fn apply(&self, envelope: SoapEnvelope) -> SoapResult<SoapEnvelope>;
    /// Check an incoming envelope; an error aborts the exchange.
    fn check(&self, envelope: &SoapEnvelope) -> SoapResult<()>;
}

/// The no-op security policy (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSecurity;

impl SecurityPolicy for NoSecurity {
    #[inline]
    fn apply(&self, envelope: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        Ok(envelope)
    }

    #[inline]
    fn check(&self, _envelope: &SoapEnvelope) -> SoapResult<()> {
        Ok(())
    }
}

/// A SOAP client engine, generic over its encoding, binding, and
/// (optionally) security policies.
///
/// The Rust rendering of the paper's
/// `template <typename EncodingPolicy, typename BindingPolicy> class
/// SoapEngine` — each policy combination monomorphizes into its own
/// engine with static dispatch throughout, so the encoding/transport
/// choice has zero runtime overhead and full inlining (paper §5: "Because
/// the binding is at compile time, compiler optimizations are not
/// impacted").
///
/// Sending a message follows §5.1 exactly: construct the message in the
/// bXDM model, invoke the encoding policy to serialize it into the octet
/// stream, transfer the stream via the binding policy. Receiving is the
/// reverse.
pub struct SoapEngine<E: EncodingPolicy, B: BindingPolicy, S: SecurityPolicy = NoSecurity> {
    encoding: E,
    binding: B,
    security: S,
    /// Request-serialization scratch, reused across calls so a client
    /// issuing many similarly-sized requests serializes allocation-free.
    encode_buf: Vec<u8>,
}

impl<E: EncodingPolicy, B: BindingPolicy> SoapEngine<E, B> {
    /// Assemble an engine from its two core policies (no security).
    pub fn new(encoding: E, binding: B) -> SoapEngine<E, B> {
        SoapEngine {
            encoding,
            binding,
            security: NoSecurity,
            encode_buf: Vec::new(),
        }
    }
}

impl<E: EncodingPolicy, B: BindingPolicy, S: SecurityPolicy> SoapEngine<E, B, S> {
    /// Assemble an engine with an explicit security policy — the paper's
    /// "web service ... with the XML signature applied" configuration.
    pub fn with_security(encoding: E, binding: B, security: S) -> SoapEngine<E, B, S> {
        SoapEngine {
            encoding,
            binding,
            security,
            encode_buf: Vec::new(),
        }
    }

    /// The encoding policy.
    pub fn encoding(&self) -> &E {
        &self.encoding
    }

    /// The binding policy.
    pub fn binding(&mut self) -> &mut B {
        &mut self.binding
    }

    /// Request/response message exchange.
    ///
    /// A SOAP fault in the response surfaces as
    /// [`SoapError::Fault`], keeping the happy path a plain envelope.
    pub fn call(&mut self, request: SoapEnvelope) -> SoapResult<SoapEnvelope> {
        let request = self.security.apply(request)?;
        let doc = request.to_document();
        self.encoding.encode_into(&doc, &mut self.encode_buf)?;
        let response_bytes = self
            .binding
            .exchange(&self.encode_buf, self.encoding.content_type())?;
        let response_doc = self.encoding.decode(&response_bytes)?;
        let envelope = SoapEnvelope::from_document(&response_doc)?;
        if let Some(fault) = envelope.as_fault() {
            return Err(SoapError::Fault(fault));
        }
        self.security.check(&envelope)?;
        Ok(envelope)
    }

    /// One-way message (no response expected).
    pub fn send(&mut self, message: SoapEnvelope) -> SoapResult<()> {
        let message = self.security.apply(message)?;
        let doc = message.to_document();
        self.encoding.encode_into(&doc, &mut self.encode_buf)?;
        self.binding
            .send_one_way(&self.encode_buf, self.encoding.content_type())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::LoopbackBinding;
    use crate::encoding::{BxsaEncoding, EncodingPolicy, XmlEncoding};
    use crate::fault::{FaultCode, SoapFault};
    use bxdm::{ArrayValue, AtomicValue, Element};

    /// A loopback service: sums the request's array, replies with a leaf.
    fn sum_service<Enc: EncodingPolicy>(enc: Enc) -> impl FnMut(&[u8]) -> Vec<u8> {
        move |bytes: &[u8]| {
            let doc = enc.decode(bytes).unwrap();
            let env = SoapEnvelope::from_document(&doc).unwrap();
            let op = env.body_element().unwrap();
            let data = op.find_child("data").unwrap().as_f64_array().unwrap();
            let total: f64 = data.iter().sum();
            let reply = SoapEnvelope::with_body(
                Element::component("m:SumResponse")
                    .with_namespace("m", "http://example.org/m")
                    .with_child(Element::leaf("m:total", AtomicValue::F64(total))),
            );
            enc.encode(&reply.to_document()).unwrap()
        }
    }

    fn sum_request() -> SoapEnvelope {
        SoapEnvelope::with_body(
            Element::component("m:Sum")
                .with_namespace("m", "http://example.org/m")
                .with_child(Element::array(
                    "m:data",
                    ArrayValue::F64(vec![1.0, 2.5, -0.5]),
                )),
        )
    }

    #[test]
    fn call_roundtrip_xml_encoding() {
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(sum_service(XmlEncoding::default())),
        );
        let resp = engine.call(sum_request()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("total"),
            Some(&AtomicValue::F64(3.0))
        );
    }

    #[test]
    fn call_roundtrip_bxsa_encoding() {
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            LoopbackBinding::new(sum_service(BxsaEncoding::default())),
        );
        let resp = engine.call(sum_request()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("total"),
            Some(&AtomicValue::F64(3.0))
        );
    }

    #[test]
    fn fault_responses_become_errors() {
        let enc = XmlEncoding::default();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(move |_: &[u8]| {
                let fault = SoapFault::new(FaultCode::Client, "rejected").to_element();
                enc.encode(&SoapEnvelope::with_body(fault).to_document())
                    .unwrap()
            }),
        );
        match engine.call(sum_request()) {
            Err(SoapError::Fault(f)) => {
                assert_eq!(f.code, FaultCode::Client);
                assert_eq!(f.string, "rejected");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn one_way_send() {
        let mut deliveries = 0u32;
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            LoopbackBinding::new(|bytes: &[u8]| {
                assert!(!bytes.is_empty());
                deliveries += 1;
                vec![]
            }),
        );
        engine.send(sum_request()).unwrap();
        drop(engine);
        assert_eq!(deliveries, 1);
    }

    #[test]
    fn garbage_response_is_decoding_error() {
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            LoopbackBinding::new(|_: &[u8]| b"not a bxsa document".to_vec()),
        );
        assert!(matches!(
            engine.call(sum_request()),
            Err(SoapError::Bxsa(_))
        ));
    }
}
