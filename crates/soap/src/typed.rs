//! Typed-struct fast path: direct codecs between Rust values and SOAP
//! envelopes, skipping the bXDM element tree in both directions.
//!
//! The generic engine path materializes every message as a bXDM tree
//! (`SoapEnvelope::to_document` → encoding policy) and recovers a tree on
//! receipt. That symmetry is what makes the engine generic, but for the
//! common RPC shape — a fixed struct of numeric fields and packed arrays
//! — the tree is pure overhead: node allocation, name strings, and a
//! second traversal on each side. This module removes it:
//!
//! * [`ToBxsa`] encodes a struct **straight into wire bytes** — BXSA
//!   frames via [`bxsa::FrameWriter`], textual XML via
//!   [`xmltext::XmlFieldWriter`] — producing output *byte-for-byte
//!   identical* to tree-encoding the equivalent element (the
//!   differential property tests enforce this).
//! * [`FromBxsa`] decodes wire bytes **straight into struct fields** via
//!   [`bxsa::FieldReader`] / [`xmltext::XmlFieldReader`], clear-and-refill
//!   style, so the steady state allocates nothing.
//! * [`TypedEncoding`] extends [`EncodingPolicy`] with envelope-level
//!   typed codecs: it wraps the struct in the `soapenv:Envelope` /
//!   `Header` / `Body` structure (including the `bx:Deadline` header)
//!   without building those elements either.
//!
//! The typed path is an *optimization*, never a semantic fork: whenever a
//! message doesn't match the expected shape — a fault, a foreign header,
//! a `mustUnderstand` attribute, an unexpected operation — the decoder
//! reports [`Fallback`](TypedDecode::Fallback) and the caller re-runs the
//! generic tree path, which owns all the edge-case semantics.

use bxsa::estimate::{framed, plain_component_body_bound, plain_leaf_body_bound};
use bxsa::{ElementHead, FieldReader, FrameType, FrameWriter, TypedDecl, TypedName};
use xbs::{ByteOrder, TypeCode};
use xmltext::{XmlFieldReader, XmlFieldWriter, XmlHead, XmlItem};

use crate::encoding::{BxsaEncoding, EncodingPolicy, XmlEncoding};
use crate::envelope::{DeadlineHeader, DEADLINE_HEADER_LOCAL, SOAP_ENV_PREFIX, SOAP_ENV_URI};
use crate::error::{SoapError, SoapResult};

/// The namespace declarations every envelope root carries, in the exact
/// order `SoapEnvelope::to_document` declares them (a prerequisite for
/// byte-for-byte equality with the tree path).
pub const ENVELOPE_DECLS: [TypedDecl; 4] = [
    (Some(SOAP_ENV_PREFIX), SOAP_ENV_URI),
    (Some("xsi"), bxdm::XSI_URI),
    (Some("xsd"), bxdm::XSD_URI),
    (Some(xmltext::BX_PREFIX), xmltext::BX_URI),
];

/// A value that can serialize itself as a SOAP body entry on both wire
/// encodings, without an intermediate element tree.
///
/// # Contract
///
/// Both encode methods must produce output byte-for-byte identical to
/// tree-encoding the equivalent [`bxdm::Element`]: one attribute-free
/// element per field, children in a fixed order, namespaces declared on
/// the root only. [`bxsa_body_bound`](ToBxsa::bxsa_body_bound) must be
/// computed with the `bxsa::estimate::plain_*` helpers over exactly the
/// fields `encode_bxsa` writes — it is the *exact* bound the frame
/// writer's reallocation guard asserts against.
pub trait ToBxsa {
    /// The body element's name; its local part is the operation name used
    /// for service dispatch and per-operation metadata lookup.
    fn element_name(&self) -> TypedName;
    /// Upper bound on the element's BXSA frame *body* (composed from
    /// `bxsa::estimate::plain_*` helpers).
    fn bxsa_body_bound(&self) -> usize;
    /// Write the element as a complete BXSA frame.
    fn encode_bxsa(&self, w: &mut FrameWriter) -> SoapResult<()>;
    /// Write the element as XML markup.
    fn encode_xml(&self, w: &mut XmlFieldWriter<'_>);
}

/// A value that can fill its fields directly from a SOAP body entry on
/// both wire encodings, clear-and-refill style.
///
/// # Contract
///
/// Decoders must tolerate unknown child elements (skip them), must error
/// — not panic, not silently default — when a *required* field is absent
/// or mistyped, and must leave the reader positioned at the end of the
/// element (BXSA: finish with [`FieldReader::close`]; XML: consume the
/// element's end tag).
pub trait FromBxsa: Default {
    /// The local name this type answers to as a body entry.
    fn expected_local() -> &'static str;
    /// Fill fields from a BXSA element frame opened as `head`.
    fn decode_bxsa<'a>(&mut self, r: &mut FieldReader<'a>, head: &ElementHead<'a>)
        -> SoapResult<()>;
    /// Fill fields from an XML element opened as `head`.
    fn decode_xml<'a>(&mut self, r: &mut XmlFieldReader<'a>, head: &XmlHead<'a>)
        -> SoapResult<()>;
}

/// Reusable scratch state for typed encodes (the BXSA frame writer's
/// scope tables and reallocation guard). One per engine / per service
/// worker; reuse is what keeps the steady state allocation-free.
pub struct TypedScratch {
    /// The frame writer reused across BXSA envelope encodes.
    pub frame: FrameWriter,
}

impl Default for TypedScratch {
    fn default() -> TypedScratch {
        TypedScratch {
            frame: FrameWriter::new(ByteOrder::Little),
        }
    }
}

/// Outcome of a typed *reply* decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypedDecode {
    /// The reply matched the expected shape; the output struct is filled.
    Matched,
    /// The reply has a shape the typed path doesn't own (fault, foreign
    /// headers, different operation) — re-decode via the generic tree
    /// path. The output struct holds unspecified but valid contents.
    Fallback,
}

/// Outcome of a typed *request* decode (server side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypedRequest {
    /// The request matched; any `bx:Deadline` header was extracted.
    Matched {
        /// The propagated deadline header, if the request carried one.
        deadline: Option<DeadlineHeader>,
    },
    /// Shape not owned by the typed path (foreign or attributed headers —
    /// including `mustUnderstand` flags — or a different operation).
    Fallback,
}

/// An encoding policy that can additionally run the typed fast path.
///
/// Implemented by both concrete policies ([`BxsaEncoding`],
/// [`XmlEncoding`]); the engine and service are generic over it, so the
/// typed codecs inline just like the tree codecs do.
pub trait TypedEncoding: EncodingPolicy {
    /// Encode `msg` as a complete SOAP envelope (stamping `deadline` as a
    /// `bx:Deadline` header when present) into `out`, reusing its
    /// capacity. Byte-for-byte identical to tree-encoding the equivalent
    /// [`crate::SoapEnvelope`].
    fn encode_typed<M: ToBxsa>(
        &self,
        msg: &M,
        deadline: Option<&DeadlineHeader>,
        scratch: &mut TypedScratch,
        out: &mut Vec<u8>,
    ) -> SoapResult<()>;

    /// Decode a reply envelope directly into `out` when its single body
    /// entry matches `M`'s expected shape.
    fn decode_typed_reply<M: FromBxsa>(
        &self,
        bytes: &[u8],
        out: &mut M,
    ) -> SoapResult<TypedDecode>;

    /// Decode a request envelope directly into `out`, extracting the
    /// `bx:Deadline` header. Any *other* header entry — understood or not
    /// — forces a fallback, so `mustUnderstand` semantics always run on
    /// the generic path.
    fn decode_typed_request<M: FromBxsa>(
        &self,
        bytes: &[u8],
        out: &mut M,
    ) -> SoapResult<TypedRequest>;

    /// Cheaply extract the operation name (local name of the first body
    /// entry) without decoding the message, for dispatch and metadata
    /// lookup. `None` when the bytes don't look like an envelope.
    fn peek_operation<'a>(&self, bytes: &'a [u8]) -> Option<&'a str>;
}

/// Frame-body bounds for the deadline header chain: `(Deadline component,
/// Header component)`.
fn deadline_bounds() -> (usize, usize) {
    let budget = plain_leaf_body_bound("budgetMillis", &[], TypeCode::I64, 0);
    let hops = plain_leaf_body_bound("hops", &[], TypeCode::I64, 0);
    let deadline =
        plain_component_body_bound(DEADLINE_HEADER_LOCAL, &[], 2, framed(budget) + framed(hops));
    let header = plain_component_body_bound("Header", &[], 1, framed(deadline));
    (deadline, header)
}

fn write_bxsa_envelope<M: ToBxsa>(
    w: &mut FrameWriter,
    msg: &M,
    deadline: Option<&DeadlineHeader>,
    child_count: usize,
    env_body: usize,
    body_body: usize,
) -> SoapResult<()> {
    let env = TypedName::new(Some(SOAP_ENV_PREFIX), "Envelope");
    w.begin_component(env, &ENVELOPE_DECLS, child_count, env_body)?;
    if let Some(h) = deadline {
        let (dl_body, header_body) = deadline_bounds();
        let bx = xmltext::BX_PREFIX;
        w.begin_component(
            TypedName::new(Some(SOAP_ENV_PREFIX), "Header"),
            &[],
            1,
            header_body,
        )?;
        w.begin_component(
            TypedName::new(Some(bx), DEADLINE_HEADER_LOCAL),
            &[],
            2,
            dl_body,
        )?;
        w.leaf(
            TypedName::new(Some(bx), "budgetMillis"),
            &[],
            h.budget_millis.min(i64::MAX as u64) as i64,
        )?;
        w.leaf(TypedName::new(Some(bx), "hops"), &[], h.hops as i64)?;
        w.end_component()?;
        w.end_component()?;
    }
    w.begin_component(
        TypedName::new(Some(SOAP_ENV_PREFIX), "Body"),
        &[],
        1,
        body_body,
    )?;
    msg.encode_bxsa(w)?;
    w.end_component()?;
    w.end_component()?;
    Ok(())
}

/// Read a `bx:Deadline` component's fields. `Ok(None)` means the header
/// is present but malformed — the caller falls back to the generic path,
/// which turns that into the proper Client fault.
fn read_deadline_bxsa<'a>(
    r: &mut FieldReader<'a>,
    head: &ElementHead<'a>,
) -> SoapResult<Option<DeadlineHeader>> {
    let mut budget = None;
    let mut hops = None;
    for _ in 0..head.child_count {
        let f = r.open()?;
        match (f.kind, f.local) {
            (FrameType::Leaf, "budgetMillis") => {
                budget = u64::try_from(r.read_value::<i64>(&f)?).ok();
            }
            (FrameType::Leaf, "hops") => {
                hops = u64::try_from(r.read_value::<i64>(&f)?).ok();
            }
            _ => r.skip(&f)?,
        }
    }
    r.close(head)?;
    Ok(match (budget, hops) {
        (Some(b), Some(h)) => Some(DeadlineHeader::new(b, h.min(u32::MAX as u64) as u32)),
        _ => None,
    })
}

impl TypedEncoding for BxsaEncoding {
    fn encode_typed<M: ToBxsa>(
        &self,
        msg: &M,
        deadline: Option<&DeadlineHeader>,
        scratch: &mut TypedScratch,
        out: &mut Vec<u8>,
    ) -> SoapResult<()> {
        scratch.frame.set_order(self.options.byte_order);
        let w = &mut scratch.frame;
        let body_body = plain_component_body_bound("Body", &[], 1, framed(msg.bxsa_body_bound()));
        let (child_count, header_frames) = match deadline {
            Some(_) => (2, framed(deadline_bounds().1)),
            None => (1, 0),
        };
        let env_body = plain_component_body_bound(
            "Envelope",
            &ENVELOPE_DECLS,
            child_count,
            header_frames + framed(body_body),
        );
        w.begin_document(out, 1, FrameWriter::document_bound(env_body));
        match write_bxsa_envelope(w, msg, deadline, child_count, env_body, body_body) {
            Ok(()) => Ok(w.finish_document(out)?),
            Err(e) => {
                w.abandon(out);
                Err(e)
            }
        }
    }

    fn decode_typed_reply<M: FromBxsa>(
        &self,
        bytes: &[u8],
        out: &mut M,
    ) -> SoapResult<TypedDecode> {
        let mut r = FieldReader::new(bytes)?;
        let env = r.open()?;
        if env.kind != FrameType::Component || env.local != "Envelope" || env.attr_count != 0 {
            return Ok(TypedDecode::Fallback);
        }
        for _ in 0..env.child_count {
            let child = r.open()?;
            match (child.kind, child.local) {
                (FrameType::Component, "Header") => r.skip(&child)?,
                (FrameType::Component, "Body") => {
                    if child.child_count != 1 {
                        return Ok(TypedDecode::Fallback);
                    }
                    let first = r.open()?;
                    if first.kind.is_element()
                        && first.local == M::expected_local()
                        && first.attr_count == 0
                    {
                        out.decode_bxsa(&mut r, &first)?;
                        return Ok(TypedDecode::Matched);
                    }
                    return Ok(TypedDecode::Fallback);
                }
                _ => return Ok(TypedDecode::Fallback),
            }
        }
        Ok(TypedDecode::Fallback)
    }

    fn decode_typed_request<M: FromBxsa>(
        &self,
        bytes: &[u8],
        out: &mut M,
    ) -> SoapResult<TypedRequest> {
        let mut r = FieldReader::new(bytes)?;
        let env = r.open()?;
        if env.kind != FrameType::Component || env.local != "Envelope" || env.attr_count != 0 {
            return Ok(TypedRequest::Fallback);
        }
        let mut deadline = None;
        for _ in 0..env.child_count {
            let child = r.open()?;
            match (child.kind, child.local) {
                (FrameType::Component, "Header") => {
                    for _ in 0..child.child_count {
                        let h = r.open()?;
                        if h.kind == FrameType::Component
                            && h.local == DEADLINE_HEADER_LOCAL
                            && h.attr_count == 0
                        {
                            match read_deadline_bxsa(&mut r, &h)? {
                                Some(d) => deadline = Some(d),
                                None => return Ok(TypedRequest::Fallback),
                            }
                        } else {
                            // Foreign header — it may demand
                            // mustUnderstand processing the typed path
                            // doesn't do.
                            return Ok(TypedRequest::Fallback);
                        }
                    }
                    r.close(&child)?;
                }
                (FrameType::Component, "Body") => {
                    if child.child_count != 1 {
                        return Ok(TypedRequest::Fallback);
                    }
                    let first = r.open()?;
                    if first.kind.is_element()
                        && first.local == M::expected_local()
                        && first.attr_count == 0
                    {
                        out.decode_bxsa(&mut r, &first)?;
                        return Ok(TypedRequest::Matched { deadline });
                    }
                    return Ok(TypedRequest::Fallback);
                }
                _ => return Ok(TypedRequest::Fallback),
            }
        }
        Ok(TypedRequest::Fallback)
    }

    fn peek_operation<'a>(&self, bytes: &'a [u8]) -> Option<&'a str> {
        let mut r = FieldReader::new(bytes).ok()?;
        let env = r.open().ok()?;
        if env.kind != FrameType::Component || env.local != "Envelope" {
            return None;
        }
        for _ in 0..env.child_count {
            let child = r.open().ok()?;
            if child.kind == FrameType::Component && child.local == "Body" {
                if child.child_count == 0 {
                    return None;
                }
                let first = r.open().ok()?;
                return first.kind.is_element().then_some(first.local);
            }
            r.skip(&child).ok()?;
        }
        None
    }
}

/// Read a `bx:Deadline` element's fields from XML. `Ok(None)` = present
/// but malformed → generic-path fallback (proper fault there).
fn read_deadline_xml<'a>(
    r: &mut XmlFieldReader<'a>,
    head: &XmlHead<'a>,
) -> SoapResult<Option<DeadlineHeader>> {
    if head.self_closing {
        return Ok(None);
    }
    let mut budget = None;
    let mut hops = None;
    loop {
        match r.next()? {
            XmlItem::Start(f) if f.local == "budgetMillis" => {
                budget = u64::try_from(r.leaf_value::<i64>(&f)?).ok();
            }
            XmlItem::Start(f) if f.local == "hops" => {
                hops = u64::try_from(r.leaf_value::<i64>(&f)?).ok();
            }
            XmlItem::Start(f) => r.skip(&f)?,
            XmlItem::End(l) if l == DEADLINE_HEADER_LOCAL => break,
            _ => return Ok(None),
        }
    }
    Ok(match (budget, hops) {
        (Some(b), Some(h)) => Some(DeadlineHeader::new(b, h.min(u32::MAX as u64) as u32)),
        _ => None,
    })
}

impl TypedEncoding for XmlEncoding {
    fn encode_typed<M: ToBxsa>(
        &self,
        msg: &M,
        deadline: Option<&DeadlineHeader>,
        _scratch: &mut TypedScratch,
        out: &mut Vec<u8>,
    ) -> SoapResult<()> {
        // Reuse the byte buffer's capacity as the writer's String, as the
        // tree policy does. Clear *before* the UTF-8 conversion: the old
        // contents are discarded anyway, and validating an empty vector
        // is free where validating last message's bytes is an O(n) scan.
        let mut bytes = std::mem::take(out);
        bytes.clear();
        let mut text = String::from_utf8(bytes).expect("an empty vector is valid UTF-8");
        if self.write_options.declaration {
            text.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        }
        let mut w = XmlFieldWriter::new(&mut text, &self.write_options);
        w.begin_component("soapenv:Envelope", &ENVELOPE_DECLS);
        if let Some(h) = deadline {
            w.begin_component("soapenv:Header", &[]);
            w.begin_component("bx:Deadline", &[]);
            w.leaf(
                "bx:budgetMillis",
                &[],
                h.budget_millis.min(i64::MAX as u64) as i64,
            );
            w.leaf("bx:hops", &[], h.hops as i64);
            w.end_component("bx:Deadline");
            w.end_component("soapenv:Header");
        }
        w.begin_component("soapenv:Body", &[]);
        msg.encode_xml(&mut w);
        w.end_component("soapenv:Body");
        w.end_component("soapenv:Envelope");
        *out = text.into_bytes();
        Ok(())
    }

    fn decode_typed_reply<M: FromBxsa>(
        &self,
        bytes: &[u8],
        out: &mut M,
    ) -> SoapResult<TypedDecode> {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            SoapError::Protocol("XML payload is not valid UTF-8".into())
        })?;
        let mut r = XmlFieldReader::new(text);
        let env = match r.next()? {
            XmlItem::Start(h) if h.local == "Envelope" && h.extra_attrs == 0 => h,
            _ => return Ok(TypedDecode::Fallback),
        };
        if env.self_closing {
            return Ok(TypedDecode::Fallback);
        }
        loop {
            match r.next()? {
                XmlItem::Start(child) if child.local == "Header" => r.skip(&child)?,
                XmlItem::Start(child) if child.local == "Body" => {
                    if child.self_closing {
                        return Ok(TypedDecode::Fallback);
                    }
                    match r.next()? {
                        XmlItem::Start(first)
                            if first.local == M::expected_local() && first.extra_attrs == 0 =>
                        {
                            out.decode_xml(&mut r, &first)?;
                            return Ok(TypedDecode::Matched);
                        }
                        _ => return Ok(TypedDecode::Fallback),
                    }
                }
                _ => return Ok(TypedDecode::Fallback),
            }
        }
    }

    fn decode_typed_request<M: FromBxsa>(
        &self,
        bytes: &[u8],
        out: &mut M,
    ) -> SoapResult<TypedRequest> {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            SoapError::Protocol("XML payload is not valid UTF-8".into())
        })?;
        let mut r = XmlFieldReader::new(text);
        let env = match r.next()? {
            XmlItem::Start(h) if h.local == "Envelope" && h.extra_attrs == 0 => h,
            _ => return Ok(TypedRequest::Fallback),
        };
        if env.self_closing {
            return Ok(TypedRequest::Fallback);
        }
        let mut deadline = None;
        loop {
            match r.next()? {
                XmlItem::Start(child) if child.local == "Header" => {
                    if child.self_closing {
                        continue;
                    }
                    loop {
                        match r.next()? {
                            XmlItem::Start(h)
                                if h.local == DEADLINE_HEADER_LOCAL && h.extra_attrs == 0 =>
                            {
                                match read_deadline_xml(&mut r, &h)? {
                                    Some(d) => deadline = Some(d),
                                    None => return Ok(TypedRequest::Fallback),
                                }
                            }
                            XmlItem::Start(_) => return Ok(TypedRequest::Fallback),
                            XmlItem::End("Header") => break,
                            _ => return Ok(TypedRequest::Fallback),
                        }
                    }
                }
                XmlItem::Start(child) if child.local == "Body" => {
                    if child.self_closing {
                        return Ok(TypedRequest::Fallback);
                    }
                    match r.next()? {
                        XmlItem::Start(first)
                            if first.local == M::expected_local() && first.extra_attrs == 0 =>
                        {
                            out.decode_xml(&mut r, &first)?;
                            return Ok(TypedRequest::Matched { deadline });
                        }
                        _ => return Ok(TypedRequest::Fallback),
                    }
                }
                _ => return Ok(TypedRequest::Fallback),
            }
        }
    }

    fn peek_operation<'a>(&self, bytes: &'a [u8]) -> Option<&'a str> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut r = XmlFieldReader::new(text);
        let env = match r.next().ok()? {
            XmlItem::Start(h) if h.local == "Envelope" && !h.self_closing => h,
            _ => return None,
        };
        let _ = env;
        loop {
            match r.next().ok()? {
                XmlItem::Start(child) if child.local == "Body" => {
                    if child.self_closing {
                        return None;
                    }
                    return match r.next().ok()? {
                        XmlItem::Start(op) => Some(op.local),
                        _ => None,
                    };
                }
                XmlItem::Start(child) => r.skip(&child).ok()?,
                _ => return None,
            }
        }
    }
}

/// A minimal [`ToBxsa`]/[`FromBxsa`] fixture shared by the soap crate's
/// own tests: one packed `f64` array plus one `i64` leaf under a
/// namespaced component — the smallest shape that exercises every codec
/// feature the typed path cares about.
#[cfg(test)]
pub(crate) mod probe {
    use super::*;
    use crate::envelope::SoapEnvelope;
    use bxdm::{ArrayValue, AtomicValue, Element};
    use bxsa::estimate::plain_array_body_bound;

    pub(crate) const PROBE_NS: &str = "http://example.org/probe";
    pub(crate) const PROBE_DECLS: [TypedDecl; 1] = [(Some("p"), PROBE_NS)];

    #[derive(Debug, Clone, Default, PartialEq)]
    pub(crate) struct Probe {
        pub(crate) values: Vec<f64>,
        pub(crate) tag: i64,
    }

    impl ToBxsa for Probe {
        fn element_name(&self) -> TypedName {
            TypedName::new(Some("p"), "Probe")
        }

        fn bxsa_body_bound(&self) -> usize {
            let values = plain_array_body_bound("values", &[], TypeCode::F64, self.values.len());
            let tag = plain_leaf_body_bound("tag", &[], TypeCode::I64, 0);
            plain_component_body_bound("Probe", &PROBE_DECLS, 2, framed(values) + framed(tag))
        }

        fn encode_bxsa(&self, w: &mut FrameWriter) -> SoapResult<()> {
            w.begin_component(self.element_name(), &PROBE_DECLS, 2, self.bxsa_body_bound())?;
            w.array(TypedName::new(Some("p"), "values"), &[], &self.values)?;
            w.leaf(TypedName::new(Some("p"), "tag"), &[], self.tag)?;
            Ok(w.end_component()?)
        }

        fn encode_xml(&self, w: &mut XmlFieldWriter<'_>) {
            w.begin_component("p:Probe", &PROBE_DECLS);
            w.array("p:values", &[], &self.values);
            w.leaf("p:tag", &[], self.tag);
            w.end_component("p:Probe");
        }
    }

    impl FromBxsa for Probe {
        fn expected_local() -> &'static str {
            "Probe"
        }

        fn decode_bxsa<'a>(
            &mut self,
            r: &mut FieldReader<'a>,
            head: &ElementHead<'a>,
        ) -> SoapResult<()> {
            self.values.clear();
            let mut tag = None;
            for _ in 0..head.child_count {
                let f = r.open()?;
                match f.local {
                    "values" => r.read_array_into(&f, &mut self.values)?,
                    "tag" => tag = Some(r.read_value::<i64>(&f)?),
                    _ => r.skip(&f)?,
                }
            }
            r.close(head)?;
            self.tag =
                tag.ok_or_else(|| SoapError::Protocol("Probe is missing its tag field".into()))?;
            Ok(())
        }

        fn decode_xml<'a>(
            &mut self,
            r: &mut XmlFieldReader<'a>,
            head: &XmlHead<'a>,
        ) -> SoapResult<()> {
            self.values.clear();
            let mut tag = None;
            if !head.self_closing {
                loop {
                    match r.next()? {
                        XmlItem::Start(f) if f.local == "values" => {
                            r.array_into(&f, &mut self.values)?
                        }
                        XmlItem::Start(f) if f.local == "tag" => {
                            tag = Some(r.leaf_value::<i64>(&f)?)
                        }
                        XmlItem::Start(f) => r.skip(&f)?,
                        XmlItem::End(l) if l == head.local => break,
                        _ => {
                            return Err(SoapError::Protocol(
                                "unexpected content inside Probe".into(),
                            ))
                        }
                    }
                }
            }
            self.tag =
                tag.ok_or_else(|| SoapError::Protocol("Probe is missing its tag field".into()))?;
            Ok(())
        }
    }

    pub(crate) fn probe(len: usize) -> Probe {
        Probe {
            values: (0..len).map(|i| i as f64 * 0.25 - 3.0).collect(),
            tag: 42,
        }
    }

    pub(crate) fn probe_element(p: &Probe) -> Element {
        Element::component("p:Probe")
            .with_namespace("p", PROBE_NS)
            .with_child(Element::array("p:values", ArrayValue::F64(p.values.clone())))
            .with_child(Element::leaf("p:tag", AtomicValue::I64(p.tag)))
    }

    pub(crate) fn tree_envelope(p: &Probe, deadline: Option<DeadlineHeader>) -> SoapEnvelope {
        let mut env = SoapEnvelope::with_body(probe_element(p));
        if let Some(h) = deadline {
            h.stamp(&mut env);
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::probe::*;
    use super::*;
    use crate::envelope::SoapEnvelope;
    use crate::fault::{FaultCode, SoapFault};
    use bxdm::{AtomicValue, Element};
    use bxsa::EncodeOptions;

    #[test]
    fn bxsa_typed_envelope_is_byte_identical_to_tree() {
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let enc = BxsaEncoding {
                options: EncodeOptions { byte_order: order, ..Default::default() },
            };
            let mut scratch = TypedScratch::default();
            for deadline in [None, Some(DeadlineHeader::new(250, 8))] {
                for len in [0usize, 3, 1000] {
                    let p = probe(len);
                    let tree = EncodingPolicy::encode(&enc, &tree_envelope(&p, deadline).to_document()).unwrap();
                    let mut typed = Vec::new();
                    enc.encode_typed(&p, deadline.as_ref(), &mut scratch, &mut typed)
                        .unwrap();
                    assert_eq!(typed, tree, "order {order:?} deadline {deadline:?} len {len}");
                }
            }
        }
    }

    #[test]
    fn xml_typed_envelope_is_byte_identical_to_tree() {
        for declaration in [false, true] {
            let enc = XmlEncoding {
                write_options: xmltext::XmlWriteOptions {
                    declaration,
                    ..Default::default()
                },
            };
            let mut scratch = TypedScratch::default();
            for deadline in [None, Some(DeadlineHeader::new(250, 8))] {
                let p = probe(5);
                let tree = EncodingPolicy::encode(&enc, &tree_envelope(&p, deadline).to_document()).unwrap();
                let mut typed = Vec::new();
                enc.encode_typed(&p, deadline.as_ref(), &mut scratch, &mut typed)
                    .unwrap();
                assert_eq!(
                    String::from_utf8(typed).unwrap(),
                    String::from_utf8(tree).unwrap(),
                    "declaration {declaration} deadline {deadline:?}"
                );
            }
        }
    }

    #[test]
    fn typed_reply_decode_roundtrips_both_encodings() {
        let p = probe(17);
        let mut scratch = TypedScratch::default();
        let mut wire = Vec::new();
        let mut back = Probe::default();

        let bin = BxsaEncoding::default();
        bin.encode_typed(&p, None, &mut scratch, &mut wire).unwrap();
        assert_eq!(
            TypedEncoding::decode_typed_reply(&bin, &wire, &mut back).unwrap(),
            TypedDecode::Matched
        );
        assert_eq!(back, p);

        let xml = XmlEncoding::default();
        xml.encode_typed(&p, None, &mut scratch, &mut wire).unwrap();
        back = Probe::default();
        assert_eq!(
            TypedEncoding::decode_typed_reply(&xml, &wire, &mut back).unwrap(),
            TypedDecode::Matched
        );
        assert_eq!(back, p);
    }

    #[test]
    fn fault_and_foreign_shapes_fall_back() {
        let fault_env = SoapEnvelope::with_body(
            SoapFault::new(FaultCode::Client, "no such operation").to_element(),
        );
        let mut back = Probe::default();
        for_each_encoding(|enc| {
            let bytes = enc.tree_encode(&fault_env.to_document()).unwrap();
            assert_eq!(
                enc.reply(&bytes, &mut back).unwrap(),
                TypedDecode::Fallback
            );
        });
        // A different operation name also falls back.
        let other = SoapEnvelope::with_body(Element::component("Other"));
        for_each_encoding(|enc| {
            let bytes = enc.tree_encode(&other.to_document()).unwrap();
            assert_eq!(
                enc.reply(&bytes, &mut back).unwrap(),
                TypedDecode::Fallback
            );
        });
    }

    /// Run a closure once with each typed encoding (monomorphized —
    /// TypedEncoding is deliberately not object safe).
    fn for_each_encoding(mut f: impl FnMut(&dyn TestEncoding)) {
        f(&BxsaEncoding::default());
        f(&XmlEncoding::default());
    }

    /// Object-safe shim over the two concrete encodings for test loops.
    trait TestEncoding {
        fn tree_encode(&self, doc: &bxdm::Document) -> SoapResult<Vec<u8>>;
        fn reply(&self, bytes: &[u8], out: &mut Probe) -> SoapResult<TypedDecode>;
        fn request(&self, bytes: &[u8], out: &mut Probe) -> SoapResult<TypedRequest>;
        fn peek(&self, bytes: &[u8]) -> Option<String>;
    }

    impl TestEncoding for BxsaEncoding {
        fn tree_encode(&self, doc: &bxdm::Document) -> SoapResult<Vec<u8>> {
            EncodingPolicy::encode(self, doc)
        }
        fn reply(&self, bytes: &[u8], out: &mut Probe) -> SoapResult<TypedDecode> {
            TypedEncoding::decode_typed_reply(self, bytes, out)
        }
        fn request(&self, bytes: &[u8], out: &mut Probe) -> SoapResult<TypedRequest> {
            TypedEncoding::decode_typed_request(self, bytes, out)
        }
        fn peek(&self, bytes: &[u8]) -> Option<String> {
            self.peek_operation(bytes).map(str::to_owned)
        }
    }

    impl TestEncoding for XmlEncoding {
        fn tree_encode(&self, doc: &bxdm::Document) -> SoapResult<Vec<u8>> {
            EncodingPolicy::encode(self, doc)
        }
        fn reply(&self, bytes: &[u8], out: &mut Probe) -> SoapResult<TypedDecode> {
            TypedEncoding::decode_typed_reply(self, bytes, out)
        }
        fn request(&self, bytes: &[u8], out: &mut Probe) -> SoapResult<TypedRequest> {
            TypedEncoding::decode_typed_request(self, bytes, out)
        }
        fn peek(&self, bytes: &[u8]) -> Option<String> {
            self.peek_operation(bytes).map(str::to_owned)
        }
    }

    #[test]
    fn request_decode_extracts_the_deadline_header() {
        let p = probe(4);
        let header = DeadlineHeader::new(750, 3);
        let env = tree_envelope(&p, Some(header));
        let mut back = Probe::default();
        for_each_encoding(|enc| {
            let bytes = enc.tree_encode(&env.to_document()).unwrap();
            assert_eq!(
                enc.request(&bytes, &mut back).unwrap(),
                TypedRequest::Matched {
                    deadline: Some(header)
                }
            );
            assert_eq!(back, p);
        });
        // No header at all → Matched with no deadline.
        let env = tree_envelope(&p, None);
        for_each_encoding(|enc| {
            let bytes = enc.tree_encode(&env.to_document()).unwrap();
            assert_eq!(
                enc.request(&bytes, &mut back).unwrap(),
                TypedRequest::Matched { deadline: None }
            );
        });
    }

    #[test]
    fn foreign_and_must_understand_headers_force_request_fallback() {
        let p = probe(2);
        // A mustUnderstand-flagged foreign header must never be consumed
        // by the typed path (it would skip the understanding check).
        let flagged = tree_envelope(&p, None).with_header(
            Element::component("wsse:Security")
                .with_namespace("wsse", "http://example.org/wsse")
                .with_attr("soapenv:mustUnderstand", "1"),
        );
        let plain = tree_envelope(&p, None).with_header(Element::leaf(
            "MessageID",
            AtomicValue::Str("urn:uuid:1".into()),
        ));
        let mut back = Probe::default();
        for env in [flagged, plain] {
            for_each_encoding(|enc| {
                let bytes = enc.tree_encode(&env.to_document()).unwrap();
                assert_eq!(
                    enc.request(&bytes, &mut back).unwrap(),
                    TypedRequest::Fallback
                );
            });
        }
    }

    #[test]
    fn peek_operation_reads_the_body_entry_name() {
        let env = tree_envelope(&probe(1), Some(DeadlineHeader::new(100, 1)));
        for_each_encoding(|enc| {
            let bytes = enc.tree_encode(&env.to_document()).unwrap();
            assert_eq!(enc.peek(&bytes).as_deref(), Some("Probe"));
            assert_eq!(enc.peek(b"garbage"), None);
        });
    }
}
