//! Binding policies (paper §5.3).
//!
//! "The binding concept is an object that implements the binding rules
//! for carrying a SOAP message within or on top of another protocol."
//! The client-side valid expressions are exactly the paper's:
//! `send_request` and `receive_response`. (The server halves,
//! `receive_request`/`send_response`, live in [`crate::server`] where the
//! accept loop owns the connection.)

use transport::faulty::FaultAction;
use transport::{
    Deadline, FramedStream, HttpConnection, HttpResponse, SharedInjector, Timeouts, TransportError,
};

use crate::error::{SoapError, SoapResult};
use crate::fault::SoapFault;

/// Client-side transport binding.
///
/// The buffer-reusing form is the *required* receive method: every
/// binding must be able to land response bytes in caller-owned storage
/// (the engine's steady-state path). The allocating `receive_response`
/// and the exchange conveniences are defaults on top.
pub trait BindingPolicy {
    /// Transmit one request payload.
    fn send_request(&mut self, payload: &[u8], content_type: &str) -> SoapResult<()>;
    /// Receive the matching response payload into a reusable buffer
    /// (contents replaced, capacity kept).
    fn receive_response_into(&mut self, out: &mut Vec<u8>) -> SoapResult<()>;

    /// Receive the matching response payload into fresh storage. Default:
    /// delegates to
    /// [`receive_response_into`](BindingPolicy::receive_response_into).
    fn receive_response(&mut self) -> SoapResult<Vec<u8>> {
        let mut out = Vec::new();
        self.receive_response_into(&mut out)?;
        Ok(out)
    }

    /// Request/response convenience. Default: delegates through
    /// [`exchange_into`](BindingPolicy::exchange_into).
    fn exchange(&mut self, payload: &[u8], content_type: &str) -> SoapResult<Vec<u8>> {
        let mut out = Vec::new();
        self.exchange_into(payload, content_type, &mut out)?;
        Ok(out)
    }

    /// Request/response into a reusable response buffer — the engine's
    /// steady-state path.
    fn exchange_into(
        &mut self,
        payload: &[u8],
        content_type: &str,
        out: &mut Vec<u8>,
    ) -> SoapResult<()> {
        self.send_request(payload, content_type)?;
        self.receive_response_into(out)
    }

    /// One-way send (no response expected).
    fn send_one_way(&mut self, payload: &[u8], content_type: &str) -> SoapResult<()> {
        self.send_request(payload, content_type)
    }

    /// Bound the *next* exchanges by a caller's end-to-end deadline:
    /// network-capable bindings narrow their per-phase socket budgets to
    /// what the deadline has left (and fail with the typed timeout once
    /// it is spent). `None` restores the binding's static timeouts.
    /// Default: ignored (in-process bindings have no sockets to bound).
    fn set_call_deadline(&mut self, deadline: Option<Deadline>) {
        let _ = deadline;
    }
}

/// SOAP over HTTP POST: each request is one HTTP exchange, carried over a
/// persistent keep-alive connection.
///
/// "The HTTP binding will create a HTTP request message with the
/// serialized SOAP message as payload" (§5.3). The connection is cached
/// across calls ([`HttpConnection`]) so the steady-state cost per call is
/// one write and one read, not a TCP handshake; a server that answers
/// `Connection: close` simply reverts the binding to one exchange per
/// connect.
#[derive(Debug)]
pub struct HttpBinding {
    addr: String,
    /// SOAPAction header value, if the service wants one.
    pub soap_action: Option<String>,
    /// Per-phase time budgets for each exchange (default: unlimited).
    pub timeouts: Timeouts,
    /// Reusable request scaffold: the path is fixed at construction and
    /// the body buffer's capacity survives across calls.
    request: transport::HttpRequest,
    /// Reusable response parse target (body capacity survives).
    response: HttpResponse,
    /// The cached keep-alive connection (reconnects lazily).
    conn: HttpConnection,
    pending: bool,
    /// Live call deadline narrowing `timeouts` for the current call.
    call_deadline: Option<Deadline>,
}

impl HttpBinding {
    /// Bind to an HTTP endpoint (`addr` like `127.0.0.1:8080`).
    pub fn new(addr: &str, path: &str) -> HttpBinding {
        HttpBinding {
            addr: addr.to_owned(),
            soap_action: None,
            timeouts: Timeouts::none(),
            request: transport::HttpRequest::post(path, "", Vec::new()),
            response: HttpResponse::empty(),
            conn: HttpConnection::new(addr),
            pending: false,
            call_deadline: None,
        }
    }

    /// Set per-phase time budgets (chainable).
    pub fn with_timeouts(mut self, timeouts: Timeouts) -> HttpBinding {
        self.timeouts = timeouts;
        self
    }

    /// The endpoint address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Exchanges that reused the cached connection (diagnostics).
    pub fn connection_reuses(&self) -> u64 {
        self.conn.reuse_count()
    }

    // --- streaming half (used by `SoapEngine::call_streaming`) ---
    //
    // The same reusable request scaffold and cached connection, but the
    // body goes out as chunked transfer-encoding: one chunk per message
    // part, written as the caller produces them. Only the head write may
    // transparently reconnect; once the first part is on the wire the
    // exchange is not replayable and any failure poisons the socket.

    /// Open a streamed request: send the chunked head. `deadline`, when
    /// set, narrows every phase budget of the whole exchange.
    pub(crate) fn stream_begin(
        &mut self,
        content_type: &str,
        deadline: Option<&Deadline>,
    ) -> SoapResult<()> {
        self.pending = false;
        self.request.body.clear();
        self.request.headers.clear();
        self.request
            .headers
            .push(("Content-Type".into(), content_type.into()));
        if let Some(action) = &self.soap_action {
            self.request
                .headers
                .push(("SOAPAction".into(), action.clone()));
        }
        let timeouts = match deadline {
            Some(d) => self.timeouts.clamped_to(d).map_err(SoapError::Transport)?,
            None => self.timeouts,
        };
        Ok(self.conn.stream_begin_with(&self.request, &timeouts)?)
    }

    /// Send one message part as one chunk (empty parts are skipped — an
    /// empty chunk would terminate the body).
    pub(crate) fn stream_send_part(&mut self, part: &[u8]) -> SoapResult<()> {
        Ok(self.conn.stream_send_part(part)?)
    }

    /// Terminate the request body and flush.
    pub(crate) fn stream_finish_send(&mut self) -> SoapResult<()> {
        Ok(self.conn.stream_finish_send()?)
    }

    /// Read the response head. `Ok(true)`: the reply is itself streamed —
    /// pull its parts with
    /// [`stream_next_part_into`](HttpBinding::stream_next_part_into).
    /// `Ok(false)`: the reply was buffered and its complete body is held
    /// by the binding (take it with
    /// [`take_response_body`](HttpBinding::take_response_body)); SOAP
    /// faults ride in buffered 500s exactly like the non-streamed path.
    pub(crate) fn stream_read_head(&mut self) -> SoapResult<bool> {
        let streamed = self.conn.stream_read_head(&mut self.response)?;
        if !self.response.is_success() && self.response.status != 500 {
            return Err(SoapError::Transport(self.response.status_error()));
        }
        Ok(streamed)
    }

    /// Pull the next reply part into `out` (replaced, capacity kept).
    /// `Ok(false)`: the terminator arrived — the reply is complete and
    /// the connection stays reusable.
    pub(crate) fn stream_next_part_into(&mut self, out: &mut Vec<u8>) -> SoapResult<bool> {
        Ok(self
            .conn
            .stream_next_part_into(out, crate::streaming::MAX_PART_LEN)?)
    }

    /// Swap out the buffered response body after
    /// [`stream_read_head`](HttpBinding::stream_read_head) returned
    /// `false`.
    pub(crate) fn take_response_body(&mut self, out: &mut Vec<u8>) {
        std::mem::swap(out, &mut self.response.body);
    }
}

impl Clone for HttpBinding {
    fn clone(&self) -> HttpBinding {
        // A clone is a fresh client to the same endpoint: sockets are not
        // shareable, so it starts disconnected and dials on first use.
        HttpBinding {
            addr: self.addr.clone(),
            soap_action: self.soap_action.clone(),
            timeouts: self.timeouts,
            request: self.request.clone(),
            response: HttpResponse::empty(),
            conn: HttpConnection::new(&self.addr),
            pending: false,
            call_deadline: self.call_deadline,
        }
    }
}

impl BindingPolicy for HttpBinding {
    fn send_request(&mut self, payload: &[u8], content_type: &str) -> SoapResult<()> {
        self.pending = false;
        // Refill the reusable request in place: same path, rebuilt
        // headers, body capacity kept.
        self.request.body.clear();
        self.request.body.extend_from_slice(payload);
        self.request.headers.clear();
        self.request
            .headers
            .push(("Content-Type".into(), content_type.into()));
        if let Some(action) = &self.soap_action {
            self.request
                .headers
                .push(("SOAPAction".into(), action.clone()));
        }
        // One HTTP exchange = write + read on the cached connection
        // (connect only when cold or the kept socket died); under a call
        // deadline every phase budget narrows to what's left (and an
        // already-spent deadline fails here, before any socket work).
        let timeouts = match &self.call_deadline {
            Some(d) => self.timeouts.clamped_to(d).map_err(SoapError::Transport)?,
            None => self.timeouts,
        };
        self.conn
            .exchange_with_into(&self.request, &timeouts, &mut self.response)?;
        // SOAP-over-HTTP delivers faults in 500 responses with a SOAP
        // body; anything else non-2xx is a transport-level error carrying
        // the status, a body prefix, and any Retry-After.
        if !self.response.is_success() && self.response.status != 500 {
            return Err(SoapError::Transport(self.response.status_error()));
        }
        self.pending = true;
        Ok(())
    }

    fn receive_response_into(&mut self, out: &mut Vec<u8>) -> SoapResult<()> {
        if !std::mem::take(&mut self.pending) {
            return Err(SoapError::Protocol(
                "receive_response before send_request".into(),
            ));
        }
        // Swap keeps both buffers in the reuse cycle: the caller gets
        // the response bytes, the binding gets a capacity-bearing buffer
        // for the next response.
        std::mem::swap(out, &mut self.response.body);
        Ok(())
    }

    fn set_call_deadline(&mut self, deadline: Option<Deadline>) {
        self.call_deadline = deadline;
    }
}

/// SOAP over raw TCP with length-prefixed framing: "the TCP binding will
/// just dump the serialization directly to a TCP connection" (§5.3).
///
/// The connection persists across calls and reconnects lazily after
/// failures.
#[derive(Debug)]
pub struct TcpBinding {
    addr: String,
    /// Per-phase time budgets applied on (re)connect (default: unlimited).
    pub timeouts: Timeouts,
    stream: Option<FramedStream>,
    /// Live call deadline narrowing `timeouts` for the current call.
    call_deadline: Option<Deadline>,
    /// The persistent socket currently carries deadline-narrowed budgets
    /// (they must be restored once the deadline is cleared).
    deadline_applied: bool,
}

impl TcpBinding {
    /// Bind to a framed-TCP endpoint.
    pub fn new(addr: &str) -> TcpBinding {
        TcpBinding {
            addr: addr.to_owned(),
            timeouts: Timeouts::none(),
            stream: None,
            call_deadline: None,
            deadline_applied: false,
        }
    }

    /// Set per-phase time budgets (chainable); applied on next connect.
    pub fn with_timeouts(mut self, timeouts: Timeouts) -> TcpBinding {
        self.timeouts = timeouts;
        self.stream = None; // reconnect with the new budgets
        self
    }

    /// The endpoint address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn stream(&mut self) -> SoapResult<&mut FramedStream> {
        // Under a call deadline every phase narrows to what's left; an
        // already-spent deadline fails here, before any socket work. The
        // connection persists across calls, so deadline budgets are
        // (re)applied per use and the static ones restored afterwards —
        // tracked by `deadline_applied` so deadline-free traffic on a
        // warm connection costs no timeout syscalls.
        let timeouts = match &self.call_deadline {
            Some(d) => self.timeouts.clamped_to(d).map_err(SoapError::Transport)?,
            None => self.timeouts,
        };
        match &mut self.stream {
            None => {
                self.stream = Some(FramedStream::connect_with(&self.addr, &timeouts)?);
                self.deadline_applied = self.call_deadline.is_some();
            }
            Some(stream) => {
                if self.call_deadline.is_some() || self.deadline_applied {
                    stream.set_read_timeout(timeouts.read)?;
                    stream.set_write_timeout(timeouts.write)?;
                    self.deadline_applied = self.call_deadline.is_some();
                }
            }
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }
}

impl BindingPolicy for TcpBinding {
    fn send_request(&mut self, payload: &[u8], _content_type: &str) -> SoapResult<()> {
        // Raw TCP carries no metadata; the content type is implicit in
        // the endpoint contract (the generic engine guarantees both ends
        // agree at compile time).
        let result = self.stream()?.send(payload);
        if result.is_err() {
            self.stream = None; // force reconnect next time
        }
        result.map_err(Into::into)
    }

    fn receive_response_into(&mut self, out: &mut Vec<u8>) -> SoapResult<()> {
        let result = self.stream()?.recv_into(out);
        if result.is_err() {
            self.stream = None;
        }
        result.map_err(Into::into)
    }

    fn set_call_deadline(&mut self, deadline: Option<Deadline>) {
        self.call_deadline = deadline;
    }
}

/// A loopback binding for tests and in-process composition: requests are
/// answered by a closure.
pub struct LoopbackBinding<F>
where
    F: FnMut(&[u8]) -> Vec<u8>,
{
    handler: F,
    pending: Option<Vec<u8>>,
}

impl<F> LoopbackBinding<F>
where
    F: FnMut(&[u8]) -> Vec<u8>,
{
    /// A loopback answering with `handler`.
    pub fn new(handler: F) -> LoopbackBinding<F> {
        LoopbackBinding {
            handler,
            pending: None,
        }
    }
}

impl<F> BindingPolicy for LoopbackBinding<F>
where
    F: FnMut(&[u8]) -> Vec<u8>,
{
    fn send_request(&mut self, payload: &[u8], _content_type: &str) -> SoapResult<()> {
        self.pending = Some((self.handler)(payload));
        Ok(())
    }

    fn receive_response_into(&mut self, out: &mut Vec<u8>) -> SoapResult<()> {
        let response = self
            .pending
            .take()
            .ok_or_else(|| SoapError::Protocol("receive_response before send_request".into()))?;
        *out = response;
        Ok(())
    }
}

/// A fault-injecting decorator over any [`BindingPolicy`].
///
/// Consults a shared, seeded [`transport::FaultInjector`] at each
/// message-level event and surfaces its decisions as the same typed
/// transport errors a real flaky network would produce:
///
/// * refused connect → [`TransportError::ConnectFailed`] (retry-safe —
///   the request never left the client),
/// * drop mid-exchange → [`TransportError::ConnectionClosed`],
/// * stall → [`TransportError::TimedOut`],
/// * truncate/corrupt → the mutated bytes are passed through for the
///   decoders downstream to reject.
///
/// Sharing one [`SharedInjector`] between a `FaultingBinding` and any
/// [`transport::FaultingTransport`] streams keeps the whole test run on a
/// single deterministic fault schedule.
pub struct FaultingBinding<B: BindingPolicy> {
    inner: B,
    injector: SharedInjector,
}

impl<B: BindingPolicy> FaultingBinding<B> {
    /// Decorate `inner` with faults drawn from `injector`.
    pub fn new(inner: B, injector: SharedInjector) -> FaultingBinding<B> {
        FaultingBinding { inner, injector }
    }

    /// The decorated binding.
    pub fn inner(&mut self) -> &mut B {
        &mut self.inner
    }

    fn surface(&self, action: FaultAction) -> SoapResult<()> {
        match action {
            FaultAction::Drop => Err(SoapError::Transport(TransportError::ConnectionClosed)),
            FaultAction::Stall => Err(SoapError::Transport(TransportError::TimedOut {
                elapsed: std::time::Duration::ZERO,
                budget: std::time::Duration::ZERO,
            })),
            // Deliver / Delay (virtual time) / Truncate / Corrupt: the
            // (possibly mutated) bytes still flow.
            _ => Ok(()),
        }
    }
}

impl<B: BindingPolicy> BindingPolicy for FaultingBinding<B> {
    fn send_request(&mut self, payload: &[u8], content_type: &str) -> SoapResult<()> {
        // Connect-level refusals happen before any bytes leave the
        // client, so they are the retry-safe failure class.
        if !self.injector.lock().connect_allowed() {
            return Err(SoapError::Transport(TransportError::ConnectFailed {
                addr: "<fault-injector>".into(),
                source: std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "injected connect refusal",
                ),
            }));
        }
        let mut message = payload.to_vec();
        let action = self.injector.lock().mutate_message(&mut message);
        self.surface(action)?;
        self.inner.send_request(&message, content_type)
    }

    fn receive_response_into(&mut self, out: &mut Vec<u8>) -> SoapResult<()> {
        self.inner.receive_response_into(out)?;
        let action = self.injector.lock().mutate_message(out);
        self.surface(action)
    }

    fn set_call_deadline(&mut self, deadline: Option<Deadline>) {
        self.inner.set_call_deadline(deadline);
    }
}

/// Helper: is this error a SOAP fault (as opposed to a transport/encoding
/// failure)?
pub fn as_fault(err: &SoapError) -> Option<&SoapFault> {
    match err {
        SoapError::Fault(f) => Some(f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_echoes() {
        let mut b = LoopbackBinding::new(|req: &[u8]| {
            let mut v = req.to_vec();
            v.extend_from_slice(b"!");
            v
        });
        let out = b.exchange(b"ping", "text/xml").unwrap();
        assert_eq!(out, b"ping!");
    }

    #[test]
    fn receive_before_send_is_protocol_error() {
        let mut b = LoopbackBinding::new(|_: &[u8]| vec![]);
        assert!(matches!(
            b.receive_response(),
            Err(SoapError::Protocol(_))
        ));
        let mut h = HttpBinding::new("127.0.0.1:1", "/");
        assert!(matches!(h.receive_response(), Err(SoapError::Protocol(_))));
    }

    #[test]
    fn tcp_binding_roundtrip_against_real_server() {
        let server = transport::TcpServer::bind("127.0.0.1:0", |req| {
            let mut v = req;
            v.reverse();
            v
        })
        .unwrap();
        let mut binding = TcpBinding::new(&server.local_addr().to_string());
        let out = binding.exchange(b"abc", "application/bxsa").unwrap();
        assert_eq!(out, b"cba");
        // Connection reuse: second exchange on the same stream.
        let out = binding.exchange(b"12345", "application/bxsa").unwrap();
        assert_eq!(out, b"54321");
        drop(binding);
        server.shutdown();
    }

    #[test]
    fn tcp_binding_reports_connect_failure() {
        // Port 1 is essentially never listening.
        let mut binding = TcpBinding::new("127.0.0.1:1");
        assert!(binding.send_request(b"x", "t").is_err());
    }

    #[test]
    fn http_binding_roundtrip_against_real_server() {
        let server = transport::HttpServer::bind("127.0.0.1:0", |req| {
            assert_eq!(req.method, "POST");
            transport::HttpResponse::ok("text/xml", req.body.clone())
        })
        .unwrap();
        let mut binding = HttpBinding::new(&server.local_addr().to_string(), "/soap");
        binding.soap_action = Some("\"op\"".into());
        let out = binding.exchange(b"<x/>", "text/xml").unwrap();
        assert_eq!(out, b"<x/>");
        server.shutdown();
    }

    #[test]
    fn http_binding_reuses_its_connection() {
        let server = transport::HttpServer::bind("127.0.0.1:0", |req| {
            transport::HttpResponse::ok("text/xml", req.body.clone())
        })
        .unwrap();
        let mut binding = HttpBinding::new(&server.local_addr().to_string(), "/soap");
        for i in 0..5u8 {
            let out = binding.exchange(&[i], "text/xml").unwrap();
            assert_eq!(out, [i]);
        }
        // Calls 2..5 all rode the socket call 1 opened.
        assert_eq!(binding.connection_reuses(), 4);
        // A clone is an independent client: it starts disconnected.
        let clone = binding.clone();
        assert_eq!(clone.connection_reuses(), 0);
        server.shutdown();
    }
}
