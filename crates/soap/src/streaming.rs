//! End-to-end streaming: constant-memory message exchange.
//!
//! The paper's configurations buffer a whole message per exchange; this
//! module removes that ceiling. A *streamed* SOAP message is a sequence
//! of independently decodable pieces carried over HTTP/1.1 chunked
//! transfer-encoding, one piece per chunk:
//!
//! * **chunk 1 — the manifest**: a complete encoded SOAP envelope naming
//!   the operation and carrying whatever small parameters it has (and
//!   the `bx:Deadline` header, when the caller set one);
//! * **chunks 2..N — the parts**: one standalone element each (a BXSA
//!   element frame, or a textual XML fragment), typically an array
//!   batch of the payload;
//! * **the zero-length chunk** terminates the message.
//!
//! Chunk boundaries *are* part boundaries, so neither side ever
//! re-frames: the receiver decodes each part the moment its chunk
//! completes and releases the buffer for the next one. Steady-state
//! memory is O(window) — one part — independent of the payload size,
//! which is what lets a gigabyte message cross a node that never holds
//! more than [`MAX_PART_LEN`] of it.
//!
//! [`StreamEncoding`] extends [`EncodingPolicy`] with the per-part
//! codec; both stock encodings implement it, so the streaming path is
//! policy-generic exactly like the buffered one. The client surface is
//! [`crate::SoapEngine::call_streaming`]; the server surface is
//! [`crate::SoapService::register_streaming`] + [`StreamOp`]; relays
//! use [`crate::Intermediary::bind_http_streaming`].

use std::sync::Arc;

use bxdm::{Document, Element, Node};
use transport::{StreamReply as WireReply, TransportError};

use crate::binding::HttpBinding;
use crate::encoding::{BxsaEncoding, EncodingPolicy, XmlEncoding};
use crate::envelope::{DeadlineHeader, SoapEnvelope};
use crate::error::{SoapError, SoapResult};
use crate::fault::SoapFault;
use crate::metrics;
use crate::service::{fault_envelope, fault_for_error, SoapService, EXPIRED_RETRY_AFTER};

/// Hard cap on one encoded part, mirrored from the transport's
/// per-chunk cap: the streaming window both sides size their buffers
/// to. A payload bigger than this must be split into more parts, not a
/// bigger one.
pub const MAX_PART_LEN: usize = 4 * 1024 * 1024;

/// Reusable per-part decode state: the node/document slot each part is
/// decoded into, refilled in place so a stream of similarly-shaped
/// parts decodes allocation-free at steady state.
pub struct PartScratch {
    /// BXSA parts land here (a standalone element frame).
    node: Node,
    /// XML parts land here (a one-element fragment document).
    doc: Document,
}

impl Default for PartScratch {
    fn default() -> PartScratch {
        PartScratch {
            node: Node::Text(String::new()),
            doc: Document::new(),
        }
    }
}

/// An encoding that can serialize and deserialize *individual message
/// parts* in addition to whole documents — the per-part half of the
/// streaming pipeline.
///
/// A part is one standalone [`Element`]: a BXSA element frame
/// (self-delimiting, byte-order-tagged) or a textual XML fragment. The
/// `_into` forms are required for the same reason as on
/// [`EncodingPolicy`]: the steady-state path reuses caller storage.
pub trait StreamEncoding: EncodingPolicy {
    /// Serialize one part into a reusable buffer (contents replaced,
    /// capacity kept).
    fn encode_part_into(&self, part: &Element, out: &mut Vec<u8>) -> SoapResult<()>;

    /// Decode one part into reusable scratch, borrowing the result from
    /// it. On error the scratch holds unspecified but valid contents.
    fn decode_part<'s>(&self, bytes: &[u8], scratch: &'s mut PartScratch)
        -> SoapResult<&'s Element>;
}

impl StreamEncoding for BxsaEncoding {
    fn encode_part_into(&self, part: &Element, out: &mut Vec<u8>) -> SoapResult<()> {
        Ok(bxsa::encode_element_into(part, &self.options, out)?)
    }

    fn decode_part<'s>(
        &self,
        bytes: &[u8],
        scratch: &'s mut PartScratch,
    ) -> SoapResult<&'s Element> {
        bxsa::decode_element_into(bytes, &mut scratch.node)?;
        scratch
            .node
            .as_element()
            .ok_or_else(|| SoapError::Protocol("BXSA part frame is not an element".into()))
    }
}

impl StreamEncoding for XmlEncoding {
    fn encode_part_into(&self, part: &Element, out: &mut Vec<u8>) -> SoapResult<()> {
        // Same buffer-as-String trick as the whole-document encoder:
        // the byte buffer's capacity is the writer's capacity.
        let mut text = String::from_utf8(std::mem::take(out)).unwrap_or_default();
        xmltext::write_element_into(part, &self.write_options, &mut text);
        *out = text.into_bytes();
        Ok(())
    }

    fn decode_part<'s>(
        &self,
        bytes: &[u8],
        scratch: &'s mut PartScratch,
    ) -> SoapResult<&'s Element> {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            SoapError::Protocol("XML part is not valid UTF-8".into())
        })?;
        xmltext::parse_into(text, &mut scratch.doc)?;
        scratch
            .doc
            .root()
            .ok_or_else(|| SoapError::Protocol("XML part has no element".into()))
    }
}

/// One server-side streamed exchange: the operation implementation a
/// service registers via [`crate::SoapService::register_streaming`].
///
/// Lifecycle: `start` (the decoded manifest envelope) → `on_part` per
/// request part → `finish` (produce the reply manifest) → `next_part`
/// until it returns `false`. Each instance serves exactly one exchange;
/// the factory closure makes a fresh one per request.
pub trait StreamOp: Send {
    /// The request manifest arrived (operation parameters live here).
    fn start(&mut self, manifest: &SoapEnvelope) -> SoapResult<()>;

    /// One request part arrived. The element borrows per-part scratch —
    /// copy out whatever must outlive the call.
    fn on_part(&mut self, part: &Element) -> SoapResult<()>;

    /// All request parts are in: produce the reply manifest envelope.
    /// Returning a fault envelope (or an error) answers buffered with
    /// HTTP 500, like the non-streamed path.
    fn finish(&mut self) -> SoapResult<SoapEnvelope>;

    /// Produce the next reply part by refilling `slot` (it arrives
    /// holding the previous part, so same-shape replies can refill in
    /// place). `Ok(false)` ends the reply. An error after `finish`
    /// truncates the wire stream — the client sees a hard transport
    /// error, never a silently short payload.
    fn next_part(&mut self, slot: &mut Element) -> SoapResult<bool>;
}

/// Factory for per-exchange [`StreamOp`] instances.
pub(crate) type StreamOpFactory = dyn Fn() -> Box<dyn StreamOp> + Send + Sync;

/// Sends a streamed request's payload parts, from inside the producer
/// closure of [`crate::SoapEngine::call_streaming`]. Each [`send`]
/// encodes one element into the engine's reusable part buffer and puts
/// it on the wire as one chunk — the element is gone the moment the
/// call returns, so the producer can refill and resend one element
/// forever: constant memory no matter how much data flows.
///
/// [`send`]: PartSender::send
pub struct PartSender<'a, E: StreamEncoding> {
    encoding: &'a E,
    binding: &'a mut HttpBinding,
    buf: &'a mut Vec<u8>,
    parts: u64,
}

impl<'a, E: StreamEncoding> PartSender<'a, E> {
    pub(crate) fn new(
        encoding: &'a E,
        binding: &'a mut HttpBinding,
        buf: &'a mut Vec<u8>,
    ) -> PartSender<'a, E> {
        PartSender {
            encoding,
            binding,
            buf,
            parts: 0,
        }
    }

    /// Encode and transmit one payload part (one chunk on the wire).
    /// The encoded form must fit the [`MAX_PART_LEN`] window — split
    /// bigger payloads into more parts, not bigger ones.
    pub fn send(&mut self, part: &Element) -> SoapResult<()> {
        self.encoding.encode_part_into(part, self.buf)?;
        if self.buf.len() > MAX_PART_LEN {
            return Err(SoapError::Protocol(format!(
                "encoded part is {} bytes, over the {} byte streaming window",
                self.buf.len(),
                MAX_PART_LEN,
            )));
        }
        let m = metrics::stream();
        m.part_bytes_max.record_max(self.buf.len() as f64);
        self.binding.stream_send_part(self.buf)?;
        m.parts_out.inc();
        self.parts += 1;
        Ok(())
    }

    /// Parts sent so far (the manifest not counted).
    pub fn parts_sent(&self) -> u64 {
        self.parts
    }
}

/// The reply to a streamed call: the decoded manifest envelope plus a
/// pull-iterator over the reply's payload parts. Each
/// [`next_part`](StreamingReply::next_part) lands one chunk in the
/// engine's reusable buffers and lends the decoded element out — the
/// whole reply is never resident.
///
/// Dropping the reply before draining it abandons the HTTP exchange
/// mid-body, so the engine's cached connection redials on the next
/// call; drain to the end (`Ok(None)`) to keep the socket reusable.
pub struct StreamingReply<'a, E: StreamEncoding> {
    encoding: &'a E,
    binding: &'a mut HttpBinding,
    buf: &'a mut Vec<u8>,
    scratch: &'a mut PartScratch,
    envelope: SoapEnvelope,
    done: bool,
    parts: u64,
}

impl<'a, E: StreamEncoding> StreamingReply<'a, E> {
    pub(crate) fn new(
        encoding: &'a E,
        binding: &'a mut HttpBinding,
        buf: &'a mut Vec<u8>,
        scratch: &'a mut PartScratch,
        envelope: SoapEnvelope,
        done: bool,
    ) -> StreamingReply<'a, E> {
        StreamingReply {
            encoding,
            binding,
            buf,
            scratch,
            envelope,
            done,
            parts: 0,
        }
    }

    /// The reply manifest (the envelope that opened the response).
    pub fn envelope(&self) -> &SoapEnvelope {
        &self.envelope
    }

    /// Give up the payload stream and keep only the manifest. If parts
    /// were still in flight the connection is abandoned mid-body.
    pub fn into_envelope(self) -> SoapEnvelope {
        self.envelope
    }

    /// Pull and decode the next payload part. `Ok(None)` means the
    /// reply is complete (and the connection stays reusable). The
    /// element borrows the reply's scratch — copy out whatever must
    /// survive the next pull.
    pub fn next_part(&mut self) -> SoapResult<Option<&Element>> {
        if self.done {
            return Ok(None);
        }
        if !self.binding.stream_next_part_into(self.buf)? {
            self.done = true;
            return Ok(None);
        }
        let m = metrics::stream();
        m.parts_in.inc();
        m.part_bytes_max.record_max(self.buf.len() as f64);
        self.parts += 1;
        let elem = self.encoding.decode_part(self.buf, self.scratch)?;
        Ok(Some(elem))
    }

    /// Payload parts pulled so far (the manifest not counted).
    pub fn parts_received(&self) -> u64 {
        self.parts
    }
}

/// Map a session-level SOAP failure onto the wire error that truncates
/// the connection (used only where a clean in-band fault is no longer
/// possible, i.e. after the reply head went out).
pub(crate) fn wire_err(e: SoapError) -> TransportError {
    TransportError::BadHttp {
        what: format!("streaming session failed: {e}"),
    }
}

/// Where one server-side streamed exchange stands.
enum SessionState {
    /// Nothing received yet; the first part must be the manifest.
    AwaitManifest,
    /// Manifest dispatched; parts are flowing into the operation.
    Streaming(Box<dyn StreamOp>),
    /// Something failed during the request phase; the encoded fault
    /// response waits for `finish` (later parts are drained silently —
    /// the sender cannot stop mid-chunk anyway).
    Faulted(Vec<u8>),
}

/// The transport-facing session that adapts a [`SoapService`]'s
/// registered [`StreamOp`]s to [`transport::StreamSession`]: decodes
/// parts, routes by the manifest's operation name, encodes reply parts.
pub(crate) struct ServiceStreamSession<E: EncodingPolicy> {
    service: Arc<SoapService<E>>,
    state: SessionState,
    scratch: PartScratch,
    /// Manifest decode target (reused if keep-alive ever reuses us —
    /// it doesn't today, but the discipline is free).
    doc: Document,
    /// Encoded reply manifest, emitted as the first reply part.
    reply_manifest: Vec<u8>,
    manifest_sent: bool,
    /// Reusable reply-part slot handed to the operation.
    part_slot: Element,
}

impl<E: EncodingPolicy> ServiceStreamSession<E> {
    pub(crate) fn new(service: Arc<SoapService<E>>) -> ServiceStreamSession<E> {
        ServiceStreamSession {
            service,
            state: SessionState::AwaitManifest,
            scratch: PartScratch::default(),
            doc: Document::new(),
            reply_manifest: Vec::new(),
            manifest_sent: false,
            part_slot: Element::component("part"),
        }
    }

    /// Pre-encode the fault this exchange will answer with.
    fn fault(&mut self, fault: SoapFault) {
        let mut out = Vec::new();
        let envelope = fault_envelope(fault);
        if self
            .service
            .encoding()
            .encode_into(&envelope.to_document(), &mut out)
            .is_err()
        {
            out.clear();
            out.extend_from_slice(b"fault encoding failed");
        }
        self.state = SessionState::Faulted(out);
    }

    fn handle_manifest(&mut self, part: &[u8]) {
        let dispatched = (|| -> SoapResult<Box<dyn StreamOp>> {
            self.service.encoding().decode_into(part, &mut self.doc)?;
            let envelope = SoapEnvelope::from_document(&self.doc)?;
            // Honor the caller's deadline at the gate: a budget already
            // spent on arrival is refused before any part is processed.
            if let Some(h) = DeadlineHeader::from_envelope(&envelope)? {
                if h.expired() {
                    return Err(SoapError::Fault(SoapFault::deadline_expired(
                        EXPIRED_RETRY_AFTER,
                    )));
                }
            }
            let op_name = envelope
                .operation()
                .ok_or_else(|| SoapError::Protocol("streamed manifest has an empty body".into()))?;
            let mut op = self.service.new_stream_op(op_name).ok_or_else(|| {
                SoapError::Protocol(format!(
                    "operation {op_name:?} is not registered for streaming"
                ))
            })?;
            op.start(&envelope)?;
            Ok(op)
        })();
        match dispatched {
            Ok(op) => self.state = SessionState::Streaming(op),
            Err(e) => self.fault(fault_for_error(e)),
        }
    }
}

impl<E: StreamEncoding + Send + Sync + 'static> transport::StreamSession
    for ServiceStreamSession<E>
{
    fn on_part(&mut self, part: &[u8]) -> transport::TransportResult<()> {
        let m = metrics::stream();
        m.parts_in.inc();
        m.part_bytes_max.record_max(part.len() as f64);
        match &mut self.state {
            SessionState::AwaitManifest => {
                m.streams.inc();
                self.handle_manifest(part);
            }
            SessionState::Streaming(op) => {
                let fed = self
                    .service
                    .encoding()
                    .decode_part(part, &mut self.scratch)
                    .and_then(|elem| op.on_part(elem));
                if let Err(e) = fed {
                    self.fault(fault_for_error(e));
                }
            }
            // Already doomed: drain the remaining parts quietly; the
            // fault goes out once the sender's terminator arrives.
            SessionState::Faulted(_) => {}
        }
        Ok(())
    }

    fn finish(&mut self) -> transport::TransportResult<WireReply> {
        let content_type = self.service.encoding().content_type();
        match &mut self.state {
            SessionState::AwaitManifest => {
                self.fault(SoapFault::new(
                    crate::fault::FaultCode::Client,
                    "streamed request ended before its manifest",
                ));
                self.finish()
            }
            SessionState::Streaming(op) => {
                match op.finish() {
                    Ok(envelope) if envelope.is_fault() => {
                        let mut out = Vec::new();
                        let is_err = self
                            .service
                            .encoding()
                            .encode_into(&envelope.to_document(), &mut out);
                        if is_err.is_err() {
                            out.clear();
                        }
                        Ok(WireReply::Buffered(
                            transport::HttpResponse::server_error(out)
                                .with_header("Content-Type", content_type),
                        ))
                    }
                    Ok(envelope) => {
                        self.service
                            .encoding()
                            .encode_into(&envelope.to_document(), &mut self.reply_manifest)
                            .map_err(wire_err)?;
                        self.manifest_sent = false;
                        Ok(WireReply::Streamed(transport::HttpResponse::ok(
                            content_type,
                            Vec::new(),
                        )))
                    }
                    Err(e) => {
                        self.fault(fault_for_error(e));
                        self.finish()
                    }
                }
            }
            SessionState::Faulted(bytes) => Ok(WireReply::Buffered(
                transport::HttpResponse::server_error(std::mem::take(bytes))
                    .with_header("Content-Type", content_type),
            )),
        }
    }

    fn next_part(&mut self, out: &mut Vec<u8>) -> transport::TransportResult<bool> {
        if !self.manifest_sent {
            self.manifest_sent = true;
            std::mem::swap(out, &mut self.reply_manifest);
            metrics::stream().parts_out.inc();
            return Ok(true);
        }
        let SessionState::Streaming(op) = &mut self.state else {
            return Ok(false);
        };
        if !op.next_part(&mut self.part_slot).map_err(wire_err)? {
            return Ok(false);
        }
        self.service
            .encoding()
            .encode_part_into(&self.part_slot, out)
            .map_err(wire_err)?;
        metrics::stream().parts_out.inc();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::ArrayValue;

    fn part(n: usize) -> Element {
        Element::array("m:batch", ArrayValue::F64((0..n).map(|i| i as f64).collect()))
            .with_namespace("m", "http://example.org/m")
    }

    #[test]
    fn both_encodings_roundtrip_parts_through_reused_scratch() {
        let bxsa = BxsaEncoding::default();
        let xml = XmlEncoding::default();
        let mut scratch = PartScratch::default();
        let mut buf = Vec::new();
        for n in [3usize, 64, 7, 64] {
            let original = part(n);
            bxsa.encode_part_into(&original, &mut buf).unwrap();
            assert_eq!(bxsa.decode_part(&buf, &mut scratch).unwrap(), &original);
            xml.encode_part_into(&original, &mut buf).unwrap();
            let back = xml.decode_part(&buf, &mut scratch).unwrap();
            assert_eq!(back.as_f64_array(), original.as_f64_array());
        }
    }

    #[test]
    fn xml_part_encode_reuses_buffer_capacity() {
        let xml = XmlEncoding::default();
        let mut buf = Vec::with_capacity(4096);
        xml.encode_part_into(&part(10), &mut buf).unwrap();
        let ptr = buf.as_ptr();
        xml.encode_part_into(&part(10), &mut buf).unwrap();
        assert_eq!(buf.as_ptr(), ptr, "capacity must be reused");
    }

    #[test]
    fn garbage_parts_error_cleanly() {
        let mut scratch = PartScratch::default();
        assert!(BxsaEncoding::default()
            .decode_part(b"not a frame", &mut scratch)
            .is_err());
        assert!(XmlEncoding::default()
            .decode_part(&[0xff, 0xfe], &mut scratch)
            .is_err());
        assert!(XmlEncoding::default()
            .decode_part(b"<unclosed", &mut scratch)
            .is_err());
    }
}
