//! Server bindings: expose a [`SoapService`] over TCP or HTTP.
//!
//! Both servers inherit the transport layer's resilience: a connection
//! that stalls past its read budget, trips the frame limit, or dies
//! mid-message takes a typed, *counted* error path (per-kind in
//! `bx_server_connection_errors_total`, in aggregate via
//! [`connection_errors`](TcpSoapServer::connection_errors)) and never
//! takes the listener down.

use std::net::SocketAddr;
use std::sync::Arc;

use transport::{HttpServerConfig, TcpServerConfig};

use crate::encoding::EncodingPolicy;
use crate::error::SoapResult;
use crate::service::{DecodeScratch, ServiceRegistry, SoapService};
use crate::streaming::{ServiceStreamSession, StreamEncoding};

/// Seed a [`transport::ServerBuilder`] from a framed-TCP config.
fn builder_for(addr: &str, config: &TcpServerConfig) -> transport::ServerBuilder {
    let mut b = transport::ServerBuilder::bind(addr).overload(config.overload);
    if let Some(t) = config.read_timeout {
        b = b.read_timeout(t);
    }
    if let Some(t) = config.write_timeout {
        b = b.write_timeout(t);
    }
    b
}

/// Seed a [`transport::ServerBuilder`] from an HTTP config.
fn builder_for_http(addr: &str, config: &HttpServerConfig) -> transport::ServerBuilder {
    let mut b = transport::ServerBuilder::bind(addr).overload(config.overload);
    if let Some(t) = config.read_timeout {
        b = b.read_timeout(t);
    }
    if let Some(t) = config.write_timeout {
        b = b.write_timeout(t);
    }
    if let Some(p) = config.metrics_path {
        b = b.metrics_path(p);
    }
    b
}

/// A SOAP service listening on framed TCP.
pub struct TcpSoapServer {
    inner: transport::TcpServer,
}

impl TcpSoapServer {
    /// Serve `registry` with encoding `E` on `addr` (port 0 = ephemeral).
    pub fn bind<E>(addr: &str, encoding: E, registry: Arc<ServiceRegistry>) -> SoapResult<TcpSoapServer>
    where
        E: EncodingPolicy + Send + Sync + 'static,
    {
        TcpSoapServer::bind_with(addr, TcpServerConfig::default(), encoding, registry)
    }

    /// [`bind`](TcpSoapServer::bind) with explicit per-connection limits.
    pub fn bind_with<E>(
        addr: &str,
        config: TcpServerConfig,
        encoding: E,
        registry: Arc<ServiceRegistry>,
    ) -> SoapResult<TcpSoapServer>
    where
        E: EncodingPolicy + Send + Sync + 'static,
    {
        TcpSoapServer::bind_service_with(addr, config, SoapService::new(encoding, registry))
    }

    /// [`bind_with`](TcpSoapServer::bind_with), but serving a caller-built
    /// [`SoapService`] — the way to put typed operations
    /// ([`SoapService::register_typed`]) on a live listener, since those
    /// are registered on the service rather than the registry.
    pub fn bind_service_with<E>(
        addr: &str,
        config: TcpServerConfig,
        service: SoapService<E>,
    ) -> SoapResult<TcpSoapServer>
    where
        E: EncodingPolicy + Send + Sync + 'static,
    {
        // Overload answers travel in-band too: the shed/reject payload is
        // a Server fault carrying a `retry-after-ms` detail, pre-encoded
        // once at bind time through this server's own encoding policy so
        // the hot shed path never encodes anything.
        let shed_payload = service.encoding().encode(
            &crate::service::fault_envelope(crate::fault::SoapFault::overloaded(
                config.overload.retry_after_hint,
            ))
            .to_document(),
        )?;
        // Faults travel in-band on raw TCP: the envelope itself says so.
        // The scoped handler keeps each connection's request/response
        // buffers AND its decode document alive across messages, so
        // steady-state service does no per-message payload or decode
        // allocation. Requests carrying a bx:Deadline are honored:
        // expired ones fault without dispatch, and the reply write is
        // capped to what's left of the caller's budget.
        let inner = builder_for(addr, &config)
            .shed_payload(shed_payload)
            .serve_framed(DecodeScratch::default, move |scratch, request, out, ctl| {
                let outcome = service.handle_bytes_deadline(scratch, request, out);
                if let Some(budget) = outcome.reply_budget {
                    ctl.cap_write(budget);
                }
            })?;
        Ok(TcpSoapServer { inner })
    }

    /// [`bind_with`](TcpSoapServer::bind_with) with every accepted
    /// stream wrapped in a fault-injecting transport drawing from
    /// `injector` — byte-level torture of the server's own read *and
    /// write* paths under a live accept loop.
    pub fn bind_faulty<E>(
        addr: &str,
        config: TcpServerConfig,
        injector: transport::SharedInjector,
        encoding: E,
        registry: Arc<ServiceRegistry>,
    ) -> SoapResult<TcpSoapServer>
    where
        E: EncodingPolicy + Send + Sync + 'static,
    {
        let service = SoapService::new(encoding, registry);
        let inner = builder_for(addr, &config)
            .faults(injector)
            .serve_framed(DecodeScratch::default, move |scratch, request, out, ctl| {
                let outcome = service.handle_bytes_deadline(scratch, request, out);
                if let Some(budget) = outcome.reply_budget {
                    ctl.cap_write(budget);
                }
            })?;
        Ok(TcpSoapServer { inner })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Connections that ended with a transport error (half-written
    /// frame, oversize prefix, mid-read stall) without harming the
    /// listener.
    pub fn connection_errors(&self) -> u64 {
        self.inner.error_count()
    }

    /// Stop serving: in-flight messages get a short grace period, idle
    /// connections close immediately.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }

    /// [`shutdown`](TcpSoapServer::shutdown) with an explicit drain
    /// deadline; connections still mid-message when it expires are
    /// dropped and counted as
    /// `bx_server_connection_errors_total{kind="shutdown_drop"}`.
    pub fn shutdown_within(self, drain: std::time::Duration) {
        self.inner.shutdown_within(drain);
    }
}

/// A SOAP service listening on HTTP POST.
pub struct HttpSoapServer {
    inner: transport::HttpServer,
}

impl HttpSoapServer {
    /// Serve `registry` with encoding `E` on `addr` at `path`. Also
    /// answers `GET /metrics` with the process-wide metrics in
    /// Prometheus text format; use
    /// [`bind_with`](HttpSoapServer::bind_with) and
    /// [`HttpServerConfig::metrics_path`] to move or disable the scrape
    /// endpoint.
    pub fn bind<E>(
        addr: &str,
        path: &str,
        encoding: E,
        registry: Arc<ServiceRegistry>,
    ) -> SoapResult<HttpSoapServer>
    where
        E: StreamEncoding + Send + Sync + 'static,
    {
        let config = HttpServerConfig {
            metrics_path: Some("/metrics"),
            ..HttpServerConfig::default()
        };
        HttpSoapServer::bind_with(addr, path, config, encoding, registry)
    }

    /// [`bind`](HttpSoapServer::bind) with explicit per-connection limits.
    pub fn bind_with<E>(
        addr: &str,
        path: &str,
        config: HttpServerConfig,
        encoding: E,
        registry: Arc<ServiceRegistry>,
    ) -> SoapResult<HttpSoapServer>
    where
        E: StreamEncoding + Send + Sync + 'static,
    {
        HttpSoapServer::bind_service_with(addr, path, config, SoapService::new(encoding, registry))
    }

    /// [`bind_with`](HttpSoapServer::bind_with), but serving a
    /// caller-built [`SoapService`] — see
    /// [`TcpSoapServer::bind_service_with`]. This is also where
    /// streaming operations ([`SoapService::register_streaming`]) go
    /// live: when the service has any, chunked requests at `path` are
    /// upgraded to streamed sessions; buffered requests (and chunked
    /// ones on a service with no streaming ops) take the ordinary
    /// buffered pipeline.
    pub fn bind_service_with<E>(
        addr: &str,
        path: &str,
        config: HttpServerConfig,
        service: SoapService<E>,
    ) -> SoapResult<HttpSoapServer>
    where
        E: StreamEncoding + Send + Sync + 'static,
    {
        let content_type = service.encoding().content_type();
        // HTTP connections are one-shot, so reuse must span connections:
        // one shared pool carries body buffers (request reads, response
        // encodes, recycled by the transport after each reply) and a
        // second carries decode scratch documents between handler runs.
        let pool = Arc::new(transport::BufferPool::default());
        let handler_pool = Arc::clone(&pool);
        let scratch_pool: Arc<transport::Pool<DecodeScratch>> =
            Arc::new(transport::Pool::default());
        let service = Arc::new(service);
        let mut builder = builder_for_http(addr, &config).pool(pool);
        if service.has_streaming() {
            let stream_service = Arc::clone(&service);
            let stream_path = path.to_owned();
            builder = builder.stream_factory(move |head| {
                // Operation dispatch happens at the manifest (first
                // part), not here: the head only gates path and method.
                if head.method != "POST" || head.path != stream_path {
                    return None;
                }
                Some(Box::new(ServiceStreamSession::new(Arc::clone(
                    &stream_service,
                ))))
            });
        }
        let path = path.to_owned();
        let inner = builder.serve_http_ctl(move |request, ctl| {
            if request.method != "POST" || request.path != path {
                return transport::HttpResponse::not_found();
            }
            let mut body = handler_pool.take();
            let mut scratch = scratch_pool.take();
            let outcome = service.handle_bytes_deadline(&mut scratch, &request.body, &mut body);
            scratch_pool.put(scratch);
            // The caller's remaining deadline bounds the response write.
            if let Some(budget) = outcome.reply_budget {
                ctl.cap_write(budget);
            }
            // SOAP 1.1 over HTTP: faults ride in 500 responses; an
            // expired-on-arrival rejection additionally gets the hint as
            // a real Retry-After header (the in-band fault detail carries
            // it for raw TCP, where no such header exists).
            if outcome.is_fault {
                let response = transport::HttpResponse::server_error(body)
                    .with_header("Content-Type", content_type);
                match outcome.retry_after {
                    Some(hint) => response
                        .with_header("Retry-After", &hint.as_secs().max(1).to_string()),
                    None => response,
                }
            } else {
                transport::HttpResponse::ok(content_type, body)
            }
        })?;
        Ok(HttpSoapServer { inner })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Connections that ended with a transport error without harming the
    /// listener.
    pub fn connection_errors(&self) -> u64 {
        self.inner.error_count()
    }

    /// Stop serving: in-flight requests get a short grace period, idle
    /// keep-alive connections close immediately.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }

    /// [`shutdown`](HttpSoapServer::shutdown) with an explicit drain
    /// deadline; connections still mid-request when it expires are
    /// dropped and counted as
    /// `bx_server_connection_errors_total{kind="shutdown_drop"}`.
    pub fn shutdown_within(self, drain: std::time::Duration) {
        self.inner.shutdown_within(drain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{HttpBinding, TcpBinding};
    use crate::encoding::{BxsaEncoding, XmlEncoding};
    use crate::engine::{CallOptions, SoapEngine};
    use crate::envelope::SoapEnvelope;
    use crate::error::SoapError;
    use crate::fault::FaultCode;
    use bxdm::{ArrayValue, AtomicValue, Element};

    /// The paper's test service in miniature: verify each value in the
    /// model and send the verification result back (§6, "unified
    /// solution").
    fn verify_registry() -> Arc<ServiceRegistry> {
        Arc::new(ServiceRegistry::new().with_operation("Verify", |req| {
            let op = req
                .body_element()
                .expect("dispatch guarantees a body element");
            let values = op
                .find_child("values")
                .and_then(Element::as_f64_array)
                .ok_or_else(|| SoapError::Protocol("missing values array".into()))?;
            let ok = values.iter().all(|v| v.is_finite());
            Ok(SoapEnvelope::with_body(
                Element::component("VerifyResponse")
                    .with_child(Element::leaf("ok", AtomicValue::Bool(ok)))
                    .with_child(Element::leaf(
                        "count",
                        AtomicValue::I64(values.len() as i64),
                    )),
            ))
        }))
    }

    fn verify_request(n: usize) -> SoapEnvelope {
        SoapEnvelope::with_body(Element::component("Verify").with_child(Element::array(
            "values",
            ArrayValue::F64((0..n).map(|i| i as f64 * 0.5).collect()),
        )))
    }

    #[test]
    fn bxsa_over_tcp_end_to_end() {
        let server =
            TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), verify_registry())
                .unwrap();
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&server.local_addr().to_string()),
        );
        let resp = engine.call_with(verify_request(100), &CallOptions::new()).unwrap();
        let body = resp.body_element().unwrap();
        assert_eq!(body.child_value("ok"), Some(&AtomicValue::Bool(true)));
        assert_eq!(body.child_value("count"), Some(&AtomicValue::I64(100)));
        server.shutdown();
    }

    #[test]
    fn xml_over_http_end_to_end() {
        let server = HttpSoapServer::bind(
            "127.0.0.1:0",
            "/soap",
            XmlEncoding::default(),
            verify_registry(),
        )
        .unwrap();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            HttpBinding::new(&server.local_addr().to_string(), "/soap"),
        );
        let resp = engine.call_with(verify_request(10), &CallOptions::new()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("ok"),
            Some(&AtomicValue::Bool(true))
        );
        server.shutdown();
    }

    #[test]
    fn remaining_policy_combinations_work() {
        // BXSA over HTTP.
        let server = HttpSoapServer::bind(
            "127.0.0.1:0",
            "/soap",
            BxsaEncoding::default(),
            verify_registry(),
        )
        .unwrap();
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            HttpBinding::new(&server.local_addr().to_string(), "/soap"),
        );
        assert!(engine.call_with(verify_request(5), &CallOptions::new()).is_ok());
        server.shutdown();

        // XML over raw TCP.
        let server =
            TcpSoapServer::bind("127.0.0.1:0", XmlEncoding::default(), verify_registry())
                .unwrap();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            TcpBinding::new(&server.local_addr().to_string()),
        );
        assert!(engine.call_with(verify_request(5), &CallOptions::new()).is_ok());
        server.shutdown();
    }

    #[test]
    fn faults_cross_both_transports() {
        let server =
            TcpSoapServer::bind("127.0.0.1:0", BxsaEncoding::default(), verify_registry())
                .unwrap();
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&server.local_addr().to_string()),
        );
        let bad = SoapEnvelope::with_body(Element::component("NoSuchOp"));
        match engine.call_with(bad.clone(), &CallOptions::new()) {
            Err(SoapError::Fault(f)) => assert_eq!(f.code, FaultCode::Client),
            other => panic!("expected fault, got {other:?}"),
        }
        server.shutdown();

        let server = HttpSoapServer::bind(
            "127.0.0.1:0",
            "/soap",
            XmlEncoding::default(),
            verify_registry(),
        )
        .unwrap();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            HttpBinding::new(&server.local_addr().to_string(), "/soap"),
        );
        match engine.call_with(bad, &CallOptions::new()) {
            Err(SoapError::Fault(f)) => assert_eq!(f.code, FaultCode::Client),
            other => panic!("expected fault, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn half_written_frame_leaves_soap_listener_alive() {
        use std::io::Write;
        use std::time::Duration;

        let server = TcpSoapServer::bind_with(
            "127.0.0.1:0",
            TcpServerConfig {
                read_timeout: Some(Duration::from_millis(50)),
                write_timeout: Some(Duration::from_secs(5)),
                ..TcpServerConfig::default()
            },
            BxsaEncoding::default(),
            verify_registry(),
        )
        .unwrap();
        let addr = server.local_addr();

        // A client that declares a 4 KiB frame, writes half a message,
        // and disconnects.
        {
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            raw.write_all(&4096u32.to_be_bytes()).unwrap();
            raw.write_all(&[0xBB; 100]).unwrap();
        }
        // The failure is counted (poll: the worker races the assertion)...
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.connection_errors() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.connection_errors() >= 1, "truncation must be counted");
        // ...and the listener still serves real SOAP traffic.
        let mut engine = SoapEngine::new(
            BxsaEncoding::default(),
            TcpBinding::new(&addr.to_string()),
        );
        let resp = engine.call_with(verify_request(10), &CallOptions::new()).unwrap();
        assert_eq!(
            resp.body_element().unwrap().child_value("ok"),
            Some(&AtomicValue::Bool(true))
        );
        server.shutdown();
    }

    #[test]
    fn http_wrong_path_is_transport_error() {
        let server = HttpSoapServer::bind(
            "127.0.0.1:0",
            "/soap",
            XmlEncoding::default(),
            verify_registry(),
        )
        .unwrap();
        let mut engine = SoapEngine::new(
            XmlEncoding::default(),
            HttpBinding::new(&server.local_addr().to_string(), "/wrong"),
        );
        assert!(matches!(
            engine.call_with(verify_request(1), &CallOptions::new()),
            Err(SoapError::Transport(_))
        ));
        server.shutdown();
    }
}
