//! SOAP 1.1 faults.

use std::fmt;

use bxdm::{AtomicValue, Element};

use crate::envelope::SOAP_ENV_PREFIX;

/// Detail key carrying the retry-after hint on deadline-expired faults.
const RETRY_AFTER_KEY: &str = "retry-after-ms";

/// The four standard SOAP 1.1 fault codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCode {
    /// `VersionMismatch` — wrong envelope namespace.
    VersionMismatch,
    /// `MustUnderstand` — a mandatory header was not understood.
    MustUnderstand,
    /// `Client` — the message was malformed or incomplete.
    Client,
    /// `Server` — processing failed for reasons not the sender's fault.
    Server,
}

impl FaultCode {
    /// All standard codes, for exhaustive tests and diagnostics.
    pub const ALL: [FaultCode; 4] = [
        FaultCode::VersionMismatch,
        FaultCode::MustUnderstand,
        FaultCode::Client,
        FaultCode::Server,
    ];

    /// Qualified lexical form (`soapenv:Server`).
    pub fn qualified(self) -> String {
        format!("{SOAP_ENV_PREFIX}:{}", self.local())
    }

    /// Local form.
    pub fn local(self) -> &'static str {
        match self {
            FaultCode::VersionMismatch => "VersionMismatch",
            FaultCode::MustUnderstand => "MustUnderstand",
            FaultCode::Client => "Client",
            FaultCode::Server => "Server",
        }
    }

    /// Parse from a (possibly prefixed) lexical form; unknown codes map
    /// to `Server`, the least-specific option.
    pub fn parse(text: &str) -> FaultCode {
        match text.rsplit(':').next().unwrap_or(text) {
            "VersionMismatch" => FaultCode::VersionMismatch,
            "MustUnderstand" => FaultCode::MustUnderstand,
            "Client" => FaultCode::Client,
            _ => FaultCode::Server,
        }
    }
}

/// A SOAP 1.1 fault.
#[derive(Debug, Clone, PartialEq)]
pub struct SoapFault {
    /// Fault code.
    pub code: FaultCode,
    /// Human-readable fault string.
    pub string: String,
    /// Optional application-specific detail text.
    pub detail: Option<String>,
}

impl SoapFault {
    /// A fault with code and message.
    pub fn new(code: FaultCode, string: &str) -> SoapFault {
        SoapFault {
            code,
            string: string.to_owned(),
            detail: None,
        }
    }

    /// Attach detail text (chainable).
    pub fn with_detail(mut self, detail: &str) -> SoapFault {
        self.detail = Some(detail.to_owned());
        self
    }

    /// A server fault wrapping an internal error.
    pub fn server(err: impl fmt::Display) -> SoapFault {
        SoapFault::new(FaultCode::Server, &err.to_string())
    }

    /// The fault a node sends when a request's `bx:Deadline` budget was
    /// already spent on arrival: `Server` class (the *sender's* message
    /// was fine; time ran out in transit or in upstream queues), with a
    /// machine-readable retry hint in the detail. The hint rides the
    /// fault so it crosses raw-TCP bindings too, where there is no
    /// `Retry-After` header to carry it.
    pub fn deadline_expired(retry_after: std::time::Duration) -> SoapFault {
        SoapFault::new(FaultCode::Server, "deadline expired before processing began")
            .with_detail(&format!("{RETRY_AFTER_KEY}={}", retry_after.as_millis()))
    }

    /// The fault an overloaded server sheds a request with: `Server`
    /// class (nothing wrong with the message — the node is saturated),
    /// carrying the same machine-readable `retry-after-ms` hint as
    /// [`deadline_expired`](SoapFault::deadline_expired), so framed-TCP
    /// clients get a retry hint where no `Retry-After` header exists.
    pub fn overloaded(retry_after: std::time::Duration) -> SoapFault {
        SoapFault::new(FaultCode::Server, "server overloaded; retry later")
            .with_detail(&format!("{RETRY_AFTER_KEY}={}", retry_after.as_millis()))
    }

    /// The retry hint from a [`deadline_expired`](SoapFault::deadline_expired)-style
    /// detail (`retry-after-ms=N`, possibly amid `;`-separated pairs).
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        self.detail.as_deref()?.split(';').find_map(|kv| {
            let (k, v) = kv.trim().split_once('=')?;
            if k.trim() != RETRY_AFTER_KEY {
                return None;
            }
            v.trim().parse().ok().map(std::time::Duration::from_millis)
        })
    }

    /// Materialize as the `soapenv:Fault` body element.
    ///
    /// Per SOAP 1.1, `faultcode`/`faultstring`/`detail` are *unqualified*
    /// children of the qualified Fault element.
    pub fn to_element(&self) -> Element {
        let mut fault = Element::component(format!("{SOAP_ENV_PREFIX}:Fault"))
            .with_child(Element::leaf(
                "faultcode",
                AtomicValue::Str(self.code.qualified()),
            ))
            .with_child(Element::leaf(
                "faultstring",
                AtomicValue::Str(self.string.clone()),
            ));
        if let Some(detail) = &self.detail {
            fault.push_child(Element::leaf("detail", AtomicValue::Str(detail.clone())));
        }
        fault
    }

    /// Recover a fault from a `Fault` body element (lenient: missing
    /// children default sensibly).
    pub fn from_element(element: &Element) -> SoapFault {
        let code = element
            .find_child("faultcode")
            .map(|e| FaultCode::parse(&e.text_content()))
            .unwrap_or(FaultCode::Server);
        let string = element
            .find_child("faultstring")
            .map(|e| e.text_content())
            .unwrap_or_default();
        let detail = element.find_child("detail").map(|e| e.text_content());
        SoapFault {
            code,
            string,
            detail,
        }
    }
}

impl fmt::Display for SoapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.code.qualified(), self.string)?;
        if let Some(d) = &self.detail {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SoapFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_roundtrip() {
        let fault = SoapFault::new(FaultCode::Client, "no such operation")
            .with_detail("operation 'Frobnicate' is not registered");
        let e = fault.to_element();
        assert_eq!(e.name.local(), "Fault");
        assert_eq!(SoapFault::from_element(&e), fault);
    }

    #[test]
    fn roundtrip_without_detail() {
        let fault = SoapFault::new(FaultCode::MustUnderstand, "header not understood");
        assert_eq!(SoapFault::from_element(&fault.to_element()), fault);
    }

    #[test]
    fn code_parsing() {
        assert_eq!(FaultCode::parse("soapenv:Client"), FaultCode::Client);
        assert_eq!(FaultCode::parse("Client"), FaultCode::Client);
        assert_eq!(FaultCode::parse("SOAP-ENV:MustUnderstand"), FaultCode::MustUnderstand);
        assert_eq!(FaultCode::parse("weird"), FaultCode::Server);
    }

    #[test]
    fn every_code_roundtrips_through_its_lexical_forms() {
        for code in FaultCode::ALL {
            // The qualified form a conforming peer writes.
            assert_eq!(FaultCode::parse(&code.qualified()), code);
            // The unprefixed form a lenient peer might write.
            assert_eq!(FaultCode::parse(code.local()), code);
            // An unknown prefix must not change the meaning.
            assert_eq!(
                FaultCode::parse(&format!("their-env:{}", code.local())),
                code
            );
        }
    }

    #[test]
    fn display_mentions_code_and_string() {
        let s = SoapFault::new(FaultCode::Server, "boom").to_string();
        assert!(s.contains("Server") && s.contains("boom"));
    }

    #[test]
    fn deadline_expired_fault_carries_a_parseable_retry_hint() {
        use std::time::Duration;
        let f = SoapFault::deadline_expired(Duration::from_millis(750));
        assert_eq!(f.code, FaultCode::Server);
        assert_eq!(f.retry_after(), Some(Duration::from_millis(750)));
        // The hint survives the wire element round trip.
        let back = SoapFault::from_element(&f.to_element());
        assert_eq!(back.retry_after(), Some(Duration::from_millis(750)));
        // Faults without the hint answer None.
        assert_eq!(SoapFault::server("boom").retry_after(), None);
        assert_eq!(
            SoapFault::server("boom").with_detail("cause=disk").retry_after(),
            None
        );
    }

    #[test]
    fn lenient_from_element() {
        let empty = Element::component("soapenv:Fault");
        let f = SoapFault::from_element(&empty);
        assert_eq!(f.code, FaultCode::Server);
        assert!(f.string.is_empty());
        assert!(f.detail.is_none());
    }
}
