//! SOAP-layer errors.

use std::fmt;

use crate::fault::SoapFault;

/// Errors surfaced by the SOAP engine and services.
#[derive(Debug)]
pub enum SoapError {
    /// Binary encoding/decoding failed.
    Bxsa(bxsa::BxsaError),
    /// Textual encoding/decoding failed.
    Xml(xmltext::XmlError),
    /// The transport failed.
    Transport(transport::TransportError),
    /// The peer answered with a SOAP fault.
    Fault(SoapFault),
    /// The message violated SOAP structure (no Envelope/Body, ...).
    Protocol(String),
    /// The endpoint's shared circuit breaker is open: the call failed
    /// fast *locally*, without a connect attempt.
    CircuitOpen {
        /// The endpoint whose breaker rejected the call.
        endpoint: String,
        /// Time until the breaker will admit a probe.
        retry_after: std::time::Duration,
    },
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Bxsa(e) => write!(f, "BXSA encoding error: {e}"),
            SoapError::Xml(e) => write!(f, "XML encoding error: {e}"),
            SoapError::Transport(e) => write!(f, "transport error: {e}"),
            SoapError::Fault(fault) => write!(f, "SOAP fault: {fault}"),
            SoapError::Protocol(what) => write!(f, "SOAP protocol error: {what}"),
            SoapError::CircuitOpen {
                endpoint,
                retry_after,
            } => write!(
                f,
                "circuit open for {endpoint}: failing fast, retry after {retry_after:?}"
            ),
        }
    }
}

impl std::error::Error for SoapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoapError::Bxsa(e) => Some(e),
            SoapError::Xml(e) => Some(e),
            SoapError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bxsa::BxsaError> for SoapError {
    fn from(e: bxsa::BxsaError) -> SoapError {
        SoapError::Bxsa(e)
    }
}

impl From<xmltext::XmlError> for SoapError {
    fn from(e: xmltext::XmlError) -> SoapError {
        SoapError::Xml(e)
    }
}

impl From<transport::TransportError> for SoapError {
    fn from(e: transport::TransportError) -> SoapError {
        SoapError::Transport(e)
    }
}

/// Result alias for this crate.
pub type SoapResult<T> = Result<T, SoapError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultCode, SoapFault};

    #[test]
    fn conversions_and_display() {
        let e: SoapError = bxsa::BxsaError::Structure { what: "x".into() }.into();
        assert!(e.to_string().contains("BXSA"));
        let e: SoapError = xmltext::XmlError::Structure { what: "y".into() }.into();
        assert!(e.to_string().contains("XML"));
        let e = SoapError::Fault(SoapFault::new(FaultCode::Client, "bad input"));
        assert!(e.to_string().contains("bad input"));
    }
}
