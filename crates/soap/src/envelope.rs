//! The SOAP envelope, modeled in bXDM.

use bxdm::{Document, Element};

use crate::error::{SoapError, SoapResult};
use crate::fault::SoapFault;

/// SOAP 1.1 envelope namespace (the paper's era).
pub const SOAP_ENV_URI: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// Conventional prefix for the envelope namespace.
pub const SOAP_ENV_PREFIX: &str = "soapenv";

/// A SOAP message: optional header entries plus body entries.
///
/// The envelope is deliberately *not* stored as a pre-built element tree:
/// it materializes into bXDM on send ([`SoapEnvelope::to_document`]) and
/// is recovered from bXDM on receive ([`SoapEnvelope::from_document`]),
/// keeping the engine symmetric across encodings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SoapEnvelope {
    /// Children of `soapenv:Header` (absent when empty).
    pub headers: Vec<Element>,
    /// Children of `soapenv:Body`.
    pub body: Vec<Element>,
}

impl SoapEnvelope {
    /// An envelope with a single body entry (the common RPC shape).
    pub fn with_body(body: Element) -> SoapEnvelope {
        SoapEnvelope {
            headers: Vec::new(),
            body: vec![body],
        }
    }

    /// Add a header entry (chainable).
    pub fn with_header(mut self, header: Element) -> SoapEnvelope {
        self.headers.push(header);
        self
    }

    /// The first body entry, if any.
    pub fn body_element(&self) -> Option<&Element> {
        self.body.first()
    }

    /// The local name of the first body entry — used as the operation
    /// name by the service dispatcher.
    pub fn operation(&self) -> Option<&str> {
        self.body_element().map(|e| e.name.local())
    }

    /// `true` when the body is a `soapenv:Fault`.
    pub fn is_fault(&self) -> bool {
        self.body_element()
            .map(|e| e.name.local() == "Fault")
            .unwrap_or(false)
    }

    /// Parse the body as a fault, if it is one.
    pub fn as_fault(&self) -> Option<SoapFault> {
        if !self.is_fault() {
            return None;
        }
        self.body_element().map(SoapFault::from_element)
    }

    /// Materialize the envelope as a bXDM document.
    ///
    /// The root declares the envelope namespace plus the `xsi`/`xsd`/`bx`
    /// typing namespaces, so typed leaf and array payloads are
    /// self-describing in the textual encoding too (paper §4.2).
    pub fn to_document(&self) -> Document {
        let mut envelope = Element::component(format!("{SOAP_ENV_PREFIX}:Envelope"))
            .with_namespace(SOAP_ENV_PREFIX, SOAP_ENV_URI)
            .with_namespace("xsi", bxdm::XSI_URI)
            .with_namespace("xsd", bxdm::XSD_URI)
            .with_namespace(xmltext::BX_PREFIX, xmltext::BX_URI);
        if !self.headers.is_empty() {
            let mut header = Element::component(format!("{SOAP_ENV_PREFIX}:Header"));
            for h in &self.headers {
                header.push_child(h.clone());
            }
            envelope.push_child(header);
        }
        let mut body = Element::component(format!("{SOAP_ENV_PREFIX}:Body"));
        for b in &self.body {
            body.push_child(b.clone());
        }
        envelope.push_child(body);
        Document::with_root(envelope)
    }

    /// Recover an envelope from a decoded document.
    ///
    /// Tolerant of any prefix bound to the SOAP namespace, and of
    /// documents that omit the namespace declarations entirely (as the
    /// minimal encodings used in the size experiments do) by falling back
    /// to local-name matching.
    pub fn from_document(doc: &Document) -> SoapResult<SoapEnvelope> {
        let root = doc
            .root()
            .ok_or_else(|| SoapError::Protocol("message has no root element".into()))?;
        if root.name.local() != "Envelope" {
            return Err(SoapError::Protocol(format!(
                "expected Envelope, found {}",
                root.name.local()
            )));
        }
        let mut headers = Vec::new();
        let mut body = None;
        for child in root.child_elements() {
            match child.name.local() {
                "Header" => headers.extend(child.child_elements().cloned()),
                "Body" => body = Some(child.child_elements().cloned().collect::<Vec<_>>()),
                _ => {}
            }
        }
        let body = body.ok_or_else(|| SoapError::Protocol("Envelope has no Body".into()))?;
        Ok(SoapEnvelope { headers, body })
    }

    /// Total number of bXDM nodes in the envelope (diagnostics).
    pub fn node_count(&self) -> usize {
        self.headers
            .iter()
            .chain(&self.body)
            .map(Element::node_count)
            .sum()
    }
}

/// Find a header entry by local name.
pub fn find_header<'a>(envelope: &'a SoapEnvelope, local: &str) -> Option<&'a Element> {
    envelope.headers.iter().find(|h| h.name.local() == local)
}

/// `true` if a header entry is flagged `soapenv:mustUnderstand="1"`.
pub fn must_understand(header: &Element) -> bool {
    header
        .attributes
        .iter()
        .any(|a| a.name.local() == "mustUnderstand" && matches!(a.value.as_str(), Some("1" | "true")))
}

/// Strip envelope-level wrapping from a node for diagnostics: the body
/// text of the first body entry.
pub fn body_text(envelope: &SoapEnvelope) -> String {
    envelope
        .body_element()
        .map(Element::text_content)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::{ArrayValue, AtomicValue};

    fn sample() -> SoapEnvelope {
        SoapEnvelope::with_body(
            Element::component("m:Verify")
                .with_namespace("m", "http://example.org/m")
                .with_child(Element::array("m:data", ArrayValue::F64(vec![1.0, 2.0]))),
        )
        .with_header(
            Element::leaf("wsa:MessageID", AtomicValue::Str("urn:uuid:1".into()))
                .with_namespace("wsa", "http://www.w3.org/2005/08/addressing"),
        )
    }

    #[test]
    fn document_roundtrip() {
        let env = sample();
        let doc = env.to_document();
        let back = SoapEnvelope::from_document(&doc).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn roundtrip_through_both_encodings() {
        let env = sample();
        let doc = env.to_document();

        let xml = xmltext::to_string(&doc).unwrap();
        let back = SoapEnvelope::from_document(&xmltext::parse(&xml).unwrap()).unwrap();
        assert_eq!(back, env);

        let bin = bxsa::encode(&doc).unwrap();
        let back = SoapEnvelope::from_document(&bxsa::decode(&bin).unwrap()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn operation_name() {
        assert_eq!(sample().operation(), Some("Verify"));
        assert_eq!(SoapEnvelope::default().operation(), None);
    }

    #[test]
    fn structure_errors() {
        let doc = Document::with_root(Element::component("NotAnEnvelope"));
        assert!(matches!(
            SoapEnvelope::from_document(&doc),
            Err(SoapError::Protocol(_))
        ));
        let doc = Document::with_root(
            Element::component("soapenv:Envelope").with_namespace(SOAP_ENV_PREFIX, SOAP_ENV_URI),
        );
        assert!(matches!(
            SoapEnvelope::from_document(&doc),
            Err(SoapError::Protocol(_))
        ));
    }

    #[test]
    fn header_helpers() {
        let env = sample();
        assert!(find_header(&env, "MessageID").is_some());
        assert!(find_header(&env, "Nope").is_none());

        let h = Element::component("x").with_attr("soapenv:mustUnderstand", "1");
        assert!(must_understand(&h));
        let h = Element::component("x").with_attr("soapenv:mustUnderstand", "0");
        assert!(!must_understand(&h));
        let h = Element::component("x");
        assert!(!must_understand(&h));
    }

    #[test]
    fn empty_header_not_materialized() {
        let env = SoapEnvelope::with_body(Element::component("op"));
        let doc = env.to_document();
        let root = doc.root().unwrap();
        assert_eq!(root.child_elements().count(), 1); // Body only
    }
}
