//! The SOAP envelope, modeled in bXDM.

use std::time::Duration;

use bxdm::{AtomicValue, Document, Element};
use transport::Deadline;

use crate::error::{SoapError, SoapResult};
use crate::fault::SoapFault;

/// SOAP 1.1 envelope namespace (the paper's era).
pub const SOAP_ENV_URI: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// Conventional prefix for the envelope namespace.
pub const SOAP_ENV_PREFIX: &str = "soapenv";

/// A SOAP message: optional header entries plus body entries.
///
/// The envelope is deliberately *not* stored as a pre-built element tree:
/// it materializes into bXDM on send ([`SoapEnvelope::to_document`]) and
/// is recovered from bXDM on receive ([`SoapEnvelope::from_document`]),
/// keeping the engine symmetric across encodings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SoapEnvelope {
    /// Children of `soapenv:Header` (absent when empty).
    pub headers: Vec<Element>,
    /// Children of `soapenv:Body`.
    pub body: Vec<Element>,
}

impl SoapEnvelope {
    /// An envelope with a single body entry (the common RPC shape).
    pub fn with_body(body: Element) -> SoapEnvelope {
        SoapEnvelope {
            headers: Vec::new(),
            body: vec![body],
        }
    }

    /// Add a header entry (chainable).
    pub fn with_header(mut self, header: Element) -> SoapEnvelope {
        self.headers.push(header);
        self
    }

    /// The first body entry, if any.
    pub fn body_element(&self) -> Option<&Element> {
        self.body.first()
    }

    /// The local name of the first body entry — used as the operation
    /// name by the service dispatcher.
    pub fn operation(&self) -> Option<&str> {
        self.body_element().map(|e| e.name.local())
    }

    /// `true` when the body is a `soapenv:Fault`.
    pub fn is_fault(&self) -> bool {
        self.body_element()
            .map(|e| e.name.local() == "Fault")
            .unwrap_or(false)
    }

    /// Parse the body as a fault, if it is one.
    pub fn as_fault(&self) -> Option<SoapFault> {
        if !self.is_fault() {
            return None;
        }
        self.body_element().map(SoapFault::from_element)
    }

    /// Materialize the envelope as a bXDM document.
    ///
    /// The root declares the envelope namespace plus the `xsi`/`xsd`/`bx`
    /// typing namespaces, so typed leaf and array payloads are
    /// self-describing in the textual encoding too (paper §4.2).
    pub fn to_document(&self) -> Document {
        let mut envelope = Element::component(format!("{SOAP_ENV_PREFIX}:Envelope"))
            .with_namespace(SOAP_ENV_PREFIX, SOAP_ENV_URI)
            .with_namespace("xsi", bxdm::XSI_URI)
            .with_namespace("xsd", bxdm::XSD_URI)
            .with_namespace(xmltext::BX_PREFIX, xmltext::BX_URI);
        if !self.headers.is_empty() {
            let mut header = Element::component(format!("{SOAP_ENV_PREFIX}:Header"));
            for h in &self.headers {
                header.push_child(h.clone());
            }
            envelope.push_child(header);
        }
        let mut body = Element::component(format!("{SOAP_ENV_PREFIX}:Body"));
        for b in &self.body {
            body.push_child(b.clone());
        }
        envelope.push_child(body);
        Document::with_root(envelope)
    }

    /// Recover an envelope from a decoded document.
    ///
    /// Tolerant of any prefix bound to the SOAP namespace, and of
    /// documents that omit the namespace declarations entirely (as the
    /// minimal encodings used in the size experiments do) by falling back
    /// to local-name matching.
    pub fn from_document(doc: &Document) -> SoapResult<SoapEnvelope> {
        let root = doc
            .root()
            .ok_or_else(|| SoapError::Protocol("message has no root element".into()))?;
        if root.name.local() != "Envelope" {
            return Err(SoapError::Protocol(format!(
                "expected Envelope, found {}",
                root.name.local()
            )));
        }
        let mut headers = Vec::new();
        let mut body = None;
        for child in root.child_elements() {
            match child.name.local() {
                "Header" => headers.extend(child.child_elements().cloned()),
                "Body" => body = Some(child.child_elements().cloned().collect::<Vec<_>>()),
                _ => {}
            }
        }
        let body = body.ok_or_else(|| SoapError::Protocol("Envelope has no Body".into()))?;
        Ok(SoapEnvelope { headers, body })
    }

    /// Total number of bXDM nodes in the envelope (diagnostics).
    pub fn node_count(&self) -> usize {
        self.headers
            .iter()
            .chain(&self.body)
            .map(Element::node_count)
            .sum()
    }
}

/// Find a header entry by local name.
pub fn find_header<'a>(envelope: &'a SoapEnvelope, local: &str) -> Option<&'a Element> {
    envelope.headers.iter().find(|h| h.name.local() == local)
}

/// Local name of the deadline header block (`bx:Deadline`).
pub const DEADLINE_HEADER_LOCAL: &str = "Deadline";

/// Default hop allowance stamped by a client that doesn't choose one.
pub const DEFAULT_HOPS: u32 = 8;

/// The `bx:Deadline` header block: gRPC-style end-to-end deadline
/// propagation for SOAP.
///
/// The header carries a *relative* budget — "you have this many
/// milliseconds of my time left" — plus a hop count. Each node that
/// receives it restarts a local clock ([`DeadlineHeader::start`]), does
/// its work, and forwards a header decremented by its own elapsed time
/// and one hop ([`DeadlineHeader::decremented`]). Relative budgets avoid
/// clock synchronization between hops; time on the wire is invisible to
/// the scheme, which is the standard trade for deadline propagation
/// without synchronized clocks.
///
/// Wire shape (self-describing in both encodings, since the envelope root
/// declares the `bx` namespace):
///
/// ```xml
/// <bx:Deadline>
///   <bx:budgetMillis xsi:type="xsd:long">250</bx:budgetMillis>
///   <bx:hops xsi:type="xsd:long">8</bx:hops>
/// </bx:Deadline>
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineHeader {
    /// Remaining time budget, in milliseconds. `0` means "already
    /// expired" — a receiver faults without doing any work.
    pub budget_millis: u64,
    /// Hops this request may still traverse; an intermediary that sees
    /// `0` refuses to forward.
    pub hops: u32,
}

impl DeadlineHeader {
    /// A header with an explicit budget and hop allowance.
    pub fn new(budget_millis: u64, hops: u32) -> DeadlineHeader {
        DeadlineHeader { budget_millis, hops }
    }

    /// Capture what's left of a live [`Deadline`] (with the default hop
    /// allowance). `None` when the deadline is unbounded — unbounded
    /// calls stamp no header.
    pub fn from_deadline(deadline: &Deadline) -> Option<DeadlineHeader> {
        let budget = deadline.budget()?;
        let left = budget.saturating_sub(deadline.elapsed());
        Some(DeadlineHeader::new(left.as_millis() as u64, DEFAULT_HOPS))
    }

    /// Already spent on arrival?
    pub fn expired(&self) -> bool {
        self.budget_millis == 0
    }

    /// Restart the budget as a local clock: the receiver's view of "how
    /// long may I work on this request".
    pub fn start(&self) -> Deadline {
        Deadline::within(Duration::from_millis(self.budget_millis))
    }

    /// The header to forward after spending `elapsed` locally: budget
    /// down by the time spent, hop count down by one (both saturating).
    pub fn decremented(&self, elapsed: Duration) -> DeadlineHeader {
        DeadlineHeader {
            budget_millis: self
                .budget_millis
                .saturating_sub(elapsed.as_millis() as u64),
            hops: self.hops.saturating_sub(1),
        }
    }

    /// Materialize as the `bx:Deadline` header element.
    pub fn to_element(&self) -> Element {
        let bx = xmltext::BX_PREFIX;
        Element::component(format!("{bx}:{DEADLINE_HEADER_LOCAL}"))
            .with_child(Element::leaf(
                format!("{bx}:budgetMillis"),
                AtomicValue::I64(self.budget_millis.min(i64::MAX as u64) as i64),
            ))
            .with_child(Element::leaf(
                format!("{bx}:hops"),
                AtomicValue::I64(self.hops as i64),
            ))
    }

    /// Parse a header element (lenient: local names only, numeric leaves
    /// accepted as any integer type or as text).
    pub fn from_element(header: &Element) -> SoapResult<DeadlineHeader> {
        let budget_millis = leaf_u64(header, "budgetMillis").ok_or_else(|| {
            SoapError::Protocol("bx:Deadline header lacks a budgetMillis value".into())
        })?;
        let hops = leaf_u64(header, "hops")
            .ok_or_else(|| SoapError::Protocol("bx:Deadline header lacks a hops value".into()))?;
        Ok(DeadlineHeader {
            budget_millis,
            hops: hops.min(u32::MAX as u64) as u32,
        })
    }

    /// The deadline header of an envelope, if present. A present but
    /// malformed header is an error — a node must not silently ignore a
    /// budget it failed to read.
    pub fn from_envelope(envelope: &SoapEnvelope) -> SoapResult<Option<DeadlineHeader>> {
        match find_header(envelope, DEADLINE_HEADER_LOCAL) {
            Some(h) => DeadlineHeader::from_element(h).map(Some),
            None => Ok(None),
        }
    }

    /// Stamp this header onto an envelope, replacing any previous
    /// deadline header (re-stamping per retry attempt must not stack).
    pub fn stamp(&self, envelope: &mut SoapEnvelope) {
        envelope
            .headers
            .retain(|h| h.name.local() != DEADLINE_HEADER_LOCAL);
        envelope.headers.push(self.to_element());
    }
}

/// A non-negative integer leaf by local name, tolerating `Str`-typed
/// values (an encoding that dropped type info) via text parsing.
fn leaf_u64(parent: &Element, local: &str) -> Option<u64> {
    let child = parent.find_child(local)?;
    if let Some(v) = child.leaf_value() {
        if let Some(n) = v.as_i64() {
            return u64::try_from(n).ok();
        }
        if let Some(s) = v.as_str() {
            return s.trim().parse().ok();
        }
    }
    child.text_content().trim().parse().ok()
}

/// `true` if a header entry is flagged `soapenv:mustUnderstand="1"`.
pub fn must_understand(header: &Element) -> bool {
    header
        .attributes
        .iter()
        .any(|a| a.name.local() == "mustUnderstand" && matches!(a.value.as_str(), Some("1" | "true")))
}

/// Strip envelope-level wrapping from a node for diagnostics: the body
/// text of the first body entry.
pub fn body_text(envelope: &SoapEnvelope) -> String {
    envelope
        .body_element()
        .map(Element::text_content)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::{ArrayValue, AtomicValue};

    fn sample() -> SoapEnvelope {
        SoapEnvelope::with_body(
            Element::component("m:Verify")
                .with_namespace("m", "http://example.org/m")
                .with_child(Element::array("m:data", ArrayValue::F64(vec![1.0, 2.0]))),
        )
        .with_header(
            Element::leaf("wsa:MessageID", AtomicValue::Str("urn:uuid:1".into()))
                .with_namespace("wsa", "http://www.w3.org/2005/08/addressing"),
        )
    }

    #[test]
    fn document_roundtrip() {
        let env = sample();
        let doc = env.to_document();
        let back = SoapEnvelope::from_document(&doc).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn roundtrip_through_both_encodings() {
        let env = sample();
        let doc = env.to_document();

        let xml = xmltext::to_string(&doc).unwrap();
        let back = SoapEnvelope::from_document(&xmltext::parse(&xml).unwrap()).unwrap();
        assert_eq!(back, env);

        let bin = bxsa::encode(&doc).unwrap();
        let back = SoapEnvelope::from_document(&bxsa::decode(&bin).unwrap()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn operation_name() {
        assert_eq!(sample().operation(), Some("Verify"));
        assert_eq!(SoapEnvelope::default().operation(), None);
    }

    #[test]
    fn structure_errors() {
        let doc = Document::with_root(Element::component("NotAnEnvelope"));
        assert!(matches!(
            SoapEnvelope::from_document(&doc),
            Err(SoapError::Protocol(_))
        ));
        let doc = Document::with_root(
            Element::component("soapenv:Envelope").with_namespace(SOAP_ENV_PREFIX, SOAP_ENV_URI),
        );
        assert!(matches!(
            SoapEnvelope::from_document(&doc),
            Err(SoapError::Protocol(_))
        ));
    }

    #[test]
    fn header_helpers() {
        let env = sample();
        assert!(find_header(&env, "MessageID").is_some());
        assert!(find_header(&env, "Nope").is_none());

        let h = Element::component("x").with_attr("soapenv:mustUnderstand", "1");
        assert!(must_understand(&h));
        let h = Element::component("x").with_attr("soapenv:mustUnderstand", "0");
        assert!(!must_understand(&h));
        let h = Element::component("x");
        assert!(!must_understand(&h));
    }

    #[test]
    fn empty_header_not_materialized() {
        let env = SoapEnvelope::with_body(Element::component("op"));
        let doc = env.to_document();
        let root = doc.root().unwrap();
        assert_eq!(root.child_elements().count(), 1); // Body only
    }

    #[test]
    fn deadline_header_roundtrips_through_both_encodings() {
        let header = DeadlineHeader::new(250, 3);
        let mut env = sample();
        header.stamp(&mut env);
        let doc = env.to_document();

        let xml = xmltext::to_string(&doc).unwrap();
        let back = SoapEnvelope::from_document(&xmltext::parse(&xml).unwrap()).unwrap();
        assert_eq!(DeadlineHeader::from_envelope(&back).unwrap(), Some(header));

        let bin = bxsa::encode(&doc).unwrap();
        let back = SoapEnvelope::from_document(&bxsa::decode(&bin).unwrap()).unwrap();
        assert_eq!(DeadlineHeader::from_envelope(&back).unwrap(), Some(header));
    }

    #[test]
    fn deadline_header_stamp_replaces_not_stacks() {
        let mut env = sample();
        DeadlineHeader::new(500, 8).stamp(&mut env);
        DeadlineHeader::new(300, 8).stamp(&mut env);
        let stamped: Vec<_> = env
            .headers
            .iter()
            .filter(|h| h.name.local() == DEADLINE_HEADER_LOCAL)
            .collect();
        assert_eq!(stamped.len(), 1);
        assert_eq!(
            DeadlineHeader::from_envelope(&env).unwrap(),
            Some(DeadlineHeader::new(300, 8))
        );
        // The unrelated header survives re-stamping.
        assert!(find_header(&env, "MessageID").is_some());
    }

    #[test]
    fn deadline_header_arithmetic() {
        let h = DeadlineHeader::new(100, 2);
        assert!(!h.expired());
        let spent = h.decremented(Duration::from_millis(30));
        assert_eq!(spent, DeadlineHeader::new(70, 1));
        // Overspending saturates to an expired header, not a wrap.
        let drained = h.decremented(Duration::from_millis(250));
        assert_eq!(drained.budget_millis, 0);
        assert!(drained.expired());
        assert_eq!(drained.decremented(Duration::ZERO).hops, 0);
    }

    #[test]
    fn deadline_header_from_live_deadline() {
        assert_eq!(DeadlineHeader::from_deadline(&Deadline::none()), None);
        let h = DeadlineHeader::from_deadline(&Deadline::within(Duration::from_secs(2))).unwrap();
        assert!(h.budget_millis <= 2000 && h.budget_millis > 1500, "{h:?}");
        assert_eq!(h.hops, DEFAULT_HOPS);
    }

    #[test]
    fn malformed_deadline_header_is_an_error_not_ignored() {
        let mut env = sample();
        env.headers
            .push(Element::component("bx:Deadline").with_child(Element::leaf(
                "bx:budgetMillis",
                AtomicValue::Str("soon".into()),
            )));
        assert!(DeadlineHeader::from_envelope(&env).is_err());
    }
}
