//! Engine-side instrumentation, registered in [`obs::global`].
//!
//! All metrics are `static` atomics registered once behind a [`Once`]:
//! after the first call every update is a relaxed fetch-add, so the
//! per-call accounting adds no locks and no allocation to
//! `SoapEngine::call_with`.

use std::sync::Once;

use obs::{Counter, Histogram};

/// Counters and latency for `SoapEngine::call_with`.
pub struct EngineMetrics {
    /// `bx_engine_calls_total` — calls started.
    pub calls: Counter,
    /// `bx_engine_attempts_total` — exchanges attempted (a call with two
    /// retries contributes three).
    pub attempts: Counter,
    /// `bx_engine_retries_total` — backoff sleeps taken before another
    /// attempt.
    pub retries: Counter,
    /// `bx_engine_deadline_expired_total` — calls aborted at the
    /// deadline gate before an attempt.
    pub deadline_expired: Counter,
    /// `bx_engine_circuit_open_total` — attempts rejected by an open
    /// circuit breaker.
    pub circuit_open: Counter,
    /// `bx_engine_call_latency_nanoseconds` — wall time of the whole
    /// call, every attempt and backoff included.
    pub call_latency: Histogram,
}

impl EngineMetrics {
    const fn new() -> EngineMetrics {
        EngineMetrics {
            calls: Counter::new(),
            attempts: Counter::new(),
            retries: Counter::new(),
            deadline_expired: Counter::new(),
            circuit_open: Counter::new(),
            call_latency: Histogram::new(),
        }
    }
}

/// The engine's metrics (registered on first use).
pub fn engine() -> &'static EngineMetrics {
    static METRICS: EngineMetrics = EngineMetrics::new();
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| {
        let r = obs::global();
        r.register_counter(
            "bx_engine_calls_total",
            "SOAP calls started.",
            &[],
            &METRICS.calls,
        );
        r.register_counter(
            "bx_engine_attempts_total",
            "Exchanges attempted across all calls (retries included).",
            &[],
            &METRICS.attempts,
        );
        r.register_counter(
            "bx_engine_retries_total",
            "Backoff waits taken before re-attempting a call.",
            &[],
            &METRICS.retries,
        );
        r.register_counter(
            "bx_engine_deadline_expired_total",
            "Calls aborted because the end-to-end deadline expired.",
            &[],
            &METRICS.deadline_expired,
        );
        r.register_counter(
            "bx_engine_circuit_open_total",
            "Attempts rejected by an open circuit breaker.",
            &[],
            &METRICS.circuit_open,
        );
        r.register_histogram(
            "bx_engine_call_latency_nanoseconds",
            "Wall time of a whole call, attempts and backoff included.",
            &[],
            &METRICS.call_latency,
        );
    });
    &METRICS
}
