//! Engine-side instrumentation, registered in [`obs::global`].
//!
//! All metrics are `static` atomics registered once behind a [`Once`]:
//! after the first call every update is a relaxed fetch-add, so the
//! per-call accounting adds no locks and no allocation to
//! `SoapEngine::call_with`.

use std::sync::Once;

use obs::{Counter, Gauge, Histogram};

/// Counters and latency for `SoapEngine::call_with`.
pub struct EngineMetrics {
    /// `bx_engine_calls_total` — calls started.
    pub calls: Counter,
    /// `bx_engine_attempts_total` — exchanges attempted (a call with two
    /// retries contributes three).
    pub attempts: Counter,
    /// `bx_engine_retries_total` — backoff sleeps taken before another
    /// attempt.
    pub retries: Counter,
    /// `bx_engine_deadline_expired_total` — calls aborted at the
    /// deadline gate before an attempt.
    pub deadline_expired: Counter,
    /// `bx_engine_circuit_open_total` — attempts rejected by an open
    /// circuit breaker.
    pub circuit_open: Counter,
    /// `bx_engine_call_latency_nanoseconds` — wall time of the whole
    /// call, every attempt and backoff included.
    pub call_latency: Histogram,
}

impl EngineMetrics {
    const fn new() -> EngineMetrics {
        EngineMetrics {
            calls: Counter::new(),
            attempts: Counter::new(),
            retries: Counter::new(),
            deadline_expired: Counter::new(),
            circuit_open: Counter::new(),
            call_latency: Histogram::new(),
        }
    }
}

/// The engine's metrics (registered on first use).
pub fn engine() -> &'static EngineMetrics {
    static METRICS: EngineMetrics = EngineMetrics::new();
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| {
        let r = obs::global();
        r.register_counter(
            "bx_engine_calls_total",
            "SOAP calls started.",
            &[],
            &METRICS.calls,
        );
        r.register_counter(
            "bx_engine_attempts_total",
            "Exchanges attempted across all calls (retries included).",
            &[],
            &METRICS.attempts,
        );
        r.register_counter(
            "bx_engine_retries_total",
            "Backoff waits taken before re-attempting a call.",
            &[],
            &METRICS.retries,
        );
        r.register_counter(
            "bx_engine_deadline_expired_total",
            "Calls aborted because the end-to-end deadline expired.",
            &[],
            &METRICS.deadline_expired,
        );
        r.register_counter(
            "bx_engine_circuit_open_total",
            "Attempts rejected by an open circuit breaker.",
            &[],
            &METRICS.circuit_open,
        );
        r.register_histogram(
            "bx_engine_call_latency_nanoseconds",
            "Wall time of a whole call, attempts and backoff included.",
            &[],
            &METRICS.call_latency,
        );
    });
    &METRICS
}

/// Counters for the streaming pipeline (client and server sides share
/// them — a relay contributes on both).
pub struct StreamMetrics {
    /// `bx_stream_exchanges_total` — streamed exchanges started.
    pub streams: Counter,
    /// `bx_stream_parts_in_total` — message parts received (manifest
    /// included).
    pub parts_in: Counter,
    /// `bx_stream_parts_out_total` — message parts sent (manifest
    /// included).
    pub parts_out: Counter,
    /// `bx_stream_part_bytes_max` — high-watermark of one encoded part:
    /// the largest window any streamed exchange ever made this process
    /// buffer. Constant-memory operation means this stays near the part
    /// size no matter how large the messages get.
    pub part_bytes_max: Gauge,
}

impl StreamMetrics {
    const fn new() -> StreamMetrics {
        StreamMetrics {
            streams: Counter::new(),
            parts_in: Counter::new(),
            parts_out: Counter::new(),
            part_bytes_max: Gauge::new(),
        }
    }
}

/// The streaming pipeline's metrics (registered on first use).
pub fn stream() -> &'static StreamMetrics {
    static METRICS: StreamMetrics = StreamMetrics::new();
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| {
        let r = obs::global();
        r.register_counter(
            "bx_stream_exchanges_total",
            "Streamed exchanges started.",
            &[],
            &METRICS.streams,
        );
        r.register_counter(
            "bx_stream_parts_in_total",
            "Streamed message parts received, manifests included.",
            &[],
            &METRICS.parts_in,
        );
        r.register_counter(
            "bx_stream_parts_out_total",
            "Streamed message parts sent, manifests included.",
            &[],
            &METRICS.parts_out,
        );
        r.register_gauge(
            "bx_stream_part_bytes_max",
            "High-watermark of one encoded streamed part (the realized window).",
            &[],
            &METRICS.part_bytes_max,
        );
    });
    &METRICS
}
