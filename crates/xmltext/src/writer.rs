//! bXDM → textual XML 1.0.
//!
//! The writer is a [`bxdm::Visitor`]: the tree walk is shared with the
//! BXSA encoder (paper §5.2), only the per-event output differs.

use std::convert::Infallible;

use bxdm::{walk_document, walk_node, Content, Document, Element, Node, Visitor};

use crate::escape::{escape_attr, escape_text};

/// Serialization options.
#[derive(Debug, Clone)]
pub struct XmlWriteOptions {
    /// Emit the `<?xml version="1.0" encoding="UTF-8"?>` declaration.
    pub declaration: bool,
    /// Emit `xsi:type` on leaf elements and `bx:arrayType`/`bx:length` on
    /// array elements so a schema-less reader can rebuild the typed tree
    /// (the paper's §4.2 requirement). Turn off to measure the bare
    /// "namespace free, shortest tags" encoding of Table 1.
    pub emit_type_info: bool,
    /// Element name used for the per-item children of an array element.
    /// Table 1 uses the shortest possible (`"i"`); the default is `"item"`.
    pub item_tag: String,
}

impl Default for XmlWriteOptions {
    fn default() -> XmlWriteOptions {
        XmlWriteOptions {
            declaration: false,
            emit_type_info: true,
            item_tag: "item".to_owned(),
        }
    }
}

/// Serialize a document with default options.
pub fn to_string(doc: &Document) -> Result<String, Infallible> {
    to_string_with(doc, &XmlWriteOptions::default())
}

/// Serialize a document with explicit options.
pub fn to_string_with(doc: &Document, opts: &XmlWriteOptions) -> Result<String, Infallible> {
    let mut w = XmlWriter {
        out: String::with_capacity(256),
        opts,
        scratch: String::new(),
    };
    if opts.declaration {
        w.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    }
    walk_document(doc, &mut w)?;
    Ok(w.out)
}

/// Serialize a single element (used by SOAP fault paths and tests).
pub fn element_to_string(element: &Element, opts: &XmlWriteOptions) -> String {
    let mut w = XmlWriter {
        out: String::with_capacity(128),
        opts,
        scratch: String::new(),
    };
    let node = Node::Element(element.clone());
    let Ok(()) = walk_node(&node, &mut w);
    w.out
}

struct XmlWriter<'o> {
    out: String,
    opts: &'o XmlWriteOptions,
    /// Reusable lexical-form buffer (avoids one allocation per number —
    /// this loop is the measured cost of the XML encoding).
    scratch: String,
}

impl XmlWriter<'_> {
    fn open_tag(&mut self, e: &Element) {
        self.out.push('<');
        e.name.write_lexical(&mut self.out);
        for ns in &e.namespaces {
            match &ns.prefix {
                Some(p) => {
                    self.out.push_str(" xmlns:");
                    self.out.push_str(p);
                }
                None => self.out.push_str(" xmlns"),
            }
            self.out.push_str("=\"");
            escape_attr(&ns.uri, &mut self.out);
            self.out.push('"');
        }
        for attr in &e.attributes {
            self.out.push(' ');
            attr.name.write_lexical(&mut self.out);
            self.out.push_str("=\"");
            self.scratch.clear();
            attr.value.write_lexical(&mut self.scratch);
            // Split borrows: escape from scratch into out.
            let scratch = std::mem::take(&mut self.scratch);
            escape_attr(&scratch, &mut self.out);
            self.scratch = scratch;
            self.out.push('"');
        }
    }

    fn push_attr(&mut self, name: &str, value: &str) {
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        escape_attr(value, &mut self.out);
        self.out.push('"');
    }

    fn close_tag(&mut self, e: &Element) {
        self.out.push_str("</");
        e.name.write_lexical(&mut self.out);
        self.out.push('>');
    }
}

impl Visitor for XmlWriter<'_> {
    type Error = Infallible;

    fn visit_element_start(&mut self, e: &Element) -> Result<(), Infallible> {
        self.open_tag(e);
        match &e.content {
            Content::Children(children) => {
                if children.is_empty() {
                    self.out.push_str("/>");
                } else {
                    self.out.push('>');
                }
                // Children are emitted by the shared walk; the close tag
                // happens in visit_element_end.
            }
            Content::Leaf(value) => {
                if self.opts.emit_type_info {
                    self.push_attr("xsi:type", value.type_code().xsd_name());
                }
                self.out.push('>');
                self.scratch.clear();
                value.write_lexical(&mut self.scratch);
                let scratch = std::mem::take(&mut self.scratch);
                escape_text(&scratch, &mut self.out);
                self.scratch = scratch;
            }
            Content::Array(array) => {
                if self.opts.emit_type_info {
                    self.push_attr("bx:arrayType", array.type_code().xsd_name());
                }
                self.out.push('>');
                // One child element per item: the open/close tag pair per
                // element is exactly the overhead Table 1 quantifies.
                for i in 0..array.len() {
                    self.out.push('<');
                    self.out.push_str(&self.opts.item_tag);
                    self.out.push('>');
                    self.scratch.clear();
                    array
                        .item(i)
                        .expect("index in range")
                        .write_lexical(&mut self.scratch);
                    // Numeric lexical forms never contain markup; push
                    // directly (Str arrays are impossible in ArrayValue).
                    self.out.push_str(&self.scratch);
                    self.out.push_str("</");
                    self.out.push_str(&self.opts.item_tag);
                    self.out.push('>');
                }
            }
        }
        Ok(())
    }

    fn visit_element_end(&mut self, e: &Element) -> Result<(), Infallible> {
        match &e.content {
            Content::Children(children) if children.is_empty() => {} // self-closed
            _ => self.close_tag(e),
        }
        Ok(())
    }

    fn visit_text(&mut self, text: &str) -> Result<(), Infallible> {
        escape_text(text, &mut self.out);
        Ok(())
    }

    fn visit_comment(&mut self, comment: &str) -> Result<(), Infallible> {
        self.out.push_str("<!--");
        self.out.push_str(comment);
        self.out.push_str("-->");
        Ok(())
    }

    fn visit_pi(&mut self, target: &str, data: &str) -> Result<(), Infallible> {
        self.out.push_str("<?");
        self.out.push_str(target);
        if !data.is_empty() {
            self.out.push(' ');
            self.out.push_str(data);
        }
        self.out.push_str("?>");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::{ArrayValue, AtomicValue};

    fn doc(root: Element) -> Document {
        Document::with_root(root)
    }

    #[test]
    fn component_roundtrip_markup() {
        let d = doc(Element::component("a")
            .with_attr("k", "v<&>")
            .with_child(Element::component("b"))
            .with_text("x & y"));
        assert_eq!(
            to_string(&d).unwrap(),
            r#"<a k="v&lt;&amp;&gt;"><b/>x &amp; y</a>"#
        );
    }

    #[test]
    fn leaf_with_type_info() {
        let d = doc(Element::leaf("n", AtomicValue::I32(-5)));
        assert_eq!(
            to_string(&d).unwrap(),
            r#"<n xsi:type="xsd:int">-5</n>"#
        );
    }

    #[test]
    fn leaf_without_type_info() {
        let d = doc(Element::leaf("n", AtomicValue::I32(-5)));
        let opts = XmlWriteOptions {
            emit_type_info: false,
            ..Default::default()
        };
        assert_eq!(to_string_with(&d, &opts).unwrap(), "<n>-5</n>");
    }

    #[test]
    fn array_items_and_type() {
        let d = doc(Element::array("v", ArrayValue::F64(vec![1.5, -2.0])));
        assert_eq!(
            to_string(&d).unwrap(),
            r#"<v bx:arrayType="xsd:double"><item>1.5</item><item>-2</item></v>"#
        );
    }

    #[test]
    fn array_short_item_tag() {
        let d = doc(Element::array("v", ArrayValue::I32(vec![1, 2, 3])));
        let opts = XmlWriteOptions {
            emit_type_info: false,
            item_tag: "i".to_owned(),
            ..Default::default()
        };
        assert_eq!(
            to_string_with(&d, &opts).unwrap(),
            "<v><i>1</i><i>2</i><i>3</i></v>"
        );
    }

    #[test]
    fn namespaces_emitted() {
        let d = doc(Element::component("s:env")
            .with_namespace("s", "http://example.org/s")
            .with_default_namespace("http://example.org/d"));
        assert_eq!(
            to_string(&d).unwrap(),
            r#"<s:env xmlns:s="http://example.org/s" xmlns="http://example.org/d"/>"#
        );
    }

    #[test]
    fn declaration_comment_pi() {
        let mut d = Document::new();
        d.children.push(Node::Comment(" hello ".into()));
        d.children.push(Node::Pi {
            target: "app".into(),
            data: "x=1".into(),
        });
        d.children.push(Node::Element(Element::component("r")));
        let opts = XmlWriteOptions {
            declaration: true,
            ..Default::default()
        };
        assert_eq!(
            to_string_with(&d, &opts).unwrap(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><!-- hello --><?app x=1?><r/>"
        );
    }

    #[test]
    fn typed_attribute_lexical_form() {
        let d = doc(Element::component("a").with_typed_attr("n", AtomicValue::F64(0.5)));
        assert_eq!(to_string(&d).unwrap(), r#"<a n="0.5"/>"#);
    }
}
