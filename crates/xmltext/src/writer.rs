//! bXDM → textual XML 1.0.
//!
//! The writer is a [`bxdm::Visitor`]: the tree walk is shared with the
//! BXSA encoder (paper §5.2), only the per-event output differs.

use std::convert::Infallible;

use bxdm::value::write_f32_lexical;
use bxdm::{walk_document, walk_element, ArrayValue, AtomicValue, Content, Document, Element, Visitor};

use crate::escape::{escape_attr, escape_text};
use crate::num;

/// Serialization options.
#[derive(Debug, Clone)]
pub struct XmlWriteOptions {
    /// Emit the `<?xml version="1.0" encoding="UTF-8"?>` declaration.
    pub declaration: bool,
    /// Emit `xsi:type` on leaf elements and `bx:arrayType`/`bx:length` on
    /// array elements so a schema-less reader can rebuild the typed tree
    /// (the paper's §4.2 requirement). Turn off to measure the bare
    /// "namespace free, shortest tags" encoding of Table 1.
    pub emit_type_info: bool,
    /// Element name used for the per-item children of an array element.
    /// Table 1 uses the shortest possible (`"i"`); the default is `"item"`.
    pub item_tag: String,
}

impl Default for XmlWriteOptions {
    fn default() -> XmlWriteOptions {
        XmlWriteOptions {
            declaration: false,
            emit_type_info: true,
            item_tag: "item".to_owned(),
        }
    }
}

/// Serialize a document with default options.
pub fn to_string(doc: &Document) -> Result<String, Infallible> {
    to_string_with(doc, &XmlWriteOptions::default())
}

/// Serialize a document with explicit options.
pub fn to_string_with(doc: &Document, opts: &XmlWriteOptions) -> Result<String, Infallible> {
    let mut out = String::with_capacity(256);
    write_into(doc, opts, &mut out)?;
    Ok(out)
}

/// Serialize a document into a caller-provided buffer.
///
/// The buffer is cleared first but keeps its capacity, so cycling one
/// `String` through repeated calls reaches a steady state with no heap
/// allocation at all (the per-value numeric formatting goes through the
/// [`crate::num`] kernels, which write in place).
pub fn write_into(
    doc: &Document,
    opts: &XmlWriteOptions,
    out: &mut String,
) -> Result<(), Infallible> {
    out.clear();
    let mut w = XmlWriter { out, opts };
    if opts.declaration {
        w.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    }
    walk_document(doc, &mut w)
}

/// Serialize a single element (used by SOAP fault paths and tests).
pub fn element_to_string(element: &Element, opts: &XmlWriteOptions) -> String {
    let mut out = String::with_capacity(128);
    write_element_into(element, opts, &mut out);
    out
}

/// [`element_to_string`] into a caller-provided buffer (cleared first,
/// capacity kept) — the streaming path's per-part encoder: cycling one
/// `String` through a stream of similarly-sized parts serializes each
/// with no heap allocation.
pub fn write_element_into(element: &Element, opts: &XmlWriteOptions, out: &mut String) {
    out.clear();
    let mut w = XmlWriter { out, opts };
    let Ok(()) = walk_element(element, &mut w);
}

struct XmlWriter<'o> {
    out: &'o mut String,
    opts: &'o XmlWriteOptions,
}

/// Append an atomic value's lexical form in text-node position (strings
/// need markup escaping; numeric and boolean lexical forms never do, so
/// they go straight through the fast kernels with no scratch buffer).
fn push_atomic_text(value: &AtomicValue, out: &mut String) {
    match value {
        AtomicValue::I8(v) => num::write_i64(*v as i64, out),
        AtomicValue::U8(v) => num::write_u64(*v as u64, out),
        AtomicValue::I16(v) => num::write_i64(*v as i64, out),
        AtomicValue::U16(v) => num::write_u64(*v as u64, out),
        AtomicValue::I32(v) => num::write_i64(*v as i64, out),
        AtomicValue::U32(v) => num::write_u64(*v as u64, out),
        AtomicValue::I64(v) => num::write_i64(*v, out),
        AtomicValue::U64(v) => num::write_u64(*v, out),
        AtomicValue::F32(v) => write_f32_lexical(*v, out),
        AtomicValue::F64(v) => num::write_f64(*v, out),
        AtomicValue::Str(s) => escape_text(s, out),
        AtomicValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Same as [`push_atomic_text`] but in attribute-value position.
fn push_atomic_attr(value: &AtomicValue, out: &mut String) {
    match value {
        AtomicValue::Str(s) => escape_attr(s, out),
        other => push_atomic_text(other, out),
    }
}

impl XmlWriter<'_> {
    fn open_tag(&mut self, e: &Element) {
        self.out.push('<');
        e.name.write_lexical(self.out);
        for ns in &e.namespaces {
            match &ns.prefix {
                Some(p) => {
                    self.out.push_str(" xmlns:");
                    self.out.push_str(p);
                }
                None => self.out.push_str(" xmlns"),
            }
            self.out.push_str("=\"");
            escape_attr(&ns.uri, self.out);
            self.out.push('"');
        }
        for attr in &e.attributes {
            self.out.push(' ');
            attr.name.write_lexical(self.out);
            self.out.push_str("=\"");
            push_atomic_attr(&attr.value, self.out);
            self.out.push('"');
        }
    }

    /// Emit `<item>value</item>` children for one array's payload.
    fn write_items<T: Copy>(&mut self, values: &[T], write: impl Fn(T, &mut String)) {
        for &v in values {
            self.out.push('<');
            self.out.push_str(&self.opts.item_tag);
            self.out.push('>');
            write(v, self.out);
            self.out.push_str("</");
            self.out.push_str(&self.opts.item_tag);
            self.out.push('>');
        }
    }

    fn push_attr(&mut self, name: &str, value: &str) {
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        escape_attr(value, self.out);
        self.out.push('"');
    }

    fn close_tag(&mut self, e: &Element) {
        self.out.push_str("</");
        e.name.write_lexical(self.out);
        self.out.push('>');
    }
}

impl Visitor for XmlWriter<'_> {
    type Error = Infallible;

    fn visit_element_start(&mut self, e: &Element) -> Result<(), Infallible> {
        self.open_tag(e);
        match &e.content {
            Content::Children(children) => {
                if children.is_empty() {
                    self.out.push_str("/>");
                } else {
                    self.out.push('>');
                }
                // Children are emitted by the shared walk; the close tag
                // happens in visit_element_end.
            }
            Content::Leaf(value) => {
                if self.opts.emit_type_info {
                    self.push_attr("xsi:type", value.type_code().xsd_name());
                }
                self.out.push('>');
                push_atomic_text(value, self.out);
            }
            Content::Array(array) => {
                if self.opts.emit_type_info {
                    self.push_attr("bx:arrayType", array.type_code().xsd_name());
                }
                self.out.push('>');
                // One child element per item: the open/close tag pair per
                // element is exactly the overhead Table 1 quantifies. The
                // item values go straight through the numeric kernels —
                // this loop is the measured cost of the XML encoding.
                match array {
                    ArrayValue::I8(vs) => self.write_items(vs, |v, o| num::write_i64(v as i64, o)),
                    ArrayValue::U8(vs) => self.write_items(vs, |v, o| num::write_u64(v as u64, o)),
                    ArrayValue::I16(vs) => self.write_items(vs, |v, o| num::write_i64(v as i64, o)),
                    ArrayValue::U16(vs) => self.write_items(vs, |v, o| num::write_u64(v as u64, o)),
                    ArrayValue::I32(vs) => self.write_items(vs, |v, o| num::write_i64(v as i64, o)),
                    ArrayValue::U32(vs) => self.write_items(vs, |v, o| num::write_u64(v as u64, o)),
                    ArrayValue::I64(vs) => self.write_items(vs, num::write_i64),
                    ArrayValue::U64(vs) => self.write_items(vs, num::write_u64),
                    ArrayValue::F32(vs) => self.write_items(vs, write_f32_lexical),
                    ArrayValue::F64(vs) => self.write_items(vs, num::write_f64),
                }
            }
        }
        Ok(())
    }

    fn visit_element_end(&mut self, e: &Element) -> Result<(), Infallible> {
        match &e.content {
            Content::Children(children) if children.is_empty() => {} // self-closed
            _ => self.close_tag(e),
        }
        Ok(())
    }

    fn visit_text(&mut self, text: &str) -> Result<(), Infallible> {
        escape_text(text, self.out);
        Ok(())
    }

    fn visit_comment(&mut self, comment: &str) -> Result<(), Infallible> {
        self.out.push_str("<!--");
        self.out.push_str(comment);
        self.out.push_str("-->");
        Ok(())
    }

    fn visit_pi(&mut self, target: &str, data: &str) -> Result<(), Infallible> {
        self.out.push_str("<?");
        self.out.push_str(target);
        if !data.is_empty() {
            self.out.push(' ');
            self.out.push_str(data);
        }
        self.out.push_str("?>");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bxdm::Node;

    fn doc(root: Element) -> Document {
        Document::with_root(root)
    }

    #[test]
    fn component_roundtrip_markup() {
        let d = doc(Element::component("a")
            .with_attr("k", "v<&>")
            .with_child(Element::component("b"))
            .with_text("x & y"));
        assert_eq!(
            to_string(&d).unwrap(),
            r#"<a k="v&lt;&amp;&gt;"><b/>x &amp; y</a>"#
        );
    }

    #[test]
    fn leaf_with_type_info() {
        let d = doc(Element::leaf("n", AtomicValue::I32(-5)));
        assert_eq!(
            to_string(&d).unwrap(),
            r#"<n xsi:type="xsd:int">-5</n>"#
        );
    }

    #[test]
    fn leaf_without_type_info() {
        let d = doc(Element::leaf("n", AtomicValue::I32(-5)));
        let opts = XmlWriteOptions {
            emit_type_info: false,
            ..Default::default()
        };
        assert_eq!(to_string_with(&d, &opts).unwrap(), "<n>-5</n>");
    }

    #[test]
    fn array_items_and_type() {
        let d = doc(Element::array("v", ArrayValue::F64(vec![1.5, -2.0])));
        assert_eq!(
            to_string(&d).unwrap(),
            r#"<v bx:arrayType="xsd:double"><item>1.5</item><item>-2</item></v>"#
        );
    }

    #[test]
    fn array_short_item_tag() {
        let d = doc(Element::array("v", ArrayValue::I32(vec![1, 2, 3])));
        let opts = XmlWriteOptions {
            emit_type_info: false,
            item_tag: "i".to_owned(),
            ..Default::default()
        };
        assert_eq!(
            to_string_with(&d, &opts).unwrap(),
            "<v><i>1</i><i>2</i><i>3</i></v>"
        );
    }

    #[test]
    fn namespaces_emitted() {
        let d = doc(Element::component("s:env")
            .with_namespace("s", "http://example.org/s")
            .with_default_namespace("http://example.org/d"));
        assert_eq!(
            to_string(&d).unwrap(),
            r#"<s:env xmlns:s="http://example.org/s" xmlns="http://example.org/d"/>"#
        );
    }

    #[test]
    fn declaration_comment_pi() {
        let mut d = Document::new();
        d.children.push(Node::Comment(" hello ".into()));
        d.children.push(Node::Pi {
            target: "app".into(),
            data: "x=1".into(),
        });
        d.children.push(Node::Element(Element::component("r")));
        let opts = XmlWriteOptions {
            declaration: true,
            ..Default::default()
        };
        assert_eq!(
            to_string_with(&d, &opts).unwrap(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><!-- hello --><?app x=1?><r/>"
        );
    }

    #[test]
    fn typed_attribute_lexical_form() {
        let d = doc(Element::component("a").with_typed_attr("n", AtomicValue::F64(0.5)));
        assert_eq!(to_string(&d).unwrap(), r#"<a n="0.5"/>"#);
    }

    #[test]
    fn write_into_reuses_buffer() {
        let d1 = doc(Element::array("v", ArrayValue::F64(vec![1.5, -2.0])));
        let d2 = doc(Element::leaf("n", AtomicValue::I32(-5)));
        let mut buf = String::new();
        write_into(&d1, &XmlWriteOptions::default(), &mut buf).unwrap();
        assert_eq!(
            buf,
            r#"<v bx:arrayType="xsd:double"><item>1.5</item><item>-2</item></v>"#
        );
        let cap = buf.capacity();
        // Second document is smaller: same capacity, content replaced.
        write_into(&d2, &XmlWriteOptions::default(), &mut buf).unwrap();
        assert_eq!(buf, r#"<n xsi:type="xsd:int">-5</n>"#);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn element_to_string_matches_document_form() {
        let e = Element::array("v", ArrayValue::I32(vec![7, 8]));
        let opts = XmlWriteOptions::default();
        let alone = element_to_string(&e, &opts);
        let in_doc = to_string_with(&doc(e), &opts).unwrap();
        assert_eq!(alone, in_doc);
    }
}
