//! Field-at-a-time textual XML access: the schema-known fast path.
//!
//! [`crate::writer`]/[`crate::reader`] serialize any bXDM tree, but a
//! caller whose message type is statically known can emit and consume
//! the markup directly from typed fields. [`XmlFieldWriter`] produces
//! output **byte-identical** to the tree writer's for the attribute-free
//! element shapes typed messages take (same `xsi:type`/`bx:arrayType`
//! annotations under the same [`XmlWriteOptions`]), and
//! [`XmlFieldReader`] pulls typed values straight off the incremental
//! lexer events ([`Lexer::next_event`]/[`Lexer::next_attr`]) without
//! materializing attribute vectors or a tree — the decode side stays
//! allocation-free at steady state because numeric parsing borrows and
//! array/string reads refill caller-owned buffers.

use xbs::TypeCode;

use crate::error::{XmlError, XmlResult};
use crate::escape::escape_text;
use crate::lexer::{AttrEvent, Event, Lexer};
use crate::num;
use crate::writer::XmlWriteOptions;

/// A numeric type with an XML Schema lexical form, as typed fields use
/// it: written in place with the [`crate::num`] kernels, parsed without
/// scratch allocation.
///
/// Implemented for the ten fixed-width numeric types of the bXDM model
/// (strings and booleans have dedicated methods on the writer/reader —
/// their lexical handling differs: markup escaping, `true`/`false`).
pub trait TypedText: Copy {
    /// The corresponding bXDM type code (provides the `xsd:` name for
    /// `xsi:type` / `bx:arrayType` annotations).
    const CODE: TypeCode;

    /// Append the value's lexical form. Numeric lexical forms never
    /// contain markup characters, so no escaping is involved.
    fn push_text(self, out: &mut String);

    /// Parse a (whitespace-trimmed) lexical form; `None` on any
    /// mismatch, including range overflow.
    fn parse_text(t: &str) -> Option<Self>;
}

macro_rules! signed_typed_text {
    ($($t:ty => $code:ident),* $(,)?) => {$(
        impl TypedText for $t {
            const CODE: TypeCode = TypeCode::$code;
            fn push_text(self, out: &mut String) {
                num::write_i64(self as i64, out);
            }
            fn parse_text(t: &str) -> Option<$t> {
                num::parse_i64(t).and_then(|v| <$t>::try_from(v).ok())
            }
        }
    )*};
}

macro_rules! unsigned_typed_text {
    ($($t:ty => $code:ident),* $(,)?) => {$(
        impl TypedText for $t {
            const CODE: TypeCode = TypeCode::$code;
            fn push_text(self, out: &mut String) {
                num::write_u64(self as u64, out);
            }
            fn parse_text(t: &str) -> Option<$t> {
                num::parse_u64(t).and_then(|v| <$t>::try_from(v).ok())
            }
        }
    )*};
}

signed_typed_text! { i8 => I8, i16 => I16, i32 => I32, i64 => I64 }
unsigned_typed_text! { u8 => U8, u16 => U16, u32 => U32, u64 => U64 }

impl TypedText for f32 {
    const CODE: TypeCode = TypeCode::F32;
    fn push_text(self, out: &mut String) {
        bxdm::value::write_f32_lexical(self, out);
    }
    fn parse_text(t: &str) -> Option<f32> {
        // Mirrors the tree reader: f32 must not round-trip through the
        // f64 kernel (double rounding); std's parser accepts the
        // INF/-INF/NaN lexical forms case-insensitively.
        t.parse::<f32>().ok()
    }
}

impl TypedText for f64 {
    const CODE: TypeCode = TypeCode::F64;
    fn push_text(self, out: &mut String) {
        num::write_f64(self, out);
    }
    fn parse_text(t: &str) -> Option<f64> {
        num::parse_f64_lexical(t)
    }
}

/// A typed markup emitter over a caller-owned `String`.
///
/// Produces the same bytes the tree writer would for the equivalent
/// attribute-free elements: namespace declarations in argument order on
/// the open tag, `xsi:type` on leaves and `bx:arrayType` on arrays when
/// [`XmlWriteOptions::emit_type_info`] is set, one
/// [`XmlWriteOptions::item_tag`] child per array item.
pub struct XmlFieldWriter<'o> {
    out: &'o mut String,
    opts: &'o XmlWriteOptions,
}

impl<'o> XmlFieldWriter<'o> {
    /// Write into `out` from its current end (callers clear it between
    /// messages to reuse capacity).
    pub fn new(out: &'o mut String, opts: &'o XmlWriteOptions) -> XmlFieldWriter<'o> {
        XmlFieldWriter { out, opts }
    }

    /// The underlying buffer (tests).
    pub fn as_str(&self) -> &str {
        self.out
    }

    fn open_tag(&mut self, name: &str, decls: &[(Option<&str>, &str)]) {
        self.out.push('<');
        self.out.push_str(name);
        for (prefix, uri) in decls {
            match prefix {
                Some(p) => {
                    self.out.push_str(" xmlns:");
                    self.out.push_str(p);
                }
                None => self.out.push_str(" xmlns"),
            }
            self.out.push_str("=\"");
            crate::escape::escape_attr(uri, self.out);
            self.out.push('"');
        }
    }

    fn close_tag(&mut self, name: &str) {
        self.out.push_str("</");
        self.out.push_str(name);
        self.out.push('>');
    }

    fn type_attr(&mut self, attr: &str, code: TypeCode) {
        if self.opts.emit_type_info {
            self.out.push(' ');
            self.out.push_str(attr);
            self.out.push_str("=\"");
            self.out.push_str(code.xsd_name());
            self.out.push('"');
        }
    }

    /// Open a component element (one with child elements). `name` is the
    /// lexical (possibly prefixed) form, e.g. `"d:Verify"`.
    pub fn begin_component(&mut self, name: &str, decls: &[(Option<&str>, &str)]) {
        self.open_tag(name, decls);
        self.out.push('>');
    }

    /// Close a component opened with
    /// [`begin_component`](XmlFieldWriter::begin_component).
    pub fn end_component(&mut self, name: &str) {
        self.close_tag(name);
    }

    /// A childless component, in the tree writer's self-closed form.
    pub fn empty_component(&mut self, name: &str, decls: &[(Option<&str>, &str)]) {
        self.open_tag(name, decls);
        self.out.push_str("/>");
    }

    /// A complete numeric leaf element.
    pub fn leaf<T: TypedText>(&mut self, name: &str, decls: &[(Option<&str>, &str)], value: T) {
        self.open_tag(name, decls);
        self.type_attr("xsi:type", T::CODE);
        self.out.push('>');
        value.push_text(self.out);
        self.close_tag(name);
    }

    /// A complete string leaf element (markup-escaped).
    pub fn leaf_str(&mut self, name: &str, decls: &[(Option<&str>, &str)], value: &str) {
        self.open_tag(name, decls);
        self.type_attr("xsi:type", TypeCode::Str);
        self.out.push('>');
        escape_text(value, self.out);
        self.close_tag(name);
    }

    /// A complete boolean leaf element.
    pub fn leaf_bool(&mut self, name: &str, decls: &[(Option<&str>, &str)], value: bool) {
        self.open_tag(name, decls);
        self.type_attr("xsi:type", TypeCode::Bool);
        self.out.push('>');
        self.out.push_str(if value { "true" } else { "false" });
        self.close_tag(name);
    }

    /// A complete array element: one item child per value, values
    /// through the numeric kernels — the same loop the tree writer runs,
    /// minus the tree.
    pub fn array<T: TypedText>(&mut self, name: &str, decls: &[(Option<&str>, &str)], values: &[T]) {
        self.open_tag(name, decls);
        self.type_attr("bx:arrayType", T::CODE);
        self.out.push('>');
        for &v in values {
            self.out.push('<');
            self.out.push_str(&self.opts.item_tag);
            self.out.push('>');
            v.push_text(self.out);
            self.out.push_str("</");
            self.out.push_str(&self.opts.item_tag);
            self.out.push('>');
        }
        self.close_tag(name);
    }
}

/// What [`XmlFieldReader::next`] saw: a start tag, an end tag, or the
/// end of input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlItem<'a> {
    /// An element opened (attributes already drained).
    Start(XmlHead<'a>),
    /// An element closed; the local name (prefix stripped).
    End(&'a str),
    /// End of input.
    Eof,
}

/// A parsed start tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmlHead<'a> {
    /// Full lexical name as written, e.g. `"d:Verify"`.
    pub name: &'a str,
    /// Local part (after the `:`, if any).
    pub local: &'a str,
    /// `<x/>`: the element is already closed; no content, no end tag.
    pub self_closing: bool,
    /// Attributes other than namespace declarations and the writer's own
    /// typing annotations (`xsi:type`, `bx:arrayType`). Schema-known
    /// consumers treat a nonzero count as "not mine" and fall back to
    /// the generic tree path (e.g. a `mustUnderstand` SOAP header).
    pub extra_attrs: usize,
}

fn local_of(name: &str) -> &str {
    match name.rfind(':') {
        Some(i) => &name[i + 1..],
        None => name,
    }
}

/// An allocation-free typed pull reader over the incremental lexer.
///
/// Typed readers match element *local* names and ignore the typing
/// annotations a writer may or may not have emitted — the schema is
/// known, the markup only has to agree with it. Any construct outside
/// the typed subset (mixed content, CDATA, unexpected attributes) is an
/// error at this layer; callers treat errors as "take the tree path".
pub struct XmlFieldReader<'a> {
    lex: Lexer<'a>,
}

impl<'a> XmlFieldReader<'a> {
    /// Read `input` from the beginning.
    pub fn new(input: &'a str) -> XmlFieldReader<'a> {
        XmlFieldReader { lex: Lexer::new(input) }
    }

    fn malformed(&self, what: impl Into<String>) -> XmlError {
        XmlError::Malformed {
            offset: self.lex.position(),
            what: what.into(),
        }
    }

    /// Pull the next structural item, skipping the XML declaration,
    /// comments, processing instructions, and inter-element whitespace.
    /// Non-whitespace text outside a leaf is an error (typed messages
    /// have no mixed content).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> XmlResult<XmlItem<'a>> {
        loop {
            match self.lex.next_event()? {
                Event::Decl | Event::Comment(_) | Event::Pi { .. } => continue,
                Event::Text(t) => {
                    if t.trim().is_empty() {
                        continue;
                    }
                    return Err(self.malformed("unexpected text in typed content"));
                }
                Event::CData(_) => {
                    return Err(self.malformed("CDATA in typed content"));
                }
                Event::StartTagOpen { name } => return Ok(XmlItem::Start(self.drain_attrs(name)?)),
                Event::EndTag { name } => return Ok(XmlItem::End(local_of(name))),
                Event::Eof => return Ok(XmlItem::Eof),
            }
        }
    }

    fn drain_attrs(&mut self, name: &'a str) -> XmlResult<XmlHead<'a>> {
        let mut extra_attrs = 0;
        loop {
            match self.lex.next_attr()? {
                AttrEvent::Attr(n, _) => {
                    let benign = n == "xmlns"
                        || n.starts_with("xmlns:")
                        || local_of(n) == "type"
                        || local_of(n) == "arrayType"
                        || local_of(n) == "length";
                    if !benign {
                        extra_attrs += 1;
                    }
                }
                AttrEvent::TagEnd { self_closing } => {
                    return Ok(XmlHead {
                        name,
                        local: local_of(name),
                        self_closing,
                        extra_attrs,
                    })
                }
            }
        }
    }

    /// Read an opened leaf's text content and matching end tag, handing
    /// the (untrimmed) text to `consume`. A self-closed leaf yields `""`.
    fn leaf_text<R>(
        &mut self,
        head: &XmlHead<'a>,
        consume: impl FnOnce(&str) -> XmlResult<R>,
    ) -> XmlResult<R> {
        if head.self_closing {
            return consume("");
        }
        match self.lex.next_event()? {
            Event::Text(t) => {
                let r = consume(&t)?;
                match self.lex.next_event()? {
                    Event::EndTag { name } if local_of(name) == head.local => Ok(r),
                    _ => Err(self.malformed(format!("leaf {:?} not closed", head.local))),
                }
            }
            Event::EndTag { name } if local_of(name) == head.local => consume(""),
            _ => Err(self.malformed(format!("expected text content in {:?}", head.local))),
        }
    }

    /// Parse an opened leaf's numeric value (and consume its end tag).
    pub fn leaf_value<T: TypedText>(&mut self, head: &XmlHead<'a>) -> XmlResult<T> {
        let local = head.local;
        let pos = self.lex.position();
        self.leaf_text(head, |t| {
            // `ok_or_else`, not `ok_or`: the error string must only be
            // built on failure, or every parsed value pays a format+alloc.
            T::parse_text(t.trim()).ok_or_else(|| XmlError::Malformed {
                offset: pos,
                what: format!("bad {} value in {:?}", T::CODE.xsd_name(), local),
            })
        })
    }

    /// Read an opened string leaf into `out` (cleared, capacity kept) and
    /// consume its end tag. Strings are not trimmed — whitespace is data.
    pub fn leaf_str_into(&mut self, head: &XmlHead<'a>, out: &mut String) -> XmlResult<()> {
        self.leaf_text(head, |t| {
            out.clear();
            out.push_str(t);
            Ok(())
        })
    }

    /// Parse an opened boolean leaf (and consume its end tag).
    pub fn leaf_bool(&mut self, head: &XmlHead<'a>) -> XmlResult<bool> {
        let local = head.local;
        let pos = self.lex.position();
        self.leaf_text(head, |t| match t.trim() {
            "true" | "1" => Ok(true),
            "false" | "0" => Ok(false),
            other => Err(XmlError::Malformed {
                offset: pos,
                what: format!("bad boolean {other:?} in {local:?}"),
            }),
        })
    }

    /// Refill `out` (cleared, capacity kept) from an opened array
    /// element's item children, consuming the array's end tag. Item tag
    /// names are not checked — any single-text-child element sequence is
    /// accepted, matching the tree reader's leniency about
    /// [`XmlWriteOptions::item_tag`].
    pub fn array_into<T: TypedText>(
        &mut self,
        head: &XmlHead<'a>,
        out: &mut Vec<T>,
    ) -> XmlResult<()> {
        out.clear();
        if head.self_closing {
            return Ok(());
        }
        loop {
            // Fast path: plain `<i>value</i>` items (the shape both our
            // writers emit) parse straight from the input bytes, skipping
            // the event machinery. Anything else — attributes, entities,
            // self-closing items, the array's end tag — drops to the
            // general loop below, which re-enters the fast path after.
            while let Some(text) = self.lex.next_simple_item() {
                let pos = self.lex.position();
                let v = T::parse_text(text.trim()).ok_or_else(|| XmlError::Malformed {
                    offset: pos,
                    what: format!(
                        "bad {} value in array {:?}",
                        T::CODE.xsd_name(),
                        head.local
                    ),
                })?;
                out.push(v);
            }
            match self.next()? {
                XmlItem::Start(item) => {
                    let v = self.leaf_value::<T>(&item)?;
                    out.push(v);
                }
                XmlItem::End(local) if local == head.local => return Ok(()),
                other => {
                    return Err(self.malformed(format!(
                        "unexpected {other:?} inside array {:?}",
                        head.local
                    )))
                }
            }
        }
    }

    /// Skip an opened element and everything inside it.
    pub fn skip(&mut self, head: &XmlHead<'a>) -> XmlResult<()> {
        if head.self_closing {
            return Ok(());
        }
        let mut depth = 1usize;
        loop {
            // Raw events, not `next()`: skipped subtrees may legitimately
            // contain text and CDATA.
            match self.lex.next_event()? {
                Event::StartTagOpen { name } => {
                    let head = self.drain_attrs(name)?;
                    if !head.self_closing {
                        depth += 1;
                    }
                }
                Event::EndTag { .. } => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Event::Eof => return Err(self.malformed("input ended inside skipped element")),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{to_string_with, XmlWriteOptions};
    use bxdm::{ArrayValue, AtomicValue, Document, Element};

    fn tree_equivalent(values: &[f64], count: i64) -> Document {
        Document::with_root(
            Element::component("d:set")
                .with_namespace("d", "http://example.org/data")
                .with_child(Element::array("d:values", ArrayValue::F64(values.to_vec())))
                .with_child(Element::leaf("d:count", AtomicValue::I64(count))),
        )
    }

    fn typed_equivalent(values: &[f64], count: i64, opts: &XmlWriteOptions) -> String {
        let mut out = String::new();
        let mut w = XmlFieldWriter::new(&mut out, opts);
        w.begin_component("d:set", &[(Some("d"), "http://example.org/data")]);
        w.array("d:values", &[], values);
        w.leaf("d:count", &[], count);
        w.end_component("d:set");
        out
    }

    #[test]
    fn typed_write_is_byte_identical_to_tree_write() {
        for opts in [
            XmlWriteOptions::default(),
            XmlWriteOptions {
                emit_type_info: false,
                item_tag: "i".to_owned(),
                ..Default::default()
            },
        ] {
            let values = [1.5, -2.0, 0.0, 330.25];
            let tree = to_string_with(&tree_equivalent(&values, 4), &opts).unwrap();
            assert_eq!(typed_equivalent(&values, 4, &opts), tree);
        }
    }

    #[test]
    fn typed_read_recovers_fields_from_either_writer() {
        let values = [180.5, 207.25, 330.0];
        for (markup, label) in [
            (
                to_string_with(&tree_equivalent(&values, 3), &XmlWriteOptions::default()).unwrap(),
                "tree",
            ),
            (
                typed_equivalent(&values, 3, &XmlWriteOptions::default()),
                "typed",
            ),
        ] {
            let mut r = XmlFieldReader::new(&markup);
            let XmlItem::Start(set) = r.next().unwrap() else {
                panic!("{label}: expected start")
            };
            assert_eq!(set.local, "set");
            assert_eq!(set.extra_attrs, 0);
            let XmlItem::Start(arr) = r.next().unwrap() else {
                panic!("{label}: expected array")
            };
            let mut out = vec![0.0; 1];
            r.array_into::<f64>(&arr, &mut out).unwrap();
            assert_eq!(out, values, "{label}");
            let XmlItem::Start(leaf) = r.next().unwrap() else {
                panic!("{label}: expected leaf")
            };
            assert_eq!(r.leaf_value::<i64>(&leaf).unwrap(), 3, "{label}");
            assert_eq!(r.next().unwrap(), XmlItem::End("set"), "{label}");
            assert_eq!(r.next().unwrap(), XmlItem::Eof, "{label}");
        }
    }

    #[test]
    fn special_floats_roundtrip() {
        let values = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0];
        let opts = XmlWriteOptions::default();
        let mut out = String::new();
        XmlFieldWriter::new(&mut out, &opts).array("v", &[], &values);
        let mut r = XmlFieldReader::new(&out);
        let XmlItem::Start(h) = r.next().unwrap() else { panic!() };
        let mut back: Vec<f64> = Vec::new();
        r.array_into(&h, &mut back).unwrap();
        let bits: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        // NaN canonicalizes; the rest are exact (including -0.0's sign).
        assert!(back[0].is_nan());
        assert_eq!(bits[1..], values[1..].iter().map(|v| v.to_bits()).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let opts = XmlWriteOptions::default();
        let mut out = String::new();
        XmlFieldWriter::new(&mut out, &opts).leaf_str("s", &[], "a <b> & \"c\"");
        assert_eq!(out, r#"<s xsi:type="xsd:string">a &lt;b&gt; &amp; "c"</s>"#);
        let mut r = XmlFieldReader::new(&out);
        let XmlItem::Start(h) = r.next().unwrap() else { panic!() };
        let mut s = String::new();
        r.leaf_str_into(&h, &mut s).unwrap();
        assert_eq!(s, "a <b> & \"c\"");
    }

    #[test]
    fn foreign_attributes_are_counted_and_skippable() {
        let markup = r#"<h:stamp xmlns:h="u" soapenv:mustUnderstand="1"><x>1</x></h:stamp><after/>"#;
        let mut r = XmlFieldReader::new(markup);
        let XmlItem::Start(h) = r.next().unwrap() else { panic!() };
        assert_eq!(h.extra_attrs, 1);
        r.skip(&h).unwrap();
        let XmlItem::Start(after) = r.next().unwrap() else { panic!() };
        assert_eq!(after.local, "after");
        assert!(after.self_closing);
    }

    #[test]
    fn malformed_typed_content_errors_not_panics() {
        for bad in [
            "<a>text<b/></a>",                       // mixed content
            r#"<v><item>notanumber</item></v>"#,     // bad numeric
            r#"<n xsi:type="xsd:int">1e3</n>"#,      // non-integer int
            "<a><b></a>",                            // mismatched nesting (skip)
        ] {
            let mut r = XmlFieldReader::new(bad);
            let first = r.next();
            let result: XmlResult<()> = first.and_then(|item| match item {
                XmlItem::Start(h) if h.local == "v" => {
                    let mut out: Vec<f64> = Vec::new();
                    r.array_into(&h, &mut out)
                }
                XmlItem::Start(h) if h.local == "n" => r.leaf_value::<i32>(&h).map(|_| ()),
                XmlItem::Start(_) => loop {
                    // Walk with the typed `next()`: mixed content errors.
                    match r.next()? {
                        XmlItem::Eof => return Ok(()),
                        _ => continue,
                    }
                },
                _ => Ok(()),
            });
            // "<a><b></a>" skip: lexer is name-agnostic on end tags, so
            // the skip itself succeeds; the others must error.
            if bad != "<a><b></a>" {
                assert!(result.is_err(), "{bad:?} should error");
            }
        }
    }
}
