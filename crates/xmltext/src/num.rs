//! Fast numeric text kernels for the XML hot path.
//!
//! The paper's central measurement (§6, Table 2) is that SOAP spends its
//! time converting doubles to and from ASCII, not in XML structure. The
//! seed codebase leaned on `format!` and `str::parse` for that inner
//! loop; this module replaces both with from-scratch kernels:
//!
//! * [`write_u64`] / [`write_i64`] — branch-light integer itoa using a
//!   two-digits-at-a-time lookup table.
//! * [`write_f64`] — a Grisu2 shortest-round-trip binary-to-decimal
//!   conversion. Every emitted string is verified to parse back to the
//!   identical bits before being committed; the rare case Grisu2 cannot
//!   settle falls back to the standard formatter, so round-trip fidelity
//!   (the paper's "transcodability" requirement) is unconditional.
//! * [`parse_u64`] / [`parse_i64`] — digit parsing that consumes eight
//!   ASCII digits per step with SWAR arithmetic instead of one per
//!   branchy loop iteration.
//! * [`parse_f64`] — decimal-to-binary conversion with the Clinger fast
//!   path (exact double arithmetic when the mantissa fits in 53 bits and
//!   the power of ten is exactly representable), deferring to the
//!   standard library outside that window.
//!
//! The Grisu2 cached powers of ten are computed exactly at first use
//! with a tiny big-integer (no baked-in table of magic constants), then
//! cached in a `OnceLock` — after warmup the kernels allocate nothing.

use std::sync::OnceLock;

/// Powers of ten exactly representable in an `f64` (up to `1e22`).
const POW10_F64: [f64; 23] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
    1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
];

/// Powers of ten that fit in a `u64`.
const POW10_U64: [u64; 20] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
    1_000_000_000_000,
    10_000_000_000_000,
    100_000_000_000_000,
    1_000_000_000_000_000,
    10_000_000_000_000_000,
    100_000_000_000_000_000,
    1_000_000_000_000_000_000,
    10_000_000_000_000_000_000,
];

/// All two-digit decimal pairs, "00" through "99".
const DEC_PAIRS: &[u8; 200] = b"0001020304050607080910111213141516171819\
2021222324252627282930313233343536373839\
4041424344454647484950515253545556575859\
6061626364656667686970717273747576777879\
8081828384858687888990919293949596979899";

// ---------------------------------------------------------------------------
// Integer formatting
// ---------------------------------------------------------------------------

/// Append the decimal form of `v` to `out`.
#[inline]
pub fn write_u64(mut v: u64, out: &mut String) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    while v >= 100 {
        let pair = (v % 100) as usize * 2;
        v /= 100;
        i -= 2;
        buf[i] = DEC_PAIRS[pair];
        buf[i + 1] = DEC_PAIRS[pair + 1];
    }
    if v >= 10 {
        let pair = v as usize * 2;
        i -= 2;
        buf[i] = DEC_PAIRS[pair];
        buf[i + 1] = DEC_PAIRS[pair + 1];
    } else {
        i -= 1;
        buf[i] = b'0' + v as u8;
    }
    // The buffer holds only ASCII digits, so this cannot fail.
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap());
}

/// Append the decimal form of `v` to `out`.
#[inline]
pub fn write_i64(v: i64, out: &mut String) {
    if v < 0 {
        out.push('-');
    }
    write_u64(v.unsigned_abs(), out);
}

// ---------------------------------------------------------------------------
// Integer parsing (SWAR)
// ---------------------------------------------------------------------------

/// `true` if all eight bytes of the little-endian word are ASCII digits.
#[inline]
fn is_8_digits(chunk: u64) -> bool {
    // Per byte: adding 0x46 carries into bit 7 only for bytes > 0x39, and
    // subtracting 0x30 borrows bit 7 only for bytes < 0x30.
    let over = chunk.wrapping_add(0x4646_4646_4646_4646);
    let under = chunk.wrapping_sub(0x3030_3030_3030_3030);
    (over | under) & 0x8080_8080_8080_8080 == 0
}

/// Combine eight ASCII digits (little-endian word, most significant digit
/// in the lowest byte) into their numeric value without per-digit loops.
#[inline]
fn fold_8_digits(chunk: u64) -> u64 {
    let digits = chunk.wrapping_sub(0x3030_3030_3030_3030);
    // Pairwise combine: each byte pair a,b becomes 10a+b in the second
    // byte, then pairs of pairs, then the two four-digit halves.
    let pairs = digits.wrapping_mul(10).wrapping_add(digits >> 8);
    const MASK: u64 = 0x0000_00ff_0000_00ff;
    let quads = (pairs & MASK).wrapping_mul(100 + ((1_000_000u64) << 32));
    let halves = ((pairs >> 16) & MASK).wrapping_mul(1 + ((10_000u64) << 32));
    (quads.wrapping_add(halves) >> 32) as u32 as u64
}

/// Parse a run of ASCII digits at the front of `bytes`, eating eight at a
/// time. Returns the accumulated value and the number of bytes consumed,
/// or `None` if the run overflows a `u64`.
#[inline]
fn eat_digits(bytes: &[u8], mut acc: u64) -> Option<(u64, usize)> {
    let mut i = 0;
    while bytes.len() - i >= 8 {
        let chunk = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        if !is_8_digits(chunk) {
            break;
        }
        acc = acc
            .checked_mul(100_000_000)?
            .checked_add(fold_8_digits(chunk))?;
        i += 8;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        acc = acc
            .checked_mul(10)?
            .checked_add((bytes[i] - b'0') as u64)?;
        i += 1;
    }
    Some((acc, i))
}

/// Parse an unsigned decimal integer; the whole string must be digits.
#[inline]
pub fn parse_u64(s: &str) -> Option<u64> {
    let b = s.as_bytes();
    if b.is_empty() {
        return None;
    }
    let (v, used) = eat_digits(b, 0)?;
    if used == b.len() {
        Some(v)
    } else {
        None
    }
}

/// Parse a signed decimal integer with optional `+`/`-` sign.
#[inline]
pub fn parse_i64(s: &str) -> Option<i64> {
    let b = s.as_bytes();
    let (neg, rest) = match b.first()? {
        b'-' => (true, &b[1..]),
        b'+' => (false, &b[1..]),
        _ => (false, b),
    };
    if rest.is_empty() {
        return None;
    }
    let (mag, used) = eat_digits(rest, 0)?;
    if used != rest.len() {
        return None;
    }
    if neg {
        if mag > i64::MIN.unsigned_abs() {
            return None;
        }
        Some((mag as i64).wrapping_neg())
    } else {
        i64::try_from(mag).ok()
    }
}

// ---------------------------------------------------------------------------
// Float parsing
// ---------------------------------------------------------------------------

/// Parse a plain decimal float (`[+-]?digits[.digits][eE[+-]digits]`).
///
/// Correctly-rounded everywhere, never slower than `str::parse`:
/// the Clinger fast path handles small exact cases (mantissa below 2^53,
/// decimal exponent within ±22: one float multiply), the Eisel–Lemire
/// wide window covers everything up to 19 significant digits — including
/// the 17-digit shortest-round-trip forms [`write_f64`] emits — and only
/// the rare ambiguous remainder (rounding ties under digit truncation)
/// is delegated to `str::parse`. The result always matches the standard
/// library bit for bit. Returns `None` for any other syntax (including
/// `INF`/`NaN` spellings — see [`parse_f64_lexical`]).
pub fn parse_f64(s: &str) -> Option<f64> {
    let b = s.as_bytes();
    let (neg, mut i) = match b.first()? {
        b'-' => (true, 1),
        b'+' => (false, 1),
        _ => (false, 0),
    };

    let mut mantissa: u64 = 0;
    let mut ndigits = 0usize;
    let mut truncated = false;
    let mut exp10: i32 = 0;

    // Integer part.
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        let d = b[i] - b'0';
        if mantissa == 0 && d == 0 {
            // Leading zeros carry no significance.
        } else if ndigits < 19 {
            if ndigits == 0 && b.len() - i >= 8 {
                // Bulk path for long digit runs.
                if let Some((v, used)) = eat_digits(&b[i..], 0) {
                    if used <= 19 {
                        mantissa = v;
                        ndigits = used;
                        i += used;
                        continue;
                    }
                }
            }
            mantissa = mantissa * 10 + d as u64;
            ndigits += 1;
        } else {
            // Digits beyond the 19 we keep shift the exponent; a dropped
            // non-zero digit means the fast path would mis-round.
            exp10 += 1;
            truncated |= d != 0;
        }
        i += 1;
    }
    let had_int_digits = i > int_start;

    // Fraction part.
    let mut had_frac_digits = false;
    if i < b.len() && b[i] == b'.' {
        i += 1;
        while i < b.len() && b[i].is_ascii_digit() {
            let d = b[i] - b'0';
            had_frac_digits = true;
            if mantissa == 0 && d == 0 {
                exp10 -= 1;
            } else if ndigits < 19 {
                mantissa = mantissa * 10 + d as u64;
                ndigits += 1;
                exp10 -= 1;
            } else {
                truncated |= d != 0;
            }
            i += 1;
        }
    }
    if !had_int_digits && !had_frac_digits {
        return None;
    }

    // Exponent part.
    if i < b.len() && (b[i] | 0x20) == b'e' {
        i += 1;
        let (eneg, mut j) = match b.get(i)? {
            b'-' => (true, i + 1),
            b'+' => (false, i + 1),
            _ => (false, i),
        };
        if j >= b.len() || !b[j].is_ascii_digit() {
            return None;
        }
        let mut e: i32 = 0;
        while j < b.len() && b[j].is_ascii_digit() {
            e = (e.saturating_mul(10)).saturating_add((b[j] - b'0') as i32);
            j += 1;
        }
        exp10 = exp10.saturating_add(if eneg { -e } else { e });
        i = j;
    }
    if i != b.len() {
        return None;
    }

    if !truncated && mantissa < (1u64 << 53) && (-22..=22).contains(&exp10) {
        let mut v = mantissa as f64;
        v = if exp10 < 0 {
            v / POW10_F64[(-exp10) as usize]
        } else {
            v * POW10_F64[exp10 as usize]
        };
        return Some(if neg { -v } else { v });
    }
    // Wide window: the Eisel–Lemire 128-bit product is correctly rounded
    // for any mantissa that fit in the 19 digits we kept. A truncated
    // mantissa brackets the true value between w and w+1; when both
    // bounds round to the same float that float is exact, otherwise the
    // (rare) ambiguous case falls through.
    if !truncated {
        if let Some(v) = eisel_lemire(mantissa, exp10) {
            return Some(if neg { -v } else { v });
        }
    } else if let (Some(lo), Some(hi)) =
        (eisel_lemire(mantissa, exp10), eisel_lemire(mantissa + 1, exp10))
    {
        if lo.to_bits() == hi.to_bits() {
            return Some(if neg { -lo } else { lo });
        }
    }
    // Ambiguous remainder (half-ulp ties under truncation, products too
    // close to a rounding boundary for 128 bits): the standard parser is
    // correctly rounded everywhere.
    s.parse().ok()
}

// ---------------------------------------------------------------------------
// Eisel–Lemire wide-window binary conversion
// ---------------------------------------------------------------------------

/// Decimal exponent range covered by the 128-bit powers-of-five table:
/// below `EL_MIN_EXP10` every ≤ 2^64 mantissa rounds to zero, above
/// `EL_MAX_EXP10` every non-zero one overflows to infinity.
const EL_MIN_EXP10: i32 = -342;
const EL_MAX_EXP10: i32 = 308;

/// Truncated 128-bit significands of `5^q` for `q` in
/// [`EL_MIN_EXP10`, `EL_MAX_EXP10`], normalized so bit 127 is set and
/// stored `(hi, lo)`. Negative powers are rounded *up* (their binary
/// expansion is infinite; the ceiling keeps the stored value ≥ the true
/// one, which the product-precision check accounts for), positive powers
/// are rounded down. Like the Grisu2 cache, the table is computed from
/// the exact bigint once per process instead of baked in as constants.
fn el_powers() -> &'static [(u64, u64)] {
    static POWERS: OnceLock<Vec<(u64, u64)>> = OnceLock::new();
    POWERS.get_or_init(|| {
        let len = (EL_MAX_EXP10 - EL_MIN_EXP10 + 1) as usize;
        let mut table = vec![(0u64, 0u64); len];
        // Negative powers: ceil(2^(b+127) / 5^m) has exactly 128 bits
        // when b is the bit length of 5^m.
        for q in EL_MIN_EXP10..0 {
            let five_m = bigint_pow5((-q) as u32);
            let b = bigint::bit_len(&five_m);
            let v = div_pow2_128(b + 127, &five_m) + 1;
            table[(q - EL_MIN_EXP10) as usize] = ((v >> 64) as u64, v as u64);
        }
        // Non-negative powers: top 128 bits of the exact 5^q, built
        // incrementally.
        let mut big = vec![1u64];
        for q in 0..=EL_MAX_EXP10 {
            if q > 0 {
                bigint::mul_small(&mut big, 5);
            }
            let v = big_top128(&big);
            table[(q - EL_MIN_EXP10) as usize] = ((v >> 64) as u64, v as u64);
        }
        table
    })
}

/// `5^m` as an exact bigint.
fn bigint_pow5(m: u32) -> Vec<u64> {
    let mut big = vec![1u64];
    for _ in 0..m {
        bigint::mul_small(&mut big, 5);
    }
    big
}

/// Top 128 bits of a big integer, truncated, left-normalized.
fn big_top128(big: &[u64]) -> u128 {
    let bits = bigint::bit_len(big);
    let mut v: u128 = 0;
    if bits <= 128 {
        for i in 0..bits {
            if bigint::bit(big, i) {
                v |= 1 << i;
            }
        }
        v << (128 - bits)
    } else {
        let shift = bits - 128;
        for i in 0..128 {
            if bigint::bit(big, shift + i) {
                v |= 1 << i;
            }
        }
        v
    }
}

/// `floor(2^n / d)` where `n` is sized so the quotient has ≤ 128 bits.
fn div_pow2_128(n: u32, d: &[u64]) -> u128 {
    let mut rem = vec![0u64; d.len() + 1];
    let mut q: u128 = 0;
    for pos in (0..=n).rev() {
        bigint::shl1(&mut rem);
        if pos == n {
            rem[0] |= 1;
        }
        let bit = if bigint::ge(&rem, d) {
            bigint::sub(&mut rem, d);
            1
        } else {
            0
        };
        q = (q << 1) | bit;
    }
    q
}

/// Binary exponent of the normalized 128-bit approximation of `10^q`
/// (the classic `(217706 * q) >> 16 + 63` linear fit, exact over the
/// table's range).
#[inline]
fn el_power2(q: i32) -> i32 {
    (q.wrapping_mul(152_170 + 65_536) >> 16) + 63
}

/// 64×64 → 128 multiply split into `(hi, lo)`.
#[inline]
fn umul128(a: u64, b: u64) -> (u64, u64) {
    let p = (a as u128) * (b as u128);
    ((p >> 64) as u64, p as u64)
}

/// Eisel–Lemire: convert an exact decimal `w × 10^q` (`w` the full
/// mantissa, up to 19 digits) to the nearest `f64`, or `None` when the
/// 128-bit product cannot prove the rounding direction. Returns the
/// magnitude only; the caller applies the sign (so `-0.0` works out).
///
/// Normal/subnormal/overflow/underflow handling follows the reference
/// algorithm ("Number Parsing at a Gigabyte per Second", Lemire 2021):
/// one (rarely two) 64×64 multiplies against the 128-bit power-of-five
/// table, a 9-bit precision check, and an explicit round-to-even fixup
/// on exact halfway products.
fn eisel_lemire(w: u64, q: i32) -> Option<f64> {
    if w == 0 || q < EL_MIN_EXP10 {
        // Even 2^64 × 10^-343 is below half the smallest subnormal.
        return Some(0.0);
    }
    if q > EL_MAX_EXP10 {
        return Some(f64::INFINITY);
    }
    let lz = w.leading_zeros();
    let w_norm = w << lz;

    // Product of the normalized mantissa with the 128-bit power. The
    // precision check needs 52 mantissa bits + 3 (hidden bit, rounding
    // bit, table-truncation error margin); if the top multiply's low 9
    // bits are all ones the result may be off, so refine with the low
    // table word before giving up.
    let (p_hi, p_lo) = el_powers()[(q - EL_MIN_EXP10) as usize];
    let (mut hi, mut lo) = umul128(w_norm, p_hi);
    if hi & 0x1FF == 0x1FF {
        let (second_hi, _) = umul128(w_norm, p_lo);
        lo = lo.wrapping_add(second_hi);
        if second_hi > lo {
            hi += 1;
        }
    }
    if lo == u64::MAX && !(-27..=55).contains(&q) {
        // A saturated low word means the truncated table's error could
        // still flip the rounding; only exponents whose 5^q fits the
        // 128-bit entry exactly are immune.
        return None;
    }

    let upperbit = (hi >> 63) as i32;
    let mut mantissa = hi >> (upperbit + 64 - 52 - 3);
    let mut power2 = el_power2(q) + upperbit - lz as i32 + 1023;
    if power2 <= 0 {
        // Subnormal (or complete underflow) territory.
        if -power2 + 1 >= 64 {
            return Some(0.0);
        }
        mantissa >>= -power2 + 1;
        mantissa += mantissa & 1;
        mantissa >>= 1;
        let e = u64::from(mantissa >= (1u64 << 52));
        return Some(f64::from_bits((e << 52) | (mantissa & !(1u64 << 52))));
    }
    // An exact halfway product must round to even, not up; the window
    // where `w × 5^q` can be a power of two is q ∈ [-4, 23].
    if lo <= 1
        && (-4..=23).contains(&q)
        && mantissa & 3 == 1
        && (mantissa << (upperbit + 64 - 52 - 3)) == hi
    {
        mantissa &= !1u64;
    }
    mantissa += mantissa & 1;
    mantissa >>= 1;
    if mantissa >= (2u64 << 52) {
        mantissa = 1u64 << 52;
        power2 += 1;
    }
    if power2 >= 0x7FF {
        return Some(f64::INFINITY);
    }
    Some(f64::from_bits(
        ((power2 as u64) << 52) | (mantissa & !(1u64 << 52)),
    ))
}

/// XSD `double` lexical parsing: `INF`/`+INF`/`-INF`/`NaN` plus decimal
/// forms, with the kernel fast path first. Accepts exactly the inputs
/// `bxdm::value::parse_f64_lexical` accepts.
#[inline]
pub fn parse_f64_lexical(t: &str) -> Option<f64> {
    if let Some(v) = parse_f64(t) {
        return Some(v);
    }
    bxdm::value::parse_f64_lexical(t)
}

// ---------------------------------------------------------------------------
// Float formatting (Grisu2)
// ---------------------------------------------------------------------------

/// A floating-point number as an unpacked `f * 2^e` pair.
#[derive(Debug, Clone, Copy)]
struct Fp {
    f: u64,
    e: i32,
}

impl Fp {
    /// Shift the significand so its top bit is set.
    #[inline]
    fn normalize(self) -> Fp {
        let s = self.f.leading_zeros() as i32;
        Fp {
            f: self.f << s,
            e: self.e - s,
        }
    }

    /// Rounded 64x64 -> top-64 multiply.
    #[inline]
    fn mul(self, o: Fp) -> Fp {
        let p = (self.f as u128) * (o.f as u128);
        let mut h = (p >> 64) as u64;
        if p as u64 & (1 << 63) != 0 {
            h += 1;
        }
        Fp {
            f: h,
            e: self.e + o.e + 64,
        }
    }
}

// --- exact cached powers of ten, computed once at first use -----------------

/// Little-endian multi-limb unsigned integer helpers (only what the
/// cached-power computation needs; runs once per process).
mod bigint {
    /// `big *= m` in place.
    pub fn mul_small(big: &mut Vec<u64>, m: u64) {
        let mut carry: u128 = 0;
        for limb in big.iter_mut() {
            let p = (*limb as u128) * (m as u128) + carry;
            *limb = p as u64;
            carry = p >> 64;
        }
        if carry != 0 {
            big.push(carry as u64);
        }
    }

    /// Number of significant bits.
    pub fn bit_len(big: &[u64]) -> u32 {
        let top = *big.last().expect("empty bigint");
        (big.len() as u32 - 1) * 64 + (64 - top.leading_zeros())
    }

    /// Bit `i` (little-endian numbering).
    pub fn bit(big: &[u64], i: u32) -> bool {
        let limb = (i / 64) as usize;
        limb < big.len() && (big[limb] >> (i % 64)) & 1 == 1
    }

    /// `a >= b` for equal-purpose comparisons (treats missing limbs as 0).
    pub fn ge(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().max(b.len());
        for i in (0..n).rev() {
            let x = a.get(i).copied().unwrap_or(0);
            let y = b.get(i).copied().unwrap_or(0);
            if x != y {
                return x > y;
            }
        }
        true
    }

    /// `a -= b` in place; caller guarantees `a >= b`.
    pub fn sub(a: &mut [u64], b: &[u64]) {
        let mut borrow = 0u64;
        for (i, limb) in a.iter_mut().enumerate() {
            let y = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 | b2) as u64;
        }
        debug_assert_eq!(borrow, 0, "bigint subtraction underflow");
    }

    /// `a <<= 1` in place (fixed width; caller sizes `a` generously).
    pub fn shl1(a: &mut [u64]) {
        let mut carry = 0u64;
        for limb in a.iter_mut() {
            let next_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = next_carry;
        }
        debug_assert_eq!(carry, 0, "bigint shift overflow");
    }
}

/// Top 64 bits of a big integer, rounded to nearest: `big ≈ f * 2^e`.
fn big_top64(big: &[u64]) -> (u64, i32) {
    let bits = bigint::bit_len(big);
    if bits <= 64 {
        let v = big[0];
        let shift = 64 - bits;
        return (v << shift, -(shift as i32));
    }
    let shift = bits - 64;
    let mut f: u64 = 0;
    for i in 0..64 {
        if bigint::bit(big, shift + i) {
            f |= 1 << i;
        }
    }
    let mut e = shift as i32;
    if bigint::bit(big, shift - 1) {
        // Round up (half-up keeps the error within the half-ulp Grisu2
        // accounts for).
        let (nf, overflow) = f.overflowing_add(1);
        if overflow {
            f = 1 << 63;
            e += 1;
        } else {
            f = nf;
        }
    }
    (f, e)
}

/// `floor(2^n / d)` with a round-to-nearest flag, for `d` sized so the
/// quotient fits a `u64` with its top bit set.
fn div_pow2(n: u32, d: &[u64]) -> (u64, bool) {
    let mut rem = vec![0u64; d.len() + 1];
    let mut q: u64 = 0;
    for pos in (0..=n).rev() {
        bigint::shl1(&mut rem);
        if pos == n {
            rem[0] |= 1;
        }
        let bit = if bigint::ge(&rem, d) {
            bigint::sub(&mut rem, d);
            1
        } else {
            0
        };
        q = (q << 1) | bit;
    }
    bigint::shl1(&mut rem);
    (q, bigint::ge(&rem, d))
}

/// Exact normalized binary representation of `10^k`.
fn compute_power10(k: i32) -> Fp {
    if k >= 0 {
        // 10^k = 5^k * 2^k.
        let mut big = vec![1u64];
        for _ in 0..k {
            bigint::mul_small(&mut big, 5);
        }
        let (f, e) = big_top64(&big);
        Fp { f, e: e + k }
    } else {
        // 10^k = 2^(b+63) / 5^m / 2^(b+63+m), with b the bit length of
        // 5^m chosen so the quotient lands in [2^63, 2^64).
        let m = -k;
        let mut big = vec![1u64];
        for _ in 0..m {
            bigint::mul_small(&mut big, 5);
        }
        let b = bigint::bit_len(&big);
        let (q, round_up) = div_pow2(b + 63, &big);
        let mut f = q;
        let mut e = -((b + 63) as i32) - m;
        if round_up {
            let (nf, overflow) = f.overflowing_add(1);
            if overflow {
                f = 1 << 63;
                e += 1;
            } else {
                f = nf;
            }
        }
        Fp { f, e }
    }
}

/// Decimal exponent of the first cached power and the spacing between
/// entries. Entry `i` is `10^(CACHE_FIRST + i * CACHE_STEP)`.
const CACHE_FIRST: i32 = -348;
const CACHE_STEP: i32 = 8;
const CACHE_LEN: usize = 87;

fn cached_powers() -> &'static [Fp; CACHE_LEN] {
    static POWERS: OnceLock<[Fp; CACHE_LEN]> = OnceLock::new();
    POWERS.get_or_init(|| {
        let mut table = [Fp { f: 0, e: 0 }; CACHE_LEN];
        for (i, slot) in table.iter_mut().enumerate() {
            *slot = compute_power10(CACHE_FIRST + i as i32 * CACHE_STEP);
        }
        table
    })
}

/// Pick the cached power of ten that scales a binary exponent `e` into
/// Grisu2's digit-generation window; returns the power and the initial
/// decimal exponent bookkeeping value.
#[inline]
fn cached_power_for(e: i32) -> (Fp, i32) {
    // ceil((alpha - e - 64) * log10(2)) mapped onto the table's stride.
    let dk = (-61 - e) as f64 * 0.301_029_995_663_981_14 + 347.0;
    let mut k = dk as i32;
    if dk - k as f64 > 0.0 {
        k += 1;
    }
    let index = ((k >> 3) + 1) as usize;
    let dec_exp = CACHE_FIRST + index as i32 * CACHE_STEP;
    (cached_powers()[index], -dec_exp)
}

/// Number of decimal digits in a `u32` (1..=10).
#[inline]
fn decimal_len_u32(v: u32) -> i32 {
    let mut n = 1;
    let mut t = v;
    while t >= 10 {
        t /= 10;
        n += 1;
    }
    n
}

/// Nudge the last generated digit toward the scaled target `w`.
#[inline]
fn grisu_round(buf: &mut [u8], len: usize, delta: u128, mut rest: u128, ten_kappa: u128, wp_w: u128) {
    if len == 0 {
        return;
    }
    while buf[len - 1] > b'0'
        && rest < wp_w
        && delta - rest >= ten_kappa
        && (rest + ten_kappa < wp_w || wp_w - rest > rest + ten_kappa - wp_w)
    {
        buf[len - 1] -= 1;
        rest += ten_kappa;
    }
}

/// Generate the shortest digit string for the scaled interval
/// `[w - delta, w]`; returns digit count, adding the implied decimal
/// exponent into `k`. `None` means the safe-guards tripped and the
/// caller should use the fallback formatter.
fn digit_gen(w: Fp, mp: Fp, mut delta: u64, buf: &mut [u8; 20], k: &mut i32) -> Option<usize> {
    let shift = -mp.e;
    if !(32..=60).contains(&shift) {
        return None;
    }
    let one_f = 1u64 << shift;
    let wp_w = mp.f - w.f;
    let mut p1 = (mp.f >> shift) as u32;
    let mut p2 = mp.f & (one_f - 1);
    let mut kappa = decimal_len_u32(p1);
    let mut len = 0usize;

    // Integral digits of the scaled value.
    while kappa > 0 {
        let pow = POW10_U64[(kappa - 1) as usize] as u32;
        let d = p1 / pow;
        p1 %= pow;
        if d != 0 || len != 0 {
            if len >= buf.len() {
                return None;
            }
            buf[len] = b'0' + d as u8;
            len += 1;
        }
        kappa -= 1;
        let rest = ((p1 as u64) << shift) + p2;
        if rest <= delta {
            *k += kappa;
            let ten_kappa = (POW10_U64[kappa as usize] as u128) << shift;
            grisu_round(buf, len, delta as u128, rest as u128, ten_kappa, wp_w as u128);
            return Some(len);
        }
    }

    // Fractional digits: multiply the remainder up one decimal place at
    // a time until it fits the interval.
    loop {
        p2 = p2.checked_mul(10)?;
        delta = delta.saturating_mul(10);
        let d = (p2 >> shift) as u8;
        if d != 0 || len != 0 {
            if len >= buf.len() {
                return None;
            }
            buf[len] = b'0' + d;
            len += 1;
        }
        p2 &= one_f - 1;
        kappa -= 1;
        if p2 < delta {
            *k += kappa;
            let scale = *POW10_U64.get((-kappa) as usize)? as u128;
            grisu_round(
                buf,
                len,
                delta as u128,
                p2 as u128,
                one_f as u128,
                wp_w as u128 * scale,
            );
            return Some(len);
        }
    }
}

/// Grisu2: shortest-ish digits and decimal exponent for a positive,
/// finite, non-zero `v`, such that `value = digits * 10^k`.
fn grisu2(v: f64, digits: &mut [u8; 20]) -> Option<(usize, i32)> {
    let bits = v.to_bits();
    let frac = bits & ((1u64 << 52) - 1);
    let biased = (bits >> 52) & 0x7ff;
    let (wf, we) = if biased == 0 {
        (frac, -1074i32)
    } else {
        (frac | (1 << 52), biased as i32 - 1075)
    };

    // Normalized boundaries of v's rounding interval.
    let plus = Fp {
        f: (wf << 1) + 1,
        e: we - 1,
    }
    .normalize();
    let minus_raw = if wf == (1 << 52) && biased > 1 {
        // Power of two: the interval below is half as wide.
        Fp {
            f: (wf << 2) - 1,
            e: we - 2,
        }
    } else {
        Fp {
            f: (wf << 1) - 1,
            e: we - 1,
        }
    };
    let minus = Fp {
        f: minus_raw.f << (minus_raw.e - plus.e),
        e: plus.e,
    };
    let w = Fp { f: wf, e: we }.normalize();

    let (c, mut k) = cached_power_for(plus.e);
    let w_scaled = w.mul(c);
    let mut wp = plus.mul(c);
    let mut wm = minus.mul(c);
    // Shrink the interval by one unit each side to absorb the cached
    // power's rounding error.
    wm.f += 1;
    wp.f -= 1;
    let delta = wp.f - wm.f;
    digit_gen(w_scaled, wp, delta, digits, &mut k).map(|len| (len, k))
}

/// Render `digits * 10^k` into `out`, choosing fixed or scientific
/// notation; returns the byte length.
fn render_decimal(digits: &[u8], k: i32, out: &mut [u8; 40]) -> usize {
    let len = digits.len();
    let dp = len as i32 + k; // position of the decimal point
    let mut n;
    if k >= 0 && dp <= 17 {
        // Pure integer: digits then k zeros.
        out[..len].copy_from_slice(digits);
        n = len;
        for _ in 0..k {
            out[n] = b'0';
            n += 1;
        }
    } else if 0 < dp && dp < len as i32 {
        // Point inside the digit run.
        let dp = dp as usize;
        out[..dp].copy_from_slice(&digits[..dp]);
        out[dp] = b'.';
        out[dp + 1..len + 1].copy_from_slice(&digits[dp..]);
        n = len + 1;
    } else if (-3..=0).contains(&dp) {
        // Small magnitude: leading "0." and up to three zeros.
        out[0] = b'0';
        out[1] = b'.';
        n = 2;
        for _ in 0..-dp {
            out[n] = b'0';
            n += 1;
        }
        out[n..n + len].copy_from_slice(digits);
        n += len;
    } else {
        // Scientific: d[.ddd]e±x.
        out[0] = digits[0];
        n = 1;
        if len > 1 {
            out[1] = b'.';
            out[2..len + 1].copy_from_slice(&digits[1..]);
            n = len + 1;
        }
        out[n] = b'e';
        n += 1;
        let e = dp - 1;
        if e < 0 {
            out[n] = b'-';
            n += 1;
        }
        let mut tmp = [0u8; 3];
        let mut t = tmp.len();
        let mut ev = e.unsigned_abs();
        loop {
            t -= 1;
            tmp[t] = b'0' + (ev % 10) as u8;
            ev /= 10;
            if ev == 0 {
                break;
            }
        }
        for &byte in &tmp[t..] {
            out[n] = byte;
            n += 1;
        }
    }
    n
}

/// Append the shortest-round-trip decimal form of `v` to `out`, using
/// the XSD spellings `INF`/`-INF`/`NaN` for non-finite values (the same
/// contract as `bxdm::value::write_f64_lexical`, several times faster).
pub fn write_f64(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if v.is_nan() {
        out.push_str("NaN");
        return;
    }
    if v.is_infinite() {
        out.push_str(if v > 0.0 { "INF" } else { "-INF" });
        return;
    }
    if v == 0.0 {
        out.push_str(if v.is_sign_negative() { "-0" } else { "0" });
        return;
    }
    let abs = v.abs();
    let mut digits = [0u8; 20];
    let mut text = [0u8; 40];
    if let Some((len, k)) = grisu2(abs, &mut digits) {
        let n = render_decimal(&digits[..len], k, &mut text);
        let s = std::str::from_utf8(&text[..n]).unwrap();
        // Commit only output proven to parse back bit-identically; this
        // turns Grisu2's "almost always shortest and correct" into an
        // unconditional guarantee.
        if parse_f64(s) == Some(abs) {
            if v.is_sign_negative() {
                out.push('-');
            }
            out.push_str(s);
            return;
        }
    }
    let _ = write!(out, "{v}");
}

/// Pre-compute the cached powers tables (Grisu2 formatting and the
/// Eisel–Lemire parse table) so later calls never allocate. Idempotent;
/// buffer-pooling callers invoke this once at startup.
pub fn warm_up() {
    let _ = cached_powers();
    let _ = el_powers();
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fmt(v: f64) -> String {
        let mut s = String::new();
        write_f64(v, &mut s);
        s
    }

    #[test]
    fn itoa_matches_std() {
        let cases: [u64; 12] = [
            0,
            1,
            9,
            10,
            99,
            100,
            12345,
            4_294_967_295,
            4_294_967_296,
            999_999_999_999_999_999,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut s = String::new();
            write_u64(v, &mut s);
            assert_eq!(s, v.to_string());
        }
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX, -42_000] {
            let mut s = String::new();
            write_i64(v, &mut s);
            assert_eq!(s, v.to_string());
        }
    }

    #[test]
    fn swar_digit_helpers() {
        assert!(is_8_digits(u64::from_le_bytes(*b"12345678")));
        assert!(!is_8_digits(u64::from_le_bytes(*b"1234567a")));
        assert!(!is_8_digits(u64::from_le_bytes(*b"1234 678")));
        assert_eq!(fold_8_digits(u64::from_le_bytes(*b"12345678")), 12_345_678);
        assert_eq!(fold_8_digits(u64::from_le_bytes(*b"00000000")), 0);
        assert_eq!(fold_8_digits(u64::from_le_bytes(*b"99999999")), 99_999_999);
    }

    #[test]
    fn parse_integers_match_std() {
        for s in [
            "0",
            "7",
            "42",
            "12345678",
            "123456789012345",
            "18446744073709551615",
        ] {
            assert_eq!(parse_u64(s), s.parse::<u64>().ok(), "u64 {s}");
        }
        assert_eq!(parse_u64("18446744073709551616"), None); // overflow
        assert_eq!(parse_u64(""), None);
        assert_eq!(parse_u64("12a"), None);
        assert_eq!(parse_u64("-1"), None);

        for s in [
            "0",
            "-1",
            "+5",
            "9223372036854775807",
            "-9223372036854775808",
        ] {
            assert_eq!(parse_i64(s), s.parse::<i64>().ok(), "i64 {s}");
        }
        assert_eq!(parse_i64("9223372036854775808"), None);
        assert_eq!(parse_i64("-9223372036854775809"), None);
        assert_eq!(parse_i64("-"), None);
    }

    #[test]
    fn f64_format_pinned_forms() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(-0.0), "-0");
        assert_eq!(fmt(1.0), "1");
        assert_eq!(fmt(-2.0), "-2");
        assert_eq!(fmt(1.5), "1.5");
        assert_eq!(fmt(0.5), "0.5");
        assert_eq!(fmt(3.25), "3.25");
        assert_eq!(fmt(12345.0), "12345");
        assert_eq!(fmt(0.001), "0.001");
        assert_eq!(fmt(f64::INFINITY), "INF");
        assert_eq!(fmt(f64::NEG_INFINITY), "-INF");
        assert_eq!(fmt(f64::NAN), "NaN");
    }

    #[test]
    fn f64_format_roundtrips_edge_values() {
        for v in [
            1.0,
            -1.0,
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            2.2250738585072014e-308, // smallest normal
            5e-324,                  // smallest subnormal
            f64::MAX,
            f64::MIN_POSITIVE,
            1e300,
            -1e-300,
            9007199254740993.0, // 2^53 + 1 rounds; still must round-trip
            1.7976931348623157e308,
            #[allow(clippy::excessive_precision)] // denormal min, spelled out
            4.9406564584124654e-324,
            #[allow(clippy::excessive_precision)] // deliberately over-precise
            123456789.123456789,
        ] {
            let s = fmt(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?} -> {s:?} -> {back:?}");
        }
    }

    #[test]
    fn f64_parse_matches_std() {
        for s in [
            "0",
            "-0",
            "1.5",
            "3.25e-8",
            "1e300",
            "-1e-300",
            "0.000001",
            "9007199254740993",
            "1.7976931348623157e308",
            "5e-324",
            "123456789012345678901234567890",
            "0.00000000000000000000000000001",
            "+1.25",
            "1e999",
            "-1e999",
            "1e-999",
        ] {
            assert_eq!(
                parse_f64(s).map(f64::to_bits),
                s.parse::<f64>().ok().map(f64::to_bits),
                "parse {s}"
            );
        }
        for s in ["", ".", "e5", "1e", "1e+", "1.5x", "--1", "1..2", "INF", "NaN"] {
            assert_eq!(parse_f64(s), None, "reject {s:?}");
        }
    }

    #[test]
    fn lexical_wrapper_handles_xsd_specials() {
        assert_eq!(parse_f64_lexical("INF"), Some(f64::INFINITY));
        assert_eq!(parse_f64_lexical("+INF"), Some(f64::INFINITY));
        assert_eq!(parse_f64_lexical("-INF"), Some(f64::NEG_INFINITY));
        assert!(parse_f64_lexical("NaN").unwrap().is_nan());
        assert_eq!(parse_f64_lexical("2.5"), Some(2.5));
    }

    #[test]
    fn cached_powers_are_accurate() {
        warm_up();
        for i in 0..CACHE_LEN {
            let k = CACHE_FIRST + i as i32 * CACHE_STEP;
            let p = cached_powers()[i];
            assert!(p.f >= 1 << 63, "10^{k} not normalized");
            // ln(f * 2^e) should equal k * ln(10) to high precision.
            let lhs = (p.f as f64).ln() + p.e as f64 * std::f64::consts::LN_2;
            let rhs = k as f64 * std::f64::consts::LN_10;
            assert!((lhs - rhs).abs() < 1e-9, "10^{k}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn el_powers_are_accurate() {
        warm_up();
        let table = el_powers();
        assert_eq!(table.len(), (EL_MAX_EXP10 - EL_MIN_EXP10 + 1) as usize);
        for (i, &(hi, lo)) in table.iter().enumerate() {
            let q = EL_MIN_EXP10 + i as i32;
            assert!(hi >= 1 << 63, "5^{q} table entry not normalized");
            // The 128-bit significand times 2^el_power2(q) must approximate
            // 10^q: compare logs to high precision.
            let sig = (hi as f64) * 2f64.powi(64) + lo as f64;
            let lhs = sig.ln() + (el_power2(q) - 63 - 127) as f64 * std::f64::consts::LN_2;
            let rhs = q as f64 * std::f64::consts::LN_10;
            assert!((lhs - rhs).abs() < 1e-9, "10^{q}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn el_clinger_boundary_cases() {
        // Strings straddling the Clinger fast-path window (|exp10| ≤ 22,
        // mantissa < 2^53): one step inside, on, and outside each edge, plus
        // mantissas at and just past 2^53 that force the wide-window path.
        for s in [
            "1e22",
            "1e23",
            "1e-22",
            "1e-23",
            "9007199254740991e22",  // 2^53 - 1, fast-path mantissa limit
            "9007199254740992e22",  // 2^53, first EL-only mantissa
            "9007199254740993e-23", // odd 54-bit mantissa, negative edge
            "8e22",
            "8.1e-23",
            "4503599627370496e24",
            "18014398509481984e-24",
            // Known hard cases for float parsers (halfway values).
            "2.2250738585072011e-308", // near smallest normal
            "2.2250738585072014e-308",
            "7.2057594037927933e16", // halfway between two floats
            "5.0e-324",
            "4.9e-324",
            "2.47032822920623272e-324", // below half the smallest subnormal
        ] {
            assert_eq!(
                parse_f64(s).map(f64::to_bits),
                s.parse::<f64>().ok().map(f64::to_bits),
                "boundary {s}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2048))]

        #[test]
        fn prop_el_random_bit_patterns(bits in any::<u64>()) {
            // Reinterpret raw bits: exercises the full exponent range,
            // subnormals, and both signs. Shortest form plus the 17-digit
            // scientific form (maximum digits write_f64 ever emits).
            let v = f64::from_bits(bits);
            if v.is_finite() {
                for s in [format!("{v}"), format!("{v:.16e}")] {
                    prop_assert_eq!(
                        parse_f64(&s).map(f64::to_bits),
                        s.parse::<f64>().ok().map(f64::to_bits),
                        "bits {bits:#018x} as {}", s
                    );
                }
            }
        }

        #[test]
        fn prop_el_subnormals(mantissa in 1u64..(1 << 52), neg in any::<bool>()) {
            // Exponent field zero: every value is subnormal. The EL power2
            // underflows and the shift-based subnormal branch must round
            // exactly as std does.
            let bits = mantissa | if neg { 1 << 63 } else { 0 };
            let v = f64::from_bits(bits);
            let s = format!("{v:e}");
            prop_assert_eq!(
                parse_f64(&s).map(f64::to_bits),
                Some(bits),
                "subnormal {}", s
            );
        }

        #[test]
        fn prop_el_clinger_window_edges(
            m in 0u64..=(1 << 54),
            e in -25i32..=25,
        ) {
            // Mantissa/exponent pairs clustered around the fast-path
            // cutoffs (2^53 and ±22): both paths must agree with std.
            let s = format!("{m}e{e}");
            prop_assert_eq!(
                parse_f64(&s).map(f64::to_bits),
                s.parse::<f64>().ok().map(f64::to_bits),
                "window {}", s
            );
        }

        #[test]
        fn prop_f64_format_roundtrips(v in any::<f64>()) {
            let s = fmt(v);
            let back = parse_f64_lexical(&s).unwrap();
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }

        #[test]
        fn prop_f64_format_roundtrips_normal(v in proptest::num::f64::NORMAL) {
            let s = fmt(v);
            let back: f64 = s.parse().unwrap();
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }

        #[test]
        fn prop_parse_agrees_with_std(v in any::<f64>()) {
            // Std's shortest form and std's debug form both reparse
            // identically through the kernel (finite values; the kernel
            // leaves inf/nan spellings to the XSD lexical wrapper).
            if v.is_finite() {
                let shortest = format!("{v}");
                prop_assert_eq!(
                    parse_f64(&shortest).map(f64::to_bits),
                    shortest.parse::<f64>().ok().map(f64::to_bits)
                );
                let sci = format!("{v:e}");
                prop_assert_eq!(
                    parse_f64(&sci).map(f64::to_bits),
                    sci.parse::<f64>().ok().map(f64::to_bits)
                );
            }
        }

        #[test]
        fn prop_itoa_roundtrips(v in any::<i64>()) {
            let mut s = String::new();
            write_i64(v, &mut s);
            prop_assert_eq!(s.parse::<i64>().ok(), Some(v));
            prop_assert_eq!(parse_i64(&s), Some(v));
        }
    }
}
