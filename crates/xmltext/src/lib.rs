//! # xmltext — textual XML 1.0 serialization of the bXDM model
//!
//! The paper's baseline encoding: SOAP's de-facto wire format. This crate
//! provides a writer (bXDM → XML 1.0 text) and a parser (XML 1.0 text →
//! bXDM), built from scratch with no external XML dependency.
//!
//! Two properties matter for the reproduction:
//!
//! * **Typed round trips** (paper §4.2): leaf elements serialize with an
//!   `xsi:type` attribute and array elements with a `bx:arrayType`
//!   attribute plus one child element per item, so the parser can rebuild
//!   the *typed* bXDM tree — this is what makes BXSA↔XML transcoding
//!   lossless (floats are canonicalized to shortest-round-trip form, the
//!   paper's stated exception).
//! * **The cost being measured**: every number crossing this codec passes
//!   through its ASCII lexical form. This conversion is precisely the
//!   bottleneck the paper attributes SOAP's poor scientific-data
//!   performance to, and it is what the BXSA path avoids.
//!
//! ```
//! use bxdm::{Document, Element, AtomicValue, ArrayValue};
//! use xmltext::{to_string, parse};
//!
//! let doc = Document::with_root(
//!     Element::component("data")
//!         .with_child(Element::leaf("n", AtomicValue::I32(7)))
//!         .with_child(Element::array("v", ArrayValue::F64(vec![1.5, -2.0]))),
//! );
//! let xml = to_string(&doc).unwrap();
//! let back = parse(&xml).unwrap();
//! assert_eq!(back, doc);
//! ```

pub mod error;
pub mod escape;
pub mod field;
pub mod lexer;
pub mod num;
pub mod reader;
pub mod writer;

pub use error::{XmlError, XmlResult};
pub use field::{TypedText, XmlFieldReader, XmlFieldWriter, XmlHead, XmlItem};
pub use reader::{parse, parse_into, parse_into_with, parse_with, XmlReadOptions};
pub use writer::{
    element_to_string, to_string, to_string_with, write_element_into, write_into, XmlWriteOptions,
};

/// Prefix conventionally bound to the bXDM extension namespace (array
/// typing attributes).
pub const BX_PREFIX: &str = "bx";
/// The bXDM extension namespace URI.
pub const BX_URI: &str = "http://bxsoap.example.org/bxdm";
