//! XML parse/serialize errors.

use std::fmt;

/// An error while reading or writing textual XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Lexical-level problem (malformed markup), with byte offset.
    Malformed { offset: usize, what: String },
    /// A close tag did not match the open element.
    MismatchedTag {
        offset: usize,
        expected: String,
        found: String,
    },
    /// Input ended inside markup or with unclosed elements.
    UnexpectedEof { what: String },
    /// An unknown or unsupported entity reference.
    BadEntity { offset: usize, entity: String },
    /// Document structure violation (no root, text outside root, ...).
    Structure { what: String },
    /// A typed value's lexical form did not parse as its declared type.
    BadTypedValue { what: String },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Malformed { offset, what } => {
                write!(f, "malformed XML at byte {offset}: {what}")
            }
            XmlError::MismatchedTag {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched close tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnexpectedEof { what } => write!(f, "unexpected end of input: {what}"),
            XmlError::BadEntity { offset, entity } => {
                write!(f, "unknown entity &{entity}; at byte {offset}")
            }
            XmlError::Structure { what } => write!(f, "document structure error: {what}"),
            XmlError::BadTypedValue { what } => write!(f, "bad typed value: {what}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Result alias for this crate.
pub type XmlResult<T> = Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offsets() {
        let e = XmlError::Malformed {
            offset: 17,
            what: "x".into(),
        };
        assert!(e.to_string().contains("17"));
        let e = XmlError::MismatchedTag {
            offset: 1,
            expected: "a".into(),
            found: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("</a>") && s.contains("</b>"));
    }
}
